//! A tour of the `specwise-mna` circuit simulator substrate: DC operating
//! point, AC transfer functions, a transient slew-rate measurement, and the
//! cross-check between the analytic and large-signal slew-rate extraction
//! of the folded-cascode opamp.
//!
//! Run with `cargo run --release --example simulator_tour`.
//! Set `SPECWISE_TRACE=run.jsonl` to journal each tour stop as a span.

use std::error::Error;

use specwise_ckt::{CircuitEnv, FoldedCascode, SlewRateMethod};
use specwise_linalg::DVec;
use specwise_mna::{
    AcSolver, Circuit, DcOp, MosfetModel, MosfetParams, Transient, TransientOptions, Waveform,
};
use specwise_trace::Tracer;

fn main() -> Result<(), Box<dyn Error>> {
    // The tracer works standalone too: each tour stop below becomes a span
    // in the journal when `SPECWISE_TRACE` points at a file.
    let tracer = Tracer::from_env();

    // --- 1. A common-source amplifier from scratch. -----------------------
    let mut span = tracer.span("common_source");
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("g");
    let out = ckt.node("out");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)?;
    ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)?;
    ckt.set_ac("VG", 1.0)?;
    ckt.resistor("RD", vdd, out, 20e3)?;
    ckt.capacitor("CL", out, Circuit::GROUND, 1e-12)?;
    let m = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
    ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, m)?;

    let op = DcOp::new(&ckt).solve()?;
    let info = op.mosfet_op("M1").expect("M1 exists");
    println!("Common-source stage operating point:");
    println!(
        "  V(out) = {:.3} V, I_D = {:.1} µA, region = {}, gm = {:.1} µS",
        op.voltage(out),
        info.id * 1e6,
        info.region,
        info.gm * 1e6
    );

    let ac = AcSolver::new(&ckt, &op);
    let a0 = ac.solve(0.0)?.voltage(out).abs();
    let f3db = ac
        .find_crossing(out, a0 / 2f64.sqrt(), 1e3, 1e12)?
        .expect("bandwidth crossing exists");
    println!(
        "  |A| = {a0:.1} ({:.1} dB), f_3dB = {:.1} MHz",
        20.0 * a0.log10(),
        f3db / 1e6
    );
    span.set_attr("a0_db", 20.0 * a0.log10());
    span.set_attr("f3db_mhz", f3db / 1e6);
    drop(span);

    // --- 2. Transient: inverter step response. ----------------------------
    let span = tracer.span("transient_step");
    let mut tr_ckt = ckt.clone();
    tr_ckt.set_stimulus(
        "VG",
        Waveform::Step {
            v0: 1.0,
            v1: 1.3,
            t0: 10e-9,
            t_rise: 1e-9,
        },
    )?;
    let tr = Transient::new(&tr_ckt, TransientOptions::new(0.1e-9, 200e-9)).run()?;
    println!(
        "  transient: V(out) settles {:.3} V -> {:.3} V, max |dV/dt| = {:.2} V/µs",
        tr.voltage(out)[0],
        tr.final_voltage(out),
        tr.max_slope(out) / 1e6
    );
    drop(span);

    // --- 3. Slew rate of the folded cascode: analytic vs transient. -------
    let mut span = tracer.span("slew_cross_check");
    println!("\nFolded-cascode slew rate, analytic vs large-signal transient:");
    let theta = FoldedCascode::paper_setup().operating_range().nominal();
    let d0 = FoldedCascode::paper_setup().design_space().initial();

    let env_analytic = FoldedCascode::paper_setup();
    let s0 = DVec::zeros(env_analytic.stat_dim());
    let sr_analytic = env_analytic.metrics(&d0, &s0, &theta)?.slew_v_per_s;

    let env_transient = FoldedCascode::paper_setup().with_sr_method(SlewRateMethod::Transient {
        dt: 1e-9,
        t_stop: 400e-9,
        step: 0.8,
    });
    let sr_transient = env_transient.metrics(&d0, &s0, &theta)?.slew_v_per_s;

    println!("  analytic (I_tail/C_L): {:.1} V/µs", sr_analytic / 1e6);
    println!(
        "  transient (unity buffer step): {:.1} V/µs",
        sr_transient / 1e6
    );
    let ratio = sr_transient / sr_analytic;
    println!("  ratio: {ratio:.2} (the textbook formula is the large-signal limit)");
    span.set_attr("ratio", ratio);
    drop(span);

    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
    Ok(())
}
