//! Bring your own circuit — without writing a single line of circuit Rust.
//!
//! This example defines a *new* environment (a PMOS-input five-transistor
//! OTA, the complement of the built-in NMOS `FiveTransistorOta`) entirely
//! as an annotated SPICE deck and pushes it through the complete flow:
//! deck → [`Testbench`] → worst-case distances → spec-wise linearization →
//! feasibility-guided yield optimization → importance-sampled verification.
//!
//! The deck carries everything the three built-in environments used to
//! hand-code:
//!
//! * `.design`  — design variables with units, bounds, initial sizing;
//!   `{name}` placeholders substitute them into the netlist,
//! * `.range`   — the operating region Θ (temperature, supply),
//! * `.spec`    — specifications bound to measurements (`dcgain`, `ugf`,
//!   `pm`, `cmrr`, `psrr`, `slew`, `power`, `vdc(<node>)`),
//! * `.match`   — mismatch groups: members get Pelgrom local parameters
//!   with design-dependent σ = A/√(W·L),
//! * `.tb`      — harness wiring (input/supply sources, output node, tail
//!   device and slewing capacitor).
//!
//! Run with `cargo run --release --example custom_circuit`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration and
//! `SPECWISE_TRACE=run.jsonl` to journal every flow phase to disk.

use std::error::Error;

use specwise::{
    estimate_yield, run_report, IsOptions, MeanShiftIs, OptimizerConfig, Tracer, YieldOptimizer,
};
use specwise_ckt::{CircuitEnv, Testbench};
use specwise_linalg::DVec;

/// A PMOS-input five-transistor OTA: PMOS differential pair (m1/m2) with a
/// PMOS tail current source (mt, mirrored from the mb1 diode), an NMOS
/// current-mirror load (m3/m4), single-ended output into CL.
const DECK: &str = "\
.name pmos-input OTA
.nodes vdd inp out x1 tail vbp
.design w1 um 4.0 400.0 16.0
.design l1 um 0.6 10.0 1.0
.design w3 um 2.0 200.0 8.0
.design l3 um 0.6 10.0 1.5
.design wt um 4.0 400.0 40.0
.design ib uA 1.0 100.0 5.0
.range temp -40.0 125.0
.range vdd 3.0 3.6
.spec A0 dB min 40.0 dcgain
.spec ft MHz min 3.5 ugf
.spec CMRR dB min 60.0 cmrr
.spec SRp V/us min 2.5 slew
.spec Power mW max 0.08 power
.spec Vout V min 1.3 vdc(out)
.match m1 m2
.match m3 m4
.match mt
.match mb1
.tb vinp VINP
.tb vinn VINN
.tb out out
.tb vdd VDD
.tb tail mt
.tb slewcap CL
VDD vdd 0 {vdd}
VINP inp 0 {vcm}
VINN inn 0 {vcm}
IB1 vbp 0 {ib}
m1 x1 inp tail vdd PMOS W={w1} L={l1}
m2 out inn tail vdd PMOS W={w1} L={l1}
m3 x1 x1 0 0 NMOS W={w3} L={l3}
m4 out x1 0 0 NMOS W={w3} L={l3}
mt tail vbp vdd vdd PMOS W={wt} L=2e-6
mb1 vbp vbp vdd vdd PMOS W=20e-6 L=2e-6
CL out 0 3.0e-12
.end
";

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();

    let env = Testbench::from_deck(DECK)?;
    println!(
        "{}: {} design parameters, {} statistical parameters, {} specs, {} sizing rules",
        env.name(),
        env.design_space().dim(),
        env.stat_dim(),
        env.specs().len(),
        env.constraint_names().len()
    );

    // The compiler records where every design variable lands …
    println!("\ndesign variable bindings:");
    for (var, bindings) in env.design_map().iter() {
        let sites: Vec<String> = bindings
            .iter()
            .map(|b| format!("{}:{:?}", b.element, b.target))
            .collect();
        println!("  {var:<4} -> {}", sites.join(", "));
    }
    // … and which devices carry Pelgrom mismatch parameters.
    println!("mismatch pairs: {:?}", env.stat_map().pairs());

    // Sanity: nominal point.
    let d0 = env.design_space().initial();
    let s0 = DVec::zeros(env.stat_dim());
    let theta = env.operating_range().nominal();
    let perf = env.eval_performances(&d0, &s0, &theta)?;
    println!("\nnominal performances:");
    for (spec, value) in env.specs().iter().zip(perf.iter()) {
        println!(
            "  {:<6} = {:>8.3} {} (spec {} {})",
            spec.name(),
            value,
            spec.unit(),
            if spec.satisfied(*value) {
                "met:"
            } else {
                "MISSED:"
            },
            spec.bound()
        );
    }

    // The full WCD → linearize → optimize → Monte-Carlo loop.
    let mut cfg = OptimizerConfig::default();
    if quick {
        cfg.mc_samples = 500;
        cfg.verify_samples = 0;
        cfg.max_iterations = 1;
    } else {
        cfg.mc_samples = 5_000;
        cfg.verify_samples = 300;
    }
    let tracer = Tracer::from_env();
    let trace = YieldOptimizer::new(cfg)
        .with_tracer(tracer.clone())
        .run(&env)?;
    println!();
    print!("{}", run_report(&env, &trace, &tracer));

    if !quick {
        // After optimization the failure probability is usually too small
        // for plain Monte Carlo — verify with importance sampling shifted
        // to the most critical spec's worst-case point.
        let final_snap = trace.final_snapshot();
        let critical = final_snap
            .wc_points
            .iter()
            .min_by(|a, b| a.beta_wc.partial_cmp(&b.beta_wc).expect("finite distances"))
            .expect("at least one spec");
        println!(
            "most critical spec after optimization: {} (beta_wc = {:.2})",
            env.specs()[critical.spec].name(),
            critical.beta_wc
        );
        let is = estimate_yield(
            &MeanShiftIs {
                shift: critical.s_wc.clone(),
                options: IsOptions { n: 2_000, seed: 99 },
            },
            &env,
            &final_snap.design,
            &tracer,
        )?;
        println!(
            "importance-sampled failure probability: {:.3e} (std err {:.1e}, ESS {:.0})",
            is.failure_probability, is.std_error, is.effective_sample_size
        );
    }
    Ok(())
}
