//! How to put your own circuit through the yield flow, end to end, using
//! the five-transistor OTA (`specwise_ckt::FiveTransistorOta`) — the
//! minimal reference implementation of the [`specwise_ckt::CircuitEnv`]
//! trait.
//!
//! The steps any custom circuit follows:
//!
//! 1. define a `DesignSpace` (named, bounded parameters with an initial
//!    sizing) and a `StatSpace` (globals + Pelgrom locals per device),
//! 2. build the netlist for `(d, ŝ, θ)` — apply the statistical deltas to
//!    the device parameters and the operating point to temperature/VDD,
//! 3. extract performances (the `specwise_ckt` measurement harness covers
//!    the standard opamp set) and DC sizing-rule constraints,
//! 4. hand the environment to `specwise::YieldOptimizer`.
//!
//! Run with `cargo run --release --example custom_circuit`.

use std::error::Error;

use specwise::{importance_verify, iteration_table, OptimizerConfig, YieldOptimizer};
use specwise_ckt::{CircuitEnv, FiveTransistorOta};

fn main() -> Result<(), Box<dyn Error>> {
    let env = FiveTransistorOta::default_setup();
    println!(
        "{}: {} design parameters, {} statistical parameters, {} sizing rules",
        env.name(),
        env.design_space().dim(),
        env.stat_dim(),
        env.constraint_names().len()
    );

    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 5_000;
    cfg.verify_samples = 300;
    let trace = YieldOptimizer::new(cfg).run(&env)?;
    println!("\n{}", iteration_table(&env, &trace));

    // After optimization the failure probability is usually too small for
    // plain Monte Carlo — verify it with importance sampling shifted to the
    // most critical spec's worst-case point.
    let final_snap = trace.final_snapshot();
    let critical = final_snap
        .wc_points
        .iter()
        .min_by(|a, b| a.beta_wc.partial_cmp(&b.beta_wc).expect("finite distances"))
        .expect("at least one spec");
    println!(
        "most critical spec after optimization: {} (beta_wc = {:.2})",
        env.specs()[critical.spec].name(),
        critical.beta_wc
    );
    let is = importance_verify(&env, &final_snap.design, &critical.s_wc, 2_000, 99)?;
    println!(
        "importance-sampled failure probability: {:.3e} (std err {:.1e}, ESS {:.0})",
        is.failure_probability, is.std_error, is.effective_sample_size
    );
    Ok(())
}
