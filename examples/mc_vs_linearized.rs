//! Accuracy of the spec-wise linearized yield estimate (paper Sec. 5.2
//! claims 1-2 % agreement with full Monte Carlo).
//!
//! Builds the linearized models of the folded-cascode opamp at the initial
//! design, estimates the yield with 10,000 cheap samples on the models, and
//! compares against a simulation-based Monte-Carlo verification at several
//! design points along a line in the design space.
//!
//! Run with `cargo run --release --example mc_vs_linearized`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration and
//! `SPECWISE_TRACE=run.jsonl` to journal the analysis and MC phases.

use std::error::Error;

use specwise::{estimate_yield, LinearizedYield, McOptions, MonteCarlo, Tracer};
use specwise_ckt::{CircuitEnv, FoldedCascode};
use specwise_wcd::{WcAnalysis, WcOptions};

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();
    let (model_samples, verify_samples) = if quick { (1_000, 50) } else { (10_000, 300) };
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let tracer = Tracer::from_env();

    println!("Building spec-wise linearizations at the initial design…");
    let analysis = WcAnalysis::new(&env, WcOptions::default())
        .with_tracer(tracer.clone())
        .run(&d0)?;
    println!(
        "  {} linear models ({} mirrored twins for mismatch-shaped specs)",
        analysis.linearizations().len(),
        analysis
            .linearizations()
            .iter()
            .filter(|l| l.mirrored)
            .count(),
    );
    let model = LinearizedYield::new(
        analysis.linearizations().to_vec(),
        env.specs().len(),
        model_samples,
        2001,
    )?;

    // Compare Ȳ (linearized) against Ỹ (simulation MC) at the anchor and at
    // perturbed designs along the w1 axis.
    println!(
        "\n{:>10} {:>18} {:>18}",
        "w1 [um]", "linearized Ybar", "simulated Ytilde"
    );
    for scale in [1.0, 1.2, 1.5, 2.0] {
        let mut d = d0.clone();
        d[0] *= scale;
        let linearized = model.estimate(&d)?;
        let simulated = estimate_yield(
            &MonteCarlo {
                options: McOptions {
                    n_samples: verify_samples,
                    seed: 42,
                },
            },
            &env,
            &d,
            &tracer,
        )?;
        println!(
            "{:>10.1} {:>17.1}% {:>17.1}%",
            d[0],
            linearized.percent(),
            simulated.yield_estimate.percent()
        );
    }
    println!("\nNear the anchor the linearized estimate tracks the simulation MC");
    println!("closely at a tiny fraction of the cost; far from the anchor the");
    println!("models are re-linearized by the optimizer (Fig. 6 loop).");
    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
    Ok(())
}
