//! Reproduces the paper's Table 1 experiment: direct yield optimization of
//! the folded-cascode opamp under global + local (mismatch) variations and
//! operating-range tolerances, with functional constraints and worst-case
//! linearization.
//!
//! Run with `cargo run --release --example folded_cascode_yield`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration.

use std::error::Error;

use specwise::{
    improvement_table, iteration_table, mismatch_table, MismatchAnalysis, OptimizerConfig,
    YieldOptimizer,
};
use specwise_ckt::{CircuitEnv, FoldedCascode};

fn main() -> Result<(), Box<dyn Error>> {
    let env = FoldedCascode::paper_setup();
    let mut config = OptimizerConfig::default();
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        config.mc_samples = 500;
        config.verify_samples = 0;
        config.max_iterations = 1;
    }
    println!(
        "Optimizing the {} ({} design parameters, {} statistical parameters)…",
        env.name(),
        env.design_space().dim(),
        env.stat_dim()
    );

    let trace = YieldOptimizer::new(config).run(&env)?;

    println!("\n=== Optimization trace (cf. paper Table 1) ===");
    println!("{}", iteration_table(&env, &trace));

    if trace.snapshots().len() >= 2 {
        let snaps = trace.snapshots();
        println!("=== Improvement between iterations (cf. paper Table 2) ===");
        if let Some(t) = improvement_table(&env, &snaps[snaps.len() - 2], &snaps[snaps.len() - 1]) {
            println!("{t}");
        }
    }

    println!("=== Mismatch analysis at the initial design (cf. paper Table 5) ===");
    let entries = MismatchAnalysis::new().rank_all(&trace.initial().wc_points, 0.01);
    println!("{}", mismatch_table(&env, &entries, 5));

    println!(
        "Effort: {} simulator calls, {:.1} s wall clock (cf. paper Table 7)",
        trace.total_sims,
        trace.wall_time.as_secs_f64()
    );

    let final_design = trace.final_design();
    println!("\nFinal design:");
    for (p, v) in env.design_space().params().iter().zip(final_design.iter()) {
        println!("  {:<4} = {:>8.2} {}", p.name, v, p.unit);
    }
    Ok(())
}
