//! Reproduces the paper's Table 1 experiment: direct yield optimization of
//! the folded-cascode opamp under global + local (mismatch) variations and
//! operating-range tolerances, with functional constraints and worst-case
//! linearization.
//!
//! Run with `cargo run --release --example folded_cascode_yield`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration and
//! `SPECWISE_TRACE=run.jsonl` to journal every flow phase to disk.

use std::error::Error;

use specwise::{
    improvement_table, mismatch_table, run_report, MismatchAnalysis, OptimizerConfig, Tracer,
    YieldOptimizer,
};
use specwise_ckt::{CircuitEnv, FoldedCascode};

fn main() -> Result<(), Box<dyn Error>> {
    let env = FoldedCascode::paper_setup();
    let tracer = Tracer::from_env();
    let mut config = OptimizerConfig::default();
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        config.mc_samples = 500;
        config.verify_samples = 0;
        config.max_iterations = 1;
    }
    println!(
        "Optimizing the {} ({} design parameters, {} statistical parameters)…",
        env.name(),
        env.design_space().dim(),
        env.stat_dim()
    );

    let trace = YieldOptimizer::new(config)
        .with_tracer(tracer.clone())
        .run(&env)?;

    println!("\n=== Optimization trace (cf. paper Table 1) ===");
    print!("{}", run_report(&env, &trace, &tracer));

    if trace.snapshots().len() >= 2 {
        let snaps = trace.snapshots();
        println!("\n=== Improvement between iterations (cf. paper Table 2) ===");
        if let Some(t) = improvement_table(&env, &snaps[snaps.len() - 2], &snaps[snaps.len() - 1]) {
            println!("{t}");
        }
    }

    println!("=== Mismatch analysis at the initial design (cf. paper Table 5) ===");
    let entries = MismatchAnalysis::new().rank_all(&trace.initial().wc_points, 0.01);
    println!("{}", mismatch_table(&env, &entries, 5));
    Ok(())
}
