//! Robustness demo: the Miller Table 6 flow hardened against simulator
//! failures, worker panics, and job kills.
//!
//! Run with `cargo run --release --example resilient_run`. Everything is
//! driven by environment knobs, so the same binary serves as the CI chaos
//! and resume smoke test:
//!
//! * `SPECWISE_FAULTS=seed:rate:kinds` — inject deterministic faults into
//!   every evaluation (e.g. `7:0.1:nonconv,panic`); the retrying engine
//!   absorbs them and reports what it recovered.
//! * `SPECWISE_CHECKPOINT=path` — write an atomic checkpoint after every
//!   iteration and resume from it when the file already exists.
//! * `SPECWISE_KILL_AFTER=n` — die fatally after `n` evaluation calls (the
//!   in-process stand-in for a killed job).
//! * `SPECWISE_EXAMPLE_QUICK=1` — reduced sample counts.

use std::error::Error;

use specwise::{run_report, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::{CircuitEnv, MillerOpamp};
use specwise_exec::{EvalService, ExecConfig};
use specwise_harden::{FaultConfig, FaultInjector, KillSwitch};

fn main() -> Result<(), Box<dyn Error>> {
    let base = MillerOpamp::paper_setup();
    let tracer = Tracer::from_env();
    let mut config = OptimizerConfig::default();
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        config.mc_samples = 500;
        config.verify_samples = 100;
        config.max_iterations = 2;
    }

    // Optional chaos layer: deterministic, seeded faults on every
    // evaluation point.
    let injector = FaultConfig::from_env().map(|faults| {
        println!("fault injection on: {faults:?}");
        FaultInjector::new(&base as &(dyn CircuitEnv + Sync), faults)
    });
    let env: &(dyn CircuitEnv + Sync) = match &injector {
        Some(i) => i,
        None => &base,
    };

    // Kill switch: a pass-through evaluation counter by default, fatal
    // after `SPECWISE_KILL_AFTER` evaluations when set.
    let kill_after = std::env::var("SPECWISE_KILL_AFTER")
        .ok()
        .and_then(|s| s.trim().parse::<u64>().ok());
    if let Some(n) = kill_after {
        println!("kill switch armed: fatal after {n} evaluation calls");
    }
    let kill = KillSwitch::new(env, kill_after.unwrap_or(u64::MAX));

    // The retrying, panic-isolating evaluation engine in front of it all.
    let service = EvalService::new(&kill, ExecConfig::from_env());

    let result = YieldOptimizer::new(config)
        .with_tracer(tracer.clone())
        .run(&service);
    println!("evaluation calls: {}", kill.used());
    if let Some(i) = &injector {
        println!("injected faults: {}", i.report());
    }
    println!("engine report: {}", service.report());

    match result {
        Ok(trace) => {
            print!("{}", run_report(&base, &trace, &tracer));
            // One stable, full-precision line for the CI resume smoke test
            // to diff between an uninterrupted and a killed-then-resumed
            // run.
            println!("final design (raw): {:?}", trace.final_design().as_slice());
            Ok(())
        }
        Err(e) => {
            if kill.tripped() {
                eprintln!("run killed by the kill switch: {e}");
                eprintln!("(a checkpoint, if configured, resumes this run)");
            }
            Err(e.into())
        }
    }
}
