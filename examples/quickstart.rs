//! Quickstart: estimate and improve the yield of an analog circuit in a few
//! lines.
//!
//! The example runs the full DAC 2001 flow on the folded-cascode opamp with
//! reduced sample counts so it finishes in seconds:
//!
//! 1. evaluate the initial design (margins at the worst-case operating
//!    corners),
//! 2. verify its yield by simulation-based Monte Carlo,
//! 3. run one iteration of spec-wise-linearized yield optimization,
//! 4. verify the improvement.
//!
//! Run with `cargo run --release --example quickstart`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for an even faster smoke-test run and
//! `SPECWISE_TRACE=run.jsonl` to journal every flow phase to disk.

use std::error::Error;

use specwise::{estimate_yield, McOptions, MonteCarlo, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::{CircuitEnv, FoldedCascode};
use specwise_linalg::DVec;

fn main() -> Result<(), Box<dyn Error>> {
    // The circuit environment: the folded-cascode opamp of the paper's
    // Fig. 7, with global + local (mismatch) process variations.
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let nominal_stats = DVec::zeros(env.stat_dim());

    // 1. Nominal performances at the nominal operating point.
    let theta = env.operating_range().nominal();
    let perf = env.eval_performances(&d0, &nominal_stats, &theta)?;
    println!("Initial nominal performances:");
    for (spec, value) in env.specs().iter().zip(perf.iter()) {
        println!(
            "  {:<22} measured {:>9.2} {}",
            spec.to_string(),
            value,
            spec.unit()
        );
    }

    // 2. Simulation-based Monte-Carlo yield of the initial design
    //    (evaluated at each spec's worst-case operating corner, Eqs. 6-7).
    let tracer = Tracer::from_env();
    let before = estimate_yield(
        &MonteCarlo {
            options: McOptions {
                n_samples: if quick { 50 } else { 200 },
                seed: 7,
            },
        },
        &env,
        &d0,
        &tracer,
    )?;
    println!("\nInitial verified yield: {}", before.yield_estimate);

    // 3. One iteration of the paper's optimization loop (Fig. 6).
    let mut config = OptimizerConfig::default();
    config.max_iterations = 1;
    config.mc_samples = if quick { 500 } else { 4_000 };
    config.verify_samples = if quick { 50 } else { 200 };
    let trace = YieldOptimizer::new(config)
        .with_tracer(tracer.clone())
        .run(&env)?;

    // 4. The improvement.
    let after = trace.final_snapshot();
    println!(
        "After one iteration:    {}",
        after
            .verified
            .as_ref()
            .expect("verification enabled")
            .yield_estimate
    );
    println!(
        "({} simulator calls, {:.1} s)",
        trace.total_sims,
        trace.wall_time.as_secs_f64()
    );
    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
    Ok(())
}
