//! Daemon throughput benchmark: starts an in-process `specwise-serve`
//! daemon, pushes a batch of opamp decks through the full wire path
//! (submit → queue → sharded workers → result), and records jobs/min
//! plus the evaluation-cache hit rate in `BENCH_serve.json`.
//!
//! Run with `cargo run --release --example serve_bench`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for the CI smoke configuration.

use std::error::Error;
use std::io::Write as _;
use std::time::{Instant, SystemTime, UNIX_EPOCH};

use specwise_ckt::{FiveTransistorOta, FoldedCascode, MillerOpamp};
use specwise_serve::{Client, Daemon, ServeConfig, SubmitOptions};
use specwise_trace::json::write_f64;

/// Civil date from a unix timestamp (Howard Hinnant's algorithm), so the
/// report carries its date without a clock/calendar dependency.
fn civil_date() -> String {
    let secs = SystemTime::now()
        .duration_since(UNIX_EPOCH)
        .map(|d| d.as_secs())
        .unwrap_or(0);
    let z = secs as i64 / 86_400 + 719_468;
    let era = z.div_euclid(146_097);
    let doe = z.rem_euclid(146_097);
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let y = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let d = doy - (153 * mp + 2) / 5 + 1;
    let m = if mp < 10 { mp + 3 } else { mp - 9 };
    let y = if m <= 2 { y + 1 } else { y };
    format!("{y:04}-{m:02}-{d:02}")
}

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();
    let decks: Vec<(&str, &str)> = vec![
        ("ota", FiveTransistorOta::deck()),
        ("miller", MillerOpamp::deck()),
        ("folded", FoldedCascode::deck()),
    ];
    let (rounds, mc_samples, verify_samples, max_iterations) = if quick {
        (1, 500, 0, 1)
    } else {
        (2, 2_000, 150, 2)
    };
    let n_jobs = rounds * decks.len();

    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".into();
    cfg.spool = std::env::temp_dir().join(format!("specwise-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cfg.spool);
    cfg.slots = decks.len().min(std::thread::available_parallelism()?.get());
    let slots = cfg.slots;
    let spool = cfg.spool.clone();

    let daemon = Daemon::start(cfg)?;
    let addr = daemon.local_addr();
    println!(
        "serve_bench: {n_jobs} jobs ({n_decks} decks x {rounds}) on {slots} slots, \
         mc={mc_samples} verify={verify_samples} iters={max_iterations}",
        n_decks = decks.len()
    );

    let start = Instant::now();
    let mut client = Client::connect(addr)?;
    let mut jobs = Vec::new();
    for round in 0..rounds {
        for (tenant, deck) in &decks {
            let mut opts = SubmitOptions::default();
            opts.tenant = (*tenant).to_owned();
            // A fresh seed per round keeps rounds from being pure cache
            // replays of each other.
            opts.seed = Some(2001 + round as u64);
            opts.mc_samples = Some(mc_samples);
            opts.verify_samples = Some(verify_samples);
            opts.max_iterations = Some(max_iterations);
            jobs.push(client.submit(deck, &opts)?);
        }
    }
    let mut total_sims = 0u64;
    for job in &jobs {
        let outcome = client.result_wait(job)?;
        total_sims += outcome.total_sims;
        println!(
            "  {job}: estimated yield {:.4}, {} sims{}",
            outcome.estimated_yield,
            outcome.total_sims,
            outcome
                .verified_yield
                .map(|y| format!(", verified {y:.4}"))
                .unwrap_or_default()
        );
    }
    let wall_s = start.elapsed().as_secs_f64();
    let jobs_per_min = n_jobs as f64 / wall_s * 60.0;
    let metrics = daemon.state().metrics();
    let hit_rate = metrics.cache_hit_rate().unwrap_or(0.0);
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(spool);

    println!(
        "serve_bench: {n_jobs} jobs in {wall_s:.2}s = {jobs_per_min:.1} jobs/min, \
         cache hit rate {:.1}%, {total_sims} sims",
        hit_rate * 100.0
    );

    let mut out = String::new();
    out.push_str("{\n  \"bench\": \"examples/serve_bench.rs\",\n");
    out.push_str(&format!("  \"date\": \"{}\",\n", civil_date()));
    out.push_str("  \"command\": \"cargo run --release --example serve_bench\",\n");
    out.push_str(&format!(
        "  \"workload\": \"{n_jobs} yield-optimization jobs ({} opamp decks x {rounds} rounds) \
         submitted over the wire to an in-process daemon with {slots} job slots; \
         mc_samples={mc_samples}, verify_samples={verify_samples}, \
         max_iterations={max_iterations}, quick={quick}\",\n",
        decks.len()
    ));
    out.push_str("  \"units\": \"jobs per minute, end to end over the wire protocol\",\n");
    out.push_str("  \"results\": {\n");
    out.push_str(&format!("    \"jobs\": {n_jobs},\n"));
    out.push_str(&format!("    \"slots\": {slots},\n"));
    out.push_str("    \"wall_s\": ");
    write_f64(&mut out, (wall_s * 1000.0).round() / 1000.0);
    out.push_str(",\n    \"jobs_per_min\": ");
    write_f64(&mut out, (jobs_per_min * 10.0).round() / 10.0);
    out.push_str(",\n    \"cache_hit_rate\": ");
    write_f64(&mut out, (hit_rate * 1000.0).round() / 1000.0);
    out.push_str(&format!(",\n    \"total_sims\": {total_sims}\n  }}\n}}\n"));

    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("BENCH_serve.json");
    let mut file = std::fs::File::create(&path)?;
    file.write_all(out.as_bytes())?;
    println!("serve_bench: wrote {}", path.display());
    Ok(())
}
