//! Reproduces the paper's two ablation experiments on the folded-cascode
//! opamp:
//!
//! * **Table 3** — same optimizer *without* functional constraints: the
//!   linearized models become inaccurate far from the feasibility region
//!   and the true yield stays ≈ 0 even though the models' own bad-sample
//!   counts improve.
//! * **Table 4** — linearization at the nominal point `s = s₀` instead of
//!   the worst-case points: the models are wrong exactly at the spec
//!   boundary (especially for the quadratic CMRR) and the true yield again
//!   fails to improve.
//!
//! Run with `cargo run --release --example ablations`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration and
//! `SPECWISE_TRACE=run.jsonl` to journal both ablation runs to one file.

use std::error::Error;

use specwise::{run_report, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::FoldedCascode;
use specwise_wcd::LinearizationPoint;

fn quick_knobs(cfg: &mut OptimizerConfig) {
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        cfg.mc_samples = 500;
        cfg.verify_samples = 50;
    }
}

/// Runs one ablation configuration and prints the shared end-of-run report;
/// both ablations journal into the same tracer, so a traced run yields one
/// file with two top-level `run` spans.
fn run_ablation(header: &str, cfg: OptimizerConfig, tracer: &Tracer) -> Result<(), Box<dyn Error>> {
    println!("{header}");
    let env = FoldedCascode::paper_setup();
    let trace = YieldOptimizer::new(cfg)
        .with_tracer(tracer.clone())
        .run(&env)?;
    print!("{}", run_report(&env, &trace, tracer));
    Ok(())
}

fn main() -> Result<(), Box<dyn Error>> {
    let tracer = Tracer::from_env();

    let mut cfg = OptimizerConfig::default();
    cfg.use_constraints = false;
    cfg.max_iterations = 1;
    quick_knobs(&mut cfg);
    run_ablation(
        "=== Ablation 1: no functional constraints (cf. paper Table 3) ===",
        cfg,
        &tracer,
    )?;

    let mut cfg = OptimizerConfig::default();
    cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
    cfg.max_iterations = 1;
    quick_knobs(&mut cfg);
    run_ablation(
        "\n=== Ablation 2: linearization at the nominal point (cf. paper Table 4) ===",
        cfg,
        &tracer,
    )?;

    Ok(())
}
