//! The SPICE-style deck layer, bottom to top:
//!
//! 1. plain decks — parse a netlist from text and run DC/AC/transient
//!    analyses on the resulting [`specwise_mna::Circuit`],
//! 2. annotated decks — the same parser also understands the testbench
//!    directives (`.design`, `.range`, `.spec`, `.match`, `.tb`) that let
//!    [`specwise_ckt::Testbench`] compile a complete yield-optimization
//!    environment from one file; here we inspect the AST of the built-in
//!    Miller opamp deck and round-trip it through the canonical printer.
//!
//! Run with `cargo run --release --example spice_deck`.
//! Set `SPECWISE_TRACE=run.jsonl` to journal the two layers as spans.

use std::error::Error;

use specwise_ckt::{CircuitEnv, MillerOpamp, Testbench};
use specwise_mna::{
    parse_deck, parse_deck_ast, AcSolver, DcOp, Stimulus, Transient, TransientOptions,
};
use specwise_trace::Tracer;

const DECK: &str = "
* single-stage common-source amplifier with source degeneration bypassed
VDD vdd 0 3.0
VG  g   0 1.05 AC 1
RD  vdd out 18k
CL  out 0 1p
M1  out g 0 0 NMOS W=12u L=1.2u
.temp 27
.end
";

fn main() -> Result<(), Box<dyn Error>> {
    let tracer = Tracer::from_env();

    // ---- 1. A plain deck: parse and simulate directly. -------------------
    let mut span = tracer.span("plain_deck");
    let mut ckt = parse_deck(DECK)?;
    span.set_attr("elements", ckt.num_elements());
    println!(
        "parsed {} elements, {} nodes",
        ckt.num_elements(),
        ckt.num_nodes()
    );

    // DC operating point.
    let op = DcOp::new(&ckt).solve()?;
    let out = ckt.find_node("out")?;
    let m = op.mosfet_op("M1").expect("M1 parsed");
    println!(
        "DC: V(out) = {:.3} V, M1 in {} with I_D = {:.1} µA (vov = {:.0} mV)",
        op.voltage(out),
        m.region,
        m.id * 1e6,
        m.vov * 1e3
    );

    // AC: gain and bandwidth (the deck declared `AC 1` on VG).
    let ac = AcSolver::new(&ckt, &op);
    let a0 = ac.solve(0.0)?.voltage(out).abs();
    let f3db = ac
        .find_crossing(out, a0 / std::f64::consts::SQRT_2, 1e3, 1e12)?
        .expect("bandwidth exists");
    println!(
        "AC: |A| = {:.1} ({:.1} dB), f_3dB = {:.2} MHz",
        a0,
        20.0 * a0.log10(),
        f3db / 1e6
    );

    // Transient: small gate step.
    ckt.set_stimulus(
        "VG",
        Stimulus::Step {
            v0: 1.05,
            v1: 1.10,
            t0: 5e-9,
            t_rise: 1e-9,
        },
    )?;
    let tr = Transient::new(&ckt, TransientOptions::new(0.1e-9, 120e-9)).run()?;
    println!(
        "TRAN: V(out) {:.3} V -> {:.3} V after a 50 mV gate step",
        tr.voltage(out)[0],
        tr.final_voltage(out)
    );

    drop(span);

    // ---- 2. An annotated deck: the full testbench IR. --------------------
    // The built-in Miller environment is itself compiled from a deck; its
    // AST exposes every directive as typed data.
    let mut span = tracer.span("annotated_deck");
    let ast = parse_deck_ast(MillerOpamp::deck())?;
    span.set_attr("specs", ast.specs.len());
    println!(
        "\nannotated deck {:?}: {} elements, {} design vars, {} specs, {} tb keys",
        ast.title.as_deref().unwrap_or("?"),
        ast.elements.len(),
        ast.designs.len(),
        ast.specs.len(),
        ast.tb.len()
    );
    for s in &ast.specs {
        println!(
            "  .spec {:<6} {} {} {} -> measured by {:?}",
            s.name,
            if s.lower_bound { ">=" } else { "<=" },
            s.bound,
            s.unit,
            s.measure
        );
    }

    // The canonical printer round-trips the AST exactly (including every
    // numeric value, bit for bit) — decks are a faithful storage format.
    let printed = ast.to_deck();
    assert_eq!(parse_deck_ast(&printed)?, ast, "print/parse round-trip");
    println!("canonical print round-trips: {} bytes", printed.len());

    // And the same deck text compiles into a complete CircuitEnv.
    let env = Testbench::from_deck(MillerOpamp::deck())?;
    let perf = env.eval_performances(
        &env.design_space().initial(),
        &specwise_linalg::DVec::zeros(env.stat_dim()),
        &env.operating_range().nominal(),
    )?;
    println!(
        "compiled {:?} from the deck: nominal A0 = {:.1} dB, ft = {:.2} MHz",
        env.name(),
        perf[0],
        perf[1]
    );
    drop(span);

    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
    Ok(())
}
