//! Fleet walkthrough: two in-process `specwise-serve` daemons sharing
//! one spool directory. Jobs submitted to either member are claimed
//! through `.lease` files, run exactly once fleet-wide, and their
//! results are served by every member; the per-tenant simulation
//! totals are reconciled through the spool ledger.
//!
//! Run with `cargo run --release --example fleet`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for the CI smoke configuration.
//!
//! The lease/steal/resume machinery is documented in
//! `docs/OPERATIONS.md` and pinned by `crates/serve/tests/fleet.rs`.

use std::error::Error;
use std::time::{Duration, Instant};

use specwise_ckt::{FiveTransistorOta, MillerOpamp};
use specwise_serve::{Client, Daemon, ServeConfig, SubmitOptions};

fn member(spool: &std::path::Path, owner: &str) -> ServeConfig {
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".into();
    cfg.spool = spool.to_path_buf();
    cfg.owner = owner.to_owned();
    cfg.slots = 1;
    // A brisk fleet tick so the demo reacts in tenths of a second; the
    // production defaults (30s expiry / 3s heartbeat) favor stability.
    cfg.heartbeat = Duration::from_millis(100);
    cfg.lease_expiry = Duration::from_secs(60);
    cfg
}

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();
    let (mc_samples, verify_samples, max_iterations) =
        if quick { (300, 0, 1) } else { (2_000, 150, 2) };

    let spool = std::env::temp_dir().join(format!("specwise-fleet-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool)?;

    let a = Daemon::start(member(&spool, "alpha"))?;
    let b = Daemon::start(member(&spool, "beta"))?;
    println!(
        "fleet: alpha on {}, beta on {}, shared spool {}",
        a.local_addr(),
        b.local_addr(),
        spool.display()
    );

    // Two jobs to alpha, two to beta — one spool, four distinct ids.
    let decks: [(&str, &str); 4] = [
        ("ota", FiveTransistorOta::deck()),
        ("miller", MillerOpamp::deck()),
        ("ota", FiveTransistorOta::deck()),
        ("miller", MillerOpamp::deck()),
    ];
    let mut client_a = Client::connect(a.local_addr())?;
    let mut client_b = Client::connect(b.local_addr())?;
    let start = Instant::now();
    let mut jobs = Vec::new();
    for (i, (tenant, deck)) in decks.iter().enumerate() {
        let mut opts = SubmitOptions::default();
        opts.tenant = (*tenant).to_owned();
        opts.seed = Some(2001 + i as u64);
        opts.mc_samples = Some(mc_samples);
        opts.verify_samples = Some(verify_samples);
        opts.max_iterations = Some(max_iterations);
        let client = if i % 2 == 0 {
            &mut client_a
        } else {
            &mut client_b
        };
        let id = client.submit(deck, &opts)?;
        println!(
            "  submitted {id} ({tenant}) to {}",
            if i % 2 == 0 { "alpha" } else { "beta" }
        );
        jobs.push(id);
    }

    // Results are fleet-wide: ask beta for everything, including the
    // jobs alpha ran.
    for job in &jobs {
        let outcome = client_b.result_wait(job)?;
        println!(
            "  {job}: estimated yield {:.4}, {} sims{}{}",
            outcome.estimated_yield,
            outcome.total_sims,
            outcome
                .verified_yield
                .map(|y| format!(", verified {y:.4}"))
                .unwrap_or_default(),
            if outcome.resumed { ", resumed" } else { "" }
        );
    }
    println!(
        "fleet: {} jobs settled in {:.2}s",
        jobs.len(),
        start.elapsed().as_secs_f64()
    );

    // The fleet view from either member: live daemons, lease counters,
    // per-tenant fleet-wide sim totals off the spool ledger.
    let status = client_a.status()?;
    if let Some(fleet) = status.get("fleet") {
        let field = |k: &str| fleet.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        println!(
            "fleet status via alpha: {} live daemons, {} leases held, {} stolen, {} expired",
            field("daemons_live"),
            field("leases_held"),
            field("leases_stolen"),
            field("leases_expired"),
        );
        if let Some(tenants) = fleet.get("tenants").and_then(|t| t.as_arr()) {
            for t in tenants {
                println!(
                    "  tenant {}: {} sims fleet-wide",
                    t.get("tenant").and_then(|x| x.as_str()).unwrap_or("?"),
                    t.get("sims").and_then(|x| x.as_u64()).unwrap_or(0),
                );
            }
        }
    }
    let local = |client: &mut Client| -> Result<(u64, u64), Box<dyn Error>> {
        let status = client.status()?;
        let m = status.get("metrics").ok_or("metrics")?;
        let g = |k: &str| m.get(k).and_then(|x| x.as_u64()).unwrap_or(0);
        Ok((g("jobs_done"), g("jobs_remote")))
    };
    let (done_a, remote_a) = local(&mut client_a)?;
    let (done_b, remote_b) = local(&mut client_b)?;
    println!("  alpha ran {done_a} jobs ({remote_a} settled by its peer)");
    println!("  beta  ran {done_b} jobs ({remote_b} settled by its peer)");

    a.shutdown();
    b.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    Ok(())
}
