//! Reproduces the paper's Table 6 experiment: yield optimization of the
//! Miller (two-stage) opamp under global process variations.
//!
//! Run with `cargo run --release --example miller_yield`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration and
//! `SPECWISE_TRACE=run.jsonl` to journal every flow phase to disk.

use std::error::Error;

use specwise::{improvement_table, run_report, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::{CircuitEnv, MillerOpamp};

fn main() -> Result<(), Box<dyn Error>> {
    let env = MillerOpamp::paper_setup();
    let tracer = Tracer::from_env();
    let mut config = OptimizerConfig::default();
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        config.mc_samples = 500;
        config.verify_samples = 0;
        config.max_iterations = 1;
    }
    println!(
        "Optimizing the {} ({} design parameters, {} global statistical parameters)…",
        env.name(),
        env.design_space().dim(),
        env.stat_dim()
    );

    let trace = YieldOptimizer::new(config)
        .with_tracer(tracer.clone())
        .run(&env)?;

    println!("\n=== Optimization trace (cf. paper Table 6) ===");
    print!("{}", run_report(&env, &trace, &tracer));

    if trace.snapshots().len() >= 2 {
        let snaps = trace.snapshots();
        println!("\n=== Improvement between iterations ===");
        if let Some(t) = improvement_table(&env, &snaps[snaps.len() - 2], &snaps[snaps.len() - 1]) {
            println!("{t}");
        }
    }
    Ok(())
}
