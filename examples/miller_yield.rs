//! Reproduces the paper's Table 6 experiment: yield optimization of the
//! Miller (two-stage) opamp under global process variations.
//!
//! Run with `cargo run --release --example miller_yield`.
//! Set `SPECWISE_EXAMPLE_QUICK=1` for a fast smoke-test configuration.

use std::error::Error;

use specwise::{improvement_table, iteration_table, OptimizerConfig, YieldOptimizer};
use specwise_ckt::{CircuitEnv, MillerOpamp};

fn main() -> Result<(), Box<dyn Error>> {
    let env = MillerOpamp::paper_setup();
    let mut config = OptimizerConfig::default();
    if std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok() {
        config.mc_samples = 500;
        config.verify_samples = 0;
        config.max_iterations = 1;
    }
    println!(
        "Optimizing the {} ({} design parameters, {} global statistical parameters)…",
        env.name(),
        env.design_space().dim(),
        env.stat_dim()
    );

    let trace = YieldOptimizer::new(config).run(&env)?;

    println!("\n=== Optimization trace (cf. paper Table 6) ===");
    println!("{}", iteration_table(&env, &trace));

    if trace.snapshots().len() >= 2 {
        let snaps = trace.snapshots();
        println!("=== Improvement between iterations ===");
        if let Some(t) = improvement_table(&env, &snaps[snaps.len() - 2], &snaps[snaps.len() - 1]) {
            println!("{t}");
        }
    }

    println!(
        "Effort: {} simulator calls, {:.1} s wall clock (cf. paper Table 7)",
        trace.total_sims,
        trace.wall_time.as_secs_f64()
    );

    println!("\nFinal design:");
    for (p, v) in env
        .design_space()
        .params()
        .iter()
        .zip(trace.final_design().iter())
    {
        println!("  {:<4} = {:>8.2} {}", p.name, v, p.unit);
    }
    Ok(())
}
