//! Development probe: prints the raw metrics of both opamps at the initial
//! design over the operating corners and under sample mismatch deviations.
//! Used to calibrate the paper_setup() sizings; kept as a diagnostic tool.
//! Set `SPECWISE_TRACE=run.jsonl` to journal the probe sections as spans.

use specwise_ckt::{CircuitEnv, FoldedCascode, MillerOpamp};
use specwise_linalg::DVec;
use specwise_trace::Tracer;

fn main() {
    let tracer = Tracer::from_env();
    let fc = FoldedCascode::paper_setup();
    let d0 = fc.design_space().initial();
    let s0 = DVec::zeros(fc.stat_dim());

    println!("== Folded cascode, nominal s, all corners + nominal theta ==");
    let span = tracer.span("folded_cascode_probe");
    let mut thetas = fc.operating_range().corners();
    thetas.push(fc.operating_range().nominal());
    for th in &thetas {
        match fc.metrics(&d0, &s0, th) {
            Ok(m) => println!(
                "{th}: A0={:.2} dB ft={:.2} MHz CMRR={:.2} dB SR={:.2} V/us P={:.3} mW PM={:.1}",
                m.a0_db,
                m.ft_hz / 1e6,
                m.cmrr_db,
                m.slew_v_per_s / 1e6,
                m.power_w * 1e3,
                m.phase_margin_deg
            ),
            Err(e) => println!("{th}: ERROR {e}"),
        }
    }

    println!("== Folded cascode, per-pair mismatch-line sensitivity (±1σ) ==");
    let th = fc.operating_range().nominal();
    for pair in [("m1", "m2"), ("m3", "m4"), ("m5", "m6"), ("m7", "m8")] {
        for kind in ["vth", "beta"] {
            let ia = fc
                .stat_space()
                .index_of(&format!("{kind}_{}", pair.0))
                .unwrap();
            let ib = fc
                .stat_space()
                .index_of(&format!("{kind}_{}", pair.1))
                .unwrap();
            let mut s = DVec::zeros(fc.stat_dim());
            s[ia] = 1.0;
            s[ib] = -1.0;
            match fc.metrics(&d0, &s, &th) {
                Ok(m) => println!("ML {kind} {}/{}: CMRR={:.2} dB", pair.0, pair.1, m.cmrr_db),
                Err(e) => println!("ML {kind} {:?}: ERROR {e}", pair),
            }
        }
    }
    println!(
        "s=0 CMRR at wc corner (125C, 3V): {:.2}",
        fc.metrics(&d0, &s0, &specwise_ckt::OperatingPoint::new(125.0, 3.0))
            .unwrap()
            .cmrr_db
    );

    drop(span);

    println!("== Miller, nominal s, corners + nominal ==");
    let span = tracer.span("miller_probe");
    let mi = MillerOpamp::paper_setup();
    let dm = mi.design_space().initial();
    let sm = DVec::zeros(mi.stat_dim());
    let mut thetas = mi.operating_range().corners();
    thetas.push(mi.operating_range().nominal());
    for th in &thetas {
        match mi.metrics(&dm, &sm, th) {
            Ok(m) => println!(
                "{th}: A0={:.2} dB ft={:.3} MHz PM={:.1} deg SR={:.3} V/us P={:.3} mW",
                m.a0_db,
                m.ft_hz / 1e6,
                m.phase_margin_deg,
                m.slew_v_per_s / 1e6,
                m.power_w * 1e3
            ),
            Err(e) => println!("{th}: ERROR {e}"),
        }
    }
    drop(span);

    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
}
