//! Mismatch analysis (paper Sec. 3 / Table 5): detect and rank the
//! mismatch-sensitive transistor pairs of the folded-cascode opamp from its
//! worst-case points — at no extra simulation cost beyond the worst-case
//! analysis itself.
//!
//! Also sweeps one pair along the mismatch line and the neutral line to
//! show the Fig. 1 ridge structure of CMRR.
//!
//! Run with `cargo run --release --example mismatch_analysis`.
//! Set `SPECWISE_TRACE=run.jsonl` to journal the worst-case analysis.

use std::error::Error;

use specwise::{eta, mismatch_table, MismatchAnalysis, Tracer};
use specwise_ckt::{CircuitEnv, FoldedCascode};
use specwise_linalg::DVec;
use specwise_wcd::{WcAnalysis, WcOptions};

fn main() -> Result<(), Box<dyn Error>> {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let tracer = Tracer::from_env();

    // Worst-case analysis at the initial design: per-spec worst-case
    // operating corners, worst-case points and distances.
    let result = WcAnalysis::new(&env, WcOptions::default())
        .with_tracer(tracer.clone())
        .run(&d0)?;
    println!("Worst-case distances (β_wc) at the initial design:");
    for wc in result.worst_case_points() {
        println!(
            "  {:<6} β_wc = {:>6.2}   η(β_wc) = {:.2}   θ_wc = {}",
            env.specs()[wc.spec].name(),
            wc.beta_wc,
            eta(wc.beta_wc),
            wc.theta_wc,
        );
    }

    // Rank mismatch pairs (Eq. 9). CMRR dominates, as in the paper.
    let entries = MismatchAnalysis::new().rank_all(result.worst_case_points(), 0.01);
    println!("\nTop mismatch pairs (cf. paper Table 5):");
    println!("{}", mismatch_table(&env, &entries, 6));

    // Fig. 1 style probe: CMRR along the mismatch line vs the neutral line
    // of the dominant pair.
    let (Some(k), Some(l)) = (
        env.stat_space().index_of("vth_m7"),
        env.stat_space().index_of("vth_m8"),
    ) else {
        return Err("mirror-pair parameters not found".into());
    };
    let theta = env.operating_range().nominal();
    println!("CMRR over the (vth_m7, vth_m8) plane (cf. paper Fig. 1):");
    println!(
        "{:>8} {:>16} {:>16}",
        "t [σ]", "mismatch line", "neutral line"
    );
    for t in [-3.0, -2.0, -1.0, 0.0, 1.0, 2.0, 3.0] {
        let mut s_ml = DVec::zeros(env.stat_dim());
        s_ml[k] = t;
        s_ml[l] = -t;
        let mut s_nl = DVec::zeros(env.stat_dim());
        s_nl[k] = t;
        s_nl[l] = t;
        let cmrr_ml = env.eval_performances(&d0, &s_ml, &theta)?[2];
        let cmrr_nl = env.eval_performances(&d0, &s_nl, &theta)?[2];
        println!("{t:>8.1} {cmrr_ml:>13.1} dB {cmrr_nl:>13.1} dB");
    }
    println!("\nThe mismatch line degrades CMRR on both sides of nominal (the");
    println!("semidefinite-quadratic behaviour handled by the mirrored models,");
    println!("Eqs. 21-22), while the neutral line is almost flat.");
    if let Some(journal) = tracer.journal() {
        journal.flush();
        println!("\n{}", journal.summary());
    }
    Ok(())
}
