//! High-sigma verification: why plain Monte Carlo goes blind in the tail
//! and how the norm-minimization estimator fixes it.
//!
//! The spec is synthetic with a known answer — margin `b + s0`, so the
//! true failure probability is `Φ(−b)` exactly. At `b = 4.8` that is
//! `7.9e−7`: a 4 000-sample Monte Carlo run sees zero failures and reports
//! a (false) 100 % yield, while the norm-min estimator finds the
//! minimum-norm failure point, recenters its proposal there, and recovers
//! the failure probability to a few percent with the same budget.
//!
//! Run with `cargo run --release --example high_sigma`.
//! Set `SPECWISE_ESTIMATOR=mc|is|norm-min` to pick the estimator the final
//! section runs (default `norm-min`), and `SPECWISE_EXAMPLE_QUICK=1` for a
//! smaller smoke-test budget.

use std::error::Error;

use specwise::{
    estimate_yield, EstimatorKind, IsOptions, McOptions, MeanShiftIs, MonteCarlo, NormMinIs,
    NormMinOptions, Tracer,
};
use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_stat::std_normal_cdf;

const B: f64 = 4.8;

fn high_sigma_env() -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "b", "", 0.0, 10.0, B,
        )]))
        .stat_dim(2)
        .spec(Spec::new("margin", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
        .build()
        .expect("synthetic env builds")
}

fn main() -> Result<(), Box<dyn Error>> {
    let quick = std::env::var("SPECWISE_EXAMPLE_QUICK").is_ok();
    let n = if quick { 1_000 } else { 4_000 };
    let env = high_sigma_env();
    let d = Evaluator::design_space(&env).initial();
    let p_true = std_normal_cdf(-B);
    println!("true failure probability at {B} sigma: {p_true:.3e}");

    // Plain Monte Carlo at the same budget: structurally blind — the
    // failure region holds ~1e-6 of the sampling mass, so every sample
    // passes and the reported interval collapses onto 100 % yield.
    let mc = estimate_yield(
        &MonteCarlo {
            options: McOptions {
                n_samples: n,
                seed: 2001,
            },
        },
        &env,
        &d,
        &Tracer::disabled(),
    )?;
    println!(
        "plain MC, {n} samples: {} failures observed, yield {:.4} %",
        n - mc.yield_estimate.passed(),
        100.0 * mc.yield_estimate.value()
    );

    // The selected estimator (SPECWISE_ESTIMATOR, default norm-min here).
    let kind = if std::env::var("SPECWISE_ESTIMATOR").is_ok() {
        EstimatorKind::from_env()
    } else {
        EstimatorKind::NormMin
    };
    match kind {
        EstimatorKind::Mc => {
            println!("estimator mc: see the plain MC run above");
        }
        EstimatorKind::MeanShift => {
            // Mean-shift IS needs a worst-case point from the caller; for
            // this linear spec the exact one is s = (−b, 0).
            let r = estimate_yield(
                &MeanShiftIs {
                    shift: DVec::from_slice(&[-B, 0.0]),
                    options: IsOptions { n, seed: 2001 },
                },
                &env,
                &d,
                &Tracer::disabled(),
            )?;
            println!(
                "estimator is, {n} samples: failure probability {:.3e} \
                 (std err {:.1e}, ESS {:.0})",
                r.failure_probability, r.std_error, r.effective_sample_size
            );
        }
        EstimatorKind::NormMin => {
            let r = estimate_yield(
                &NormMinIs {
                    options: NormMinOptions {
                        n,
                        seed: 2001,
                        ..NormMinOptions::default()
                    },
                },
                &env,
                &d,
                &Tracer::disabled(),
            )?;
            let (lo, hi) = r.yield_interval();
            println!(
                "estimator norm-min, {n} samples (+{} search sims): \
                 failure probability {:.3e} (std err {:.1e}, ESS {:.0})",
                r.search_sims, r.failure_probability, r.std_error, r.effective_sample_size
            );
            println!(
                "  beta {:.2} (critical spec {}), yield interval [{:.6}, {:.6}]{}",
                r.beta,
                r.critical_spec,
                lo,
                hi,
                if r.ess_degraded {
                    " — ESS GUARD TRIPPED, estimate untrusted"
                } else {
                    ""
                }
            );
            assert!(
                r.failure_probability > 0.0,
                "norm-min must see the tail plain MC misses"
            );
        }
    }
    Ok(())
}
