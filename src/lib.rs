//! Umbrella crate for the `specwise` workspace: re-exports the public crates
//! so the examples and integration tests can use one import root.
//!
//! The actual functionality lives in the workspace crates:
//!
//! * [`specwise_linalg`] — dense linear algebra kernels
//! * [`specwise_stat`] — distributions and Monte-Carlo yield estimation
//! * [`specwise_mna`] — the circuit simulator
//! * [`specwise_ckt`] — circuits, technology, statistical spaces
//! * [`specwise_wcd`] — worst-case analysis and spec-wise linearization
//! * [`specwise_trace`] — the structured run journal (spans, JSONL,
//!   Chrome-trace export)
//! * [`specwise`] — the yield optimizer and mismatch analysis
//! * [`specwise_serve`] — yield optimization as a service: the daemon,
//!   its wire protocol, and the client

pub use specwise;
pub use specwise_ckt;
pub use specwise_linalg;
pub use specwise_mna;
pub use specwise_serve;
pub use specwise_stat;
pub use specwise_trace;
pub use specwise_wcd;

// Compile the markdown code blocks of the top-level docs as doctests so the
// README and DESIGN.md snippets can never silently go stale.
#[cfg(doctest)]
#[doc = include_str!("../README.md")]
mod readme_doctests {}

#[cfg(doctest)]
#[doc = include_str!("../DESIGN.md")]
mod design_doctests {}
