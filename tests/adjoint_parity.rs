//! Adjoint-vs-FD gradient parity over the three opamp decks.
//!
//! The adjoint backend prices perturbation directions on the cached LU
//! factorizations of the converged operating point (one-step sensitivity
//! updates + AC bilinear deltas) instead of re-simulating each perturbed
//! point from scratch. It must reproduce the finite-difference Jacobians
//! within a per-deck tolerance tier — FD stays available as the
//! differential oracle via `GradBackend::Fd`.
//!
//! Tolerances are tiered per deck like the golden constants in
//! `tests/golden_parity.rs`: the five-transistor OTA gets the loosest
//! tier because its CMRR measure near-cancels at the mismatch-symmetric
//! nominal point.

use rand::{Rng, SeedableRng};
use specwise_ckt::{CircuitEnv, FiveTransistorOta, FoldedCascode, MillerOpamp, OperatingPoint};
use specwise_linalg::{DMat, DVec};
use specwise_wcd::{margins_gradient_d_with, margins_gradient_s_with, GradBackend};

/// Forward-difference steps: the flow defaults (`WcdOptions::fd_step_s`,
/// `WcdOptions::fd_step_d`), so the comparison covers exactly the
/// quotients the spec-wise linearization consumes. The adjoint quotient
/// carries an O(h) one-step linearization error relative to the fully
/// re-simulated FD secant — the tiers below bound that error per deck.
const H_S: f64 = 0.01;
const H_D: f64 = 1e-3;

/// Per-deck tolerance tier.
struct Tier {
    /// Relative tolerance on the base margins (both backends fully
    /// simulate the base point; only warm-start history differs).
    base: f64,
    /// Frobenius-relative tolerance on each Jacobian:
    /// `‖adj − fd‖_F <= jac * max(1, ‖fd‖_F)`. The optimizer consumes
    /// whole Jacobians, so the aggregate is the contract; isolated
    /// near-zero entries may deviate more (e.g. a measure kink in an
    /// otherwise negligible column).
    jac: f64,
}

struct Point {
    d: DVec,
    s: DVec,
    theta: OperatingPoint,
}

/// Nominal point plus two seeded random points (same recipe as the golden
/// parity capture: multiplicative jitter on the initial design projected
/// back into the box, |ŝ| ≤ 1, θ ∈ Θ).
fn points(env: &dyn CircuitEnv, seed: u64) -> Vec<Point> {
    let space = env.design_space();
    let range = env.operating_range();
    let mut pts = vec![Point {
        d: space.initial(),
        s: DVec::zeros(env.stat_dim()),
        theta: range.nominal(),
    }];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (t_lo, t_hi) = range.temp_bounds();
    let (v_lo, v_hi) = range.vdd_bounds();
    for _ in 0..2 {
        let d0 = space.initial();
        let d: DVec = d0.iter().map(|&x| x * rng.gen_range(0.9..1.1)).collect();
        let d = space.project(&d).expect("projection succeeds");
        let s: DVec = (0..env.stat_dim())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        pts.push(Point {
            d,
            s,
            theta: OperatingPoint::new(rng.gen_range(t_lo..t_hi), rng.gen_range(v_lo..v_hi)),
        });
    }
    pts
}

/// Frobenius-relative deviation between two Jacobians:
/// `‖adj − fd‖_F / max(1, ‖fd‖_F)`.
fn max_jac_dev(adj: &DMat, fd: &DMat) -> f64 {
    assert_eq!(adj.nrows(), fd.nrows());
    assert_eq!(adj.ncols(), fd.ncols());
    let mut diff2 = 0.0;
    let mut norm2 = 0.0;
    for j in 0..fd.ncols() {
        for i in 0..fd.nrows() {
            diff2 += (adj[(i, j)] - fd[(i, j)]).powi(2);
            norm2 += fd[(i, j)].powi(2);
        }
    }
    diff2.sqrt() / norm2.sqrt().max(1.0)
}

fn max_rel_dev(a: &DVec, b: &DVec) -> f64 {
    a.iter()
        .zip(b.iter())
        .map(|(x, y)| (x - y).abs() / y.abs().max(1.0))
        .fold(0.0, f64::max)
}

fn check_parity<E: CircuitEnv + Sync>(env: &E, seed: u64, tier: &Tier) {
    for (i, p) in points(env, seed).iter().enumerate() {
        let (base_f, jac_s_f) =
            margins_gradient_s_with(env, GradBackend::Fd, &p.d, &p.s, &p.theta, H_S)
                .expect("FD stat gradient evaluates");
        let (base_a, jac_s_a) =
            margins_gradient_s_with(env, GradBackend::Adjoint, &p.d, &p.s, &p.theta, H_S)
                .expect("adjoint stat gradient evaluates");
        let base_dev = max_rel_dev(&base_a, &base_f);
        assert!(
            base_dev <= tier.base,
            "{}: base margins deviate at point {i}: {base_dev:e} > {:e}",
            env.name(),
            tier.base
        );
        let dev_s = max_jac_dev(&jac_s_a, &jac_s_f);
        assert!(
            dev_s <= tier.jac,
            "{}: ∂m/∂s deviates at point {i}: {dev_s:e} > {:e}",
            env.name(),
            tier.jac
        );

        let (_, jac_d_f) = margins_gradient_d_with(env, GradBackend::Fd, &p.d, &p.s, &p.theta, H_D)
            .expect("FD design gradient evaluates");
        let (_, jac_d_a) =
            margins_gradient_d_with(env, GradBackend::Adjoint, &p.d, &p.s, &p.theta, H_D)
                .expect("adjoint design gradient evaluates");
        let dev_d = max_jac_dev(&jac_d_a, &jac_d_f);
        assert!(
            dev_d <= tier.jac,
            "{}: ∂m/∂d deviates at point {i}: {dev_d:e} > {:e}",
            env.name(),
            tier.jac
        );
        println!(
            "{} point {i}: base {base_dev:.3e}  ∂m/∂s {dev_s:.3e}  ∂m/∂d {dev_d:.3e}",
            env.name()
        );
    }
}

#[test]
fn miller_adjoint_matches_fd() {
    check_parity(
        &MillerOpamp::paper_setup(),
        201,
        &Tier {
            base: 1e-9,
            jac: 3e-2,
        },
    );
}

#[test]
fn folded_adjoint_matches_fd() {
    check_parity(
        &FoldedCascode::paper_setup(),
        202,
        &Tier {
            base: 1e-9,
            jac: 4e-2,
        },
    );
}

#[test]
fn ota_adjoint_matches_fd() {
    check_parity(
        &FiveTransistorOta::default_setup(),
        203,
        // Loosest tier: the CMRR measure near-cancels at the mismatch-
        // symmetric point, so its one-step pricing is the least accurate.
        &Tier {
            base: 1e-9,
            jac: 6e-2,
        },
    );
}

/// FD must stay selectable as the oracle: forcing `GradBackend::Fd` never
/// touches the adjoint machinery, while `GradBackend::Adjoint` prices its
/// directions from the cached factorizations and records the sims avoided.
#[test]
fn fd_backend_is_a_pure_oracle() {
    let env = MillerOpamp::paper_setup();
    let d = env.design_space().initial();
    let s = DVec::zeros(env.stat_dim());
    let theta = env.operating_range().nominal();

    margins_gradient_s_with(&env, GradBackend::Fd, &d, &s, &theta, 0.01)
        .expect("FD gradient evaluates");
    assert_eq!(
        env.adjoint_solve_count(),
        0,
        "forced FD must not perform adjoint solves"
    );
    assert_eq!(env.fd_sims_avoided(), 0);

    margins_gradient_s_with(&env, GradBackend::Adjoint, &d, &s, &theta, 0.01)
        .expect("adjoint gradient evaluates");
    assert!(
        env.adjoint_solve_count() > 0,
        "adjoint backend must price directions on cached factorizations"
    );
    assert!(
        env.fd_sims_avoided() > 0,
        "adjoint backend must record the full simulations it avoided"
    );
}
