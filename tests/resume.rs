//! Kill-and-resume acceptance test: interrupt a checkpointed Miller run
//! mid-iteration, resume it in a "fresh process" (new environment, new
//! optimizer), and require the resumed run to reproduce the uninterrupted
//! run's final design, yield estimates, and journal span structure
//! bit-for-bit.

use std::sync::Arc;

use specwise::{Journal, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::MillerOpamp;
use specwise_harden::KillSwitch;
use specwise_trace::SpanNode;

fn quick_config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 2_000;
    cfg.verify_samples = 150;
    cfg.max_iterations = 2;
    cfg
}

/// Checkpoints restore the optimizer's state, not the warm-start cache; a
/// resumed process re-solves from cold starts, which is convergence-
/// equivalent but not bit-identical. Bit-for-bit reproduction is asserted
/// with the cache off.
fn env() -> MillerOpamp {
    MillerOpamp::paper_setup().with_warm_start(false)
}

fn unique_ckpt() -> std::path::PathBuf {
    std::env::temp_dir().join(format!("specwise-resume-{}.ckpt", std::process::id()))
}

/// The timing-free shape of a span subtree: names, attributes, and counters,
/// recursively — everything the journal records except ids and clocks.
fn shape(node: &SpanNode) -> String {
    let mut out = format!(
        "{}{:?}{:?}[",
        node.span.name, node.span.attrs, node.span.counters
    );
    for c in &node.children {
        out.push_str(&shape(c));
        out.push(',');
    }
    out.push(']');
    out
}

/// The `iteration` spans under the run root with `iter >= from`, in order.
fn iterations_from(roots: &[SpanNode], from: u64) -> Vec<SpanNode> {
    let run = roots
        .iter()
        .find(|r| r.span.name == "run")
        .expect("run span");
    run.children
        .iter()
        .filter(|c| {
            c.span.name == "iteration"
                && c.span
                    .attr("iter")
                    .and_then(|v| match v {
                        specwise_trace::TraceValue::U64(n) => Some(*n),
                        specwise_trace::TraceValue::I64(n) => Some(*n as u64),
                        _ => None,
                    })
                    .is_some_and(|i| i >= from)
        })
        .cloned()
        .collect()
}

#[test]
fn killed_run_resumes_bit_for_bit() {
    let ckpt = unique_ckpt();
    let _ = std::fs::remove_file(&ckpt);

    // Uninterrupted reference run, journaled. The pass-through KillSwitch
    // (unreachable budget) counts evaluation calls, which is the unit the
    // kill budget below is expressed in.
    let ref_env = env();
    let probe = KillSwitch::new(&ref_env, u64::MAX);
    let ref_journal = Arc::new(Journal::in_memory());
    let reference = YieldOptimizer::new(quick_config())
        .with_tracer(Tracer::new(Arc::clone(&ref_journal)))
        .run(&probe)
        .expect("reference run completes");
    let n_iters = reference.snapshots().len() as u64 - 1;
    assert!(n_iters >= 1, "need an iteration to kill inside");

    // Killed run: the evaluation budget runs out inside the last journaled
    // iteration (its verification runs ≥ `verify_samples` evaluations),
    // after an earlier iteration's checkpoint was written.
    let budget = probe.used() - 60;
    let kill_env = env();
    let kill = KillSwitch::new(&kill_env, budget);
    let killed = YieldOptimizer::new(quick_config())
        .with_checkpoint(&ckpt)
        .run(&kill);
    assert!(killed.is_err(), "the kill switch must abort the run");
    assert!(kill.tripped());
    assert!(ckpt.exists(), "a checkpoint must survive the kill");

    // Resume in a fresh "process": new environment, new optimizer.
    let res_journal = Arc::new(Journal::in_memory());
    let resumed = YieldOptimizer::new(quick_config())
        .with_checkpoint(&ckpt)
        .with_tracer(Tracer::new(Arc::clone(&res_journal)))
        .run(&env())
        .expect("resumed run completes");
    assert!(
        resumed.resumed,
        "the run must have picked up the checkpoint"
    );

    // Final design and yields reproduce the uninterrupted run bit-for-bit.
    assert_eq!(
        reference.final_design().as_slice(),
        resumed.final_design().as_slice()
    );
    assert_eq!(reference.total_sims, resumed.total_sims);
    assert_eq!(reference.phase_sims, resumed.phase_sims);
    assert_eq!(reference.snapshots().len(), resumed.snapshots().len());
    for (a, b) in reference.snapshots().iter().zip(resumed.snapshots()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.sim_count, b.sim_count, "sim accounting at {}", a.label);
        assert_eq!(
            a.estimated_yield.value().to_bits(),
            b.estimated_yield.value().to_bits(),
            "estimated yield at {}",
            a.label
        );
        match (&a.verified, &b.verified) {
            (Some(x), Some(y)) => assert_eq!(
                x.yield_estimate.value().to_bits(),
                y.yield_estimate.value().to_bits(),
                "verified yield at {}",
                a.label
            ),
            (None, None) => {}
            _ => panic!("verification presence differs at {}", a.label),
        }
    }

    // Journal span structure: the resumed run re-executes exactly the
    // iterations after the checkpoint, and their span subtrees (names,
    // attributes, counters) match the tail of the reference's bit-for-bit.
    let ref_iters = iterations_from(&ref_journal.span_tree(), 0);
    let res_iters = iterations_from(&res_journal.span_tree(), 0);
    assert!(!res_iters.is_empty(), "the resumed run re-ran an iteration");
    assert!(
        res_iters.len() <= ref_iters.len(),
        "resume must not invent iterations"
    );
    let tail = &ref_iters[ref_iters.len() - res_iters.len()..];
    for (a, b) in tail.iter().zip(&res_iters) {
        assert_eq!(shape(a), shape(b), "span structure diverged");
    }

    let _ = std::fs::remove_file(&ckpt);
}
