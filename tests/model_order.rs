//! Model-order ablation: tests the paper's Sec. 5.1 claim that spec-wise
//! *linear* models at worst-case points are sufficient for yield estimation
//! inside the feasibility region — "no model of higher order is needed".
//!
//! Compares three estimators against simulation Monte Carlo:
//!
//! 1. the paper's worst-case-anchored linearizations (+ mirrored twins),
//! 2. diagonal-quadratic models at the nominal point,
//! 3. plain nominal-point linearizations (the Table 4 strawman).

use specwise::{mc_verify, LinearizedYield, QuadraticYield};
use specwise_ckt::{CircuitEnv, FoldedCascode};
use specwise_linalg::DVec;
use specwise_wcd::{QuadraticMarginModel, WcAnalysis, WcOptions};

#[test]
fn linear_wc_models_match_simulation_within_paper_tolerance() {
    // Paper Sec. 5.2: "accuracy differing less than 1-2% from the results
    // of a Monte-Carlo analysis". Verify at the initial folded-cascode
    // design (where yield is low) and we allow a slightly wider band for
    // our 400-sample simulation reference.
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let analysis = WcAnalysis::new(&env, WcOptions::default())
        .run(&d0)
        .expect("analysis");
    let linear = LinearizedYield::new(
        analysis.linearizations().to_vec(),
        env.specs().len(),
        20_000,
        2001,
    )
    .expect("model");
    let y_lin = linear.estimate(&d0).expect("estimate").value();
    let y_sim = mc_verify(&env, &d0, 400, 77)
        .expect("verify")
        .yield_estimate
        .value();
    assert!(
        (y_lin - y_sim).abs() < 0.05,
        "worst-case linearization {y_lin} vs simulation {y_sim}"
    );
}

#[test]
fn quadratic_models_add_little_over_wc_linear_on_the_circuit() {
    // The claim under test: given worst-case anchoring + feasibility, the
    // quadratic term does not change the picture materially.
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let theta_nominal = env.operating_range().nominal();

    // Worst-case linear models (the paper's choice).
    let analysis = WcAnalysis::new(&env, WcOptions::default())
        .run(&d0)
        .expect("analysis");
    let linear = LinearizedYield::new(
        analysis.linearizations().to_vec(),
        env.specs().len(),
        10_000,
        5,
    )
    .expect("model");
    let y_lin = linear.estimate(&d0).expect("estimate").value();

    // Diagonal-quadratic models at the nominal point (2n+1 evals per spec).
    let mut quads = Vec::new();
    for spec in 0..env.specs().len() {
        let theta = analysis.worst_case_points()[spec].theta_wc;
        quads.push(
            QuadraticMarginModel::fit(&env, &d0, spec, &theta, &DVec::zeros(env.stat_dim()), 0.2)
                .expect("fit"),
        );
    }
    let _ = theta_nominal;
    let quad = QuadraticYield::new(quads, 10_000, 5).expect("model");
    let y_quad = quad.estimate(&d0).expect("estimate").value();

    let y_sim = mc_verify(&env, &d0, 400, 13)
        .expect("verify")
        .yield_estimate
        .value();

    // Both model classes must bracket the (near-zero) simulated yield; the
    // linear WC models must not be materially worse than the quadratic ones.
    assert!(
        (y_lin - y_sim).abs() <= (y_quad - y_sim).abs() + 0.05,
        "linear {y_lin}, quadratic {y_quad}, simulated {y_sim}"
    );
}

#[test]
fn quadratic_beats_nominal_linear_on_pure_mismatch_shape() {
    // Where quadratic models *do* matter: a pure mismatch ridge with no
    // worst-case anchoring. margin = 1 − (s0 − s1)²/2.
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
    let env = AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "a", "", -5.0, 5.0, 0.0,
        )]))
        .stat_dim(2)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|_, s, _| {
            let z = s[0] - s[1];
            DVec::from_slice(&[1.0 - 0.5 * z * z])
        })
        .build()
        .unwrap();
    let theta = env.operating_range().nominal();
    let d0 = DVec::from_slice(&[0.0]);

    // Truth: pass iff |s0 − s1| ≤ √2 ⇔ |Z| ≤ 1 → ≈ 0.6827.
    let y_sim = mc_verify(&env, &d0, 20_000, 3)
        .unwrap()
        .yield_estimate
        .value();
    assert!((y_sim - 0.6827).abs() < 0.01);

    // Quadratic at nominal: near-exact. (The diagonal Hessian misses the
    // cross term −s0·s1, so it is not perfect — but far better than any
    // single linear model.)
    let q = QuadraticMarginModel::fit(&env, &d0, 0, &theta, &DVec::zeros(2), 0.1).unwrap();
    let y_quad = QuadraticYield::new(vec![q], 20_000, 9)
        .unwrap()
        .estimate(&d0)
        .unwrap()
        .value();

    // Nominal linear: gradient ≈ 0 → the model believes the margin is the
    // constant +1 → yield ≈ 100 %.
    let (_, jac) =
        specwise_wcd::margins_gradient_s(&env, &d0, &DVec::zeros(2), &theta, 0.1).unwrap();
    let lin = specwise_wcd::SpecLinearization {
        spec: 0,
        mirrored: false,
        theta_wc: theta,
        s_wc: DVec::zeros(2),
        d_f: d0.clone(),
        margin_at_anchor: 1.0,
        grad_s: jac.row(0),
        grad_d: DVec::from_slice(&[0.0]),
    };
    let y_nominal_lin = LinearizedYield::new(vec![lin], 1, 20_000, 9)
        .unwrap()
        .estimate(&d0)
        .unwrap()
        .value();

    assert!(
        (y_quad - y_sim).abs() < 0.5 * (y_nominal_lin - y_sim).abs(),
        "quadratic {y_quad} should beat nominal linear {y_nominal_lin} (truth {y_sim})"
    );
}
