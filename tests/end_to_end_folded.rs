//! End-to-end integration test: the Table 1 / Table 5 experiments
//! (folded-cascode opamp, global + local variations) with reduced sample
//! counts.

use specwise::{MismatchAnalysis, OptimizerConfig, YieldOptimizer};
use specwise_ckt::{CircuitEnv, FoldedCascode};

fn quick_config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 2_000;
    cfg.verify_samples = 120;
    cfg.max_iterations = 1;
    cfg
}

#[test]
fn folded_cascode_starts_near_zero_yield_and_improves() {
    let env = FoldedCascode::paper_setup();
    let trace = YieldOptimizer::new(quick_config())
        .run(&env)
        .expect("optimization runs");

    let initial = trace.initial();
    let y0 = initial
        .verified
        .as_ref()
        .expect("verification on")
        .yield_estimate;
    // Paper Table 1: 0 % initial yield, ft and CMRR the main culprits.
    assert!(
        y0.value() < 0.15,
        "initial yield {} should be near zero",
        y0
    );
    assert!(
        initial.nominal_margins[1] < 0.0,
        "ft margin negative initially"
    );
    assert!(
        initial.nominal_margins[2] < 0.0,
        "CMRR margin negative initially"
    );
    assert!(
        initial.bad_per_mille[1] > 900.0,
        "ft nearly all-bad initially"
    );
    assert!(
        initial.bad_per_mille[2] > 900.0,
        "CMRR nearly all-bad initially"
    );
    assert!(initial.nominal_margins[0] > 0.0, "A0 passes initially");
    assert!(initial.nominal_margins[4] > 0.0, "Power passes initially");

    let y1 = trace
        .final_snapshot()
        .verified
        .as_ref()
        .expect("verification on")
        .yield_estimate;
    assert!(
        y1.value() > y0.value() + 0.4,
        "one iteration must lift the yield substantially: {} -> {}",
        y0,
        y1
    );
}

#[test]
fn cmrr_is_the_dominant_mismatch_spec_with_mirror_pair_first() {
    let env = FoldedCascode::paper_setup();
    let mut cfg = quick_config();
    cfg.verify_samples = 0;
    let trace = YieldOptimizer::new(cfg)
        .run(&env)
        .expect("optimization runs");

    let entries = MismatchAnalysis::new().rank_all(&trace.initial().wc_points, 0.05);
    assert!(!entries.is_empty(), "mismatch pairs must be detected");
    let names = env.stat_space().names();
    let top = &entries[0];
    let pair = (names[top.k], names[top.l]);
    // Paper Table 5: CMRR is the mismatch-critical spec; in our circuit the
    // mirror pair m7/m8 dominates (input-pair Vth mismatch is absorbed as
    // offset — see crates/ckt/src/folded.rs tests).
    assert_eq!(env.specs()[top.spec].name(), "CMRR", "top mismatch spec");
    assert!(
        pair == ("vth_m7", "vth_m8") || pair == ("vth_m8", "vth_m7"),
        "top pair should be the mirror pair, got {pair:?}"
    );
    assert!(
        top.measure > 0.3,
        "dominant measure {} should be sizable",
        top.measure
    );
    // Every measure is in [0, 1] and sorted descending.
    for e in &entries {
        assert!((0.0..=1.0).contains(&e.measure));
    }
    for w in entries.windows(2) {
        assert!(w[0].measure >= w[1].measure);
    }
}

#[test]
fn mirrored_models_are_generated_for_cmrr() {
    use specwise_wcd::{WcAnalysis, WcOptions};
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let result = WcAnalysis::new(&env, WcOptions::default())
        .run(&d0)
        .expect("analysis runs");
    // CMRR (spec 2) shows the semidefinite-quadratic mismatch behaviour of
    // the paper's Fig. 1: its linearization must have a mirrored twin.
    let cmrr_models: Vec<_> = result
        .linearizations()
        .iter()
        .filter(|l| l.spec == 2)
        .collect();
    assert!(
        cmrr_models.iter().any(|l| l.mirrored),
        "CMRR should receive a mirrored model (got {} models)",
        cmrr_models.len()
    );
}

#[test]
fn worst_case_corners_are_extreme_for_ft() {
    use specwise_linalg::DVec;
    use specwise_wcd::worst_case_corners;
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let wc = worst_case_corners(&env, &d0, &DVec::zeros(env.stat_dim())).expect("corners");
    // ft is worst at high temperature (mobility degradation).
    let (theta_ft, _) = wc[1];
    assert_eq!(theta_ft.temp_c, 125.0, "ft worst case at the hot corner");
}
