//! Property test of the norm-minimization estimator's ESS guard: on a
//! degenerate shifted proposal (a failure region the search cannot reach,
//! or one so far out that no proposal sample lands in it) the estimator
//! must degrade to the vacuous `[0, 1]` yield interval — never panic and
//! never report a silently-bad point estimate as trustworthy.

use proptest::prelude::*;
use specwise::{estimate_yield, NormMinIs, NormMinOptions, NormMinResult};
use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::DVec;
use specwise_trace::Tracer;

/// margin = b + s0: a healthy linear spec whose failure region the
/// minimum-norm search finds directly.
fn linear_env(b: f64) -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "b", "", 0.0, 20.0, b,
        )]))
        .stat_dim(2)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
        .build()
        .unwrap()
}

/// margin = b everywhere: no failure region at all, and a zero gradient,
/// so the search has nothing to linearize and the proposal stays at the
/// origin.
fn constant_env(b: f64) -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "b", "", 0.0, 20.0, b,
        )]))
        .stat_dim(2)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|d, _, _| DVec::from_slice(&[d[0]]))
        .build()
        .unwrap()
}

/// A cliff: flat margin `b` near the origin (zero gradient, so the
/// linearized search cannot see the cliff), failing only past `s0 <
/// −(b+8)` — unreachable by the unshifted proposal at any realistic
/// sample count.
fn cliff_env(b: f64) -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "b", "", 0.0, 20.0, b,
        )]))
        .stat_dim(2)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(move |d, s, _| {
            let cliff = -(d[0] + 8.0);
            DVec::from_slice(&[if s[0] < cliff { -1.0 } else { d[0] }])
        })
        .build()
        .unwrap()
}

fn run(env: &AnalyticEnv, seed: u64) -> NormMinResult {
    let d = env.design_space().initial();
    estimate_yield(
        &NormMinIs {
            options: NormMinOptions {
                n: 300,
                seed,
                ..NormMinOptions::default()
            },
        },
        env,
        &d,
        &Tracer::disabled(),
    )
    .expect("norm-min verification must not error on degenerate proposals")
}

/// Invariants every outcome must satisfy, guarded or not.
fn assert_sane(r: &NormMinResult) {
    assert!(
        r.failure_probability.is_finite() && (0.0..=1.0).contains(&r.failure_probability),
        "failure probability must be a finite probability, got {}",
        r.failure_probability
    );
    assert!(
        r.yield_value.is_finite() && (0.0..=1.0).contains(&r.yield_value),
        "yield must be a finite probability, got {}",
        r.yield_value
    );
    assert!(
        r.effective_sample_size.is_finite() && r.effective_sample_size >= 0.0,
        "ESS must be finite and non-negative, got {}",
        r.effective_sample_size
    );
    let (lo, hi) = r.yield_interval();
    assert!(
        (0.0..=1.0).contains(&lo) && (0.0..=1.0).contains(&hi) && lo <= hi,
        "interval must be ordered within [0, 1], got [{lo}, {hi}]"
    );
    if r.ess_degraded {
        assert_eq!(
            r.yield_interval(),
            (0.0, 1.0),
            "a tripped guard must widen to the vacuous interval"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn healthy_linear_specs_never_produce_broken_outcomes(
        b in 0.5..4.0f64,
        seed in 0u64..1000,
    ) {
        let r = run(&linear_env(b), seed);
        assert_sane(&r);
    }

    #[test]
    fn unreachable_failure_regions_trip_the_guard(
        b in 0.5..6.0f64,
        seed in 0u64..1000,
    ) {
        let r = run(&constant_env(b), seed);
        assert_sane(&r);
        prop_assert!(
            r.ess_degraded,
            "no failure region at all must trip the ESS guard (ESS {})",
            r.effective_sample_size
        );
        prop_assert_eq!(r.yield_interval(), (0.0, 1.0));
    }

    #[test]
    fn invisible_cliffs_degrade_instead_of_estimating_garbage(
        b in 0.5..6.0f64,
        seed in 0u64..1000,
    ) {
        let r = run(&cliff_env(b), seed);
        assert_sane(&r);
        prop_assert!(
            r.ess_degraded,
            "a cliff the linearization cannot see must trip the guard (ESS {})",
            r.effective_sample_size
        );
    }
}
