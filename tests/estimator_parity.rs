//! Estimator-layer parity: the trait-ported verifiers must be bit-for-bit
//! identical to the pre-refactor `mc_verify_inner` / `importance_verify_inner`
//! loops they replaced.
//!
//! The reference implementations below are frozen copies of the seed code
//! (the exact accumulation order, RNG stream consumption, and exclusion
//! rules), kept here so any future drift in the shared
//! [`estimate_yield`](specwise::estimate_yield) driver or in an
//! estimator's `propose`/`accumulate`/`finalize` split fails loudly with a
//! bit diff instead of silently changing published yields. Checked per
//! opamp: yields, per-spec bad counts, streaming margin moments, yield
//! intervals, simulation counters, and the journal span shapes — on the
//! bare environments and through an `EvalService` at 1 and 4 workers.

use std::sync::Arc;

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise::{
    estimate_yield, importance_verify_with, mc_verify_with, IsOptions, IsResult, McOptions,
    McVerification, MeanShiftIs, MonteCarlo,
};
use specwise_ckt::{CircuitEnv, FiveTransistorOta, FoldedCascode, MillerOpamp, OperatingPoint};
use specwise_exec::{EvalService, Evaluator, ExecConfig};
use specwise_linalg::DVec;
use specwise_stat::{RunningMoments, StandardNormal, YieldEstimate};
use specwise_trace::{Journal, SpanNode, TraceValue, Tracer};
use specwise_wcd::worst_case_corners;

const MC_SAMPLES: usize = 40;
const IS_SAMPLES: usize = 60;
const SEED: u64 = 2001;

/// Frozen copy of the pre-refactor `mc_verify_inner` accumulation loop.
struct ReferenceMc {
    yield_estimate: YieldEstimate,
    per_spec_bad: Vec<usize>,
    per_spec_margins: Vec<RunningMoments>,
    theta_wc: Vec<OperatingPoint>,
    sim_failures: usize,
    degraded_samples: usize,
}

impl ReferenceMc {
    fn yield_interval(&self) -> (f64, f64) {
        let n = self.yield_estimate.total() as f64;
        let low = self.yield_estimate.value();
        let high = (low + self.degraded_samples as f64 / n).min(1.0);
        (low, high)
    }
}

fn corner_groups<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
) -> (Vec<OperatingPoint>, Vec<(OperatingPoint, Vec<usize>)>) {
    let corners = worst_case_corners(env, d, &DVec::zeros(env.stat_dim())).expect("corners");
    let theta_wc: Vec<OperatingPoint> = corners.iter().map(|(t, _)| *t).collect();
    let mut groups: Vec<(OperatingPoint, Vec<usize>)> = Vec::new();
    for (i, t) in theta_wc.iter().enumerate() {
        match groups.iter_mut().find(|(g, _)| g == t) {
            Some((_, specs)) => specs.push(i),
            None => groups.push((*t, vec![i])),
        }
    }
    (theta_wc, groups)
}

fn reference_mc<E: Evaluator + ?Sized>(env: &E, d: &DVec, options: &McOptions) -> ReferenceMc {
    let n_samples = options.n_samples;
    let n_spec = env.specs().len();
    let (theta_wc, groups) = corner_groups(env, d);

    let mut rng = StdRng::seed_from_u64(options.seed);
    let normal = StandardNormal::new();
    let mut samples = Vec::with_capacity(n_samples);
    for _ in 0..n_samples {
        let mut s = DVec::zeros(env.stat_dim());
        normal.fill(&mut rng, s.as_mut_slice());
        samples.push(s);
    }

    let mut per_spec_bad = vec![0usize; n_spec];
    let mut per_spec_margins = vec![RunningMoments::new(); n_spec];
    let mut ok = vec![true; n_samples];
    let mut violated = vec![false; n_samples];
    let mut degraded = vec![false; n_samples];
    let mut sim_failures = 0usize;

    for (theta, specs) in &groups {
        for (j, s) in samples.iter().enumerate() {
            match env.eval_margins(d, s, theta) {
                Ok(margins) if specs.iter().any(|&i| !margins[i].is_finite()) => {
                    sim_failures += 1;
                    degraded[j] = true;
                    for &i in specs {
                        per_spec_bad[i] += 1;
                        if margins[i].is_finite() {
                            per_spec_margins[i].push(margins[i]);
                        }
                    }
                    ok[j] = false;
                }
                Ok(margins) => {
                    for &i in specs {
                        per_spec_margins[i].push(margins[i]);
                        if margins[i] < 0.0 {
                            per_spec_bad[i] += 1;
                            ok[j] = false;
                            violated[j] = true;
                        }
                    }
                }
                Err(e) if e.is_simulation_failure() => {
                    sim_failures += 1;
                    degraded[j] = true;
                    for &i in specs {
                        per_spec_bad[i] += 1;
                    }
                    ok[j] = false;
                }
                Err(e) => panic!("reference MC hit a non-simulation error: {e}"),
            }
        }
    }

    let passed = ok.iter().filter(|&&x| x).count();
    let degraded_samples = (0..n_samples)
        .filter(|&j| degraded[j] && !violated[j])
        .count();
    ReferenceMc {
        yield_estimate: YieldEstimate::from_counts(passed, n_samples),
        per_spec_bad,
        per_spec_margins,
        theta_wc,
        sim_failures,
        degraded_samples,
    }
}

/// Frozen copy of the pre-refactor `importance_verify_inner` loop,
/// including the live-sample short-circuit across corner groups.
struct ReferenceIs {
    failure_probability: f64,
    yield_value: f64,
    std_error: f64,
    effective_sample_size: f64,
    sim_failures: usize,
    degraded_weight: f64,
}

fn reference_is<E: Evaluator + ?Sized>(
    env: &E,
    d: &DVec,
    shift: &DVec,
    options: &IsOptions,
) -> ReferenceIs {
    let n = options.n;
    let (_, groups) = corner_groups(env, d);

    let mut rng = StdRng::seed_from_u64(options.seed);
    let normal = StandardNormal::new();
    let half_mu2 = 0.5 * shift.dot(shift);
    let mut samples = Vec::with_capacity(n);
    let mut weights = Vec::with_capacity(n);
    let mut z = DVec::zeros(env.stat_dim());
    for _ in 0..n {
        normal.fill(&mut rng, z.as_mut_slice());
        let s = &z + shift;
        weights.push((half_mu2 - shift.dot(&s)).exp());
        samples.push(s);
    }

    let mut failed = vec![false; n];
    let mut violated = vec![false; n];
    let mut degraded = vec![false; n];
    let mut sim_failures = 0usize;
    for (theta, specs) in &groups {
        let live: Vec<usize> = (0..n).filter(|&j| !failed[j]).collect();
        if live.is_empty() {
            break;
        }
        for &j in &live {
            match env.eval_margins(d, &samples[j], theta) {
                Ok(margins) if specs.iter().any(|&i| !margins[i].is_finite()) => {
                    sim_failures += 1;
                    degraded[j] = true;
                    failed[j] = true;
                }
                Ok(margins) => {
                    if specs.iter().any(|&i| margins[i] < 0.0) {
                        failed[j] = true;
                        violated[j] = true;
                    }
                }
                Err(e) if e.is_simulation_failure() => {
                    sim_failures += 1;
                    degraded[j] = true;
                    failed[j] = true;
                }
                Err(e) => panic!("reference IS hit a non-simulation error: {e}"),
            }
        }
    }

    let mut fail_w = 0.0;
    let mut fail_w2 = 0.0;
    let mut degraded_w = 0.0;
    for j in 0..n {
        if failed[j] {
            fail_w += weights[j];
            fail_w2 += weights[j] * weights[j];
        }
        if degraded[j] && !violated[j] {
            degraded_w += weights[j];
        }
    }

    let nf = n as f64;
    let p_fail = (fail_w / nf).clamp(0.0, 1.0);
    let var = ((fail_w2 / nf) - p_fail * p_fail).max(0.0) / nf;
    let ess = if fail_w2 > 0.0 {
        fail_w * fail_w / fail_w2
    } else {
        0.0
    };
    ReferenceIs {
        failure_probability: p_fail,
        yield_value: 1.0 - p_fail,
        std_error: var.sqrt(),
        effective_sample_size: ess,
        sim_failures,
        degraded_weight: (degraded_w / nf).clamp(0.0, 1.0),
    }
}

fn assert_mc_matches(got: &McVerification, want: &ReferenceMc, label: &str) {
    assert_eq!(
        got.yield_estimate.value().to_bits(),
        want.yield_estimate.value().to_bits(),
        "{label}: yield bits"
    );
    assert_eq!(
        got.yield_estimate.passed(),
        want.yield_estimate.passed(),
        "{label}: passed count"
    );
    assert_eq!(
        got.yield_estimate.total(),
        want.yield_estimate.total(),
        "{label}: total count"
    );
    assert_eq!(got.per_spec_bad, want.per_spec_bad, "{label}: per_spec_bad");
    assert_eq!(got.theta_wc, want.theta_wc, "{label}: theta_wc");
    assert_eq!(got.sim_failures, want.sim_failures, "{label}: sim_failures");
    assert_eq!(
        got.degraded_samples, want.degraded_samples,
        "{label}: degraded_samples"
    );
    let (glo, ghi) = got.yield_interval();
    let (wlo, whi) = want.yield_interval();
    assert_eq!(glo.to_bits(), wlo.to_bits(), "{label}: interval low");
    assert_eq!(ghi.to_bits(), whi.to_bits(), "{label}: interval high");
    for (i, (g, w)) in got
        .per_spec_margins
        .iter()
        .zip(&want.per_spec_margins)
        .enumerate()
    {
        assert_eq!(g.count(), w.count(), "{label}: margin count of spec {i}");
        assert_eq!(
            g.mean().to_bits(),
            w.mean().to_bits(),
            "{label}: margin mean of spec {i}"
        );
        assert_eq!(
            g.std_dev().to_bits(),
            w.std_dev().to_bits(),
            "{label}: margin std-dev of spec {i}"
        );
    }
}

fn assert_is_matches(got: &IsResult, want: &ReferenceIs, label: &str) {
    assert_eq!(
        got.failure_probability.to_bits(),
        want.failure_probability.to_bits(),
        "{label}: failure probability bits"
    );
    assert_eq!(
        got.yield_value.to_bits(),
        want.yield_value.to_bits(),
        "{label}: yield bits"
    );
    assert_eq!(
        got.std_error.to_bits(),
        want.std_error.to_bits(),
        "{label}: std error bits"
    );
    assert_eq!(
        got.effective_sample_size.to_bits(),
        want.effective_sample_size.to_bits(),
        "{label}: ESS bits"
    );
    assert_eq!(got.sim_failures, want.sim_failures, "{label}: sim_failures");
    assert_eq!(
        got.degraded_weight.to_bits(),
        want.degraded_weight.to_bits(),
        "{label}: degraded weight bits"
    );
}

/// A small deterministic shift toward each spec's failure side — enough
/// for the IS weight arithmetic to be exercised without needing a true
/// worst-case point.
fn test_shift(dim: usize) -> DVec {
    DVec::from_fn(dim, |i| 0.4 + 0.1 * (i % 3) as f64)
}

fn check_env<E: CircuitEnv + Sync>(env: &E, label: &str) {
    let d = Evaluator::design_space(env).initial();
    let mc_options = McOptions {
        n_samples: MC_SAMPLES,
        seed: SEED,
    };
    let is_options = IsOptions {
        n: IS_SAMPLES,
        seed: SEED,
    };
    let shift = test_shift(Evaluator::stat_dim(env));
    let want_mc = reference_mc(env, &d, &mc_options);
    let want_is = reference_is(env, &d, &shift, &is_options);

    // Bare environment: the ports must match reference bits *and* spend
    // exactly as many simulations.
    let sims_before = Evaluator::sim_count(env);
    let got = mc_verify_with(env, &d, &mc_options).expect("MC verifies");
    let mc_sims = Evaluator::sim_count(env) - sims_before;
    assert_mc_matches(&got, &want_mc, &format!("{label} bare MC"));

    let sims_before = Evaluator::sim_count(env);
    let got = importance_verify_with(env, &d, &shift, &is_options).expect("IS verifies");
    let is_sims = Evaluator::sim_count(env) - sims_before;
    assert_is_matches(&got, &want_is, &format!("{label} bare IS"));

    // Through the EvalService at 1 and 4 workers: identical results and
    // identical simulation effort regardless of dispatch.
    for workers in [1usize, 4] {
        let svc = EvalService::new(
            env,
            ExecConfig::default()
                .with_workers(workers)
                .with_cache_capacity(0),
        );
        let sims_before = svc.sim_count();
        let got = mc_verify_with(&svc, &d, &mc_options).expect("MC verifies via service");
        assert_eq!(
            svc.sim_count() - sims_before,
            mc_sims,
            "{label}: MC sim count at {workers} workers"
        );
        assert_mc_matches(&got, &want_mc, &format!("{label} MC {workers} workers"));

        let sims_before = svc.sim_count();
        let got =
            importance_verify_with(&svc, &d, &shift, &is_options).expect("IS verifies via service");
        assert_eq!(
            svc.sim_count() - sims_before,
            is_sims,
            "{label}: IS sim count at {workers} workers"
        );
        assert_is_matches(&got, &want_is, &format!("{label} IS {workers} workers"));
    }
}

#[test]
fn miller_ports_match_pre_refactor_bits() {
    check_env(&MillerOpamp::paper_setup(), "miller");
}

#[test]
fn folded_cascode_ports_match_pre_refactor_bits() {
    check_env(&FoldedCascode::paper_setup(), "folded");
}

#[test]
fn five_transistor_ota_ports_match_pre_refactor_bits() {
    check_env(&FiveTransistorOta::default_setup(), "ota");
}

fn single_span(journal: &Arc<Journal>, name: &str) -> SpanNode {
    let forest = journal.span_tree();
    assert_eq!(forest.len(), 1, "exactly one top-level span");
    let root = forest.into_iter().next().expect("root span");
    assert_eq!(root.span.name, name);
    root
}

fn attr_f64(node: &SpanNode, key: &str) -> f64 {
    match node.span.attr(key) {
        Some(TraceValue::F64(v)) => *v,
        other => panic!("attribute {key} should be an f64, got {other:?}"),
    }
}

/// The shared driver must keep the exact pre-refactor journal span shapes:
/// same span names, same attribute keys in the same order, same values.
#[test]
fn journal_spans_keep_pre_refactor_shapes() {
    let env = MillerOpamp::paper_setup();
    let d = Evaluator::design_space(&env).initial();
    let mc_options = McOptions {
        n_samples: MC_SAMPLES,
        seed: SEED,
    };
    let want_mc = reference_mc(&env, &d, &mc_options);

    let journal = Arc::new(Journal::in_memory());
    let got = estimate_yield(
        &MonteCarlo {
            options: mc_options,
        },
        &env,
        &d,
        &Tracer::new(Arc::clone(&journal)),
    )
    .expect("traced MC verifies");
    assert_mc_matches(&got, &want_mc, "traced MC");

    let mc = single_span(&journal, "mc_verify");
    let keys: Vec<&str> = mc.span.attrs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "n_samples",
            "passed",
            "yield",
            "sim_failures",
            "degraded_samples",
            "yield_low",
            "yield_high",
            "per_spec_bad",
        ],
        "mc_verify span attribute shape"
    );
    assert_eq!(
        mc.span.attr("n_samples"),
        Some(&TraceValue::U64(MC_SAMPLES as u64))
    );
    assert_eq!(
        attr_f64(&mc, "yield").to_bits(),
        want_mc.yield_estimate.value().to_bits()
    );
    assert!(mc.span.counter("sims").is_some_and(|s| s > 0));

    let shift = test_shift(Evaluator::stat_dim(&env));
    let is_options = IsOptions {
        n: IS_SAMPLES,
        seed: SEED,
    };
    let want_is = reference_is(&env, &d, &shift, &is_options);

    let journal = Arc::new(Journal::in_memory());
    let got = estimate_yield(
        &MeanShiftIs {
            shift: shift.clone(),
            options: is_options,
        },
        &env,
        &d,
        &Tracer::new(Arc::clone(&journal)),
    )
    .expect("traced IS verifies");
    assert_is_matches(&got, &want_is, "traced IS");

    let is = single_span(&journal, "is_verify");
    let keys: Vec<&str> = is.span.attrs.iter().map(|(k, _)| k.as_str()).collect();
    assert_eq!(
        keys,
        [
            "n",
            "failure_probability",
            "std_error",
            "variance",
            "effective_sample_size",
            "sim_failures",
            "yield_low",
            "yield_high",
        ],
        "is_verify span attribute shape"
    );
    assert_eq!(
        attr_f64(&is, "failure_probability").to_bits(),
        want_is.failure_probability.to_bits()
    );
    assert!(is.span.counter("sims").is_some_and(|s| s > 0));
}
