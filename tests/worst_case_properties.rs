//! Property-based tests of the worst-case machinery on randomly generated
//! linear problems, where every quantity has a closed form.

use proptest::prelude::*;
use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::DVec;
use specwise_wcd::{WcOptions, WorstCaseSearch};

/// Builds `margin = offset + g·ŝ` with the given gradient.
fn linear_env(offset: f64, grad: Vec<f64>) -> AnalyticEnv {
    let n = grad.len();
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "off", "", -100.0, 100.0, 0.0,
        )]))
        .stat_dim(n)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(move |d, s, _| {
            let dot: f64 = grad.iter().zip(s.iter()).map(|(a, b)| a * b).sum();
            DVec::from_slice(&[d[0] + offset + dot])
        })
        .build()
        .unwrap()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    #[test]
    fn worst_case_distance_matches_point_to_plane_formula(
        offset in 0.2..4.0f64,
        grad in prop::collection::vec(-2.0..2.0f64, 2..6),
    ) {
        let gnorm: f64 = grad.iter().map(|g| g * g).sum::<f64>().sqrt();
        prop_assume!(gnorm > 0.3);
        let env = linear_env(offset, grad.clone());
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[0.0]), 0, &theta)
            .unwrap();
        let expected = offset / gnorm;
        if expected < WcOptions::default().beta_max - 0.5 {
            prop_assert!(
                (wc.beta_wc - expected).abs() < 2e-2 * (1.0 + expected),
                "beta {} vs {}", wc.beta_wc, expected
            );
            // The worst-case point is anti-parallel to the gradient.
            let dot = wc.s_wc.iter().zip(grad.iter()).map(|(a, b)| a * b).sum::<f64>();
            prop_assert!(dot < 0.0);
            // And lies (approximately) on the spec boundary.
            prop_assert!(wc.margin_at_wc.abs() < 0.05 * (1.0 + offset));
        }
    }

    #[test]
    fn violated_specs_have_negative_beta(
        offset in -4.0..-0.2f64,
        grad in prop::collection::vec(0.5..2.0f64, 2..5),
    ) {
        let env = linear_env(offset, grad);
        let theta = env.operating_range().nominal();
        let wc = WorstCaseSearch::new(WcOptions::default())
            .run(&env, &DVec::from_slice(&[0.0]), 0, &theta)
            .unwrap();
        prop_assert!(wc.beta_wc < 0.0, "beta {}", wc.beta_wc);
        prop_assert!(wc.nominal_margin < 0.0);
    }

    #[test]
    fn mismatch_measure_bounds_hold_for_random_points(
        s in prop::collection::vec(-3.0..3.0f64, 3..8),
        beta in -5.0..5.0f64,
    ) {
        let s_wc = DVec::from_slice(&s);
        prop_assume!(s_wc.norm_inf() > 1e-6);
        let analysis = specwise::MismatchAnalysis::new();
        for k in 0..s.len() {
            for l in (k + 1)..s.len() {
                let m = analysis.measure(&s_wc, beta, k, l);
                prop_assert!((0.0..=1.0).contains(&m), "m = {m}");
            }
        }
    }

    #[test]
    fn linearized_yield_matches_gaussian_tail(
        margin_sigma in 0.3..3.0f64,
        mean in -2.0..2.0f64,
    ) {
        // One linear model: margin = mean + margin_sigma·ŝ₀ — the yield is
        // Φ(mean/margin_sigma).
        use specwise_wcd::SpecLinearization;
        let lin = SpecLinearization {
            spec: 0,
            mirrored: false,
            theta_wc: specwise_ckt::OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::from_slice(&[-mean / margin_sigma]),
            d_f: DVec::from_slice(&[0.0]),
            margin_at_anchor: 0.0,
            grad_s: DVec::from_slice(&[margin_sigma]),
            grad_d: DVec::from_slice(&[0.0]),
        };
        let model = specwise::LinearizedYield::new(vec![lin], 1, 30_000, 5).unwrap();
        let y = model.estimate(&DVec::from_slice(&[0.0])).unwrap().value();
        let expected = specwise_stat::std_normal_cdf(mean / margin_sigma);
        prop_assert!((y - expected).abs() < 0.02, "y {y} vs {expected}");
    }
}
