//! Chaos acceptance test: the Miller Table 6 flow must complete under a 10%
//! injected simulation-failure rate, and when per-point retries absorb every
//! fault the final design must be bit-identical to the fault-free run.
//! Injected worker panics must never abort the process.

use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::MillerOpamp;
use specwise_exec::{EvalService, ExecConfig, RetryPolicy};
use specwise_harden::{FaultConfig, FaultInjector, FaultKind};

fn quick_config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 2_000;
    cfg.verify_samples = 150;
    cfg.max_iterations = 1;
    cfg
}

fn exec_config() -> ExecConfig {
    // Same-point retries: a transient fault clears on the second attempt
    // and the clean evaluation is exactly what the fault-free run computed.
    ExecConfig::default()
        .with_workers(4)
        .with_cache_capacity(0)
        .with_retry(RetryPolicy {
            max_retries: 3,
            perturb: 0.0,
        })
}

#[test]
fn miller_flow_under_ten_percent_faults_matches_fault_free_run() {
    // The fault injector must observe every evaluation point, so it
    // declines the adjoint and batched shortcuts and routes everything
    // through the scalar per-point path (see `FaultInjector`'s
    // `CircuitEnv` impl). Pin the fault-free reference to the same
    // finite-difference path so the two runs compute identical floats —
    // this test is about retry absorption, not gradient backends.
    specwise_wcd::set_grad_override(Some(specwise_wcd::GradBackend::Fd));

    // Fault-free reference, through the same evaluation engine so the two
    // runs differ only in the injected faults.
    let clean_env = MillerOpamp::paper_setup();
    let clean_svc = EvalService::new(&clean_env, exec_config());
    let clean = YieldOptimizer::new(quick_config())
        .run(&clean_svc)
        .expect("fault-free run completes");

    // Chaotic run: 10% of evaluation points fault on first contact, split
    // between simulator non-convergence and worker panics. Faults are
    // transient and short-circuit *before* the wrapped environment runs, so
    // the retry's clean attempt replays the exact fault-free sim stream.
    let env = MillerOpamp::paper_setup();
    let faults = FaultConfig::new(0x5EC5, 0.10)
        .with_kinds(&[FaultKind::NonConvergence, FaultKind::WorkerPanic]);
    let inj = FaultInjector::new(&env, faults);
    let svc = EvalService::new(&inj, exec_config());

    // Injected panics are noisy by design; keep CI logs readable while
    // still asserting they fired and were contained.
    let prev_hook = std::panic::take_hook();
    std::panic::set_hook(Box::new(|_| {}));
    let chaotic = YieldOptimizer::new(quick_config()).run(&svc);
    std::panic::set_hook(prev_hook);

    // The process is still alive here: every injected panic was contained.
    let chaotic = chaotic.expect("chaotic run completes");
    let injected = inj.report();
    assert!(
        injected.count(FaultKind::NonConvergence) > 0,
        "non-convergence faults must fire at 10% over a full flow"
    );
    assert!(
        injected.count(FaultKind::WorkerPanic) > 0,
        "worker panics must fire at 10% over a full flow"
    );
    let report = svc.report();
    assert_eq!(report.panics_caught, injected.count(FaultKind::WorkerPanic));
    assert_eq!(
        report.sim_failures, 0,
        "retries must absorb every transient fault"
    );
    assert_eq!(report.recovered, injected.total());

    // Retries absorbed everything, so the flow saw identical numbers: the
    // final design and both yield estimates are bit-identical.
    assert_eq!(
        clean.final_design().as_slice(),
        chaotic.final_design().as_slice(),
        "final design must be bit-identical to the fault-free run"
    );
    for (c, f) in clean.snapshots().iter().zip(chaotic.snapshots()) {
        assert_eq!(c.label, f.label);
        assert_eq!(
            c.estimated_yield.value().to_bits(),
            f.estimated_yield.value().to_bits(),
            "estimated yield at {}",
            c.label
        );
        match (&c.verified, &f.verified) {
            (Some(a), Some(b)) => assert_eq!(
                a.yield_estimate.value().to_bits(),
                b.yield_estimate.value().to_bits(),
                "verified yield at {}",
                c.label
            ),
            (None, None) => {}
            _ => panic!("verification presence differs at {}", c.label),
        }
    }
}
