//! Tests of the paper's Sec. 4 variance transform: working in the
//! standardized space `ŝ ~ N(0, I)` with the design-dependent `G(d)`
//! applied inside the performance function leaves the yield invariant
//! (Eq. 12, `Y(d) = Ŷ(d)`), while correctly exposing the
//! variance-reduction channel to the optimizer.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::{DMat, DVec};
use specwise_stat::{std_normal_cdf, Mvn, StandardNormal, YieldEstimate};

/// Margin in the *physical* space: `m = d − s_phys`, with
/// `s_phys ~ N(0, σ(d)²)`, `σ(d) = 2/√d` (Pelgrom-style).
fn sigma(d: f64) -> f64 {
    2.0 / d.sqrt()
}

fn env() -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "d", "", 0.5, 50.0, 2.0,
        )]))
        .stat_dim(1)
        .spec(Spec::new("m", "", SpecKind::LowerBound, 0.0))
        // Standardized formulation (paper Eq. 14): the σ(d)·ŝ product is
        // applied inside the performance function.
        .performances(|d, s, _| DVec::from_slice(&[d[0] - sigma(d[0]) * s[0]]))
        .build()
        .unwrap()
}

/// Yield in the physical space by direct sampling of `s ~ N(0, σ²)`.
fn physical_yield(d: f64, n: usize, seed: u64) -> f64 {
    let mvn = Mvn::from_sigmas(DVec::zeros(1), &DVec::from_slice(&[sigma(d)])).unwrap();
    let mut rng = StdRng::seed_from_u64(seed);
    let passed = (0..n)
        .filter(|_| {
            let s_phys = mvn.sample(&mut rng);
            d - s_phys[0] >= 0.0
        })
        .count();
    passed as f64 / n as f64
}

/// Yield in the standardized space through the environment.
fn standardized_yield(d: f64, n: usize, seed: u64) -> f64 {
    let e = env();
    let theta = e.operating_range().nominal();
    let normal = StandardNormal::new();
    let mut rng = StdRng::seed_from_u64(seed);
    let trials = (0..n).map(|_| {
        let s_hat = DVec::from_slice(&[normal.sample(&mut rng)]);
        e.eval_margins(&DVec::from_slice(&[d]), &s_hat, &theta)
            .unwrap()[0]
            >= 0.0
    });
    YieldEstimate::from_trials(trials).value()
}

#[test]
fn standardized_and_physical_yields_agree() {
    // Eq. 12: the two formulations integrate the same probability mass.
    for d in [1.0, 2.0, 8.0] {
        let analytic = std_normal_cdf(d / sigma(d));
        let phys = physical_yield(d, 60_000, 11);
        let std = standardized_yield(d, 60_000, 13);
        assert!(
            (phys - analytic).abs() < 0.01,
            "physical {phys} vs analytic {analytic} at d={d}"
        );
        assert!(
            (std - analytic).abs() < 0.01,
            "standardized {std} vs analytic {analytic} at d={d}"
        );
    }
}

#[test]
fn variance_reduction_channel_visible_to_design_gradient() {
    // ∂margin/∂d at a fixed ŝ ≠ 0 includes the σ'(d)·ŝ term — the channel
    // the paper's C(d) treatment exposes. Margin = d − 2·d^{−1/2}·ŝ, so
    // ∂margin/∂d = 1 + d^{−3/2}·ŝ.
    let e = env();
    let theta = e.operating_range().nominal();
    let d = DVec::from_slice(&[4.0]);
    let s_hat = DVec::from_slice(&[1.5]);
    let (_, jac) = specwise_wcd::margins_gradient_d(&e, &d, &s_hat, &theta, 1e-6).unwrap();
    let expected = 1.0 + 4.0f64.powf(-1.5) * 1.5;
    assert!(
        (jac[(0, 0)] - expected).abs() < 1e-3,
        "design gradient {} should include the variance term {expected}",
        jac[(0, 0)]
    );
    // At ŝ = 0 the channel vanishes — exactly why nominal-anchored models
    // cannot see variance reduction.
    let (_, jac0) =
        specwise_wcd::margins_gradient_d(&e, &d, &DVec::zeros(1), &theta, 1e-6).unwrap();
    assert!((jac0[(0, 0)] - 1.0).abs() < 1e-3);
}

#[test]
fn cholesky_factor_reproduces_covariance_in_samples() {
    // The G·Gᵀ = C machinery behind Eq. 11 for a correlated case.
    let cov = DMat::from_rows(&[&[4.0, 1.2], &[1.2, 2.0]]).unwrap();
    let mvn = Mvn::new(DVec::zeros(2), &cov).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let n = 50_000;
    let mut acc = [[0.0f64; 2]; 2];
    for _ in 0..n {
        let s = mvn.sample(&mut rng);
        for i in 0..2 {
            for j in 0..2 {
                acc[i][j] += s[i] * s[j];
            }
        }
    }
    for i in 0..2 {
        for j in 0..2 {
            let emp = acc[i][j] / n as f64;
            assert!(
                (emp - cov[(i, j)]).abs() < 0.1,
                "cov[{i}][{j}] = {emp} vs {}",
                cov[(i, j)]
            );
        }
    }
}
