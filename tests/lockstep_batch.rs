//! Lockstep-batch parity: the sample-major batched Newton path must be
//! bit-identical to the per-sample scalar loop at any batch width and any
//! worker count.
//!
//! Both tests mutate the `SPECWISE_BATCH` knob, so they serialize on a
//! process-wide lock and use a fresh environment per variant (identical
//! cold warm-start state on every path).

use std::sync::{Arc, Mutex};

use specwise_ckt::{CktError, OperatingPoint};
use specwise_exec::{EvalPoint, EvalService, Evaluator, ExecConfig};
use specwise_linalg::DVec;

static BATCH_KNOB: Mutex<()> = Mutex::new(());

/// Raw `CircuitEnv` access lives in its own module: importing both
/// `CircuitEnv` and `Evaluator` into one scope makes every method call on
/// an environment ambiguous (the blanket `Evaluator` impl mirrors the
/// `CircuitEnv` method names).
mod raw {
    use rand::{Rng, SeedableRng};
    use specwise_ckt::{CircuitEnv, CktError, MillerOpamp, OperatingPoint};
    use specwise_linalg::DVec;

    pub(super) fn fresh() -> MillerOpamp {
        MillerOpamp::paper_setup()
    }

    pub(super) fn design(env: &MillerOpamp) -> DVec {
        env.design_space().initial()
    }

    /// Seeded `(ŝ, θ)` Monte-Carlo-style sample points: |ŝ| ≤ 2, θ ∈ Θ.
    pub(super) fn sample_points(
        env: &MillerOpamp,
        n: usize,
        seed: u64,
    ) -> Vec<(DVec, OperatingPoint)> {
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let (t_lo, t_hi) = env.operating_range().temp_bounds();
        let (v_lo, v_hi) = env.operating_range().vdd_bounds();
        (0..n)
            .map(|_| {
                let s: DVec = (0..env.stat_dim())
                    .map(|_| rng.gen_range(-2.0..2.0))
                    .collect();
                let theta =
                    OperatingPoint::new(rng.gen_range(t_lo..t_hi), rng.gen_range(v_lo..v_hi));
                (s, theta)
            })
            .collect()
    }

    /// The per-sample scalar loop the batched path must reproduce.
    pub(super) fn scalar_loop(
        env: &MillerOpamp,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Vec<Result<DVec, CktError>> {
        points
            .iter()
            .map(|(s, theta)| env.eval_margins(d, s, theta))
            .collect()
    }

    pub(super) fn batched(
        env: &MillerOpamp,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        env.eval_margins_samples(d, points)
    }
}

fn assert_bits_equal(got: &[Result<DVec, CktError>], want: &[Result<DVec, CktError>], label: &str) {
    assert_eq!(got.len(), want.len(), "{label}: result count");
    for (i, (g, w)) in got.iter().zip(want).enumerate() {
        match (g, w) {
            (Ok(a), Ok(b)) => {
                assert_eq!(a.len(), b.len(), "{label}: sample {i} margin count");
                for (j, (x, y)) in a.iter().zip(b.iter()).enumerate() {
                    assert_eq!(
                        x.to_bits(),
                        y.to_bits(),
                        "{label}: sample {i} margin {j}: {x} vs {y}"
                    );
                }
            }
            (Err(a), Err(b)) => {
                assert_eq!(
                    format!("{a:?}"),
                    format!("{b:?}"),
                    "{label}: sample {i} error"
                );
            }
            _ => panic!("{label}: sample {i} Ok/Err disagreement"),
        }
    }
}

/// Every lockstep width — chunk-aligned or not, wider than the sample set
/// or not — reproduces the scalar loop bit-for-bit on the Miller deck.
#[test]
fn batched_newton_is_bit_identical_at_any_width() {
    let _guard = BATCH_KNOB.lock().unwrap();

    let reference = {
        std::env::set_var("SPECWISE_BATCH", "1");
        let env = raw::fresh();
        let d = raw::design(&env);
        let points = raw::sample_points(&env, 24, 0xBA7C);
        assert!(
            raw::batched(&env, &d, &points).is_none(),
            "width 1 must disable the batched path"
        );
        raw::scalar_loop(&env, &d, &points)
    };
    assert!(
        reference.iter().filter(|r| r.is_ok()).count() >= 20,
        "sample set must be dominated by convergent points"
    );

    for width in [2_usize, 3, 5, 24, 64] {
        std::env::set_var("SPECWISE_BATCH", width.to_string());
        let env = raw::fresh();
        let d = raw::design(&env);
        let points = raw::sample_points(&env, 24, 0xBA7C);
        let got = raw::batched(&env, &d, &points).expect("batched path engages for width > 1");
        assert_bits_equal(&got, &reference, &format!("width {width}"));
    }
    std::env::remove_var("SPECWISE_BATCH");
}

/// The `EvalService` dispatch seen by Monte-Carlo verification: the
/// parallel scalar path at any worker count and the batched sample path at
/// any width all produce identical bits.
#[test]
fn service_batch_matches_scalar_at_any_worker_count() {
    let _guard = BATCH_KNOB.lock().unwrap();

    let config = |workers: usize| {
        ExecConfig::default()
            .with_workers(workers)
            .with_cache_capacity(0)
    };
    let eval_points = |d: &Arc<DVec>, points: &[(DVec, OperatingPoint)]| -> Vec<EvalPoint> {
        points
            .iter()
            .map(|(s, theta)| EvalPoint::new(Arc::clone(d), s.clone(), *theta))
            .collect()
    };

    // Reference: scalar path, single worker.
    std::env::set_var("SPECWISE_BATCH", "1");
    let env = raw::fresh();
    let d = Arc::new(raw::design(&env));
    let points = raw::sample_points(&env, 16, 0x10C5);
    let svc = EvalService::new(&env, config(1));
    assert!(
        svc.eval_margins_samples(&d, &points).is_none(),
        "the service must propagate the disabled batched path"
    );
    let reference = svc.eval_margins_batch(&eval_points(&d, &points));

    // Scalar path, parallel workers.
    let env = raw::fresh();
    let svc = EvalService::new(&env, config(4));
    let got = svc.eval_margins_batch(&eval_points(&d, &points));
    assert_bits_equal(&got, &reference, "scalar 4 workers");

    // Batched sample path at several widths, both worker counts.
    for (width, workers) in [(2, 1), (8, 1), (8, 4), (64, 4)] {
        std::env::set_var("SPECWISE_BATCH", width.to_string());
        let env = raw::fresh();
        let svc = EvalService::new(&env, config(workers));
        let got = svc
            .eval_margins_samples(&d, &points)
            .expect("batched path engages for width > 1");
        assert_bits_equal(
            &got,
            &reference,
            &format!("width {width}, {workers} workers"),
        );
    }
    std::env::remove_var("SPECWISE_BATCH");
}
