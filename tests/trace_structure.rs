//! Regression test: a traced optimizer run produces the span hierarchy of
//! the paper's Fig. 6 flow — feasibility search, per-spec worst-case
//! analysis, spec-wise linearization, optimizer iterations with constraint
//! setup / coordinate search / feasibility line search, and Monte-Carlo
//! verification — with the simulation effort attributed to the spans.

use std::sync::Arc;

use specwise::{Journal, OptimizerConfig, Tracer, YieldOptimizer};
use specwise_ckt::{CircuitEnv, MillerOpamp};
use specwise_trace::{SpanNode, TraceValue};

fn traced_quick_run(journal: &Arc<Journal>) -> SpanNode {
    let env = MillerOpamp::paper_setup();
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 500;
    cfg.verify_samples = 50;
    cfg.max_iterations = 1;
    YieldOptimizer::new(cfg)
        .with_tracer(Tracer::new(Arc::clone(journal)))
        .run(&env)
        .expect("optimization runs");

    let forest = journal.span_tree();
    assert_eq!(forest.len(), 1, "exactly one top-level span");
    forest.into_iter().next().expect("root span")
}

#[test]
fn traced_run_matches_fig6_span_hierarchy() {
    let journal = Arc::new(Journal::in_memory());
    let root = traced_quick_run(&journal);

    // Top level: the run span wraps the whole Fig. 6 loop.
    assert_eq!(root.span.name, "run");
    let children = root.child_names();
    assert!(
        children.starts_with(&["feasible_start", "wc_analysis", "mc_verify", "iteration"]),
        "run children should follow the Fig. 6 order, got {children:?}"
    );

    // Worst-case analysis: corner search, then one (wcd_spec, linearize)
    // pair per specification of the Miller environment.
    let env = MillerOpamp::paper_setup();
    let n_specs = env.specs().len();
    let wc = root.find("wc_analysis").expect("wc_analysis span");
    let wc_children = wc.child_names();
    assert_eq!(wc_children[0], "corners");
    assert_eq!(
        wc_children.iter().filter(|n| **n == "wcd_spec").count(),
        n_specs,
        "one wcd_spec span per spec"
    );
    assert_eq!(
        wc_children.iter().filter(|n| **n == "linearize").count(),
        n_specs,
        "one linearize span per spec"
    );

    // Every wcd_spec span records the Eq. 2 / Eq. 8 worst-case data.
    for node in &wc.children {
        if node.span.name != "wcd_spec" {
            continue;
        }
        assert!(node.span.attr("spec").is_some());
        assert!(node.span.attr("name").is_some());
        assert!(node.span.attr("beta_wc").is_some());
        assert!(node.span.attr("converged").is_some());
        match node.span.attr("theta_wc") {
            Some(TraceValue::List(theta)) => assert_eq!(theta.len(), 2, "theta = (temp, vdd)"),
            other => panic!("theta_wc should be a list, got {other:?}"),
        }
        match node.span.attr("s_wc") {
            Some(TraceValue::List(s)) => assert_eq!(s.len(), env.stat_dim()),
            other => panic!("s_wc should be a list, got {other:?}"),
        }
    }

    // The iteration span wraps constraint setup, the Ȳ coordinate search,
    // the Eq. 23 feasibility line search and the re-linearization.
    let iter = root.find("iteration").expect("iteration span");
    let iter_children = iter.child_names();
    assert!(
        iter_children.starts_with(&["constraints", "coordinate_search"]),
        "iteration children should start with constraints + search, got {iter_children:?}"
    );
    assert!(iter_children.contains(&"wc_analysis"), "re-linearization");
    assert!(iter.span.attr("accepted").is_some());

    // MC verification spans carry sample counts and the yield estimate.
    let mc = root.find("mc_verify").expect("mc_verify span");
    assert_eq!(mc.span.attr("n_samples"), Some(&TraceValue::U64(50)));
    assert!(mc.span.attr("yield").is_some());
    assert!(mc.span.attr("sim_failures").is_some());
    assert!(mc.span.counter("sims").is_some_and(|s| s > 0));
}

#[test]
fn run_span_absorbs_simulation_effort_counters() {
    let journal = Arc::new(Journal::in_memory());
    let root = traced_quick_run(&journal);

    // The run span absorbs the SimCounter totals: overall effort plus the
    // per-phase attribution used by the paper's Table 7 effort breakdown.
    let total = root.span.counter("sims").expect("total sims counter");
    assert!(total > 0);
    let per_phase: u64 = root
        .span
        .counters
        .iter()
        .filter(|(k, _)| k.starts_with("sims_"))
        .map(|(_, v)| *v)
        .sum();
    assert_eq!(per_phase, total, "phase attribution must cover every sim");
    for key in ["sims_feasibility", "sims_wcd", "sims_linearization"] {
        assert!(
            root.span.counter(key).is_some_and(|v| v > 0),
            "expected counter {key} on the run span, got {:?}",
            root.span.counters
        );
    }

    // Child spans attribute their own sims; each child's count is bounded
    // by the run total.
    let wc = root.find("wc_analysis").expect("wc_analysis span");
    for node in &wc.children {
        if let Some(sims) = node.span.counter("sims") {
            assert!(sims <= total);
        }
    }
}

#[test]
fn traced_and_untraced_runs_agree() {
    let env = MillerOpamp::paper_setup();
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 500;
    cfg.verify_samples = 50;
    cfg.max_iterations = 1;

    let plain = YieldOptimizer::new(cfg).run(&env).expect("untraced run");
    let journal = Arc::new(Journal::in_memory());
    let env2 = MillerOpamp::paper_setup();
    let traced = YieldOptimizer::new(cfg)
        .with_tracer(Tracer::new(Arc::clone(&journal)))
        .run(&env2)
        .expect("traced run");

    // Tracing is pure observation: identical designs and sample counts.
    assert_eq!(plain.final_design(), traced.final_design());
    assert_eq!(plain.total_sims, traced.total_sims);
    assert!(!journal.is_empty());
}
