//! Deterministic demonstrations of the paper's two ablation mechanisms
//! (Tables 3 and 4) on an analytic mismatch problem where the ground truth
//! is known exactly — complementing the circuit-level ablation runs in
//! `examples/ablations.rs` and the `tables` harness.
//!
//! The problem: spec `quad` has margin `1 − ((s0 − s1)/√area)²` — a
//! mismatch ridge whose width grows with the "area" design parameter
//! (Pelgrom-style variance reduction). Spec `lin` needs the `bias`
//! parameter raised. Constraint: `area + bias ≤ 6`.
//!
//! * At the nominal point `s = 0` the `quad` margin's gradient w.r.t. `s`
//!   vanishes → a nominal-anchored linear model sees the spec as
//!   statistically harmless and the optimizer wastes the constrained budget
//!   on `bias` (Table 4 mechanism).
//! * The worst-case anchored model sees both the failure direction and —
//!   through the design gradient at the worst-case point — the benefit of
//!   raising `area` (the `C(d)` effect of paper Sec. 4).

use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::DVec;
use specwise_wcd::LinearizationPoint;

fn mismatch_env() -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![
            DesignParam::new("area", "", 0.5, 8.0, 1.0),
            DesignParam::new("bias", "", 0.0, 4.0, 0.5),
        ]))
        .stat_dim(2)
        .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
        .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| {
            let z = (s[0] - s[1]) / d[0].sqrt();
            DVec::from_slice(&[1.0 - z * z, d[1] - 1.0 + 0.3 * s[0]])
        })
        .constraints(vec!["budget".to_string()], |d| {
            DVec::from_slice(&[6.0 - d[0] - d[1]])
        })
        .build()
        .unwrap()
}

fn config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 6_000;
    cfg.verify_samples = 3_000;
    cfg.max_iterations = 3;
    cfg.seed = 7;
    cfg
}

fn final_yield(cfg: OptimizerConfig) -> f64 {
    let env = mismatch_env();
    let trace = YieldOptimizer::new(cfg)
        .run(&env)
        .expect("optimization runs");
    trace
        .final_snapshot()
        .verified
        .as_ref()
        .expect("verification enabled")
        .yield_estimate
        .value()
}

#[test]
fn worst_case_linearization_beats_nominal_linearization() {
    // Table 4 mechanism.
    let y_wc = final_yield(config());
    let mut cfg = config();
    cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
    let y_nominal = final_yield(cfg);
    assert!(
        y_wc > 0.78,
        "worst-case anchoring should approach the constrained optimum (~0.85), got {y_wc}"
    );
    assert!(
        y_wc > y_nominal + 0.1,
        "worst-case anchoring must clearly beat nominal: {y_wc} vs {y_nominal}"
    );
}

#[test]
fn nominal_linearization_misjudges_the_quadratic_spec() {
    // The nominal-anchored model's own bad-sample count for `quad` is a
    // strong underestimate of the true failure rate (the paper's "the
    // linearized models were too inaccurate" observation).
    let env = mismatch_env();
    let mut cfg = config();
    cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
    cfg.max_iterations = 1;
    let trace = YieldOptimizer::new(cfg)
        .run(&env)
        .expect("optimization runs");
    let snap = trace.initial();
    let model_bad = snap.bad_per_mille[0];
    let true_bad = snap.verified.as_ref().unwrap().bad_per_mille()[0];
    assert!(
        model_bad < 0.5 * true_bad,
        "nominal model should underestimate quad failures: model {model_bad} vs true {true_bad}"
    );
}

#[test]
fn constraints_keep_the_search_inside_the_budget() {
    // Table 3 mechanism (analytic flavour): without the constraint the
    // optimizer pushes both parameters to their boxes, overshooting the
    // budget; with it the optimum respects `area + bias ≤ 6`.
    let env = mismatch_env();
    let trace = YieldOptimizer::new(config())
        .run(&env)
        .expect("optimization runs");
    let d = trace.final_design();
    assert!(
        d[0] + d[1] <= 6.0 + 1e-6,
        "constrained optimum respects the budget: {d}"
    );

    let env = mismatch_env();
    let mut cfg = config();
    cfg.use_constraints = false;
    let trace = YieldOptimizer::new(cfg)
        .run(&env)
        .expect("optimization runs");
    let d_unconstrained = trace.final_design();
    assert!(
        d_unconstrained[0] + d_unconstrained[1] > 6.0,
        "unconstrained run should overshoot the budget: {d_unconstrained}"
    );
}

#[test]
fn mirrored_models_capture_the_two_sided_failure() {
    // With mirrored models disabled, the model sees only one tail of the
    // quadratic and overestimates the yield. Isolated single-spec problem:
    // margin = 1 − (s0 − s1)², so the true yield is
    // P(|Z0 − Z1| ≤ 1) = P(|Z| ≤ 1/√2) ≈ 0.5205.
    let env = AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "dummy", "", 0.0, 1.0, 0.5,
        )]))
        .stat_dim(2)
        .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
        .performances(|_, s, _| {
            let z = s[0] - s[1];
            DVec::from_slice(&[1.0 - z * z])
        })
        .build()
        .unwrap();
    let d0 = env.design_space().initial();
    let run = |mirrored: bool| {
        let mut wc = specwise_wcd::WcOptions::default();
        wc.mirrored_models = mirrored;
        let analysis = specwise_wcd::WcAnalysis::new(&env, wc).run(&d0).unwrap();
        specwise::LinearizedYield::new(analysis.linearizations().to_vec(), 1, 20_000, 3)
            .unwrap()
            .estimate(&d0)
            .unwrap()
            .value()
    };
    let with_mirror = run(true);
    let without_mirror = run(false);
    // One-sided truth: P(Z ≤ 1/√2) ≈ 0.7602; two-sided: ≈ 0.5205.
    assert!(
        (without_mirror - 0.7602).abs() < 0.03,
        "one-sided model should see only one tail: {without_mirror}"
    );
    assert!(
        (with_mirror - 0.5205).abs() < 0.03,
        "mirrored model should see both tails: {with_mirror}"
    );
    // And the mirrored estimate tracks the simulated truth.
    let truth = specwise::mc_verify(&env, &d0, 4_000, 11)
        .unwrap()
        .yield_estimate
        .value();
    assert!(
        (with_mirror - truth).abs() < 0.05,
        "mirrored estimate {with_mirror} should track the truth {truth}"
    );
}
