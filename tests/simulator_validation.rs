//! Cross-crate validation of the simulator substrate against analytic
//! circuit theory and against the measurement harness conventions.

use specwise_ckt::{CircuitEnv, FoldedCascode, MillerOpamp, SlewRateMethod};
use specwise_linalg::DVec;
use specwise_mna::{
    AcSolver, Circuit, DcOp, MosfetModel, MosfetParams, Transient, TransientOptions, Waveform,
};

#[test]
fn rc_divider_matches_closed_form_across_frequency() {
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let vout = ckt.node("out");
    ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
        .unwrap();
    ckt.set_ac("VIN", 1.0).unwrap();
    let (r, c) = (4.7e3, 2.2e-9);
    ckt.resistor("R", vin, vout, r).unwrap();
    ckt.capacitor("C", vout, Circuit::GROUND, c).unwrap();
    let op = DcOp::new(&ckt).solve().unwrap();
    let ac = AcSolver::new(&ckt, &op);
    for f in [1.0, 1e3, 15.4e3, 1e5, 1e7] {
        let h = ac.solve(f).unwrap().voltage(vout);
        let w = 2.0 * std::f64::consts::PI * f;
        let mag = 1.0 / (1.0 + (w * r * c).powi(2)).sqrt();
        let phase = -(w * r * c).atan();
        assert!((h.abs() - mag).abs() < 1e-6 * (1.0 + mag), "f = {f}");
        assert!((h.arg() - phase).abs() < 1e-6, "f = {f}");
    }
}

#[test]
fn transient_energy_conservation_rc_charge() {
    // Charging a capacitor through a resistor from a step: the resistor
    // dissipates exactly the energy stored in the capacitor (CV²/2 each).
    let mut ckt = Circuit::new();
    let vin = ckt.node("in");
    let vout = ckt.node("out");
    ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
        .unwrap();
    ckt.set_stimulus(
        "VIN",
        Waveform::Step {
            v0: 0.0,
            v1: 1.0,
            t0: 0.0,
            t_rise: 1e-12,
        },
    )
    .unwrap();
    let (r, c) = (1e3, 1e-9);
    ckt.resistor("R", vin, vout, r).unwrap();
    ckt.capacitor("C", vout, Circuit::GROUND, c).unwrap();
    let tau = r * c;
    let tr = Transient::new(&ckt, TransientOptions::new(tau / 400.0, 12.0 * tau))
        .run()
        .unwrap();
    let v = tr.voltage(vout);
    let times = tr.times();
    // Dissipated energy: ∫ (v_in − v_out)²/R dt with v_in = 1 after t = 0.
    let mut dissipated = 0.0;
    for k in 1..v.len() {
        let dt = times[k] - times[k - 1];
        let i_avg = ((1.0 - v[k]) + (1.0 - v[k - 1])) / (2.0 * r);
        dissipated += i_avg * ((1.0 - v[k]) + (1.0 - v[k - 1])) / 2.0 * dt;
    }
    let stored = 0.5 * c * tr.final_voltage(vout).powi(2);
    assert!(
        (stored - 0.5 * c).abs() < 0.01 * 0.5 * c,
        "capacitor fully charged"
    );
    assert!(
        (dissipated - stored).abs() < 0.05 * stored,
        "dissipated {dissipated:.3e} vs stored {stored:.3e}"
    );
}

#[test]
fn feedback_and_open_loop_operating_points_agree() {
    // The two-configuration measurement methodology (see
    // crates/ckt/src/extract.rs): a diode-connected gain stage measured via
    // feedback then rebiased open-loop must land on the same output level.
    // Exercised implicitly by every opamp metric; here we check the opamp's
    // A0 is consistent between two repeated evaluations (determinism) and
    // that the open-loop output offset is small.
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let s0 = DVec::zeros(env.stat_dim());
    let theta = env.operating_range().nominal();
    let a = env.metrics(&d0, &s0, &theta).unwrap();
    let b = env.metrics(&d0, &s0, &theta).unwrap();
    assert_eq!(a, b, "metric extraction is deterministic");
    assert!(
        a.a0_db > 40.0 && a.a0_db < 80.0,
        "plausible folded-cascode gain"
    );
    assert!(
        a.cmrr_db > a.a0_db,
        "CMRR exceeds differential gain for this topology"
    );
}

#[test]
fn miller_slew_rate_transient_close_to_analytic() {
    let theta = MillerOpamp::paper_setup().operating_range().nominal();
    let d0 = MillerOpamp::paper_setup().design_space().initial();
    let analytic_env = MillerOpamp::paper_setup();
    let s0 = DVec::zeros(analytic_env.stat_dim());
    let sr_analytic = analytic_env.metrics(&d0, &s0, &theta).unwrap().slew_v_per_s;
    let transient_env = MillerOpamp::paper_setup().with_sr_method(SlewRateMethod::Transient {
        dt: 20e-9,
        t_stop: 8e-6,
        step: 1.0,
    });
    let sr_transient = transient_env
        .metrics(&d0, &s0, &theta)
        .unwrap()
        .slew_v_per_s;
    let ratio = sr_transient / sr_analytic;
    assert!(
        (0.5..2.0).contains(&ratio),
        "transient SR {sr_transient:.3e} should be within 2x of analytic {sr_analytic:.3e}"
    );
}

#[test]
fn mosfet_gm_over_id_in_square_law_range() {
    // Sanity of the device model: gm/I_D = 2/vov for the square law.
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let g = ckt.node("g");
    let d = ckt.node("d");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
        .unwrap();
    ckt.voltage_source("VG", g, Circuit::GROUND, 1.0).unwrap();
    ckt.resistor("RD", vdd, d, 10e3).unwrap();
    let params = MosfetParams::new(MosfetModel::default_nmos(), 20e-6, 2e-6);
    ckt.mosfet("M1", d, g, Circuit::GROUND, Circuit::GROUND, params)
        .unwrap();
    let op = DcOp::new(&ckt).solve().unwrap();
    let m = op.mosfet_op("M1").unwrap();
    let gm_over_id = m.gm / m.id;
    let expected = 2.0 / m.vov;
    assert!(
        (gm_over_id / expected - 1.0).abs() < 0.05,
        "gm/Id = {gm_over_id:.2} vs 2/vov = {expected:.2}"
    );
}

#[test]
fn power_scales_with_supply_voltage() {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let s0 = DVec::zeros(env.stat_dim());
    let lo = env
        .metrics(&d0, &s0, &specwise_ckt::OperatingPoint::new(42.5, 3.0))
        .unwrap()
        .power_w;
    let hi = env
        .metrics(&d0, &s0, &specwise_ckt::OperatingPoint::new(42.5, 3.6))
        .unwrap()
        .power_w;
    assert!(hi > lo, "power increases with VDD");
    // Currents are mirror-set, so power ≈ proportional to VDD (within 25 %).
    assert!((hi / lo) < 1.25 * 3.6 / 3.0);
}
