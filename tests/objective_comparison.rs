//! Compares the paper's direct-yield objective against the predecessor
//! min-worst-case-distance objective (paper ref [10]) on problems where
//! their difference is understood.

use specwise::{Objective, OptimizerConfig, YieldOptimizer};
use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::DVec;

fn config(objective: Objective) -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 6_000;
    cfg.verify_samples = 3_000;
    cfg.max_iterations = 3;
    cfg.seed = 17;
    cfg.objective = objective;
    cfg
}

#[test]
fn both_objectives_solve_a_symmetric_tradeoff() {
    // Two specs pulling d0 in opposite directions with equal sensitivities:
    // both objectives should balance at d0 ≈ 2 (the symmetric point).
    let build = || {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 4.0, 0.5,
            )]))
            .stat_dim(2)
            .spec(Spec::new("lo", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("hi", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 1.0 + s[0], 3.0 - d[0] + s[1]]))
            .build()
            .unwrap()
    };
    for objective in [Objective::DirectYield, Objective::MinWorstCaseDistance] {
        let env = build();
        let trace = YieldOptimizer::new(config(objective)).run(&env).unwrap();
        let d = trace.final_design()[0];
        assert!(
            (d - 2.0).abs() < 0.5,
            "{objective:?}: balanced point expected, got {d}"
        );
        let y = trace
            .final_snapshot()
            .verified
            .as_ref()
            .unwrap()
            .yield_estimate
            .value();
        assert!(y > 0.55, "{objective:?}: yield {y}");
    }
}

#[test]
fn direct_yield_exploits_correlation_where_min_beta_cannot() {
    // Two *fully correlated* specs (same statistical variable): failing one
    // means failing the other, so the true yield depends on the joint
    // distribution. The yield-optimal design accounts for the correlation;
    // the min-β objective treats the specs independently and lands on the
    // balanced-distance point regardless.
    //
    // f0 = d0 − 1 + s0 (margin σ = 1), f1 = (5 − d0) + 3·s0 (margin σ = 3).
    // min-β balances (d0−1)/1 = (5−d0)/3 → d0 = 2. Direct yield recognizes
    // that failures coincide when s0 is very negative and prefers a higher
    // d0 (protecting the tighter spec f0 costs little true yield because
    // f1's failures happen at the same samples).
    let build = || {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "d0", "", 0.0, 4.5, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("tight", "", SpecKind::LowerBound, 0.0))
            .spec(Spec::new("wide", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] - 1.0 + s[0], 5.0 - d[0] + 3.0 * s[0]]))
            .build()
            .unwrap()
    };
    let env_y = build();
    let trace_y = YieldOptimizer::new(config(Objective::DirectYield))
        .run(&env_y)
        .unwrap();
    let y_direct = trace_y
        .final_snapshot()
        .verified
        .as_ref()
        .unwrap()
        .yield_estimate
        .value();

    let env_b = build();
    let trace_b = YieldOptimizer::new(config(Objective::MinWorstCaseDistance))
        .run(&env_b)
        .unwrap();
    let y_minbeta = trace_b
        .final_snapshot()
        .verified
        .as_ref()
        .unwrap()
        .yield_estimate
        .value();

    // The paper's motivation (Sec. 1): MCO/worst-case objectives struggle
    // with correlated performances. Direct yield must be at least as good.
    assert!(
        y_direct >= y_minbeta - 0.01,
        "direct yield {y_direct} must not lose to min-beta {y_minbeta}"
    );
}

#[test]
fn min_beta_objective_improves_worst_case_distances() {
    let env = AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "d0", "", 0.0, 10.0, 0.5,
        )]))
        .stat_dim(1)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| DVec::from_slice(&[d[0] - 1.0 + 0.5 * s[0]]))
        .build()
        .unwrap();
    let trace = YieldOptimizer::new(config(Objective::MinWorstCaseDistance))
        .run(&env)
        .unwrap();
    let beta0 = trace.initial().wc_points[0].beta_wc;
    let beta1 = trace.final_snapshot().wc_points[0].beta_wc;
    assert!(beta1 > beta0 + 1.0, "beta must grow: {beta0} -> {beta1}");
}
