//! Golden parity: the deck-driven `Testbench` environments must reproduce
//! the original hand-coded environments bit-for-bit.
//!
//! The `GOLDEN_*` constants below were captured from the seed (pre-IR)
//! implementations of `MillerOpamp`, `FoldedCascode` and
//! `FiveTransistorOta`: FNV-1a hashes over the exact bit patterns of
//! `eval_performances` and `eval_constraints` at the paper's nominal design
//! and at five seeded random `(d, ŝ, θ)` points, plus the raw nominal
//! performance bits for debuggability. Any deviation — a reordered node, a
//! different unit-conversion operation, a changed Newton seed — changes a
//! hash.
//!
//! To regenerate after an *intentional* numerical change:
//!
//! ```text
//! cargo test --release --test golden_parity -- --ignored regenerate --nocapture
//! ```

use rand::{Rng, SeedableRng};
use specwise_ckt::{CircuitEnv, FiveTransistorOta, FoldedCascode, MillerOpamp};
use specwise_linalg::DVec;

/// FNV-1a over a sequence of f64 bit patterns.
fn fnv1a(bits: impl IntoIterator<Item = u64>) -> u64 {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in bits {
        for byte in b.to_le_bytes() {
            h ^= byte as u64;
            h = h.wrapping_mul(0x100000001b3);
        }
    }
    h
}

struct Point {
    d: DVec,
    s: DVec,
    temp_c: f64,
    vdd: f64,
}

/// Nominal point plus five seeded random points: multiplicative jitter on
/// the initial design (projected back into the box), |ŝ| ≤ 1, θ ∈ Θ.
fn points(env: &dyn CircuitEnv, seed: u64) -> Vec<Point> {
    let space = env.design_space();
    let range = env.operating_range();
    let nominal = range.nominal();
    let mut pts = vec![Point {
        d: space.initial(),
        s: DVec::zeros(env.stat_dim()),
        temp_c: nominal.temp_c,
        vdd: nominal.vdd,
    }];
    let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
    let (t_lo, t_hi) = range.temp_bounds();
    let (v_lo, v_hi) = range.vdd_bounds();
    for _ in 0..5 {
        let d0 = space.initial();
        let d: DVec = d0.iter().map(|&x| x * rng.gen_range(0.9..1.1)).collect();
        let d = space.project(&d).expect("projection succeeds");
        let s: DVec = (0..env.stat_dim())
            .map(|_| rng.gen_range(-1.0..1.0))
            .collect();
        pts.push(Point {
            d,
            s,
            temp_c: rng.gen_range(t_lo..t_hi),
            vdd: rng.gen_range(v_lo..v_hi),
        });
    }
    pts
}

/// Per-point `(perf_hash, cons_hash)` plus the raw nominal performance bits.
fn capture(env: &dyn CircuitEnv, seed: u64) -> (Vec<(u64, u64)>, Vec<u64>) {
    let mut hashes = Vec::new();
    let mut nominal_bits = Vec::new();
    for (i, p) in points(env, seed).iter().enumerate() {
        let theta = specwise_ckt::OperatingPoint::new(p.temp_c, p.vdd);
        let perf = env
            .eval_performances(&p.d, &p.s, &theta)
            .expect("golden point evaluates");
        let cons = env.eval_constraints(&p.d).expect("constraints evaluate");
        if i == 0 {
            nominal_bits = perf.iter().map(|v| v.to_bits()).collect();
        }
        hashes.push((
            fnv1a(perf.iter().map(|v| v.to_bits())),
            fnv1a(cons.iter().map(|v| v.to_bits())),
        ));
    }
    (hashes, nominal_bits)
}

const MILLER_SEED: u64 = 101;
const FOLDED_SEED: u64 = 102;
const OTA_SEED: u64 = 103;

const GOLDEN_MILLER: [(u64, u64); 6] = [
    (0x6f7ca5f6214c5a07, 0x78b60f6fec45fb3d),
    (0xc6ae280723b132a4, 0x090942e3e8a1974d),
    (0xd9612540b62b0fab, 0x9643ea801c8311d2),
    (0x2647beb285081bc0, 0xd3d926391c7f9a5f),
    (0x77f348699d26f709, 0xc65f9d634c4535fc),
    (0xeffb5a4eb14f06dd, 0x350a20dfc344d7fd),
];
const GOLDEN_MILLER_NOMINAL: [u64; 5] = [
    0x405547d88afb4a84,
    0x3ffb9b319db45417,
    0x404f010933549632,
    0x4006df8906be998a,
    0x3fe21a2b422a5072,
];
const GOLDEN_FOLDED: [(u64, u64); 6] = [
    (0xdb6f0d07e25ca390, 0x84d8b0711117345e),
    (0xe92af55eada8a1f1, 0xa21d566b24ebb358),
    (0x40aae31c4528f2d3, 0x8ed11564a9622744),
    (0x3125d2a8bf30aa9a, 0x99a840b15c8903d2),
    (0xa421d35c72d7fb0a, 0x4560d42b67fc570b),
    (0x4d28b31bdf58921d, 0x44e123de8df3ad70),
];
const GOLDEN_FOLDED_NOMINAL: [u64; 5] = [
    0x4049832b991cd03f,
    0x404654a35c6d67ee,
    0x405481150da6172f,
    0x40423c777ee4fd45,
    0x3fe0e05eca9d9794,
];
const GOLDEN_OTA: [(u64, u64); 6] = [
    (0x7c31fb2322f5bb86, 0x9a86069f58135c5b),
    (0x2ff07847762d6a07, 0x322f8a9bdee0e1bf),
    (0x24a2f3cbd2c1cb10, 0xa5e641b164b7fd5a),
    (0xbd32753d53e39e1c, 0xf8564755444ca3f6),
    (0x3b7b236a202fbe99, 0x8c02a1255ca40be9),
    (0x90acd3c420dc9aa0, 0xa655f84bd2ad7240),
];
const GOLDEN_OTA_NOMINAL: [u64; 5] = [
    0x404727b6e667d9a2,
    0x401acc5495ebc39c,
    0x40530052238e7d6b,
    0x4013f416610041d8,
    0x3fa94e00f29d62fc,
];

fn check(env: &dyn CircuitEnv, seed: u64, golden: &[(u64, u64)], golden_nominal: &[u64]) {
    let (hashes, nominal_bits) = capture(env, seed);
    for (i, (bits, want)) in nominal_bits.iter().zip(golden_nominal).enumerate() {
        assert_eq!(
            bits,
            want,
            "{}: nominal performance {} drifted: {} (bits {:#018x}, want {:#018x})",
            env.name(),
            env.specs()[i].name(),
            f64::from_bits(*bits),
            bits,
            want
        );
    }
    for (i, (got, want)) in hashes.iter().zip(golden).enumerate() {
        assert_eq!(
            got.0,
            want.0,
            "{}: eval_performances hash mismatch at point {i}",
            env.name()
        );
        assert_eq!(
            got.1,
            want.1,
            "{}: eval_constraints hash mismatch at point {i}",
            env.name()
        );
    }
}

#[test]
fn miller_matches_seed_golden() {
    check(
        &MillerOpamp::paper_setup(),
        MILLER_SEED,
        &GOLDEN_MILLER,
        &GOLDEN_MILLER_NOMINAL,
    );
}

#[test]
fn folded_matches_seed_golden() {
    check(
        &FoldedCascode::paper_setup(),
        FOLDED_SEED,
        &GOLDEN_FOLDED,
        &GOLDEN_FOLDED_NOMINAL,
    );
}

#[test]
fn ota_matches_seed_golden() {
    check(
        &FiveTransistorOta::default_setup(),
        OTA_SEED,
        &GOLDEN_OTA,
        &GOLDEN_OTA_NOMINAL,
    );
}

/// Prints fresh golden constants (run with `--ignored --nocapture` and paste
/// the output over the `GOLDEN_*` constants above).
#[test]
#[ignore]
fn regenerate() {
    let print = |label: &str, env: &dyn CircuitEnv, seed: u64| {
        let (hashes, nominal) = capture(env, seed);
        println!("const GOLDEN_{label}: [(u64, u64); 6] = [");
        for (p, c) in &hashes {
            println!("    ({p:#018x}, {c:#018x}),");
        }
        println!("];");
        println!("const GOLDEN_{label}_NOMINAL: [u64; {}] = [", nominal.len());
        for b in &nominal {
            println!("    {b:#018x},");
        }
        println!("];");
    };
    print("MILLER", &MillerOpamp::paper_setup(), MILLER_SEED);
    print("FOLDED", &FoldedCascode::paper_setup(), FOLDED_SEED);
    print("OTA", &FiveTransistorOta::default_setup(), OTA_SEED);
}
