//! Budget exhaustion mid-batch: when a tenant's simulation budget runs
//! out inside a Monte-Carlo verification batch, the starved samples must
//! be excluded cleanly — a partial yield estimate with a widened
//! interval, not a crash — and the *count* of excluded samples must be
//! identical at any worker count (which samples starve depends on
//! scheduling; how many cannot).
//!
//! This is the serving-path contract: `specwise-serve` wraps every job in
//! a soft [`KillSwitch`] shared across the tenant's jobs, so one tenant
//! hitting its quota degrades its own yield intervals and nothing else.

use std::sync::Arc;

use specwise::{mc_verify_with, McOptions};
use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_exec::{EvalService, ExecConfig, RetryPolicy};
use specwise_harden::{KillSwitch, SharedBudget};
use specwise_linalg::DVec;

const N_SAMPLES: usize = 40;

fn env() -> AnalyticEnv {
    // Margin 8 + s ⇒ a clean sample fails with probability Φ(−8) ≈ 6e−16:
    // every sample that actually simulates passes, so the verified yield
    // counts exactly the starved samples.
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "d0", "", -10.0, 10.0, 8.0,
        )]))
        .stat_dim(1)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
        .build()
        .unwrap()
}

fn exec_cfg(workers: usize) -> ExecConfig {
    // No cache (a hit would bypass the budget charge) and no retries (a
    // starved sample would just charge again and fail again).
    ExecConfig::default()
        .with_workers(workers)
        .with_cache_capacity(0)
        .with_retry(RetryPolicy::none())
}

fn mc_options() -> McOptions {
    McOptions {
        n_samples: N_SAMPLES,
        seed: 2001,
    }
}

/// Evaluation calls consumed by a full verification with `n` samples.
fn probe_calls(n: usize) -> u64 {
    let e = env();
    let probe = KillSwitch::soft(&e, u64::MAX);
    let svc = EvalService::new(&probe, exec_cfg(1));
    let opts = McOptions {
        n_samples: n,
        seed: 2001,
    };
    mc_verify_with(&svc, &DVec::from_slice(&[8.0]), &opts).expect("probe run completes");
    probe.used()
}

/// A budget that starves exactly the last `N_SAMPLES / 2` samples'
/// worth of evaluation calls, measured rather than assumed (worst-case
/// corner discovery costs a few calls before the sample batch starts).
fn half_starving_budget() -> u64 {
    let u1 = probe_calls(N_SAMPLES);
    let u2 = probe_calls(2 * N_SAMPLES);
    let per_sample = (u2 - u1) / N_SAMPLES as u64;
    assert!(per_sample >= 1, "samples must cost evaluation calls");
    u1 - per_sample * (N_SAMPLES as u64 / 2)
}

#[test]
fn soft_budget_exhaustion_mid_batch_degrades_cleanly_at_any_worker_count() {
    let budget = half_starving_budget();
    let d = DVec::from_slice(&[8.0]);
    let mut baseline = None;
    for workers in [1usize, 2, 8] {
        let e = env();
        let shared = Arc::new(SharedBudget::new(budget));
        let kill = KillSwitch::soft_with_budget(&e, Arc::clone(&shared));
        let svc = EvalService::new(&kill, exec_cfg(workers));
        let mc = mc_verify_with(&svc, &d, &mc_options())
            .expect("budget exhaustion must degrade, not crash");

        assert!(shared.tripped(), "the budget must actually run out");
        assert_eq!(
            mc.sim_failures,
            N_SAMPLES / 2,
            "exactly the starved samples are excluded (workers = {workers})"
        );
        assert_eq!(mc.degraded_samples, N_SAMPLES / 2);
        assert_eq!(mc.yield_estimate.total(), N_SAMPLES);
        // Every sample that simulated passed; the starved half widens the
        // interval instead of biasing the point estimate.
        assert_eq!(mc.yield_estimate.value(), 0.5, "workers = {workers}");
        assert_eq!(mc.yield_interval(), (0.5, 1.0), "workers = {workers}");

        let key = (
            mc.sim_failures,
            mc.degraded_samples,
            mc.per_spec_bad.clone(),
        );
        match &baseline {
            None => baseline = Some(key),
            Some(expected) => assert_eq!(
                &key, expected,
                "exclusion counts must not depend on the worker count"
            ),
        }
    }
}

/// The fleet version of the soft-exhaustion contract: the spend daemon A
/// published to the spool ledger counts against daemon B's meter for the
/// same tenant, so B starves exactly as if A's simulations had run in
/// B's own process — independent of B's worker count *and* of how many
/// peer daemons A's spend is split across.
#[test]
fn fleet_ledger_starves_peer_daemons_exactly_like_local_spend() {
    use specwise_serve::TenantLedger;

    let spool = std::env::temp_dir().join(format!("specwise-budget-fleet-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    std::fs::create_dir_all(&spool).unwrap();

    let u1 = probe_calls(N_SAMPLES);
    let h = half_starving_budget();
    // Cap = one full run (spent remotely) + a half-starving remainder.
    let cap = u1 + h;
    let d = DVec::from_slice(&[8.0]);

    // A's full-run spend, split over one peer daemon or over two — the
    // ledger sums owners, so the split must be invisible to B.
    let splits: [&[u64]; 2] = [&[u1], &[u1 / 2, u1 - u1 / 2]];
    let mut baseline = None;
    for (t, split) in splits.iter().enumerate() {
        let tenant = format!("acme-{t}");
        for (i, spend) in split.iter().enumerate() {
            let peer = TenantLedger::open(&spool, &format!("peer-{t}-{i}")).unwrap();
            peer.record(&tenant, *spend).unwrap();
        }
        for workers in [1usize, 2, 8] {
            let e = env();
            let shared = Arc::new(SharedBudget::new(cap));
            let ledger_b = TenantLedger::open(&spool, "daemon-b").unwrap();
            // What the fleet loop does at claim/heartbeat time. B never
            // records its own spend here so every iteration of this loop
            // sees the identical remote total.
            shared.set_external(ledger_b.others_used(&tenant));
            assert_eq!(shared.external(), u1, "the ledger sums every peer");
            assert!(!shared.tripped(), "remote spend alone is under the cap");

            let kill = KillSwitch::soft_with_budget(&e, Arc::clone(&shared));
            let svc = EvalService::new(&kill, exec_cfg(workers));
            let mc = mc_verify_with(&svc, &d, &mc_options())
                .expect("fleet exhaustion must degrade, not crash");
            assert!(shared.tripped(), "the fleet-wide cap must run out");
            assert_eq!(
                mc.sim_failures,
                N_SAMPLES / 2,
                "remote spend starves like local spend (workers = {workers})"
            );
            assert_eq!(mc.yield_interval(), (0.5, 1.0), "workers = {workers}");

            let key = (
                mc.sim_failures,
                mc.degraded_samples,
                mc.per_spec_bad.clone(),
            );
            match &baseline {
                None => baseline = Some(key),
                Some(expected) => assert_eq!(
                    &key, expected,
                    "exclusion counts must not depend on worker or daemon count"
                ),
            }
        }
    }
    let _ = std::fs::remove_dir_all(&spool);
}

#[test]
fn hard_budget_exhaustion_aborts_the_verification() {
    // The hard kill switch models "the job was killed", not "the tenant
    // ran dry": its error is non-retryable and must abort the run so
    // checkpoint/resume takes over — the opposite contract of soft mode.
    let budget = half_starving_budget();
    let e = env();
    let kill = KillSwitch::new(&e, budget);
    let svc = EvalService::new(&kill, exec_cfg(1));
    let err = mc_verify_with(&svc, &DVec::from_slice(&[8.0]), &mc_options())
        .expect_err("a hard kill must abort mc verification");
    assert!(kill.tripped());
    let msg = err.to_string();
    assert!(
        msg.contains("kill switch"),
        "the abort must name the kill switch, got: {msg}"
    );
}
