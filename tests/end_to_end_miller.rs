//! End-to-end integration test: the Table 6 experiment (Miller opamp,
//! global variations) with reduced sample counts.

use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{CircuitEnv, MillerOpamp};

fn quick_config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 2_000;
    cfg.verify_samples = 150;
    cfg.max_iterations = 2;
    cfg
}

#[test]
fn miller_yield_optimization_improves_verified_yield() {
    let env = MillerOpamp::paper_setup();
    let trace = YieldOptimizer::new(quick_config())
        .run(&env)
        .expect("optimization runs");

    let y0 = trace
        .initial()
        .verified
        .as_ref()
        .expect("verification on")
        .yield_estimate;
    let y1 = trace
        .final_snapshot()
        .verified
        .as_ref()
        .expect("verification on")
        .yield_estimate;

    // Paper Table 6: 33.7 % -> 99.3 %. Shape check: mid-range start, near-1 end.
    assert!(y0.value() < 0.6, "initial yield {} should be mid-range", y0);
    assert!(y1.value() > 0.9, "final yield {} should be near 1", y1);
    assert!(
        y1.value() > y0.value() + 0.3,
        "yield must improve substantially"
    );
}

#[test]
fn miller_initially_fails_slew_rate() {
    let env = MillerOpamp::paper_setup();
    let mut cfg = quick_config();
    cfg.max_iterations = 1;
    let trace = YieldOptimizer::new(cfg)
        .run(&env)
        .expect("optimization runs");

    // SRp is spec index 3; its nominal margin at the worst corner starts
    // negative (paper: −0.1) and ends positive.
    let initial = trace.initial();
    assert!(
        initial.nominal_margins[3] < 0.0,
        "initial SR margin {} should be negative",
        initial.nominal_margins[3]
    );
    let final_snap = trace.final_snapshot();
    assert!(
        final_snap.nominal_margins[3] > 0.0,
        "final SR margin {} should be positive",
        final_snap.nominal_margins[3]
    );
    // Power stays within spec the whole time.
    assert!(initial.nominal_margins[4] > 0.0);
    assert!(final_snap.nominal_margins[4] > 0.0);
}

#[test]
fn miller_final_design_respects_constraints_and_bounds() {
    let env = MillerOpamp::paper_setup();
    let trace = YieldOptimizer::new(quick_config())
        .run(&env)
        .expect("optimization runs");
    let d = trace.final_design();
    env.design_space()
        .validate(d)
        .expect("final design inside the box");
    let c = env.eval_constraints(d).expect("constraints evaluate");
    for (i, name) in env.constraint_names().iter().enumerate() {
        assert!(
            c[i] >= -1e-9,
            "constraint {name} violated at the optimum: {}",
            c[i]
        );
    }
}
