use crate::{DMat, DVec, LinalgError};

/// Householder QR factorization `A = Q·R` for `m ≥ n` matrices.
///
/// Used for least-squares sub-problems, e.g. fitting linear performance
/// models to over-determined sample sets when cross-checking the spec-wise
/// linearization.
///
/// # Example
///
/// ```
/// use specwise_linalg::{DMat, DVec};
///
/// # fn main() -> Result<(), specwise_linalg::LinalgError> {
/// // Fit y = a + b*t to three points in a least-squares sense.
/// let a = DMat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0]])?;
/// let y = DVec::from_slice(&[1.0, 2.0, 3.0]);
/// let coef = a.qr()?.solve_least_squares(&y)?;
/// assert!((coef[0] - 1.0).abs() < 1e-10);
/// assert!((coef[1] - 1.0).abs() < 1e-10);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Qr {
    /// Packed Householder vectors (below diagonal) and R (upper triangle).
    qr: DMat,
    /// Householder scalar coefficients.
    tau: Vec<f64>,
}

impl Qr {
    /// Factors an `m × n` matrix with `m ≥ n`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for empty input and
    /// [`LinalgError::DimensionMismatch`] when `m < n`.
    pub fn new(a: &DMat) -> Result<Self, LinalgError> {
        let (m, n) = (a.nrows(), a.ncols());
        if m == 0 || n == 0 {
            return Err(LinalgError::Empty);
        }
        if m < n {
            return Err(LinalgError::DimensionMismatch {
                op: "qr (requires m >= n)",
                expected: n,
                found: m,
            });
        }
        let mut qr = a.clone();
        let mut tau = vec![0.0; n];
        for k in 0..n {
            // Compute the Householder reflector for column k.
            let mut norm = 0.0;
            for i in k..m {
                norm += qr[(i, k)] * qr[(i, k)];
            }
            let norm = norm.sqrt();
            if norm == 0.0 {
                tau[k] = 0.0;
                continue;
            }
            let alpha = if qr[(k, k)] > 0.0 { -norm } else { norm };
            let mut v0 = qr[(k, k)] - alpha;
            // Normalize so v[k] = 1 implicitly; store v below the diagonal.
            let mut vnorm2 = v0 * v0;
            for i in (k + 1)..m {
                vnorm2 += qr[(i, k)] * qr[(i, k)];
            }
            if vnorm2 == 0.0 {
                tau[k] = 0.0;
                qr[(k, k)] = alpha;
                continue;
            }
            tau[k] = 2.0 * v0 * v0 / vnorm2;
            for i in (k + 1)..m {
                let scaled = qr[(i, k)] / v0;
                qr[(i, k)] = scaled;
            }
            v0 = 1.0;
            let _ = v0;
            qr[(k, k)] = alpha;
            // Apply the reflector to the remaining columns.
            for j in (k + 1)..n {
                let mut dot = qr[(k, j)];
                for i in (k + 1)..m {
                    dot += qr[(i, k)] * qr[(i, j)];
                }
                let dot = dot * tau[k];
                qr[(k, j)] -= dot;
                for i in (k + 1)..m {
                    let vik = qr[(i, k)];
                    qr[(i, j)] -= dot * vik;
                }
            }
        }
        Ok(Qr { qr, tau })
    }

    /// Number of rows of the factored matrix.
    pub fn nrows(&self) -> usize {
        self.qr.nrows()
    }

    /// Number of columns of the factored matrix.
    pub fn ncols(&self) -> usize {
        self.qr.ncols()
    }

    /// Applies `Qᵀ` to a vector of length `m`.
    fn apply_qt(&self, b: &DVec) -> DVec {
        let (m, n) = (self.nrows(), self.ncols());
        let mut y = b.clone();
        for k in 0..n {
            if self.tau[k] == 0.0 {
                continue;
            }
            let mut dot = y[k];
            for i in (k + 1)..m {
                dot += self.qr[(i, k)] * y[i];
            }
            let dot = dot * self.tau[k];
            y[k] -= dot;
            for i in (k + 1)..m {
                y[i] -= dot * self.qr[(i, k)];
            }
        }
        y
    }

    /// Solves the least-squares problem `min ‖A·x − b‖₂`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != nrows()` and
    /// [`LinalgError::Singular`] if `R` has a zero diagonal (rank-deficient).
    pub fn solve_least_squares(&self, b: &DVec) -> Result<DVec, LinalgError> {
        let (m, n) = (self.nrows(), self.ncols());
        if b.len() != m {
            return Err(LinalgError::DimensionMismatch {
                op: "qr solve",
                expected: m,
                found: b.len(),
            });
        }
        let y = self.apply_qt(b);
        // Rank test: a diagonal of R negligibly small relative to the largest
        // diagonal signals rank deficiency (columns numerically dependent).
        let rmax = (0..n).fold(0.0_f64, |m, i| m.max(self.qr[(i, i)].abs()));
        let tol = rmax * (m as f64) * f64::EPSILON;
        let mut x = DVec::zeros(n);
        for i in (0..n).rev() {
            let mut acc = y[i];
            for j in (i + 1)..n {
                acc -= self.qr[(i, j)] * x[j];
            }
            let rii = self.qr[(i, i)];
            if rii.abs() <= tol {
                return Err(LinalgError::Singular { pivot: i });
            }
            x[i] = acc / rii;
        }
        Ok(x)
    }

    /// The upper-triangular factor `R` (`n × n`).
    pub fn r(&self) -> DMat {
        let n = self.ncols();
        DMat::from_fn(n, n, |i, j| if j >= i { self.qr[(i, j)] } else { 0.0 })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn solves_square_system() {
        let a = DMat::from_rows(&[&[2.0, 1.0], &[1.0, 3.0]]).unwrap();
        let b = DVec::from_slice(&[3.0, 5.0]);
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        assert!((&a.matvec(&x) - &b).norm_inf() < 1e-12);
    }

    #[test]
    fn least_squares_line_fit() {
        // y = 2 + 3t with noise-free samples must be recovered exactly.
        let t = [0.0, 1.0, 2.0, 3.0];
        let rows: Vec<Vec<f64>> = t.iter().map(|&ti| vec![1.0, ti]).collect();
        let row_refs: Vec<&[f64]> = rows.iter().map(|r| r.as_slice()).collect();
        let a = DMat::from_rows(&row_refs).unwrap();
        let y: DVec = t.iter().map(|&ti| 2.0 + 3.0 * ti).collect();
        let coef = a.qr().unwrap().solve_least_squares(&y).unwrap();
        assert!((coef[0] - 2.0).abs() < 1e-10);
        assert!((coef[1] - 3.0).abs() < 1e-10);
    }

    #[test]
    fn residual_orthogonal_to_columns() {
        let a = DMat::from_rows(&[&[1.0, 0.0], &[1.0, 1.0], &[1.0, 2.0], &[1.0, 3.0]]).unwrap();
        let b = DVec::from_slice(&[0.0, 1.0, 0.0, 2.0]);
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        let r = &a.matvec(&x) - &b;
        let atr = a.tr_matvec(&r);
        assert!(atr.norm_inf() < 1e-10, "normal equations violated: {atr}");
    }

    #[test]
    fn rejects_underdetermined() {
        let a = DMat::zeros(2, 3);
        assert!(matches!(a.qr(), Err(LinalgError::DimensionMismatch { .. })));
    }

    #[test]
    fn r_is_upper_triangular() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0], &[5.0, 6.0]]).unwrap();
        let r = a.qr().unwrap().r();
        assert_eq!(r[(1, 0)], 0.0);
    }

    #[test]
    fn rank_deficient_reports_singular() {
        let a = DMat::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]).unwrap();
        let qr = a.qr().unwrap();
        assert!(matches!(
            qr.solve_least_squares(&DVec::zeros(3)),
            Err(LinalgError::Singular { .. })
        ));
    }
}
