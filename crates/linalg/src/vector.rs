use std::fmt;
use std::iter::FromIterator;
use std::ops::{Add, AddAssign, Index, IndexMut, Mul, MulAssign, Neg, Sub, SubAssign};

use crate::LinalgError;

/// A dense, heap-allocated real vector.
///
/// `DVec` is the currency of the whole workspace: design-parameter vectors
/// `d`, statistical-parameter vectors `s`, gradients and Newton updates are
/// all `DVec`s.
///
/// # Example
///
/// ```
/// use specwise_linalg::DVec;
///
/// let a = DVec::from_slice(&[1.0, 2.0, 2.0]);
/// assert_eq!(a.norm2(), 3.0);
/// assert_eq!(a.dot(&a), 9.0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DVec {
    data: Vec<f64>,
}

impl DVec {
    /// Creates a zero vector of length `n`.
    ///
    /// ```
    /// use specwise_linalg::DVec;
    /// assert_eq!(DVec::zeros(3).len(), 3);
    /// ```
    pub fn zeros(n: usize) -> Self {
        DVec { data: vec![0.0; n] }
    }

    /// Creates a vector with every component equal to `value`.
    pub fn filled(n: usize, value: f64) -> Self {
        DVec {
            data: vec![value; n],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[f64]) -> Self {
        DVec {
            data: values.to_vec(),
        }
    }

    /// Creates a vector from a generator function of the index.
    ///
    /// ```
    /// use specwise_linalg::DVec;
    /// let v = DVec::from_fn(3, |i| i as f64);
    /// assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    /// ```
    pub fn from_fn(n: usize, mut f: impl FnMut(usize) -> f64) -> Self {
        DVec {
            data: (0..n).map(&mut f).collect(),
        }
    }

    /// A standard-basis vector `e_k` of length `n`.
    ///
    /// # Panics
    ///
    /// Panics if `k >= n`.
    pub fn basis(n: usize, k: usize) -> Self {
        assert!(k < n, "basis index {k} out of range for length {n}");
        let mut v = DVec::zeros(n);
        v[k] = 1.0;
        v
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when the vector has no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View of the components as a slice.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }

    /// Mutable view of the components.
    pub fn as_mut_slice(&mut self) -> &mut [f64] {
        &mut self.data
    }

    /// Consumes the vector and returns the underlying storage.
    pub fn into_vec(self) -> Vec<f64> {
        self.data
    }

    /// Iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, f64> {
        self.data.iter()
    }

    /// Mutable iterator over the components.
    pub fn iter_mut(&mut self) -> std::slice::IterMut<'_, f64> {
        self.data.iter_mut()
    }

    /// Euclidean inner product.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn dot(&self, other: &DVec) -> f64 {
        assert_eq!(self.len(), other.len(), "dot: length mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| a * b).sum()
    }

    /// Euclidean (2-)norm.
    pub fn norm2(&self) -> f64 {
        self.dot(self).sqrt()
    }

    /// Maximum absolute component (∞-norm); `0.0` for the empty vector.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// Index of the component with the largest absolute value.
    ///
    /// Returns `None` for an empty vector.
    pub fn argmax_abs(&self) -> Option<usize> {
        if self.is_empty() {
            return None;
        }
        let mut best = 0;
        for i in 1..self.len() {
            if self.data[i].abs() > self.data[best].abs() {
                best = i;
            }
        }
        Some(best)
    }

    /// Componentwise product (Hadamard product).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if the lengths differ.
    pub fn hadamard(&self, other: &DVec) -> Result<DVec, LinalgError> {
        if self.len() != other.len() {
            return Err(LinalgError::DimensionMismatch {
                op: "hadamard",
                expected: self.len(),
                found: other.len(),
            });
        }
        Ok(DVec::from_fn(self.len(), |i| self.data[i] * other.data[i]))
    }

    /// `self + alpha * other` (BLAS `axpy`), returning a new vector.
    ///
    /// # Panics
    ///
    /// Panics if the lengths differ.
    pub fn axpy(&self, alpha: f64, other: &DVec) -> DVec {
        assert_eq!(self.len(), other.len(), "axpy: length mismatch");
        DVec::from_fn(self.len(), |i| self.data[i] + alpha * other.data[i])
    }

    /// In-place scaling by a scalar.
    pub fn scale_mut(&mut self, alpha: f64) {
        for x in &mut self.data {
            *x *= alpha;
        }
    }

    /// Returns a copy scaled by `alpha`.
    pub fn scaled(&self, alpha: f64) -> DVec {
        DVec::from_fn(self.len(), |i| alpha * self.data[i])
    }

    /// `true` when every component is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Sum of all components.
    pub fn sum(&self) -> f64 {
        self.data.iter().sum()
    }

    /// Componentwise clamp into `[lo, hi]` (both inclusive, per component).
    ///
    /// # Panics
    ///
    /// Panics if the three lengths differ or any `lo[i] > hi[i]`.
    pub fn clamped(&self, lo: &DVec, hi: &DVec) -> DVec {
        assert_eq!(self.len(), lo.len(), "clamped: lo length mismatch");
        assert_eq!(self.len(), hi.len(), "clamped: hi length mismatch");
        DVec::from_fn(self.len(), |i| {
            assert!(lo[i] <= hi[i], "clamped: lo > hi at index {i}");
            self.data[i].clamp(lo[i], hi[i])
        })
    }
}

impl fmt::Display for DVec {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, x) in self.data.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{x:.6e}")?;
        }
        write!(f, "]")
    }
}

impl Index<usize> for DVec {
    type Output = f64;
    fn index(&self, i: usize) -> &f64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for DVec {
    fn index_mut(&mut self, i: usize) -> &mut f64 {
        &mut self.data[i]
    }
}

impl From<Vec<f64>> for DVec {
    fn from(data: Vec<f64>) -> Self {
        DVec { data }
    }
}

impl FromIterator<f64> for DVec {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        DVec {
            data: iter.into_iter().collect(),
        }
    }
}

impl Extend<f64> for DVec {
    fn extend<I: IntoIterator<Item = f64>>(&mut self, iter: I) {
        self.data.extend(iter);
    }
}

impl<'a> IntoIterator for &'a DVec {
    type Item = &'a f64;
    type IntoIter = std::slice::Iter<'a, f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.iter()
    }
}

impl IntoIterator for DVec {
    type Item = f64;
    type IntoIter = std::vec::IntoIter<f64>;
    fn into_iter(self) -> Self::IntoIter {
        self.data.into_iter()
    }
}

impl Add for &DVec {
    type Output = DVec;
    fn add(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "add: length mismatch");
        DVec::from_fn(self.len(), |i| self[i] + rhs[i])
    }
}

impl Sub for &DVec {
    type Output = DVec;
    fn sub(self, rhs: &DVec) -> DVec {
        assert_eq!(self.len(), rhs.len(), "sub: length mismatch");
        DVec::from_fn(self.len(), |i| self[i] - rhs[i])
    }
}

impl Neg for &DVec {
    type Output = DVec;
    fn neg(self) -> DVec {
        DVec::from_fn(self.len(), |i| -self[i])
    }
}

impl Mul<f64> for &DVec {
    type Output = DVec;
    fn mul(self, rhs: f64) -> DVec {
        self.scaled(rhs)
    }
}

impl AddAssign<&DVec> for DVec {
    fn add_assign(&mut self, rhs: &DVec) {
        assert_eq!(self.len(), rhs.len(), "add_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a += b;
        }
    }
}

impl SubAssign<&DVec> for DVec {
    fn sub_assign(&mut self, rhs: &DVec) {
        assert_eq!(self.len(), rhs.len(), "sub_assign: length mismatch");
        for (a, b) in self.data.iter_mut().zip(&rhs.data) {
            *a -= b;
        }
    }
}

impl MulAssign<f64> for DVec {
    fn mul_assign(&mut self, rhs: f64) {
        self.scale_mut(rhs);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zeros_and_len() {
        let v = DVec::zeros(4);
        assert_eq!(v.len(), 4);
        assert!(!v.is_empty());
        assert!(v.iter().all(|&x| x == 0.0));
        assert!(DVec::zeros(0).is_empty());
    }

    #[test]
    fn basis_vector() {
        let e1 = DVec::basis(3, 1);
        assert_eq!(e1.as_slice(), &[0.0, 1.0, 0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn basis_out_of_range_panics() {
        let _ = DVec::basis(2, 2);
    }

    #[test]
    fn dot_and_norms() {
        let a = DVec::from_slice(&[3.0, -4.0]);
        assert_eq!(a.dot(&a), 25.0);
        assert_eq!(a.norm2(), 5.0);
        assert_eq!(a.norm_inf(), 4.0);
        assert_eq!(a.argmax_abs(), Some(1));
    }

    #[test]
    fn argmax_abs_empty_is_none() {
        assert_eq!(DVec::zeros(0).argmax_abs(), None);
    }

    #[test]
    fn arithmetic_ops() {
        let a = DVec::from_slice(&[1.0, 2.0]);
        let b = DVec::from_slice(&[3.0, 5.0]);
        assert_eq!((&a + &b).as_slice(), &[4.0, 7.0]);
        assert_eq!((&b - &a).as_slice(), &[2.0, 3.0]);
        assert_eq!((-&a).as_slice(), &[-1.0, -2.0]);
        assert_eq!((&a * 2.0).as_slice(), &[2.0, 4.0]);
        let mut c = a.clone();
        c += &b;
        assert_eq!(c.as_slice(), &[4.0, 7.0]);
        c -= &b;
        assert_eq!(c.as_slice(), &[1.0, 2.0]);
        c *= 3.0;
        assert_eq!(c.as_slice(), &[3.0, 6.0]);
    }

    #[test]
    fn axpy_matches_manual() {
        let a = DVec::from_slice(&[1.0, 1.0]);
        let b = DVec::from_slice(&[2.0, -1.0]);
        assert_eq!(a.axpy(0.5, &b).as_slice(), &[2.0, 0.5]);
    }

    #[test]
    fn hadamard_checks_dims() {
        let a = DVec::from_slice(&[1.0, 2.0]);
        let b = DVec::from_slice(&[3.0]);
        assert!(matches!(
            a.hadamard(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let c = DVec::from_slice(&[3.0, 4.0]);
        assert_eq!(a.hadamard(&c).unwrap().as_slice(), &[3.0, 8.0]);
    }

    #[test]
    fn clamp_within_bounds() {
        let x = DVec::from_slice(&[-2.0, 0.5, 9.0]);
        let lo = DVec::from_slice(&[0.0, 0.0, 0.0]);
        let hi = DVec::from_slice(&[1.0, 1.0, 1.0]);
        assert_eq!(x.clamped(&lo, &hi).as_slice(), &[0.0, 0.5, 1.0]);
    }

    #[test]
    fn collect_from_iterator() {
        let v: DVec = (0..3).map(|i| i as f64).collect();
        assert_eq!(v.as_slice(), &[0.0, 1.0, 2.0]);
    }

    #[test]
    fn is_finite_detects_nan() {
        let mut v = DVec::zeros(2);
        assert!(v.is_finite());
        v[1] = f64::NAN;
        assert!(!v.is_finite());
    }

    #[test]
    fn display_is_nonempty() {
        let v = DVec::from_slice(&[1.0]);
        assert!(!format!("{v}").is_empty());
    }
}
