use std::fmt;
use std::ops::{Add, Index, IndexMut, Mul, Sub};

use crate::{Cholesky, DVec, LinalgError, Lu, Qr};

/// A dense, row-major real matrix.
///
/// # Example
///
/// ```
/// use specwise_linalg::{DMat, DVec};
///
/// # fn main() -> Result<(), specwise_linalg::LinalgError> {
/// let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]])?;
/// let x = DVec::from_slice(&[1.0, 1.0]);
/// assert_eq!(a.matvec(&x).as_slice(), &[3.0, 7.0]);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DMat {
    rows: usize,
    cols: usize,
    data: Vec<f64>,
}

impl DMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        DMat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Creates the `n × n` identity matrix.
    ///
    /// ```
    /// use specwise_linalg::DMat;
    /// let i = DMat::identity(2);
    /// assert_eq!(i[(0, 0)], 1.0);
    /// assert_eq!(i[(0, 1)], 0.0);
    /// ```
    pub fn identity(n: usize) -> Self {
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = 1.0;
        }
        m
    }

    /// Creates a matrix from a generator function of `(row, col)`.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f64) -> Self {
        let mut m = DMat::zeros(rows, cols);
        for i in 0..rows {
            for j in 0..cols {
                m[(i, j)] = f(i, j);
            }
        }
        m
    }

    /// Creates a matrix from row slices.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty row list and
    /// [`LinalgError::RaggedRows`] when rows have differing lengths.
    pub fn from_rows(rows: &[&[f64]]) -> Result<Self, LinalgError> {
        if rows.is_empty() || rows[0].is_empty() {
            return Err(LinalgError::Empty);
        }
        let cols = rows[0].len();
        for (i, r) in rows.iter().enumerate() {
            if r.len() != cols {
                return Err(LinalgError::RaggedRows { row: i });
            }
        }
        let mut data = Vec::with_capacity(rows.len() * cols);
        for r in rows {
            data.extend_from_slice(r);
        }
        Ok(DMat {
            rows: rows.len(),
            cols,
            data,
        })
    }

    /// Creates a diagonal matrix from a vector of diagonal entries.
    pub fn from_diagonal(diag: &DVec) -> Self {
        let n = diag.len();
        let mut m = DMat::zeros(n, n);
        for i in 0..n {
            m[(i, i)] = diag[i];
        }
        m
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` when the matrix is square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Row `i` as a newly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    pub fn row(&self, i: usize) -> DVec {
        assert!(i < self.rows, "row index {i} out of range");
        DVec::from_slice(&self.data[i * self.cols..(i + 1) * self.cols])
    }

    /// Column `j` as a newly allocated vector.
    ///
    /// # Panics
    ///
    /// Panics if `j` is out of range.
    pub fn col(&self, j: usize) -> DVec {
        assert!(j < self.cols, "column index {j} out of range");
        DVec::from_fn(self.rows, |i| self[(i, j)])
    }

    /// Writes `v` into row `i`.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range or `v.len() != ncols()`.
    pub fn set_row(&mut self, i: usize, v: &DVec) {
        assert!(i < self.rows, "row index {i} out of range");
        assert_eq!(v.len(), self.cols, "set_row: length mismatch");
        self.data[i * self.cols..(i + 1) * self.cols].copy_from_slice(v.as_slice());
    }

    /// Matrix–vector product `A·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn matvec(&self, x: &DVec) -> DVec {
        assert_eq!(x.len(), self.cols, "matvec: length mismatch");
        DVec::from_fn(self.rows, |i| {
            let row = &self.data[i * self.cols..(i + 1) * self.cols];
            row.iter().zip(x.iter()).map(|(a, b)| a * b).sum()
        })
    }

    /// Transposed matrix–vector product `Aᵀ·x`.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != nrows()`.
    pub fn tr_matvec(&self, x: &DVec) -> DVec {
        assert_eq!(x.len(), self.rows, "tr_matvec: length mismatch");
        let mut y = DVec::zeros(self.cols);
        for i in 0..self.rows {
            let xi = x[i];
            for j in 0..self.cols {
                y[j] += self[(i, j)] * xi;
            }
        }
        y
    }

    /// Matrix–matrix product `A·B`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `self.ncols() != other.nrows()`.
    pub fn matmul(&self, other: &DMat) -> Result<DMat, LinalgError> {
        if self.cols != other.rows {
            return Err(LinalgError::DimensionMismatch {
                op: "matmul",
                expected: self.cols,
                found: other.rows,
            });
        }
        let mut out = DMat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let aik = self[(i, k)];
                if aik == 0.0 {
                    continue;
                }
                for j in 0..other.cols {
                    out[(i, j)] += aik * other[(k, j)];
                }
            }
        }
        Ok(out)
    }

    /// Transpose.
    pub fn transpose(&self) -> DMat {
        DMat::from_fn(self.cols, self.rows, |i, j| self[(j, i)])
    }

    /// Frobenius norm.
    pub fn norm_frobenius(&self) -> f64 {
        self.data.iter().map(|x| x * x).sum::<f64>().sqrt()
    }

    /// Maximum absolute entry.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, &x| m.max(x.abs()))
    }

    /// `true` when every entry is finite.
    pub fn is_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Sets every entry to `value` in place (no reallocation).
    pub fn fill(&mut self, value: f64) {
        self.data.fill(value);
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::Singular`] when a pivot vanishes.
    pub fn lu(&self) -> Result<Lu, LinalgError> {
        Lu::new(self)
    }

    /// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::NotPositiveDefinite`].
    pub fn cholesky(&self) -> Result<Cholesky, LinalgError> {
        Cholesky::new(self)
    }

    /// Householder QR factorization.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for an empty matrix.
    pub fn qr(&self) -> Result<Qr, LinalgError> {
        Qr::new(self)
    }

    /// Raw row-major data.
    pub fn as_slice(&self) -> &[f64] {
        &self.data
    }
}

impl Index<(usize, usize)> for DMat {
    type Output = f64;
    fn index(&self, (i, j): (usize, usize)) -> &f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for DMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut f64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

impl fmt::Display for DMat {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for i in 0..self.rows {
            write!(f, "[")?;
            for j in 0..self.cols {
                if j > 0 {
                    write!(f, ", ")?;
                }
                write!(f, "{:.6e}", self[(i, j)])?;
            }
            writeln!(f, "]")?;
        }
        Ok(())
    }
}

impl Add for &DMat {
    type Output = DMat;
    fn add(self, rhs: &DMat) -> DMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "add: shape mismatch"
        );
        DMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] + rhs[(i, j)])
    }
}

impl Sub for &DMat {
    type Output = DMat;
    fn sub(self, rhs: &DMat) -> DMat {
        assert_eq!(
            (self.rows, self.cols),
            (rhs.rows, rhs.cols),
            "sub: shape mismatch"
        );
        DMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] - rhs[(i, j)])
    }
}

impl Mul<f64> for &DMat {
    type Output = DMat;
    fn mul(self, rhs: f64) -> DMat {
        DMat::from_fn(self.rows, self.cols, |i, j| self[(i, j)] * rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_matvec_is_id() {
        let i3 = DMat::identity(3);
        let x = DVec::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(i3.matvec(&x), x);
    }

    #[test]
    fn from_rows_rejects_ragged() {
        assert!(matches!(
            DMat::from_rows(&[&[1.0, 2.0], &[3.0]]),
            Err(LinalgError::RaggedRows { row: 1 })
        ));
        assert!(matches!(DMat::from_rows(&[]), Err(LinalgError::Empty)));
    }

    #[test]
    fn matmul_known_product() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        let b = DMat::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]).unwrap();
        let c = a.matmul(&b).unwrap();
        assert_eq!(c[(0, 0)], 19.0);
        assert_eq!(c[(0, 1)], 22.0);
        assert_eq!(c[(1, 0)], 43.0);
        assert_eq!(c[(1, 1)], 50.0);
    }

    #[test]
    fn matmul_rejects_bad_dims() {
        let a = DMat::zeros(2, 3);
        let b = DMat::zeros(2, 2);
        assert!(matches!(
            a.matmul(&b),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transpose_involution() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        assert_eq!(a.transpose().transpose(), a);
        assert_eq!(a.transpose()[(2, 1)], 6.0);
    }

    #[test]
    fn tr_matvec_matches_transpose() {
        let a = DMat::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]).unwrap();
        let x = DVec::from_slice(&[1.0, -1.0]);
        assert_eq!(a.tr_matvec(&x), a.transpose().matvec(&x));
    }

    #[test]
    fn diagonal_constructor() {
        let d = DMat::from_diagonal(&DVec::from_slice(&[2.0, 3.0]));
        let x = DVec::from_slice(&[1.0, 1.0]);
        assert_eq!(d.matvec(&x).as_slice(), &[2.0, 3.0]);
    }

    #[test]
    fn rows_and_cols_roundtrip() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert_eq!(a.row(1).as_slice(), &[3.0, 4.0]);
        assert_eq!(a.col(0).as_slice(), &[1.0, 3.0]);
        let mut b = a.clone();
        b.set_row(0, &DVec::from_slice(&[9.0, 9.0]));
        assert_eq!(b.row(0).as_slice(), &[9.0, 9.0]);
    }

    #[test]
    fn norms() {
        let a = DMat::from_rows(&[&[3.0, 0.0], &[0.0, 4.0]]).unwrap();
        assert_eq!(a.norm_frobenius(), 5.0);
        assert_eq!(a.norm_max(), 4.0);
    }
}
