use std::ops::{Index, IndexMut};

use crate::{Complex64, LinalgError};

/// A dense complex vector, used for AC small-signal solution vectors
/// (node phasors).
///
/// # Example
///
/// ```
/// use specwise_linalg::{Complex64, CVec};
///
/// let mut v = CVec::zeros(2);
/// v[0] = Complex64::new(1.0, 1.0);
/// assert!((v.norm2() - 2f64.sqrt()).abs() < 1e-15);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CVec {
    data: Vec<Complex64>,
}

impl CVec {
    /// Creates a zero vector of length `n`.
    pub fn zeros(n: usize) -> Self {
        CVec {
            data: vec![Complex64::ZERO; n],
        }
    }

    /// Creates a vector by copying a slice.
    pub fn from_slice(values: &[Complex64]) -> Self {
        CVec {
            data: values.to_vec(),
        }
    }

    /// Number of components.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// `true` when there are no components.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// View of the components.
    pub fn as_slice(&self) -> &[Complex64] {
        &self.data
    }

    /// Euclidean norm `√(Σ|zᵢ|²)`.
    pub fn norm2(&self) -> f64 {
        self.data.iter().map(|z| z.norm_sqr()).sum::<f64>().sqrt()
    }

    /// Maximum component magnitude.
    pub fn norm_inf(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }

    /// Iterator over the components.
    pub fn iter(&self) -> std::slice::Iter<'_, Complex64> {
        self.data.iter()
    }
}

impl Index<usize> for CVec {
    type Output = Complex64;
    fn index(&self, i: usize) -> &Complex64 {
        &self.data[i]
    }
}

impl IndexMut<usize> for CVec {
    fn index_mut(&mut self, i: usize) -> &mut Complex64 {
        &mut self.data[i]
    }
}

/// A dense, row-major complex matrix — the AC small-signal MNA matrix
/// `G + jωC`.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct CMat {
    rows: usize,
    cols: usize,
    data: Vec<Complex64>,
}

impl CMat {
    /// Creates a `rows × cols` zero matrix.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        CMat {
            rows,
            cols,
            data: vec![Complex64::ZERO; rows * cols],
        }
    }

    /// Number of rows.
    pub fn nrows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn ncols(&self) -> usize {
        self.cols
    }

    /// `true` when square.
    pub fn is_square(&self) -> bool {
        self.rows == self.cols
    }

    /// Matrix–vector product.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != ncols()`.
    pub fn matvec(&self, x: &CVec) -> CVec {
        assert_eq!(x.len(), self.cols, "cmat matvec: length mismatch");
        let mut y = CVec::zeros(self.rows);
        for i in 0..self.rows {
            let mut acc = Complex64::ZERO;
            for j in 0..self.cols {
                acc += self[(i, j)] * x[j];
            }
            y[i] = acc;
        }
        y
    }

    /// LU factorization with partial pivoting.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] or [`LinalgError::Singular`].
    pub fn lu(&self) -> Result<CLu, LinalgError> {
        CLu::new(self)
    }

    /// Maximum entry magnitude.
    pub fn norm_max(&self) -> f64 {
        self.data.iter().fold(0.0_f64, |m, z| m.max(z.abs()))
    }
}

impl Index<(usize, usize)> for CMat {
    type Output = Complex64;
    fn index(&self, (i, j): (usize, usize)) -> &Complex64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &self.data[i * self.cols + j]
    }
}

impl IndexMut<(usize, usize)> for CMat {
    fn index_mut(&mut self, (i, j): (usize, usize)) -> &mut Complex64 {
        assert!(
            i < self.rows && j < self.cols,
            "index ({i},{j}) out of range"
        );
        &mut self.data[i * self.cols + j]
    }
}

/// Complex LU factorization with partial pivoting: `P·A = L·U`.
///
/// Solves one complex MNA system per AC frequency point.
#[derive(Debug, Clone)]
pub struct CLu {
    lu: CMat,
    perm: Vec<usize>,
}

impl CLu {
    /// Factors a square complex matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`], [`LinalgError::Empty`], or
    /// [`LinalgError::Singular`].
    pub fn new(a: &CMat) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let scale = a.norm_max().max(1.0);
        for k in 0..n {
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if !(pmax > scale * 1e-300) {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                for j in (k + 1)..n {
                    let ukj = lu[(k, j)];
                    lu[(i, j)] -= factor * ukj;
                }
            }
        }
        Ok(CLu { lu, perm })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve(&self, b: &CVec) -> Result<CVec, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "clu solve",
                expected: n,
                found: b.len(),
            });
        }
        let mut y = CVec::zeros(n);
        for i in 0..n {
            y[i] = b[self.perm[i]];
        }
        for i in 1..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves the (unconjugated) transposed system `Aᵀ·y = c` on the same
    /// factors: `Uᵀ` forward, `Lᵀ` backward, then the row permutation is
    /// undone. The adjoint AC solve uses this to reuse the factorization of
    /// `G + jωC` for every output functional.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve_transposed(&self, c: &CVec) -> Result<CVec, LinalgError> {
        let n = self.dim();
        if c.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "clu transposed solve",
                expected: n,
                found: c.len(),
            });
        }
        // Forward with Uᵀ (lower triangular, non-unit diagonal).
        let mut w = CVec::zeros(n);
        for i in 0..n {
            let mut acc = c[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * w[j];
            }
            w[i] = acc / self.lu[(i, i)];
        }
        // Backward with Lᵀ (unit upper triangular).
        for i in (0..n).rev() {
            let mut acc = w[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)] * w[j];
            }
            w[i] = acc;
        }
        // Undo the row permutation: the permuted solve produced y[perm[i]].
        let mut y = CVec::zeros(n);
        for i in 0..n {
            y[self.perm[i]] = w[i];
        }
        Ok(y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn c(re: f64, im: f64) -> Complex64 {
        Complex64::new(re, im)
    }

    #[test]
    fn solves_complex_system() {
        // [[1+j, 2], [0, 1-j]] x = b, with known x.
        let mut a = CMat::zeros(2, 2);
        a[(0, 0)] = c(1.0, 1.0);
        a[(0, 1)] = c(2.0, 0.0);
        a[(1, 1)] = c(1.0, -1.0);
        let xtrue = CVec::from_slice(&[c(1.0, -1.0), c(0.5, 0.5)]);
        let b = a.matvec(&xtrue);
        let x = a.lu().unwrap().solve(&b).unwrap();
        for i in 0..2 {
            assert!((x[i] - xtrue[i]).abs() < 1e-13);
        }
    }

    #[test]
    fn pivoting_handles_zero_diagonal() {
        let mut a = CMat::zeros(2, 2);
        a[(0, 1)] = c(1.0, 0.0);
        a[(1, 0)] = c(1.0, 0.0);
        let b = CVec::from_slice(&[c(5.0, 0.0), c(7.0, 0.0)]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert!((x[0] - c(7.0, 0.0)).abs() < 1e-14);
        assert!((x[1] - c(5.0, 0.0)).abs() < 1e-14);
    }

    #[test]
    fn singular_rejected() {
        let a = CMat::zeros(2, 2);
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rc_impedance_divider() {
        // Voltage divider: R in series with C at ω=1/(RC) gives |H| = 1/√2.
        let r = 1.0e3;
        let cap = 1.0e-6;
        let omega = 1.0 / (r * cap);
        // Node equation form: single unknown node v_out,
        // (v_in - v_out)/R = jωC v_out.
        let mut a = CMat::zeros(1, 1);
        a[(0, 0)] = c(1.0 / r, omega * cap);
        let b = CVec::from_slice(&[c(1.0 / r, 0.0)]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert!((x[0].abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-12);
        assert!((x[0].arg() + std::f64::consts::FRAC_PI_4).abs() < 1e-12);
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let mut state = 4242u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 6, 11] {
            let mut a = CMat::zeros(n, n);
            for i in 0..n {
                for j in 0..n {
                    a[(i, j)] = c(next(), next());
                }
                a[(i, i)] += c(n as f64, 0.0);
            }
            let mut ytrue = CVec::zeros(n);
            for i in 0..n {
                ytrue[i] = c(next(), next());
            }
            // rhs = Aᵀ·ytrue (unconjugated).
            let mut rhs = CVec::zeros(n);
            for j in 0..n {
                let mut acc = Complex64::ZERO;
                for i in 0..n {
                    acc += a[(i, j)] * ytrue[i];
                }
                rhs[j] = acc;
            }
            let y = a.lu().unwrap().solve_transposed(&rhs).unwrap();
            for i in 0..n {
                assert!((y[i] - ytrue[i]).abs() < 1e-10, "n={n} component {i}");
            }
        }
    }

    #[test]
    fn random_like_complex_residual() {
        let mut state = 99u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let n = 12;
        let mut a = CMat::zeros(n, n);
        for i in 0..n {
            for j in 0..n {
                a[(i, j)] = c(next(), next());
            }
            a[(i, i)] += c(n as f64, 0.0);
        }
        let mut xt = CVec::zeros(n);
        for i in 0..n {
            xt[i] = c(next(), next());
        }
        let b = a.matvec(&xt);
        let x = a.lu().unwrap().solve(&b).unwrap();
        let mut err = 0.0_f64;
        for i in 0..n {
            err = err.max((x[i] - xt[i]).abs());
        }
        assert!(err < 1e-10);
    }
}
