use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, MulAssign, Neg, Sub, SubAssign};

/// A double-precision complex number.
///
/// Implemented locally (rather than pulling in `num-complex`) to keep the
/// dependency surface of the workspace at the approved-crate minimum. Only
/// the operations needed by small-signal AC analysis are provided.
///
/// # Example
///
/// ```
/// use specwise_linalg::Complex64;
///
/// let j = Complex64::I;
/// let z = Complex64::new(3.0, 4.0);
/// assert_eq!(z.abs(), 5.0);
/// assert_eq!((j * j).re, -1.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex64 {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex64 {
    /// The additive identity.
    pub const ZERO: Complex64 = Complex64 { re: 0.0, im: 0.0 };
    /// The multiplicative identity.
    pub const ONE: Complex64 = Complex64 { re: 1.0, im: 0.0 };
    /// The imaginary unit.
    pub const I: Complex64 = Complex64 { re: 0.0, im: 1.0 };

    /// Creates a complex number from rectangular coordinates.
    pub const fn new(re: f64, im: f64) -> Self {
        Complex64 { re, im }
    }

    /// Creates a purely real number.
    pub const fn from_real(re: f64) -> Self {
        Complex64 { re, im: 0.0 }
    }

    /// Creates a complex number from polar coordinates.
    ///
    /// ```
    /// use specwise_linalg::Complex64;
    /// let z = Complex64::from_polar(2.0, std::f64::consts::FRAC_PI_2);
    /// assert!(z.re.abs() < 1e-15);
    /// assert!((z.im - 2.0).abs() < 1e-15);
    /// ```
    pub fn from_polar(r: f64, theta: f64) -> Self {
        Complex64 {
            re: r * theta.cos(),
            im: r * theta.sin(),
        }
    }

    /// Magnitude `|z|`, computed with `hypot` for robustness.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    /// Squared magnitude `|z|²`.
    pub fn norm_sqr(self) -> f64 {
        self.re * self.re + self.im * self.im
    }

    /// Principal argument in `(-π, π]`.
    pub fn arg(self) -> f64 {
        self.im.atan2(self.re)
    }

    /// Complex conjugate.
    pub fn conj(self) -> Complex64 {
        Complex64 {
            re: self.re,
            im: -self.im,
        }
    }

    /// Multiplicative inverse `1/z`, using Smith's algorithm to avoid
    /// overflow for extreme magnitudes.
    ///
    /// # Panics
    ///
    /// Does not panic; returns infinities for `z = 0` like `1.0 / 0.0` would.
    pub fn recip(self) -> Complex64 {
        Complex64::ONE / self
    }

    /// `true` when both parts are finite.
    pub fn is_finite(self) -> bool {
        self.re.is_finite() && self.im.is_finite()
    }
}

impl fmt::Display for Complex64 {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.im >= 0.0 {
            write!(f, "{}+{}i", self.re, self.im)
        } else {
            write!(f, "{}{}i", self.re, self.im)
        }
    }
}

impl From<f64> for Complex64 {
    fn from(re: f64) -> Self {
        Complex64::from_real(re)
    }
}

impl Add for Complex64 {
    type Output = Complex64;
    fn add(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re + rhs.re, self.im + rhs.im)
    }
}

impl Sub for Complex64 {
    type Output = Complex64;
    fn sub(self, rhs: Complex64) -> Complex64 {
        Complex64::new(self.re - rhs.re, self.im - rhs.im)
    }
}

impl Mul for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: Complex64) -> Complex64 {
        Complex64::new(
            self.re * rhs.re - self.im * rhs.im,
            self.re * rhs.im + self.im * rhs.re,
        )
    }
}

impl Mul<f64> for Complex64 {
    type Output = Complex64;
    fn mul(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re * rhs, self.im * rhs)
    }
}

impl Div for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: Complex64) -> Complex64 {
        // Smith's algorithm: scale by the dominant component.
        if rhs.re.abs() >= rhs.im.abs() {
            let r = rhs.im / rhs.re;
            let den = rhs.re + rhs.im * r;
            Complex64::new((self.re + self.im * r) / den, (self.im - self.re * r) / den)
        } else {
            let r = rhs.re / rhs.im;
            let den = rhs.re * r + rhs.im;
            Complex64::new((self.re * r + self.im) / den, (self.im * r - self.re) / den)
        }
    }
}

impl Div<f64> for Complex64 {
    type Output = Complex64;
    fn div(self, rhs: f64) -> Complex64 {
        Complex64::new(self.re / rhs, self.im / rhs)
    }
}

impl Neg for Complex64 {
    type Output = Complex64;
    fn neg(self) -> Complex64 {
        Complex64::new(-self.re, -self.im)
    }
}

impl AddAssign for Complex64 {
    fn add_assign(&mut self, rhs: Complex64) {
        *self = *self + rhs;
    }
}

impl SubAssign for Complex64 {
    fn sub_assign(&mut self, rhs: Complex64) {
        *self = *self - rhs;
    }
}

impl MulAssign for Complex64 {
    fn mul_assign(&mut self, rhs: Complex64) {
        *self = *self * rhs;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn arithmetic_identities() {
        let z = Complex64::new(2.0, -3.0);
        assert_eq!(z + Complex64::ZERO, z);
        assert_eq!(z * Complex64::ONE, z);
        assert_eq!(z - z, Complex64::ZERO);
        assert_eq!(-z + z, Complex64::ZERO);
    }

    #[test]
    fn i_squared_is_minus_one() {
        assert_eq!(Complex64::I * Complex64::I, Complex64::new(-1.0, 0.0));
    }

    #[test]
    fn division_inverts_multiplication() {
        let a = Complex64::new(1.5, -2.5);
        let b = Complex64::new(-0.5, 4.0);
        let q = (a * b) / b;
        assert!((q - a).abs() < 1e-14);
    }

    #[test]
    fn division_with_small_real_part() {
        let a = Complex64::ONE;
        let b = Complex64::new(1e-200, 1.0);
        let q = a / b;
        assert!(q.is_finite());
        assert!((q.abs() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn conj_and_norms() {
        let z = Complex64::new(3.0, 4.0);
        assert_eq!(z.conj(), Complex64::new(3.0, -4.0));
        assert_eq!(z.norm_sqr(), 25.0);
        assert_eq!((z * z.conj()).re, 25.0);
    }

    #[test]
    fn polar_roundtrip() {
        let z = Complex64::from_polar(2.0, 0.7);
        assert!((z.abs() - 2.0).abs() < 1e-14);
        assert!((z.arg() - 0.7).abs() < 1e-14);
    }

    #[test]
    fn recip_identity() {
        let z = Complex64::new(0.3, -0.8);
        assert!((z * z.recip() - Complex64::ONE).abs() < 1e-14);
    }
}
