use std::error::Error;
use std::fmt;

/// Errors produced by the dense linear-algebra kernels.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum LinalgError {
    /// Operand dimensions are incompatible for the requested operation.
    DimensionMismatch {
        /// Human-readable description of the operation that failed.
        op: &'static str,
        /// Dimension expected by the operation.
        expected: usize,
        /// Dimension actually provided.
        found: usize,
    },
    /// The matrix is (numerically) singular; factorization or solve failed.
    Singular {
        /// Pivot index at which a zero (or tiny) pivot was found.
        pivot: usize,
    },
    /// The matrix is not positive definite (Cholesky only).
    NotPositiveDefinite {
        /// Column at which the failure was detected.
        column: usize,
    },
    /// A matrix that must be square is not.
    NotSquare {
        /// Number of rows.
        rows: usize,
        /// Number of columns.
        cols: usize,
    },
    /// Rows of different lengths were supplied to a constructor.
    RaggedRows {
        /// Index of the first row whose length differs from row 0.
        row: usize,
    },
    /// An empty matrix or vector was supplied where data is required.
    Empty,
}

impl fmt::Display for LinalgError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinalgError::DimensionMismatch {
                op,
                expected,
                found,
            } => {
                write!(
                    f,
                    "dimension mismatch in {op}: expected {expected}, found {found}"
                )
            }
            LinalgError::Singular { pivot } => {
                write!(f, "matrix is singular (zero pivot at index {pivot})")
            }
            LinalgError::NotPositiveDefinite { column } => {
                write!(
                    f,
                    "matrix is not positive definite (failure at column {column})"
                )
            }
            LinalgError::NotSquare { rows, cols } => {
                write!(f, "matrix must be square, got {rows}x{cols}")
            }
            LinalgError::RaggedRows { row } => {
                write!(f, "row {row} has a different length than row 0")
            }
            LinalgError::Empty => write!(f, "empty matrix or vector supplied"),
        }
    }
}

impl Error for LinalgError {}
