//! Dense linear-algebra kernels for the `specwise` analog yield-optimization
//! workspace.
//!
//! The crate provides exactly the operations the rest of the workspace needs,
//! implemented from scratch with no external dependencies:
//!
//! * [`DVec`] / [`DMat`] — dense real vectors and (row-major) matrices,
//! * [`Lu`] — LU factorization with partial pivoting (the workhorse of the
//!   DC Newton iteration in the circuit simulator),
//! * [`Cholesky`] — used to factor covariance matrices `C(d) = G·Gᵀ`
//!   (paper Eq. 11) and to sample correlated Gaussians,
//! * [`Qr`] — Householder QR for least-squares sub-problems,
//! * [`Complex64`], [`CVec`], [`CMat`], [`CLu`] — complex arithmetic and a
//!   complex solver for small-signal AC analysis,
//! * [`SparsePattern`], [`SparseSymbolic`], [`SparseLu`], [`Triplets`] —
//!   sparse CSC assembly and a fill-reducing sparse LU (real and complex)
//!   with a cached symbolic/numeric split for repeated factorizations of
//!   one circuit topology.
//!
//! # Example
//!
//! ```
//! use specwise_linalg::{DMat, DVec};
//!
//! # fn main() -> Result<(), specwise_linalg::LinalgError> {
//! let a = DMat::from_rows(&[&[4.0, 1.0], &[1.0, 3.0]])?;
//! let b = DVec::from_slice(&[1.0, 2.0]);
//! let x = a.lu()?.solve(&b)?;
//! let r = &a.matvec(&x) - &b;
//! assert!(r.norm2() < 1e-12);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod cholesky;
mod cmatrix;
mod complex;
mod error;
mod lu;
mod matrix;
mod qr;
mod sparse;
mod vector;

pub use cholesky::Cholesky;
pub use cmatrix::{CLu, CMat, CVec};
pub use complex::Complex64;
pub use error::LinalgError;
pub use lu::Lu;
pub use matrix::DMat;
pub use qr::Qr;
pub use sparse::{SparseLu, SparsePattern, SparseScalar, SparseSymbolic, Triplets};
pub use vector::DVec;
