use crate::{DMat, DVec, LinalgError};

/// LU factorization with partial (row) pivoting: `P·A = L·U`.
///
/// This is the workhorse solver of the circuit simulator's Newton iteration:
/// the MNA Jacobian is factored once per Newton step and solved against the
/// residual.
///
/// # Example
///
/// ```
/// use specwise_linalg::{DMat, DVec};
///
/// # fn main() -> Result<(), specwise_linalg::LinalgError> {
/// let a = DMat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]])?; // needs pivoting
/// let lu = a.lu()?;
/// let x = lu.solve(&DVec::from_slice(&[2.0, 2.0]))?;
/// assert!((x[0] - 1.0).abs() < 1e-12);
/// assert!((x[1] - 1.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Lu {
    /// Packed L (unit lower, below diagonal) and U (upper, including diagonal).
    lu: DMat,
    /// Row permutation: `perm[i]` is the original row now in position `i`.
    perm: Vec<usize>,
    /// Sign of the permutation (+1 / −1), for determinants.
    perm_sign: f64,
}

/// Relative pivot threshold below which a matrix is declared singular.
const PIVOT_REL_TOL: f64 = 1e-300;

impl Lu {
    /// Factors a square matrix.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] if `a` is not square, and
    /// [`LinalgError::Singular`] when a pivot underflows the threshold.
    pub fn new(a: &DMat) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut lu = a.clone();
        let mut perm: Vec<usize> = (0..n).collect();
        let mut perm_sign = 1.0;
        let scale = a.norm_max().max(1.0);

        for k in 0..n {
            // Find pivot row.
            let mut p = k;
            let mut pmax = lu[(k, k)].abs();
            for i in (k + 1)..n {
                let v = lu[(i, k)].abs();
                if v > pmax {
                    pmax = v;
                    p = i;
                }
            }
            if !(pmax > scale * PIVOT_REL_TOL) {
                return Err(LinalgError::Singular { pivot: k });
            }
            if p != k {
                for j in 0..n {
                    let tmp = lu[(k, j)];
                    lu[(k, j)] = lu[(p, j)];
                    lu[(p, j)] = tmp;
                }
                perm.swap(k, p);
                perm_sign = -perm_sign;
            }
            let pivot = lu[(k, k)];
            for i in (k + 1)..n {
                let factor = lu[(i, k)] / pivot;
                lu[(i, k)] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..n {
                        let ukj = lu[(k, j)];
                        lu[(i, j)] -= factor * ukj;
                    }
                }
            }
        }
        Ok(Lu {
            lu,
            perm,
            perm_sign,
        })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.lu.nrows()
    }

    /// Solves `A·x = b`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &DVec) -> Result<DVec, LinalgError> {
        let n = self.dim();
        if b.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu solve",
                expected: n,
                found: b.len(),
            });
        }
        // Apply permutation, then forward substitution with unit-lower L.
        let mut y = DVec::from_fn(n, |i| b[self.perm[i]]);
        for i in 1..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.lu[(i, j)] * y[j];
            }
            y[i] = acc;
        }
        // Backward substitution with U.
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.lu[(i, j)] * x[j];
            }
            x[i] = acc / self.lu[(i, i)];
        }
        Ok(x)
    }

    /// Solves the transposed system `Aᵀ·y = c` on the same factors.
    ///
    /// With `P·A = L·U` this is `Uᵀ·(Lᵀ·(P·y)) = c`: one forward sweep with
    /// `Uᵀ` and one backward sweep with `Lᵀ`, then the row permutation is
    /// undone. No new factorization — this is what makes adjoint sensitivity
    /// analysis O(n²) per right-hand side instead of O(n³).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] if `c.len() != dim()`.
    pub fn solve_transposed(&self, c: &DVec) -> Result<DVec, LinalgError> {
        let n = self.dim();
        if c.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "lu transposed solve",
                expected: n,
                found: c.len(),
            });
        }
        // Forward substitution with Uᵀ (lower triangular, non-unit diagonal).
        let mut w = DVec::zeros(n);
        for i in 0..n {
            let mut acc = c[i];
            for j in 0..i {
                acc -= self.lu[(j, i)] * w[j];
            }
            w[i] = acc / self.lu[(i, i)];
        }
        // Backward substitution with Lᵀ (unit upper triangular).
        for i in (0..n).rev() {
            let mut acc = w[i];
            for j in (i + 1)..n {
                acc -= self.lu[(j, i)] * w[j];
            }
            w[i] = acc;
        }
        // Undo the row permutation: the permuted solve produced y[perm[i]].
        let mut y = DVec::zeros(n);
        for i in 0..n {
            y[self.perm[i]] = w[i];
        }
        Ok(y)
    }

    /// Determinant of the original matrix.
    pub fn det(&self) -> f64 {
        let mut d = self.perm_sign;
        for i in 0..self.dim() {
            d *= self.lu[(i, i)];
        }
        d
    }

    /// Explicit inverse (column-by-column solve). Prefer [`Lu::solve`] where
    /// possible; the inverse is only needed for small covariance work.
    ///
    /// # Errors
    ///
    /// Propagates solve errors (none expected once factored).
    pub fn inverse(&self) -> Result<DMat, LinalgError> {
        let n = self.dim();
        let mut inv = DMat::zeros(n, n);
        for j in 0..n {
            let x = self.solve(&DVec::basis(n, j))?;
            for i in 0..n {
                inv[(i, j)] = x[i];
            }
        }
        Ok(inv)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn residual(a: &DMat, x: &DVec, b: &DVec) -> f64 {
        (&a.matvec(x) - b).norm_inf()
    }

    #[test]
    fn solves_diagonal() {
        let a = DMat::from_diagonal(&DVec::from_slice(&[2.0, 4.0]));
        let x = a
            .lu()
            .unwrap()
            .solve(&DVec::from_slice(&[2.0, 8.0]))
            .unwrap();
        assert_eq!(x.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn solves_with_pivoting() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        let b = DVec::from_slice(&[3.0, 7.0]);
        let x = a.lu().unwrap().solve(&b).unwrap();
        assert!(residual(&a, &x, &b) < 1e-14);
    }

    #[test]
    fn rejects_singular() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 4.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
    }

    #[test]
    fn rejects_non_square() {
        let a = DMat::zeros(2, 3);
        assert!(matches!(a.lu(), Err(LinalgError::NotSquare { .. })));
    }

    #[test]
    fn det_of_known_matrix() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]).unwrap();
        assert!((a.lu().unwrap().det() + 2.0).abs() < 1e-12);
    }

    #[test]
    fn det_sign_with_pivot_swap() {
        let a = DMat::from_rows(&[&[0.0, 1.0], &[1.0, 0.0]]).unwrap();
        assert!((a.lu().unwrap().det() + 1.0).abs() < 1e-12);
    }

    #[test]
    fn inverse_times_matrix_is_identity() {
        let a = DMat::from_rows(&[&[4.0, 7.0], &[2.0, 6.0]]).unwrap();
        let inv = a.lu().unwrap().inverse().unwrap();
        let prod = a.matmul(&inv).unwrap();
        assert!((&prod - &DMat::identity(2)).norm_max() < 1e-12);
    }

    #[test]
    fn solve_rejects_wrong_length() {
        let a = DMat::identity(3);
        let lu = a.lu().unwrap();
        assert!(matches!(
            lu.solve(&DVec::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn transposed_solve_matches_explicit_transpose() {
        let a = DMat::from_rows(&[&[0.0, 2.0, 1.0], &[1.0, 1.0, -3.0], &[4.0, 0.5, 2.0]]).unwrap();
        let c = DVec::from_slice(&[1.0, -2.0, 0.5]);
        let y = a.lu().unwrap().solve_transposed(&c).unwrap();
        // Oracle: factor Aᵀ explicitly and solve the plain system.
        let at = DMat::from_fn(3, 3, |i, j| a[(j, i)]);
        let want = at.lu().unwrap().solve(&c).unwrap();
        assert!((&y - &want).norm_inf() < 1e-12);
    }

    #[test]
    fn transposed_solve_random_systems() {
        let mut state = 987654321u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 13, 20] {
            let mut a = DMat::from_fn(n, n, |_, _| next());
            for i in 0..n {
                a[(i, i)] += n as f64;
            }
            let ytrue = DVec::from_fn(n, |i| (i as f64) - 2.0);
            // c = Aᵀ·ytrue.
            let c = DVec::from_fn(n, |j| (0..n).map(|i| a[(i, j)] * ytrue[i]).sum());
            let y = a.lu().unwrap().solve_transposed(&c).unwrap();
            assert!((&y - &ytrue).norm_inf() < 1e-9, "n={n}");
        }
    }

    #[test]
    fn transposed_solve_rejects_wrong_length() {
        let lu = DMat::identity(3).lu().unwrap();
        assert!(matches!(
            lu.solve_transposed(&DVec::zeros(2)),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn random_like_system_small_residual() {
        // Deterministic pseudo-random fill (LCG) to avoid a rand dependency here.
        let mut state = 12345u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 2, 5, 10, 20] {
            let mut a = DMat::from_fn(n, n, |_, _| next());
            for i in 0..n {
                a[(i, i)] += n as f64; // diagonal dominance => nonsingular
            }
            let xtrue = DVec::from_fn(n, |i| (i + 1) as f64);
            let b = a.matvec(&xtrue);
            let x = a.lu().unwrap().solve(&b).unwrap();
            assert!((&x - &xtrue).norm_inf() < 1e-9, "n={n}");
        }
    }
}
