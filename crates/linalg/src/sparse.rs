//! Sparse matrix types and a fill-reducing sparse LU factorization.
//!
//! The MNA Jacobian of an analog circuit is extremely sparse (a handful of
//! entries per row, fixed by the topology), and the yield flow factors the
//! *same* sparsity pattern thousands of times at nearby parameter points.
//! This module splits that work the way production circuit solvers (KLU,
//! Sparse 1.3) do:
//!
//! * [`SparsePattern`] — an immutable compressed-sparse-column pattern built
//!   once per circuit topology (via [`SparsePattern::from_entries`] or
//!   [`Triplets`]); values live in a flat slice indexed by pattern position,
//!   so per-iteration assembly is just `vals[idx] += v` with no hashing and
//!   no allocation.
//! * [`SparseSymbolic`] — the pattern plus a fill-reducing column ordering
//!   (greedy minimum degree on the symmetrized pattern `A + Aᵀ`). Computed
//!   once and shared (it is cheap to clone behind an `Arc`).
//! * [`SparseLu`] — a left-looking Gilbert–Peierls factorization with
//!   partial pivoting, generic over [`f64`] and [`Complex64`]. The first
//!   [`SparseLu::factor`] learns the elimination structure (reach sets,
//!   fill pattern, pivot sequence); every later [`SparseLu::refactor`]
//!   replays that structure on new values in `O(flops)` with no graph
//!   traversal, falling back with an error when the frozen pivot sequence
//!   becomes numerically unacceptable so the caller can re-factor from
//!   scratch.
//!
//! Singular detection mirrors the dense [`Lu`](crate::Lu): a factorization
//! fails with [`LinalgError::Singular`] when the best available pivot does
//! not exceed `max|aᵢⱼ|·1e-300`, so dense and sparse agree on which systems
//! are solvable.

use std::collections::BTreeSet;
use std::ops::{Add, Div, Mul, Neg, Sub};

use crate::{Complex64, DVec, LinalgError};

/// Relative pivot threshold below which a matrix is declared singular.
/// Identical to the dense LU threshold so the two backends agree.
const PIVOT_REL_TOL: f64 = 1e-300;

/// A refactorization pivot must stay within this factor of the largest
/// candidate in its column, or [`SparseLu::refactor`] reports the frozen
/// pivot sequence as stale (the caller then re-factors with fresh pivoting).
const REFACTOR_PIVOT_RATIO: f64 = 1e-8;

const UNSET: usize = usize::MAX;

/// Scalar types the sparse LU can factor: real [`f64`] and [`Complex64`].
pub trait SparseScalar:
    Copy
    + PartialEq
    + std::fmt::Debug
    + Add<Output = Self>
    + Sub<Output = Self>
    + Mul<Output = Self>
    + Div<Output = Self>
    + Neg<Output = Self>
{
    /// Additive identity.
    const ZERO: Self;
    /// Modulus (absolute value) used for pivot selection.
    fn modulus(self) -> f64;
    /// True when the value contains no NaN/infinity.
    fn is_finite_scalar(self) -> bool;
}

impl SparseScalar for f64 {
    const ZERO: f64 = 0.0;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

impl SparseScalar for Complex64 {
    const ZERO: Complex64 = Complex64::ZERO;
    #[inline]
    fn modulus(self) -> f64 {
        self.abs()
    }
    #[inline]
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
}

/// Immutable compressed-sparse-column sparsity pattern of a square matrix.
///
/// Built once per topology; positions returned by [`SparsePattern::index_of`]
/// stay valid for the lifetime of the pattern, so callers can precompute an
/// index map and assemble values with plain slice writes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SparsePattern {
    n: usize,
    col_ptr: Vec<usize>,
    row_idx: Vec<usize>,
}

impl SparsePattern {
    /// Builds a pattern from `(row, col)` pairs (duplicates are merged).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for `n == 0` and
    /// [`LinalgError::DimensionMismatch`] when an index is out of range.
    pub fn from_entries(n: usize, entries: &[(usize, usize)]) -> Result<Self, LinalgError> {
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut sorted: Vec<(usize, usize)> = Vec::with_capacity(entries.len());
        for &(r, c) in entries {
            if r >= n || c >= n {
                return Err(LinalgError::DimensionMismatch {
                    op: "sparse pattern entry",
                    expected: n,
                    found: r.max(c),
                });
            }
            sorted.push((c, r));
        }
        sorted.sort_unstable();
        sorted.dedup();
        let mut col_ptr = vec![0usize; n + 1];
        let mut row_idx = Vec::with_capacity(sorted.len());
        for &(c, r) in &sorted {
            col_ptr[c + 1] += 1;
            row_idx.push(r);
        }
        for c in 0..n {
            col_ptr[c + 1] += col_ptr[c];
        }
        Ok(SparsePattern {
            n,
            col_ptr,
            row_idx,
        })
    }

    /// Matrix dimension.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Number of structural nonzeros.
    pub fn nnz(&self) -> usize {
        self.row_idx.len()
    }

    /// Position of entry `(r, c)` in the values array, if present.
    #[inline]
    pub fn index_of(&self, r: usize, c: usize) -> Option<usize> {
        let lo = self.col_ptr[c];
        let hi = self.col_ptr[c + 1];
        self.row_idx[lo..hi]
            .binary_search(&r)
            .ok()
            .map(|off| lo + off)
    }

    /// Row indices of column `c`.
    #[inline]
    pub fn col(&self, c: usize) -> &[usize] {
        &self.row_idx[self.col_ptr[c]..self.col_ptr[c + 1]]
    }

    /// Range of positions belonging to column `c`.
    #[inline]
    pub fn col_range(&self, c: usize) -> std::ops::Range<usize> {
        self.col_ptr[c]..self.col_ptr[c + 1]
    }

    /// Compressed-sparse-row view: `(row_ptr, col_idx, csc_pos)`, where
    /// `csc_pos[k]` is the position in the CSC values array of the `k`-th
    /// CSR entry. Useful for row-oriented traversals over the same values.
    pub fn to_csr(&self) -> (Vec<usize>, Vec<usize>, Vec<usize>) {
        let mut row_ptr = vec![0usize; self.n + 1];
        for &r in &self.row_idx {
            row_ptr[r + 1] += 1;
        }
        for r in 0..self.n {
            row_ptr[r + 1] += row_ptr[r];
        }
        let mut cursor = row_ptr.clone();
        let mut col_idx = vec![0usize; self.nnz()];
        let mut csc_pos = vec![0usize; self.nnz()];
        for c in 0..self.n {
            for p in self.col_range(c) {
                let r = self.row_idx[p];
                let slot = cursor[r];
                cursor[r] += 1;
                col_idx[slot] = c;
                csc_pos[slot] = p;
            }
        }
        (row_ptr, col_idx, csc_pos)
    }
}

/// Triplet (coordinate-format) accumulator for assembling a sparse matrix.
///
/// Duplicate coordinates are summed on [`Triplets::build`], matching the
/// usual MNA "stamping" convention.
#[derive(Debug, Clone)]
pub struct Triplets<T> {
    n: usize,
    entries: Vec<(usize, usize, T)>,
}

impl<T: SparseScalar> Triplets<T> {
    /// New accumulator for an `n×n` matrix.
    pub fn new(n: usize) -> Self {
        Triplets {
            n,
            entries: Vec::new(),
        }
    }

    /// Adds `v` at `(r, c)`.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] for out-of-range indices.
    pub fn push(&mut self, r: usize, c: usize, v: T) -> Result<(), LinalgError> {
        if r >= self.n || c >= self.n {
            return Err(LinalgError::DimensionMismatch {
                op: "triplet entry",
                expected: self.n,
                found: r.max(c),
            });
        }
        self.entries.push((r, c, v));
        Ok(())
    }

    /// Compresses to CSC, summing duplicates.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::Empty`] for a zero-dimension accumulator.
    pub fn build(&self) -> Result<(SparsePattern, Vec<T>), LinalgError> {
        let coords: Vec<(usize, usize)> = self.entries.iter().map(|&(r, c, _)| (r, c)).collect();
        let pattern = SparsePattern::from_entries(self.n, &coords)?;
        let mut vals = vec![T::ZERO; pattern.nnz()];
        for &(r, c, v) in &self.entries {
            let idx = pattern
                .index_of(r, c)
                .expect("pattern was built from these coordinates");
            vals[idx] = vals[idx] + v;
        }
        Ok((pattern, vals))
    }
}

/// Sparsity pattern plus a fill-reducing column ordering.
///
/// The ordering is a greedy minimum-degree elimination on the symmetrized
/// pattern `A + Aᵀ` with deterministic lowest-index tie-breaking — the same
/// family of heuristic as AMD/Markowitz, sized for MNA systems (tens of
/// unknowns) where the `O(n²)` degree scan is negligible.
#[derive(Debug, Clone)]
pub struct SparseSymbolic {
    pattern: SparsePattern,
    colperm: Vec<usize>,
}

impl SparseSymbolic {
    /// Analyzes a pattern: computes the fill-reducing column order.
    pub fn new(pattern: SparsePattern) -> Self {
        let colperm = min_degree_order(&pattern);
        SparseSymbolic { pattern, colperm }
    }

    /// The underlying pattern.
    pub fn pattern(&self) -> &SparsePattern {
        &self.pattern
    }

    /// Column elimination order: `colperm[k]` is the original column
    /// eliminated at step `k`.
    pub fn colperm(&self) -> &[usize] {
        &self.colperm
    }
}

/// Greedy minimum-degree ordering on the symmetrized pattern.
fn min_degree_order(pattern: &SparsePattern) -> Vec<usize> {
    let n = pattern.n();
    let mut adj: Vec<BTreeSet<usize>> = vec![BTreeSet::new(); n];
    for c in 0..n {
        for &r in pattern.col(c) {
            if r != c {
                adj[r].insert(c);
                adj[c].insert(r);
            }
        }
    }
    let mut eliminated = vec![false; n];
    let mut order = Vec::with_capacity(n);
    for _ in 0..n {
        let mut best = UNSET;
        let mut best_deg = usize::MAX;
        for v in 0..n {
            if !eliminated[v] && adj[v].len() < best_deg {
                best_deg = adj[v].len();
                best = v;
            }
        }
        eliminated[best] = true;
        order.push(best);
        let neigh: Vec<usize> = adj[best].iter().copied().collect();
        for &u in &neigh {
            adj[u].remove(&best);
        }
        for i in 0..neigh.len() {
            for k in (i + 1)..neigh.len() {
                adj[neigh[i]].insert(neigh[k]);
                adj[neigh[k]].insert(neigh[i]);
            }
        }
        adj[best].clear();
    }
    order
}

/// Sparse LU factorization `P·A·Q = L·U` with partial pivoting and a frozen,
/// replayable elimination structure.
///
/// `Q` is the fill-reducing column order from [`SparseSymbolic`]; `P` is the
/// row permutation chosen by partial pivoting during [`SparseLu::factor`].
/// [`SparseLu::refactor`] reuses `P`, `Q`, the fill pattern, and the
/// elimination schedule, so repeated factorizations of the same topology
/// (Newton iterations, continuation steps, frequency/time/sweep points,
/// Monte-Carlo samples) skip all symbolic work.
#[derive(Debug, Clone)]
pub struct SparseLu<T> {
    n: usize,
    /// `colperm[k]` = original column eliminated at step `k` (copy of the
    /// symbolic order, kept so solves don't need the symbolic object).
    colperm: Vec<usize>,
    /// `prow[k]` = original row pivotal at step `k`.
    prow: Vec<usize>,
    /// `pinv[r]` = pivot step at which original row `r` became pivotal.
    pinv: Vec<usize>,
    /// L (unit lower in pivot order), stored by elimination step: column `k`
    /// holds the not-yet-pivotal original rows with multipliers.
    l_ptr: Vec<usize>,
    l_rows: Vec<usize>,
    l_vals: Vec<T>,
    /// U off-diagonal entries of step `jj`, keyed by earlier pivot step and
    /// stored in elimination (topological) order for exact replay.
    u_ptr: Vec<usize>,
    u_pos: Vec<usize>,
    u_vals: Vec<T>,
    u_diag: Vec<T>,
    /// Scratch reused across refactorizations (workspace + epoch flags).
    scratch_w: Vec<T>,
    scratch_flag: Vec<u32>,
    scratch_epoch: u32,
}

#[inline]
fn ensure<T: SparseScalar>(
    r: usize,
    epoch: u32,
    flags: &mut [u32],
    w: &mut [T],
    wrows: &mut Vec<usize>,
) {
    if flags[r] != epoch {
        flags[r] = epoch;
        w[r] = T::ZERO;
        wrows.push(r);
    }
}

impl<T: SparseScalar> SparseLu<T> {
    /// Factors the values `vals` (laid out per `sym.pattern()`), learning the
    /// elimination structure for later [`SparseLu::refactor`] calls.
    ///
    /// # Errors
    ///
    /// [`LinalgError::Empty`] for `n == 0`, [`LinalgError::DimensionMismatch`]
    /// when `vals` does not match the pattern, [`LinalgError::Singular`] when
    /// no acceptable pivot exists at some step (threshold identical to the
    /// dense LU).
    pub fn factor(sym: &SparseSymbolic, vals: &[T]) -> Result<Self, LinalgError> {
        let pattern = sym.pattern();
        let n = pattern.n();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        if vals.len() != pattern.nnz() {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse lu values",
                expected: pattern.nnz(),
                found: vals.len(),
            });
        }
        assert!(n < u32::MAX as usize, "dimension exceeds epoch capacity");
        let scale = vals.iter().fold(0.0f64, |m, v| m.max(v.modulus())).max(1.0);

        let mut pinv = vec![UNSET; n];
        let mut prow: Vec<usize> = Vec::with_capacity(n);
        let mut l_ptr = vec![0usize];
        let mut l_rows: Vec<usize> = Vec::new();
        let mut l_vals: Vec<T> = Vec::new();
        let mut u_ptr = vec![0usize];
        let mut u_pos: Vec<usize> = Vec::new();
        let mut u_vals: Vec<T> = Vec::new();
        let mut u_diag: Vec<T> = Vec::with_capacity(n);

        let mut w = vec![T::ZERO; n];
        let mut in_w = vec![0u32; n];
        let mut wrows: Vec<usize> = Vec::new();
        let mut visited = vec![0u32; n];
        let mut post: Vec<usize> = Vec::new();
        let mut dfs_stack: Vec<(usize, usize)> = Vec::new();

        for jj in 0..n {
            let epoch = (jj + 1) as u32;
            wrows.clear();
            post.clear();
            let c = sym.colperm[jj];

            // Scatter A(:,c) into the workspace.
            for idx in pattern.col_range(c) {
                let r = pattern.row_idx[idx];
                in_w[r] = epoch;
                w[r] = vals[idx];
                wrows.push(r);
            }

            // Reachability DFS over already-pivotal steps: the set of earlier
            // pivots whose L columns update this column, in topological order.
            for idx in pattern.col_range(c) {
                let start = pinv[pattern.row_idx[idx]];
                if start == UNSET || visited[start] == epoch {
                    continue;
                }
                visited[start] = epoch;
                dfs_stack.push((start, l_ptr[start]));
                while let Some(&(k, cur)) = dfs_stack.last() {
                    let end = l_ptr[k + 1];
                    let mut next_child = None;
                    let mut cursor = cur;
                    while cursor < end {
                        let kk = pinv[l_rows[cursor]];
                        cursor += 1;
                        if kk != UNSET && visited[kk] != epoch {
                            next_child = Some(kk);
                            break;
                        }
                    }
                    dfs_stack.last_mut().expect("stack nonempty").1 = cursor;
                    match next_child {
                        Some(kk) => {
                            visited[kk] = epoch;
                            dfs_stack.push((kk, l_ptr[kk]));
                        }
                        None => {
                            post.push(k);
                            dfs_stack.pop();
                        }
                    }
                }
            }

            // Eliminate in reverse postorder (dependencies first).
            for &k in post.iter().rev() {
                let pr = prow[k];
                ensure(pr, epoch, &mut in_w, &mut w, &mut wrows);
                let ukj = w[pr];
                u_pos.push(k);
                u_vals.push(ukj);
                for p in l_ptr[k]..l_ptr[k + 1] {
                    let r = l_rows[p];
                    ensure(r, epoch, &mut in_w, &mut w, &mut wrows);
                    w[r] = w[r] - l_vals[p] * ukj;
                }
            }
            u_ptr.push(u_pos.len());

            // Partial pivoting over not-yet-pivotal rows (discovery order,
            // first-max tie-break — deterministic).
            let mut best = UNSET;
            let mut best_mod = -1.0f64;
            for &r in &wrows {
                if pinv[r] == UNSET {
                    let m = w[r].modulus();
                    if m > best_mod {
                        best_mod = m;
                        best = r;
                    }
                }
            }
            if best == UNSET || !(best_mod > scale * PIVOT_REL_TOL) {
                return Err(LinalgError::Singular { pivot: jj });
            }
            let pivot = w[best];
            pinv[best] = jj;
            prow.push(best);
            u_diag.push(pivot);
            for &r in &wrows {
                if pinv[r] == UNSET {
                    l_rows.push(r);
                    l_vals.push(w[r] / pivot);
                }
            }
            l_ptr.push(l_rows.len());
        }

        Ok(SparseLu {
            n,
            colperm: sym.colperm.clone(),
            prow,
            pinv,
            l_ptr,
            l_rows,
            l_vals,
            u_ptr,
            u_pos,
            u_vals,
            u_diag,
            scratch_w: w,
            scratch_flag: in_w,
            scratch_epoch: n as u32,
        })
    }

    /// Re-runs the numeric factorization on new values with the frozen
    /// pattern, pivot sequence, and elimination schedule. Bit-identical to
    /// [`SparseLu::factor`] when called with the same values.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] on a pattern mismatch;
    /// [`LinalgError::Singular`] when a frozen pivot underflows the singular
    /// threshold **or** falls below `1e-8×` the largest candidate in its
    /// column — the caller should then [`SparseLu::factor`] afresh, which
    /// re-pivots (and decides singularity for real).
    pub fn refactor(&mut self, sym: &SparseSymbolic, vals: &[T]) -> Result<(), LinalgError> {
        let pattern = sym.pattern();
        if pattern.n() != self.n || vals.len() != pattern.nnz() {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse lu refactor",
                expected: self.n,
                found: pattern.n(),
            });
        }
        let scale = vals.iter().fold(0.0f64, |m, v| m.max(v.modulus())).max(1.0);
        let mut wrows: Vec<usize> = Vec::new();
        for jj in 0..self.n {
            if self.scratch_epoch == u32::MAX {
                self.scratch_flag.fill(0);
                self.scratch_epoch = 0;
            }
            self.scratch_epoch += 1;
            let epoch = self.scratch_epoch;
            let w = &mut self.scratch_w;
            let flags = &mut self.scratch_flag;
            wrows.clear();

            // Zero the frozen work pattern of this step: pivot row, U rows,
            // L rows (every A entry lands inside this set — see factor()).
            ensure(self.prow[jj], epoch, flags, w, &mut wrows);
            for p in self.u_ptr[jj]..self.u_ptr[jj + 1] {
                ensure(self.prow[self.u_pos[p]], epoch, flags, w, &mut wrows);
            }
            for p in self.l_ptr[jj]..self.l_ptr[jj + 1] {
                ensure(self.l_rows[p], epoch, flags, w, &mut wrows);
            }
            let c = self.colperm[jj];
            for idx in pattern.col_range(c) {
                let r = pattern.row_idx[idx];
                debug_assert_eq!(flags[r], epoch, "pattern row outside frozen structure");
                w[r] = vals[idx];
            }

            // Replay the elimination schedule.
            for p in self.u_ptr[jj]..self.u_ptr[jj + 1] {
                let k = self.u_pos[p];
                let ukj = w[self.prow[k]];
                self.u_vals[p] = ukj;
                for q in self.l_ptr[k]..self.l_ptr[k + 1] {
                    let r = self.l_rows[q];
                    w[r] = w[r] - self.l_vals[q] * ukj;
                }
            }

            // Pivot acceptance: frozen pivot must remain dominant enough.
            let pivot = w[self.prow[jj]];
            let pm = pivot.modulus();
            if !(pm > scale * PIVOT_REL_TOL) {
                return Err(LinalgError::Singular { pivot: jj });
            }
            let mut col_max = pm;
            for p in self.l_ptr[jj]..self.l_ptr[jj + 1] {
                col_max = col_max.max(w[self.l_rows[p]].modulus());
            }
            if pm < REFACTOR_PIVOT_RATIO * col_max {
                return Err(LinalgError::Singular { pivot: jj });
            }
            self.u_diag[jj] = pivot;
            for p in self.l_ptr[jj]..self.l_ptr[jj + 1] {
                self.l_vals[p] = w[self.l_rows[p]] / pivot;
            }
        }
        Ok(())
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.n
    }

    /// Structural nonzeros in L (excluding the unit diagonal).
    pub fn nnz_l(&self) -> usize {
        self.l_rows.len()
    }

    /// Structural nonzeros in U (including the diagonal).
    pub fn nnz_u(&self) -> usize {
        self.u_pos.len() + self.n
    }

    /// Solves `A·x = b` using slices, with caller-provided scratch of
    /// length `n` (no allocation — the Newton loop calls this per iteration).
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] on length mismatches.
    pub fn solve_slice(&self, b: &[T], x: &mut [T], scratch: &mut [T]) -> Result<(), LinalgError> {
        let n = self.n;
        if b.len() != n || x.len() != n || scratch.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse lu solve",
                expected: n,
                found: b.len().min(x.len()).min(scratch.len()),
            });
        }
        // z = P·b, then forward substitution with unit-lower L.
        for k in 0..n {
            scratch[k] = b[self.prow[k]];
        }
        for k in 0..n {
            let zk = scratch[k];
            for p in self.l_ptr[k]..self.l_ptr[k + 1] {
                let r = self.l_rows[p];
                scratch[self.pinv[r]] = scratch[self.pinv[r]] - self.l_vals[p] * zk;
            }
        }
        // Backward substitution with U (entries keyed by earlier pivot step).
        for jj in (0..n).rev() {
            let q = scratch[jj] / self.u_diag[jj];
            scratch[jj] = q;
            for p in self.u_ptr[jj]..self.u_ptr[jj + 1] {
                let k = self.u_pos[p];
                scratch[k] = scratch[k] - self.u_vals[p] * q;
            }
        }
        // Undo the column permutation.
        for jj in 0..n {
            x[self.colperm[jj]] = scratch[jj];
        }
        Ok(())
    }

    /// Solves the transposed system `Aᵀ·y = c` on the same factors, with
    /// caller-provided scratch of length `n` (no allocation).
    ///
    /// With `P·A·Q = L·U` the permuted system reads `Uᵀ·(Lᵀ·ŷ) = ĉ` where
    /// `ĉ[jj] = c[colperm[jj]]` and `y[prow[k]] = ŷ[k]`: one forward sweep
    /// with `Uᵀ` (lower triangular) and one backward sweep with `Lᵀ` (unit
    /// upper), both O(nnz). This is the adjoint-sensitivity workhorse — all
    /// margin gradients from already-cached numeric factors.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] on length mismatches.
    pub fn solve_transposed_slice(
        &self,
        c: &[T],
        y: &mut [T],
        scratch: &mut [T],
    ) -> Result<(), LinalgError> {
        let n = self.n;
        if c.len() != n || y.len() != n || scratch.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "sparse lu transposed solve",
                expected: n,
                found: c.len().min(y.len()).min(scratch.len()),
            });
        }
        // ĉ = Qᵀ·c, then forward substitution with Uᵀ: column jj of U holds
        // the entries U[k, jj] for earlier pivot steps k = u_pos[p].
        for jj in 0..n {
            scratch[jj] = c[self.colperm[jj]];
        }
        for jj in 0..n {
            let mut acc = scratch[jj];
            for p in self.u_ptr[jj]..self.u_ptr[jj + 1] {
                acc = acc - self.u_vals[p] * scratch[self.u_pos[p]];
            }
            scratch[jj] = acc / self.u_diag[jj];
        }
        // Backward substitution with Lᵀ (unit diagonal): column k of L holds
        // the multipliers for pivot rows pinv[l_rows[p]] > k.
        for k in (0..n).rev() {
            let mut acc = scratch[k];
            for p in self.l_ptr[k]..self.l_ptr[k + 1] {
                acc = acc - self.l_vals[p] * scratch[self.pinv[self.l_rows[p]]];
            }
            scratch[k] = acc;
        }
        // Undo the row permutation.
        for k in 0..n {
            y[self.prow[k]] = scratch[k];
        }
        Ok(())
    }
}

impl SparseLu<f64> {
    /// Convenience solve for real systems.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `b.len() != dim()`.
    pub fn solve(&self, b: &DVec) -> Result<DVec, LinalgError> {
        let n = self.n;
        let mut x = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        self.solve_slice(b.as_slice(), &mut x, &mut scratch)?;
        Ok(DVec::from_slice(&x))
    }

    /// Convenience transposed solve (`Aᵀ·y = c`) for real systems.
    ///
    /// # Errors
    ///
    /// [`LinalgError::DimensionMismatch`] if `c.len() != dim()`.
    pub fn solve_transposed(&self, c: &DVec) -> Result<DVec, LinalgError> {
        let n = self.n;
        let mut y = vec![0.0; n];
        let mut scratch = vec![0.0; n];
        self.solve_transposed_slice(c.as_slice(), &mut y, &mut scratch)?;
        Ok(DVec::from_slice(&y))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DMat;

    /// Builds pattern+values from a dense matrix, treating every entry as
    /// structural (so patterns match what MNA stamping would produce).
    fn from_dense(a: &DMat) -> (SparseSymbolic, Vec<f64>) {
        let n = a.nrows();
        let mut entries = Vec::new();
        for r in 0..n {
            for c in 0..n {
                if a[(r, c)] != 0.0 {
                    entries.push((r, c));
                }
            }
        }
        let pattern = SparsePattern::from_entries(n, &entries).unwrap();
        let mut vals = vec![0.0; pattern.nnz()];
        for r in 0..n {
            for c in 0..n {
                if a[(r, c)] != 0.0 {
                    vals[pattern.index_of(r, c).unwrap()] = a[(r, c)];
                }
            }
        }
        (SparseSymbolic::new(pattern), vals)
    }

    #[test]
    fn pattern_lookup_and_csr_roundtrip() {
        let p = SparsePattern::from_entries(3, &[(0, 0), (2, 1), (1, 1), (2, 2), (2, 1)]).unwrap();
        assert_eq!(p.nnz(), 4);
        assert_eq!(p.col(1), &[1, 2]);
        assert!(p.index_of(2, 1).is_some());
        assert!(p.index_of(0, 1).is_none());
        let (row_ptr, col_idx, csc_pos) = p.to_csr();
        assert_eq!(row_ptr, vec![0, 1, 2, 4]);
        assert_eq!(col_idx, vec![0, 1, 1, 2]);
        for (k, &pos) in csc_pos.iter().enumerate() {
            let r = (0..3)
                .find(|&r| row_ptr[r] <= k && k < row_ptr[r + 1])
                .unwrap();
            assert!(p.col(col_idx[k]).contains(&r));
            assert_eq!(p.index_of(r, col_idx[k]).unwrap(), pos);
        }
    }

    #[test]
    fn triplets_sum_duplicates() {
        let mut t = Triplets::new(2);
        t.push(0, 0, 1.5).unwrap();
        t.push(0, 0, 2.5).unwrap();
        t.push(1, 0, -1.0).unwrap();
        let (p, v) = t.build().unwrap();
        assert_eq!(p.nnz(), 2);
        assert_eq!(v[p.index_of(0, 0).unwrap()], 4.0);
        assert!(t.push(2, 0, 1.0).is_err());
    }

    #[test]
    fn solves_small_system_with_pivoting() {
        let a = DMat::from_rows(&[&[0.0, 2.0], &[1.0, 1.0]]).unwrap();
        let (sym, vals) = from_dense(&a);
        let lu = SparseLu::factor(&sym, &vals).unwrap();
        let x = lu.solve(&DVec::from_slice(&[2.0, 2.0])).unwrap();
        assert!((x[0] - 1.0).abs() < 1e-12);
        assert!((x[1] - 1.0).abs() < 1e-12);
    }

    #[test]
    fn agrees_with_dense_on_pseudorandom_systems() {
        let mut state = 98765u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 3, 8, 15, 24] {
            // ~40% sparse fill plus a dominant diagonal.
            let mut a = DMat::from_fn(n, n, |_, _| {
                let v = next();
                if v.abs() < 0.6 {
                    0.0
                } else {
                    v
                }
            });
            for i in 0..n {
                a[(i, i)] += n as f64 + 1.0;
            }
            let b = DVec::from_fn(n, |i| next() + i as f64);
            let xd = a.lu().unwrap().solve(&b).unwrap();
            let (sym, vals) = from_dense(&a);
            let lu = SparseLu::factor(&sym, &vals).unwrap();
            let xs = lu.solve(&b).unwrap();
            assert!((&xs - &xd).norm_inf() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn transposed_solve_agrees_with_dense_on_pseudorandom_systems() {
        let mut state = 192837u64;
        let mut next = || {
            state = state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        for n in [1usize, 3, 8, 15, 24] {
            let mut a = DMat::from_fn(n, n, |_, _| {
                let v = next();
                if v.abs() < 0.6 {
                    0.0
                } else {
                    v
                }
            });
            for i in 0..n {
                a[(i, i)] += n as f64 + 1.0;
            }
            let c = DVec::from_fn(n, |i| next() + i as f64);
            let yd = a.lu().unwrap().solve_transposed(&c).unwrap();
            let (sym, vals) = from_dense(&a);
            let lu = SparseLu::factor(&sym, &vals).unwrap();
            let ys = lu.solve_transposed(&c).unwrap();
            assert!((&ys - &yd).norm_inf() < 1e-10, "n={n}");
            // Residual check against the transposed system directly:
            // (Aᵀ·y)[j] = Σ_i a[i,j]·y[i].
            for j in 0..n {
                let acc: f64 = (0..n).map(|i| a[(i, j)] * ys[i]).sum();
                assert!((acc - c[j]).abs() < 1e-9, "n={n} col {j}");
            }
        }
    }

    #[test]
    fn complex_transposed_solve_matches_dense() {
        use crate::{CMat, CVec};
        let n = 4;
        let mut entries = Vec::new();
        let mut dense = CMat::zeros(n, n);
        let coords = [
            (0usize, 0usize, 3.0, 0.5),
            (1, 1, 4.0, -1.0),
            (2, 2, 5.0, 0.0),
            (3, 3, 2.0, 2.0),
            (0, 2, 1.0, 0.1),
            (2, 0, -1.0, 0.2),
            (1, 3, 0.5, -0.5),
            (3, 1, 0.25, 0.0),
        ];
        for &(r, c, re, im) in &coords {
            entries.push((r, c));
            dense[(r, c)] = Complex64::new(re, im);
        }
        let pattern = SparsePattern::from_entries(n, &entries).unwrap();
        let mut vals = vec![Complex64::ZERO; pattern.nnz()];
        for &(r, c, re, im) in &coords {
            vals[pattern.index_of(r, c).unwrap()] = Complex64::new(re, im);
        }
        let sym = SparseSymbolic::new(pattern);
        let lu = SparseLu::factor(&sym, &vals).unwrap();
        let c: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64 + 1.0, -0.5))
            .collect();
        let mut y = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; n];
        lu.solve_transposed_slice(&c, &mut y, &mut scratch).unwrap();
        let cd = CVec::from_slice(&c);
        let yd = dense.lu().unwrap().solve_transposed(&cd).unwrap();
        for i in 0..n {
            assert!((y[i] - yd[i]).abs() < 1e-12, "component {i}");
        }
    }

    #[test]
    fn refactor_is_bit_identical_to_factor() {
        let a = DMat::from_rows(&[
            &[4.0, 0.0, 1.0, 0.0],
            &[0.0, 3.0, 0.0, 2.0],
            &[1.0, 0.0, 5.0, 1.0],
            &[0.0, 2.0, 1.0, 6.0],
        ])
        .unwrap();
        let (sym, vals) = from_dense(&a);
        let mut lu = SparseLu::factor(&sym, &vals).unwrap();
        // Perturb values (same pattern), refactor, and compare against fresh.
        let vals2: Vec<f64> = vals.iter().map(|v| v * 1.25 + 0.01).collect();
        lu.refactor(&sym, &vals2).unwrap();
        let fresh = SparseLu::factor(&sym, &vals2).unwrap();
        assert_eq!(lu.u_diag, fresh.u_diag);
        assert_eq!(lu.l_vals, fresh.l_vals);
        assert_eq!(lu.u_vals, fresh.u_vals);
        let b = DVec::from_slice(&[1.0, -2.0, 3.0, 0.5]);
        assert_eq!(
            lu.solve(&b).unwrap().as_slice(),
            fresh.solve(&b).unwrap().as_slice()
        );
    }

    #[test]
    fn refactor_rejects_stale_pivot_order() {
        // First matrix pivots happily on the diagonal; the second makes the
        // frozen pivot tiny relative to its column, forcing re-factorization.
        let a = DMat::from_rows(&[&[10.0, 1.0], &[1.0, 10.0]]).unwrap();
        let (sym, vals) = from_dense(&a);
        let mut lu = SparseLu::factor(&sym, &vals).unwrap();
        let b = DMat::from_rows(&[&[1e-12, 1.0], &[1.0, 1e-12]]).unwrap();
        let (_, vals2) = from_dense(&b);
        assert!(matches!(
            lu.refactor(&sym, &vals2),
            Err(LinalgError::Singular { .. })
        ));
        // A fresh factorization handles it fine (re-pivots).
        let fresh = SparseLu::factor(&sym, &vals2).unwrap();
        let x = fresh.solve(&DVec::from_slice(&[1.0, 2.0])).unwrap();
        assert!((x[1] - 1.0).abs() < 1e-9);
        assert!((x[0] - 2.0).abs() < 1e-9);
    }

    #[test]
    fn singular_detection_matches_dense() {
        // Duplicate rows: the elimination cancels exactly in both backends.
        let a = DMat::from_rows(&[&[1.0, 2.0, 0.0], &[1.0, 2.0, 0.0], &[0.0, 1.0, 1.0]]).unwrap();
        assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
        let (sym, vals) = from_dense(&a);
        assert!(matches!(
            SparseLu::factor(&sym, &vals),
            Err(LinalgError::Singular { .. })
        ));
        // Structurally singular (empty column).
        let p = SparsePattern::from_entries(2, &[(0, 0), (1, 0)]).unwrap();
        let sym = SparseSymbolic::new(p);
        assert!(matches!(
            SparseLu::<f64>::factor(&sym, &[1.0, 1.0]),
            Err(LinalgError::Singular { .. })
        ));
    }

    #[test]
    fn complex_solve_matches_dense_complex() {
        use crate::{CMat, CVec};
        let n = 4;
        let mut entries = Vec::new();
        let mut dense = CMat::zeros(n, n);
        let coords = [
            (0usize, 0usize, 3.0, 0.5),
            (1, 1, 4.0, -1.0),
            (2, 2, 5.0, 0.0),
            (3, 3, 2.0, 2.0),
            (0, 2, 1.0, 0.1),
            (2, 0, -1.0, 0.2),
            (1, 3, 0.5, -0.5),
            (3, 1, 0.25, 0.0),
        ];
        for &(r, c, re, im) in &coords {
            entries.push((r, c));
            dense[(r, c)] = Complex64::new(re, im);
        }
        let pattern = SparsePattern::from_entries(n, &entries).unwrap();
        let mut vals = vec![Complex64::ZERO; pattern.nnz()];
        for &(r, c, re, im) in &coords {
            vals[pattern.index_of(r, c).unwrap()] = Complex64::new(re, im);
        }
        let sym = SparseSymbolic::new(pattern);
        let lu = SparseLu::factor(&sym, &vals).unwrap();
        let b: Vec<Complex64> = (0..n)
            .map(|i| Complex64::new(i as f64 + 1.0, -0.5))
            .collect();
        let mut x = vec![Complex64::ZERO; n];
        let mut scratch = vec![Complex64::ZERO; n];
        lu.solve_slice(&b, &mut x, &mut scratch).unwrap();
        let bd = CVec::from_slice(&b);
        let xd = dense.lu().unwrap().solve(&bd).unwrap();
        for i in 0..n {
            assert!((x[i] - xd[i]).abs() < 1e-12, "component {i}");
        }
    }

    #[test]
    fn fill_reducing_order_beats_natural_on_arrow_matrix() {
        // Arrow matrix with the dense row/col first: natural order fills the
        // whole matrix, minimum degree eliminates the spokes first.
        let n = 12;
        let mut entries = vec![(0usize, 0usize)];
        for i in 1..n {
            entries.push((i, i));
            entries.push((0, i));
            entries.push((i, 0));
        }
        let pattern = SparsePattern::from_entries(n, &entries).unwrap();
        let mut vals = vec![0.0; pattern.nnz()];
        for &(r, c) in &entries {
            vals[pattern.index_of(r, c).unwrap()] = if r == c { 10.0 } else { 1.0 };
        }
        let sym = SparseSymbolic::new(pattern.clone());
        // The hub (initial degree n−1) must sink to the end of the order;
        // it can tie with the final spoke once its degree has shrunk to 1.
        assert!(sym.colperm()[n - 2..].contains(&0));
        let lu = SparseLu::factor(&sym, &vals).unwrap();
        // With the hub last there is zero fill beyond the original pattern.
        assert_eq!(lu.nnz_l(), n - 1);
        assert_eq!(lu.nnz_u(), (n - 1) + n);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(matches!(
            SparsePattern::from_entries(0, &[]),
            Err(LinalgError::Empty)
        ));
        assert!(matches!(
            SparsePattern::from_entries(2, &[(2, 0)]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
        let p = SparsePattern::from_entries(2, &[(0, 0), (1, 1)]).unwrap();
        let sym = SparseSymbolic::new(p);
        assert!(matches!(
            SparseLu::<f64>::factor(&sym, &[1.0]),
            Err(LinalgError::DimensionMismatch { .. })
        ));
    }
}
