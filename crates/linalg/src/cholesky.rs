use crate::{DMat, DVec, LinalgError};

/// Cholesky factorization `A = L·Lᵀ` of a symmetric positive-definite matrix.
///
/// In the yield-optimization flow this factors the covariance matrix of the
/// statistical parameters, `C(d) = G(d)·G(d)ᵀ` with `G = L` (paper Eq. 11),
/// so that correlated Gaussian samples can be drawn as `s = L·ŝ + s0` with
/// `ŝ ~ N(0, I)`.
///
/// # Example
///
/// ```
/// use specwise_linalg::{DMat, DVec};
///
/// # fn main() -> Result<(), specwise_linalg::LinalgError> {
/// let c = DMat::from_rows(&[&[4.0, 2.0], &[2.0, 3.0]])?;
/// let chol = c.cholesky()?;
/// let l = chol.factor();
/// let rebuilt = l.matmul(&l.transpose())?;
/// assert!((&rebuilt - &c).norm_max() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Cholesky {
    l: DMat,
}

impl Cholesky {
    /// Factors a symmetric positive-definite matrix.
    ///
    /// Only the lower triangle of `a` is read; symmetry of the upper triangle
    /// is assumed, not checked.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::NotSquare`] for non-square input and
    /// [`LinalgError::NotPositiveDefinite`] when a diagonal pivot is not
    /// strictly positive.
    pub fn new(a: &DMat) -> Result<Self, LinalgError> {
        if !a.is_square() {
            return Err(LinalgError::NotSquare {
                rows: a.nrows(),
                cols: a.ncols(),
            });
        }
        let n = a.nrows();
        if n == 0 {
            return Err(LinalgError::Empty);
        }
        let mut l = DMat::zeros(n, n);
        for j in 0..n {
            let mut diag = a[(j, j)];
            for k in 0..j {
                diag -= l[(j, k)] * l[(j, k)];
            }
            if !(diag > 0.0) {
                return Err(LinalgError::NotPositiveDefinite { column: j });
            }
            let ljj = diag.sqrt();
            l[(j, j)] = ljj;
            for i in (j + 1)..n {
                let mut acc = a[(i, j)];
                for k in 0..j {
                    acc -= l[(i, k)] * l[(j, k)];
                }
                l[(i, j)] = acc / ljj;
            }
        }
        Ok(Cholesky { l })
    }

    /// Dimension of the factored matrix.
    pub fn dim(&self) -> usize {
        self.l.nrows()
    }

    /// The lower-triangular factor `L`.
    pub fn factor(&self) -> &DMat {
        &self.l
    }

    /// Consumes the factorization and returns `L`.
    pub fn into_factor(self) -> DMat {
        self.l
    }

    /// `L·x` — maps a standard-normal vector into the correlated space.
    ///
    /// # Panics
    ///
    /// Panics if `x.len() != dim()`.
    pub fn transform(&self, x: &DVec) -> DVec {
        self.l.matvec(x)
    }

    /// `L⁻¹·x` by forward substitution — maps a correlated deviation back
    /// into the standard-normal space (paper Eq. 11, inverse direction).
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn inverse_transform(&self, x: &DVec) -> Result<DVec, LinalgError> {
        let n = self.dim();
        if x.len() != n {
            return Err(LinalgError::DimensionMismatch {
                op: "cholesky inverse_transform",
                expected: n,
                found: x.len(),
            });
        }
        let mut y = x.clone();
        for i in 0..n {
            let mut acc = y[i];
            for j in 0..i {
                acc -= self.l[(i, j)] * y[j];
            }
            y[i] = acc / self.l[(i, i)];
        }
        Ok(y)
    }

    /// Solves `A·x = b` via the two triangular solves.
    ///
    /// # Errors
    ///
    /// Returns [`LinalgError::DimensionMismatch`] on length mismatch.
    pub fn solve(&self, b: &DVec) -> Result<DVec, LinalgError> {
        let n = self.dim();
        let y = self.inverse_transform(b)?;
        // Backward substitution with Lᵀ.
        let mut x = y;
        for i in (0..n).rev() {
            let mut acc = x[i];
            for j in (i + 1)..n {
                acc -= self.l[(j, i)] * x[j];
            }
            x[i] = acc / self.l[(i, i)];
        }
        Ok(x)
    }

    /// `det(A) = det(L)²`.
    pub fn det(&self) -> f64 {
        let mut d = 1.0;
        for i in 0..self.dim() {
            d *= self.l[(i, i)];
        }
        d * d
    }

    /// `ln det(A)`, numerically safe for small determinants.
    pub fn ln_det(&self) -> f64 {
        let mut d = 0.0;
        for i in 0..self.dim() {
            d += self.l[(i, i)].ln();
        }
        2.0 * d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spd_example() -> DMat {
        DMat::from_rows(&[&[4.0, 2.0, 0.6], &[2.0, 5.0, 1.0], &[0.6, 1.0, 3.0]]).unwrap()
    }

    #[test]
    fn factor_reconstructs() {
        let a = spd_example();
        let c = a.cholesky().unwrap();
        let rebuilt = c.factor().matmul(&c.factor().transpose()).unwrap();
        assert!((&rebuilt - &a).norm_max() < 1e-12);
    }

    #[test]
    fn rejects_indefinite() {
        let a = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            a.cholesky(),
            Err(LinalgError::NotPositiveDefinite { .. })
        ));
    }

    #[test]
    fn rejects_non_square() {
        assert!(matches!(
            DMat::zeros(2, 3).cholesky(),
            Err(LinalgError::NotSquare { .. })
        ));
    }

    #[test]
    fn solve_matches_lu() {
        let a = spd_example();
        let b = DVec::from_slice(&[1.0, 2.0, 3.0]);
        let x_chol = a.cholesky().unwrap().solve(&b).unwrap();
        let x_lu = a.lu().unwrap().solve(&b).unwrap();
        assert!((&x_chol - &x_lu).norm_inf() < 1e-10);
    }

    #[test]
    fn transform_roundtrip() {
        let a = spd_example();
        let c = a.cholesky().unwrap();
        let x = DVec::from_slice(&[0.3, -1.2, 0.5]);
        let y = c.transform(&x);
        let back = c.inverse_transform(&y).unwrap();
        assert!((&back - &x).norm_inf() < 1e-12);
    }

    #[test]
    fn determinants() {
        let a = DMat::from_diagonal(&DVec::from_slice(&[2.0, 8.0]));
        let c = a.cholesky().unwrap();
        assert!((c.det() - 16.0).abs() < 1e-12);
        assert!((c.ln_det() - 16.0_f64.ln()).abs() < 1e-12);
    }

    #[test]
    fn identity_transform_is_id() {
        let c = DMat::identity(4).cholesky().unwrap();
        let x = DVec::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(c.transform(&x), x);
    }
}
