//! Property-based tests for the dense linear-algebra kernels.

use proptest::prelude::*;
use specwise_linalg::{DMat, DVec};

/// Strategy: a well-conditioned square matrix built as (random) + n·I.
fn diag_dominant_matrix(n: usize) -> impl Strategy<Value = DMat> {
    prop::collection::vec(-1.0..1.0f64, n * n).prop_map(move |vals| {
        let mut m = DMat::from_fn(n, n, |i, j| vals[i * n + j]);
        for i in 0..n {
            m[(i, i)] += n as f64 + 1.0;
        }
        m
    })
}

fn vector(n: usize) -> impl Strategy<Value = DVec> {
    prop::collection::vec(-10.0..10.0f64, n).prop_map(DVec::from)
}

proptest! {
    #[test]
    fn lu_solve_residual_small(
        n in 1usize..12,
        seed in 0u64..1000,
    ) {
        // Derive matrix/vector deterministically from the seed so shrinking works.
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(1);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DMat::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let b = DVec::from_fn(n, |_| next());
        let x = a.lu().unwrap().solve(&b).unwrap();
        let r = &a.matvec(&x) - &b;
        prop_assert!(r.norm_inf() < 1e-8 * (1.0 + b.norm_inf()));
    }

    #[test]
    fn cholesky_reconstructs_spd(
        n in 1usize..10,
        seed in 0u64..1000,
    ) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(7);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // SPD by construction: A = B·Bᵀ + I.
        let b = DMat::from_fn(n, n, |_, _| next());
        let mut a = b.matmul(&b.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let c = a.cholesky().unwrap();
        let rebuilt = c.factor().matmul(&c.factor().transpose()).unwrap();
        prop_assert!((&rebuilt - &a).norm_max() < 1e-10 * (1.0 + a.norm_max()));
    }

    #[test]
    fn cholesky_transform_roundtrip(
        n in 1usize..10,
        seed in 0u64..500,
    ) {
        let mut state = seed.wrapping_mul(0x2545F4914F6CDD1D).wrapping_add(3);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let bmat = DMat::from_fn(n, n, |_, _| next());
        let mut a = bmat.matmul(&bmat.transpose()).unwrap();
        for i in 0..n {
            a[(i, i)] += 1.0;
        }
        let c = a.cholesky().unwrap();
        let x = DVec::from_fn(n, |_| next());
        let back = c.inverse_transform(&c.transform(&x)).unwrap();
        prop_assert!((&back - &x).norm_inf() < 1e-9);
    }
}

proptest! {
    #[test]
    fn matmul_associative_with_vector(a in diag_dominant_matrix(4), x in vector(4)) {
        // (A·A)·x == A·(A·x)
        let lhs = a.matmul(&a).unwrap().matvec(&x);
        let rhs = a.matvec(&a.matvec(&x));
        prop_assert!((&lhs - &rhs).norm_inf() < 1e-9 * (1.0 + rhs.norm_inf()));
    }

    #[test]
    fn transpose_respects_inner_product(a in diag_dominant_matrix(5), x in vector(5), y in vector(5)) {
        // <A x, y> == <x, Aᵀ y>
        let lhs = a.matvec(&x).dot(&y);
        let rhs = x.dot(&a.tr_matvec(&y));
        prop_assert!((lhs - rhs).abs() < 1e-8 * (1.0 + lhs.abs()));
    }

    #[test]
    fn dot_is_symmetric(x in vector(6), y in vector(6)) {
        prop_assert_eq!(x.dot(&y), y.dot(&x));
    }

    #[test]
    fn triangle_inequality(x in vector(6), y in vector(6)) {
        prop_assert!((&x + &y).norm2() <= x.norm2() + y.norm2() + 1e-12);
    }

    #[test]
    fn qr_least_squares_residual_orthogonal(seed in 0u64..500) {
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(11);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let (m, n) = (8usize, 3usize);
        let mut a = DMat::from_fn(m, n, |_, _| next());
        for j in 0..n {
            a[(j, j)] += 2.0; // keep full column rank
        }
        let b = DVec::from_fn(m, |_| next());
        let x = a.qr().unwrap().solve_least_squares(&b).unwrap();
        let r = &a.matvec(&x) - &b;
        // Normal equations: Aᵀ r = 0 at the least-squares optimum.
        prop_assert!(a.tr_matvec(&r).norm_inf() < 1e-8);
    }
}

/// Sparse/dense parity helpers: build a sparse system from a dense matrix,
/// treating every nonzero as structural (MNA stamping semantics).
fn sparsify(a: &DMat) -> (specwise_linalg::SparseSymbolic, Vec<f64>) {
    use specwise_linalg::{SparsePattern, SparseSymbolic};
    let n = a.nrows();
    let mut entries = Vec::new();
    for r in 0..n {
        for c in 0..n {
            if a[(r, c)] != 0.0 {
                entries.push((r, c));
            }
        }
    }
    let pattern = SparsePattern::from_entries(n, &entries).unwrap();
    let mut vals = vec![0.0; pattern.nnz()];
    for r in 0..n {
        for c in 0..n {
            if a[(r, c)] != 0.0 {
                vals[pattern.index_of(r, c).unwrap()] = a[(r, c)];
            }
        }
    }
    (SparseSymbolic::new(pattern), vals)
}

proptest! {
    #[test]
    fn sparse_lu_agrees_with_dense_to_1e10(
        n in 1usize..20,
        density in 0.2f64..1.0,
        seed in 0u64..1000,
    ) {
        use specwise_linalg::SparseLu;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(23);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        // Random sparsity, dominant diagonal => well-conditioned.
        let mut a = DMat::from_fn(n, n, |_, _| {
            let v = next();
            let keep = (next() + 1.0) / 2.0;
            if keep < density { v } else { 0.0 }
        });
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let b = DVec::from_fn(n, |_| next() * 5.0);
        let xd = a.lu().unwrap().solve(&b).unwrap();
        let (sym, vals) = sparsify(&a);
        let lu = SparseLu::factor(&sym, &vals).unwrap();
        let xs = lu.solve(&b).unwrap();
        prop_assert!((&xs - &xd).norm_inf() < 1e-10, "max diff {}", (&xs - &xd).norm_inf());
    }

    #[test]
    fn sparse_refactor_matches_fresh_factor_bitwise(
        n in 2usize..16,
        seed in 0u64..500,
    ) {
        use specwise_linalg::SparseLu;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(31);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DMat::from_fn(n, n, |_, _| {
            let v = next();
            if v.abs() < 0.5 { 0.0 } else { v }
        });
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        let (sym, vals) = sparsify(&a);
        let mut lu = SparseLu::factor(&sym, &vals).unwrap();
        // Same pattern, smoothly perturbed values (a Newton re-stamp).
        let vals2: Vec<f64> = vals.iter().map(|v| v * 1.0625 + 0.003).collect();
        lu.refactor(&sym, &vals2).unwrap();
        let fresh = SparseLu::factor(&sym, &vals2).unwrap();
        let b = DVec::from_fn(n, |i| (i as f64) - 1.5);
        let x_re = lu.solve(&b).unwrap();
        let x_fresh = fresh.solve(&b).unwrap();
        prop_assert_eq!(x_re.as_slice(), x_fresh.as_slice());
    }

    #[test]
    fn sparse_singular_detection_matches_dense(
        n in 2usize..12,
        dup in 0usize..12,
        seed in 0u64..500,
    ) {
        use specwise_linalg::{LinalgError, SparseLu};
        let dup = dup % n;
        let other = (dup + 1) % n;
        let mut state = seed.wrapping_mul(0x9E3779B97F4A7C15).wrapping_add(41);
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            ((state >> 11) as f64 / (1u64 << 53) as f64) * 2.0 - 1.0
        };
        let mut a = DMat::from_fn(n, n, |_, _| next());
        for i in 0..n {
            a[(i, i)] += n as f64 + 1.0;
        }
        // Duplicate one row exactly: elimination cancels it bit-exactly in
        // both backends, so both must report Singular.
        for j in 0..n {
            let v = a[(other, j)];
            a[(dup, j)] = v;
        }
        prop_assert!(matches!(a.lu(), Err(LinalgError::Singular { .. })));
        let (sym, vals) = sparsify(&a);
        prop_assert!(matches!(
            SparseLu::factor(&sym, &vals),
            Err(LinalgError::Singular { .. })
        ));
    }
}
