//! The [`Tracer`] handle and RAII [`Span`] guard.

use std::sync::Arc;

use crate::journal::{EventRecord, Journal, Record, SpanRecord};
use crate::json::TraceValue;

/// Name of the environment variable that enables tracing in
/// [`Tracer::from_env`]: set it to a file path to stream the run journal
/// there as JSONL (e.g. `SPECWISE_TRACE=run.jsonl`).
pub const TRACE_ENV_VAR: &str = "SPECWISE_TRACE";

#[derive(Clone)]
struct Enabled {
    journal: Arc<Journal>,
    parent: Option<u64>,
}

/// A cheap, cloneable handle for emitting spans and events into a
/// [`Journal`] — or a no-op when tracing is disabled.
///
/// The disabled state is a `None` inside the handle, so every emission
/// method is a single branch when tracing is off; the flow can keep its
/// instrumentation unconditional without measurable overhead (asserted by
/// the `exec` Criterion bench).
///
/// A tracer carries the id of the span it was derived from
/// ([`Span::tracer`]), so spans opened through it become children of that
/// span. The top-level handle from [`Tracer::new`] / [`Tracer::from_env`]
/// opens root spans.
#[derive(Clone)]
pub struct Tracer {
    inner: Option<Enabled>,
}

impl std::fmt::Debug for Tracer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Tracer")
            .field("enabled", &self.is_enabled())
            .finish()
    }
}

impl Default for Tracer {
    /// Same as [`Tracer::disabled`].
    fn default() -> Self {
        Tracer::disabled()
    }
}

impl Tracer {
    /// A tracer that records nothing. This is the default everywhere a
    /// tracer is accepted.
    pub fn disabled() -> Tracer {
        Tracer { inner: None }
    }

    /// A tracer emitting root spans into `journal`.
    pub fn new(journal: Arc<Journal>) -> Tracer {
        Tracer {
            inner: Some(Enabled {
                journal,
                parent: None,
            }),
        }
    }

    /// Build a tracer from the [`TRACE_ENV_VAR`] environment knob: when
    /// `SPECWISE_TRACE=path.jsonl` is set (non-empty), the returned tracer
    /// streams the journal to that path; otherwise it is disabled. An
    /// unwritable path prints a warning to stderr and disables tracing
    /// rather than failing the run.
    pub fn from_env() -> Tracer {
        match std::env::var(TRACE_ENV_VAR) {
            Ok(path) if !path.trim().is_empty() => match Journal::with_jsonl(path.trim()) {
                Ok(journal) => Tracer::new(Arc::new(journal)),
                Err(e) => {
                    eprintln!("specwise-trace: cannot open {path:?}: {e}; tracing disabled");
                    Tracer::disabled()
                }
            },
            _ => Tracer::disabled(),
        }
    }

    /// `true` when this handle records into a journal.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// The backing journal, when enabled.
    pub fn journal(&self) -> Option<&Arc<Journal>> {
        self.inner.as_ref().map(|e| &e.journal)
    }

    /// Open a span. The span closes (and is recorded) when the returned
    /// guard drops; use [`Span::tracer`] to nest children under it.
    /// On a disabled tracer this returns a no-op guard.
    pub fn span(&self, name: &str) -> Span {
        match &self.inner {
            None => Span { state: None },
            Some(enabled) => {
                let journal = Arc::clone(&enabled.journal);
                let id = journal.next_span_id();
                let start_us = journal.now_us();
                Span {
                    state: Some(SpanState {
                        journal,
                        id,
                        parent: enabled.parent,
                        name: name.to_string(),
                        start_us,
                        attrs: Vec::new(),
                        counters: Vec::new(),
                    }),
                }
            }
        }
    }

    /// Emit a `warn` event carrying `message` plus `attrs` — the journal's
    /// channel for degradations that did not abort the run (a worst-case
    /// search that fell back to stale points, a sample excluded from
    /// verification, a checkpoint that could not be written). A no-op on a
    /// disabled tracer.
    pub fn warn(&self, message: &str, attrs: &[(&str, TraceValue)]) {
        if self.is_enabled() {
            let mut all: Vec<(&str, TraceValue)> = Vec::with_capacity(attrs.len() + 1);
            all.push(("message", message.into()));
            all.extend(attrs.iter().map(|(k, v)| (*k, v.clone())));
            self.event("warn", &all);
        }
    }

    /// Emit an instantaneous event (attached to the parent span of this
    /// tracer, if any). A no-op on a disabled tracer.
    pub fn event(&self, name: &str, attrs: &[(&str, TraceValue)]) {
        if let Some(enabled) = &self.inner {
            let ts_us = enabled.journal.now_us();
            enabled.journal.record(Record::Event(EventRecord {
                span: enabled.parent,
                name: name.to_string(),
                thread: 0,
                ts_us,
                attrs: attrs
                    .iter()
                    .map(|(k, v)| (k.to_string(), v.clone()))
                    .collect(),
            }));
        }
    }
}

struct SpanState {
    journal: Arc<Journal>,
    id: u64,
    parent: Option<u64>,
    name: String,
    start_us: u64,
    attrs: Vec<(String, TraceValue)>,
    counters: Vec<(String, u64)>,
}

/// RAII guard for an open span: records the completed [`SpanRecord`]
/// (with its end timestamp, attributes and counters) when dropped.
pub struct Span {
    state: Option<SpanState>,
}

impl Span {
    /// `true` when this span records into a journal.
    pub fn is_enabled(&self) -> bool {
        self.state.is_some()
    }

    /// The span id, when enabled.
    pub fn id(&self) -> Option<u64> {
        self.state.as_ref().map(|s| s.id)
    }

    /// A tracer whose spans/events become children of this span.
    pub fn tracer(&self) -> Tracer {
        match &self.state {
            None => Tracer::disabled(),
            Some(state) => Tracer {
                inner: Some(Enabled {
                    journal: Arc::clone(&state.journal),
                    parent: Some(state.id),
                }),
            },
        }
    }

    /// Set (or overwrite) an attribute on this span.
    pub fn set_attr(&mut self, key: &str, value: impl Into<TraceValue>) {
        if let Some(state) = &mut self.state {
            let value = value.into();
            if let Some(slot) = state.attrs.iter_mut().find(|(k, _)| k == key) {
                slot.1 = value;
            } else {
                state.attrs.push((key.to_string(), value));
            }
        }
    }

    /// Add `n` to a named counter on this span (created at 0).
    pub fn add_count(&mut self, key: &str, n: u64) {
        if let Some(state) = &mut self.state {
            if let Some(slot) = state.counters.iter_mut().find(|(k, _)| k == key) {
                slot.1 += n;
            } else {
                state.counters.push((key.to_string(), n));
            }
        }
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        if let Some(state) = self.state.take() {
            let end_us = state.journal.now_us();
            state.journal.record(Record::Span(SpanRecord {
                id: state.id,
                parent: state.parent,
                name: state.name,
                thread: 0,
                start_us: state.start_us,
                end_us,
                attrs: state.attrs,
                counters: state.counters,
            }));
        }
    }
}
