//! The journal sink: an append-only, thread-safe record store with an
//! optional streaming JSONL writer and export helpers.

use std::fmt::Write as _;
use std::fs::File;
use std::io::{BufWriter, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

use crate::json::{self, Json, TraceValue};

/// A completed span: a named, timed slice of the flow with attributes and
/// counters. Spans form a tree via [`SpanRecord::parent`]; the specwise
/// flow's span hierarchy mirrors the phase structure of the paper's Fig. 6
/// (see the crate-level docs).
#[derive(Debug, Clone, PartialEq)]
pub struct SpanRecord {
    /// Journal-unique id, assigned at span *open* time in a deterministic
    /// sequence (serial control flow ⇒ identical ids across runs).
    pub id: u64,
    /// Id of the enclosing span, `None` for a root span.
    pub parent: Option<u64>,
    /// Span name (e.g. `"wcd_spec"`, `"iteration"`, `"mc_verify"`).
    pub name: String,
    /// Small per-journal thread index (0 = first thread that emitted).
    pub thread: u64,
    /// Microseconds since journal creation when the span opened.
    pub start_us: u64,
    /// Microseconds since journal creation when the span closed.
    pub end_us: u64,
    /// Typed attributes (worst-case points, flags, estimator statistics …).
    pub attrs: Vec<(String, TraceValue)>,
    /// Monotonic counters accumulated over the span (e.g. `sims`,
    /// `cache_hits`, `line_search_evals`).
    pub counters: Vec<(String, u64)>,
}

impl SpanRecord {
    /// Span duration in microseconds.
    pub fn duration_us(&self) -> u64 {
        self.end_us.saturating_sub(self.start_us)
    }

    /// Look up an attribute by key.
    pub fn attr(&self, key: &str) -> Option<&TraceValue> {
        self.attrs.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Look up a counter by key.
    pub fn counter(&self, key: &str) -> Option<u64> {
        self.counters
            .iter()
            .find(|(k, _)| k == key)
            .map(|(_, v)| *v)
    }
}

/// A point-in-time event, optionally attached to an enclosing span
/// (e.g. one batch dispatched by the evaluation engine).
#[derive(Debug, Clone, PartialEq)]
pub struct EventRecord {
    /// Id of the span this event occurred inside, if any.
    pub span: Option<u64>,
    /// Event name (e.g. `"batch"`, `"step_rejected"`).
    pub name: String,
    /// Small per-journal thread index.
    pub thread: u64,
    /// Microseconds since journal creation.
    pub ts_us: u64,
    /// Typed attributes.
    pub attrs: Vec<(String, TraceValue)>,
}

/// One journal entry: either a completed [`SpanRecord`] or an [`EventRecord`].
#[derive(Debug, Clone, PartialEq)]
pub enum Record {
    /// A completed span (recorded when the span closes).
    Span(SpanRecord),
    /// An instantaneous event.
    Event(EventRecord),
}

impl Record {
    /// The record as a single JSON line — the same schema the JSONL writer
    /// streams and [`Journal::from_jsonl`] parses (no trailing newline).
    pub fn to_json(&self) -> String {
        let mut out = String::new();
        write_record_json(&mut out, self);
        out
    }

    /// Parse one record from its [`Record::to_json`] line.
    pub fn from_json_str(text: &str) -> Result<Record, JournalParseError> {
        let json = json::parse(text).map_err(|e| JournalParseError {
            line: 1,
            message: e.to_string(),
        })?;
        record_from_json(&json).map_err(|message| JournalParseError { line: 1, message })
    }
}

/// Error from [`Journal::from_jsonl`]: the offending line plus the cause.
#[derive(Debug, Clone)]
pub struct JournalParseError {
    /// 1-based line number in the JSONL input.
    pub line: usize,
    /// Description of what was malformed.
    pub message: String,
}

impl std::fmt::Display for JournalParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "journal line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for JournalParseError {}

struct Inner {
    records: Vec<Record>,
    writer: Option<BufWriter<File>>,
    /// Flush the writer after every record — set by
    /// [`Journal::attach_jsonl`] so external processes tailing the file
    /// (e.g. a peer `specwise-serve` daemon fanning in a subscription)
    /// see lines as they are emitted rather than on buffer boundaries.
    flush_each: bool,
    path: Option<PathBuf>,
    threads: Vec<ThreadId>,
    subscribers: Vec<Sender<Record>>,
}

/// A live feed of journal records, created by [`Journal::subscribe`].
///
/// The feed first delivers every record the journal had already accumulated
/// when the subscription was opened (the backlog), then every subsequent
/// record in emission order — loss-free, with no duplicates. Dropping the
/// subscription detaches it; a detached subscriber never blocks or fails
/// record emission.
#[derive(Debug)]
pub struct Subscription {
    rx: Receiver<Record>,
}

impl Subscription {
    /// Wait up to `timeout` for the next record. Returns `None` on timeout
    /// or once the journal has been dropped and the feed is drained.
    pub fn recv_timeout(&self, timeout: std::time::Duration) -> Option<Record> {
        self.rx.recv_timeout(timeout).ok()
    }

    /// Drain every record currently buffered, without blocking.
    pub fn drain(&self) -> Vec<Record> {
        self.rx.try_iter().collect()
    }
}

/// Thread-safe journal sink.
///
/// All records live in memory (for [`Journal::records`],
/// [`Journal::to_chrome_trace`], [`Journal::span_tree`] and
/// [`Journal::summary`]); when constructed with [`Journal::with_jsonl`]
/// each record is additionally streamed to a JSONL file as it completes.
///
/// Records are appended under a single mutex, so concurrent emission from
/// scoped-thread workers is loss-free, and records emitted by one thread
/// appear in that thread's emission order. Span *ids* are assigned at open
/// time from an atomic counter: under the serial control flow of the
/// specwise optimizer the id sequence — and therefore the whole journal
/// minus its `*_us` timestamp fields — is deterministic across runs.
///
/// Timestamps are monotonic microseconds since journal creation
/// (`std::time::Instant`), immune to wall-clock adjustments.
pub struct Journal {
    inner: Mutex<Inner>,
    next_span: AtomicU64,
    epoch: Instant,
}

impl Journal {
    /// A journal that only accumulates records in memory.
    pub fn in_memory() -> Journal {
        Journal {
            inner: Mutex::new(Inner {
                records: Vec::new(),
                writer: None,
                flush_each: false,
                path: None,
                threads: Vec::new(),
                subscribers: Vec::new(),
            }),
            next_span: AtomicU64::new(1),
            epoch: Instant::now(),
        }
    }

    /// A journal that additionally streams every record to `path` as one
    /// JSON object per line (JSONL), flushed on [`Journal::flush`] / drop.
    pub fn with_jsonl<P: AsRef<Path>>(path: P) -> std::io::Result<Journal> {
        let path = path.as_ref().to_path_buf();
        let file = File::create(&path)?;
        let journal = Journal::in_memory();
        {
            let inner = &mut *journal.inner.lock().expect("new mutex");
            inner.writer = Some(BufWriter::new(file));
            inner.path = Some(path);
        }
        Ok(journal)
    }

    /// Attach (or replace) a streaming JSONL sink on a live journal.
    ///
    /// The file is created (truncating any previous content), the journal's
    /// in-memory backlog is replayed into it — so the file always mirrors
    /// [`Journal::records`] from record zero — and every subsequent record
    /// is written *and flushed* as it is emitted, making the file tailable
    /// by other processes in near-real time. `specwise-serve` uses this to
    /// mirror a job's journal into the shared spool, where any daemon in
    /// the fleet can fan it into a `subscribe` stream.
    ///
    /// Replay and registration happen under the same lock acquisition that
    /// serializes record emission, so no record is skipped or duplicated
    /// around the attach point.
    pub fn attach_jsonl<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        let path = path.as_ref().to_path_buf();
        let mut inner = self.inner.lock().expect("journal lock");
        let file = File::create(&path)?;
        let mut writer = BufWriter::new(file);
        let mut line = String::new();
        for record in &inner.records {
            line.clear();
            write_record_json(&mut line, record);
            line.push('\n');
            writer.write_all(line.as_bytes())?;
        }
        writer.flush()?;
        inner.writer = Some(writer);
        inner.flush_each = true;
        inner.path = Some(path);
        Ok(())
    }

    /// The JSONL path, when streaming via [`Journal::with_jsonl`] or
    /// [`Journal::attach_jsonl`].
    pub fn path(&self) -> Option<PathBuf> {
        self.inner.lock().expect("journal lock").path.clone()
    }

    /// Monotonic microseconds since this journal was created.
    pub fn now_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }

    /// Reserve the next span id (deterministic under serial control flow).
    pub(crate) fn next_span_id(&self) -> u64 {
        self.next_span.fetch_add(1, Ordering::Relaxed)
    }

    /// Append a record (and stream it to the JSONL writer, if any).
    pub(crate) fn record(&self, mut record: Record) {
        let mut inner = self.inner.lock().expect("journal lock");
        let thread = thread_index(&mut inner.threads);
        match &mut record {
            Record::Span(span) => span.thread = thread,
            Record::Event(event) => event.thread = thread,
        }
        if inner.writer.is_some() {
            let mut line = String::new();
            write_record_json(&mut line, &record);
            line.push('\n');
            let flush_each = inner.flush_each;
            if let Some(writer) = inner.writer.as_mut() {
                let _ = writer.write_all(line.as_bytes());
                if flush_each {
                    let _ = writer.flush();
                }
            }
        }
        if !inner.subscribers.is_empty() {
            inner
                .subscribers
                .retain(|tx| tx.send(record.clone()).is_ok());
        }
        inner.records.push(record);
    }

    /// Open a live [`Subscription`] to this journal.
    ///
    /// The backlog is pushed into the feed and the subscriber registered
    /// under the same lock acquisition that serializes [record] emission,
    /// so the feed sees every record exactly once, in order, with no
    /// window for a record to be missed or duplicated around the
    /// subscription point.
    ///
    /// [record]: Journal::records
    pub fn subscribe(&self) -> Subscription {
        let (tx, rx) = channel();
        let mut inner = self.inner.lock().expect("journal lock");
        for record in &inner.records {
            // The receiver is still in scope, so the send cannot fail.
            let _ = tx.send(record.clone());
        }
        inner.subscribers.push(tx);
        Subscription { rx }
    }

    /// Number of records so far.
    pub fn len(&self) -> usize {
        self.inner.lock().expect("journal lock").records.len()
    }

    /// `true` when no records have been emitted yet.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Snapshot of all records in completion order.
    pub fn records(&self) -> Vec<Record> {
        self.inner.lock().expect("journal lock").records.clone()
    }

    /// Serialize all records as JSONL (one JSON object per line).
    pub fn to_jsonl(&self) -> String {
        let inner = self.inner.lock().expect("journal lock");
        let mut out = String::new();
        for record in &inner.records {
            write_record_json(&mut out, record);
            out.push('\n');
        }
        out
    }

    /// Parse records back from JSONL produced by [`Journal::to_jsonl`] or
    /// the streaming writer.
    ///
    /// Integral float attributes are reconstructed as integer variants
    /// (JSON does not distinguish `3` from `3.0` after parsing); all other
    /// fields round-trip exactly.
    pub fn from_jsonl(input: &str) -> Result<Vec<Record>, JournalParseError> {
        let mut records = Vec::new();
        for (idx, line) in input.lines().enumerate() {
            let line_no = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let json = json::parse(line).map_err(|e| JournalParseError {
                line: line_no,
                message: e.to_string(),
            })?;
            records.push(
                record_from_json(&json).map_err(|message| JournalParseError {
                    line: line_no,
                    message,
                })?,
            );
        }
        Ok(records)
    }

    /// Export the journal in the Chrome Trace Event Format understood by
    /// `chrome://tracing` and [Perfetto](https://ui.perfetto.dev): spans
    /// become complete (`"ph":"X"`) events with microsecond `ts`/`dur`,
    /// events become thread-scoped instants (`"ph":"i"`), and span
    /// attributes/counters land in `args`.
    pub fn to_chrome_trace(&self) -> String {
        let inner = self.inner.lock().expect("journal lock");
        let mut out = String::from("{\"traceEvents\":[");
        let mut first = true;
        for record in &inner.records {
            if !first {
                out.push(',');
            }
            first = false;
            match record {
                Record::Span(span) => {
                    out.push_str("{\"name\":");
                    json::write_json_string(&mut out, &span.name);
                    let _ = write!(
                        out,
                        ",\"cat\":\"specwise\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{}",
                        span.start_us,
                        span.duration_us(),
                        span.thread
                    );
                    out.push_str(",\"args\":{");
                    let _ = write!(out, "\"span_id\":{}", span.id);
                    if let Some(parent) = span.parent {
                        let _ = write!(out, ",\"parent_id\":{parent}");
                    }
                    for (key, value) in &span.attrs {
                        out.push(',');
                        json::write_json_string(&mut out, key);
                        out.push(':');
                        value.write_json(&mut out);
                    }
                    for (key, value) in &span.counters {
                        out.push(',');
                        json::write_json_string(&mut out, key);
                        let _ = write!(out, ":{value}");
                    }
                    out.push_str("}}");
                }
                Record::Event(event) => {
                    out.push_str("{\"name\":");
                    json::write_json_string(&mut out, &event.name);
                    let _ = write!(
                        out,
                        ",\"cat\":\"specwise\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{}",
                        event.ts_us, event.thread
                    );
                    out.push_str(",\"args\":{");
                    let mut first_arg = true;
                    if let Some(span) = event.span {
                        let _ = write!(out, "\"span_id\":{span}");
                        first_arg = false;
                    }
                    for (key, value) in &event.attrs {
                        if !first_arg {
                            out.push(',');
                        }
                        first_arg = false;
                        json::write_json_string(&mut out, key);
                        out.push(':');
                        value.write_json(&mut out);
                    }
                    out.push_str("}}");
                }
            }
        }
        out.push_str("],\"displayTimeUnit\":\"ms\"}");
        out
    }

    /// Write [`Journal::to_chrome_trace`] to `path`.
    pub fn write_chrome_trace<P: AsRef<Path>>(&self, path: P) -> std::io::Result<()> {
        std::fs::write(path, self.to_chrome_trace())
    }

    /// Build the span forest (roots with nested children, ordered by span
    /// id, i.e. by open time under serial control flow).
    pub fn span_tree(&self) -> Vec<SpanNode> {
        let mut spans: Vec<SpanRecord> = self
            .records()
            .into_iter()
            .filter_map(|r| match r {
                Record::Span(s) => Some(s),
                Record::Event(_) => None,
            })
            .collect();
        spans.sort_by_key(|s| s.id);
        build_forest(None, &spans)
    }

    /// Human-readable run summary: the span tree with wall time and the
    /// `sims` counter per span. This is what the examples print after a
    /// traced run.
    pub fn summary(&self) -> String {
        let mut out = String::new();
        if let Some(path) = self.path() {
            let _ = writeln!(out, "trace journal: {}", path.display());
        }
        let _ = writeln!(out, "{:<44} {:>10} {:>9}", "span", "wall", "sims");
        for root in self.span_tree() {
            summarize_node(&mut out, &root, 0);
        }
        out
    }

    /// Flush the JSONL writer (no-op for in-memory journals).
    pub fn flush(&self) {
        let mut inner = self.inner.lock().expect("journal lock");
        if let Some(writer) = inner.writer.as_mut() {
            let _ = writer.flush();
        }
    }
}

impl Drop for Journal {
    fn drop(&mut self) {
        if let Ok(inner) = self.inner.get_mut() {
            if let Some(writer) = inner.writer.as_mut() {
                let _ = writer.flush();
            }
        }
    }
}

/// A node of the span forest returned by [`Journal::span_tree`].
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span itself.
    pub span: SpanRecord,
    /// Child spans, ordered by id.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Depth-first search for the first descendant (or self) with `name`.
    pub fn find(&self, name: &str) -> Option<&SpanNode> {
        if self.span.name == name {
            return Some(self);
        }
        self.children.iter().find_map(|c| c.find(name))
    }

    /// Names of the direct children, in order.
    pub fn child_names(&self) -> Vec<&str> {
        self.children.iter().map(|c| c.span.name.as_str()).collect()
    }
}

fn build_forest(parent: Option<u64>, spans: &[SpanRecord]) -> Vec<SpanNode> {
    spans
        .iter()
        .filter(|s| s.parent == parent)
        .map(|s| SpanNode {
            span: s.clone(),
            children: build_forest(Some(s.id), spans),
        })
        .collect()
}

fn summarize_node(out: &mut String, node: &SpanNode, depth: usize) {
    let indent = "  ".repeat(depth);
    let label = format!(
        "{}{}{}",
        indent,
        if depth > 0 { "- " } else { "" },
        node.span.name
    );
    let wall = format_duration(node.span.duration_us());
    let sims = node
        .span
        .counter("sims")
        .map(|n| n.to_string())
        .unwrap_or_else(|| "-".to_string());
    let _ = writeln!(out, "{label:<44} {wall:>10} {sims:>9}");
    for child in &node.children {
        summarize_node(out, child, depth + 1);
    }
}

fn format_duration(us: u64) -> String {
    if us >= 10_000_000 {
        format!("{:.1} s", us as f64 / 1.0e6)
    } else if us >= 10_000 {
        format!("{:.1} ms", us as f64 / 1.0e3)
    } else {
        format!("{us} us")
    }
}

fn thread_index(threads: &mut Vec<ThreadId>) -> u64 {
    let id = std::thread::current().id();
    match threads.iter().position(|t| *t == id) {
        Some(idx) => idx as u64,
        None => {
            threads.push(id);
            (threads.len() - 1) as u64
        }
    }
}

fn write_record_json(out: &mut String, record: &Record) {
    match record {
        Record::Span(span) => {
            out.push_str("{\"type\":\"span\",\"id\":");
            let _ = write!(out, "{}", span.id);
            if let Some(parent) = span.parent {
                let _ = write!(out, ",\"parent\":{parent}");
            }
            out.push_str(",\"name\":");
            json::write_json_string(out, &span.name);
            let _ = write!(
                out,
                ",\"thread\":{},\"start_us\":{},\"end_us\":{}",
                span.thread, span.start_us, span.end_us
            );
            write_kv_object(out, ",\"attrs\":{", &span.attrs, !span.attrs.is_empty());
            if !span.counters.is_empty() {
                out.push_str(",\"counters\":{");
                for (i, (key, value)) in span.counters.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    json::write_json_string(out, key);
                    let _ = write!(out, ":{value}");
                }
                out.push('}');
            }
            out.push('}');
        }
        Record::Event(event) => {
            out.push_str("{\"type\":\"event\",\"name\":");
            json::write_json_string(out, &event.name);
            if let Some(span) = event.span {
                let _ = write!(out, ",\"span\":{span}");
            }
            let _ = write!(
                out,
                ",\"thread\":{},\"ts_us\":{}",
                event.thread, event.ts_us
            );
            write_kv_object(out, ",\"attrs\":{", &event.attrs, !event.attrs.is_empty());
            out.push('}');
        }
    }
}

fn write_kv_object(
    out: &mut String,
    prefix: &str,
    pairs: &[(String, TraceValue)],
    non_empty: bool,
) {
    if !non_empty {
        return;
    }
    out.push_str(prefix);
    for (i, (key, value)) in pairs.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        json::write_json_string(out, key);
        out.push(':');
        value.write_json(out);
    }
    out.push('}');
}

fn record_from_json(json: &Json) -> Result<Record, String> {
    let kind = json
        .get("type")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"type\" field".to_string())?;
    let name = json
        .get("name")
        .and_then(Json::as_str)
        .ok_or_else(|| "missing \"name\" field".to_string())?
        .to_string();
    let thread = json.get("thread").and_then(Json::as_u64).unwrap_or(0);
    let attrs = kv_pairs_from_json(json.get("attrs"))?;
    match kind {
        "span" => {
            let id = json
                .get("id")
                .and_then(Json::as_u64)
                .ok_or_else(|| "span missing \"id\"".to_string())?;
            let counters = match json.get("counters") {
                None => Vec::new(),
                Some(Json::Obj(map)) => map
                    .iter()
                    .map(|(k, v)| {
                        v.as_u64()
                            .map(|n| (k.clone(), n))
                            .ok_or_else(|| format!("counter {k:?} is not an integer"))
                    })
                    .collect::<Result<Vec<_>, _>>()?,
                Some(_) => return Err("\"counters\" is not an object".to_string()),
            };
            Ok(Record::Span(SpanRecord {
                id,
                parent: json.get("parent").and_then(Json::as_u64),
                name,
                thread,
                start_us: json.get("start_us").and_then(Json::as_u64).unwrap_or(0),
                end_us: json.get("end_us").and_then(Json::as_u64).unwrap_or(0),
                attrs,
                counters,
            }))
        }
        "event" => Ok(Record::Event(EventRecord {
            span: json.get("span").and_then(Json::as_u64),
            name,
            thread,
            ts_us: json.get("ts_us").and_then(Json::as_u64).unwrap_or(0),
            attrs,
        })),
        other => Err(format!("unknown record type {other:?}")),
    }
}

fn kv_pairs_from_json(json: Option<&Json>) -> Result<Vec<(String, TraceValue)>, String> {
    match json {
        None => Ok(Vec::new()),
        Some(Json::Obj(map)) => map
            .iter()
            .map(|(k, v)| {
                TraceValue::from_json(v)
                    .map(|value| (k.clone(), value))
                    .ok_or_else(|| format!("attribute {k:?} has unsupported shape"))
            })
            .collect(),
        Some(_) => Err("\"attrs\" is not an object".to_string()),
    }
}
