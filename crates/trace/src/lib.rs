//! `specwise-trace` — a structured run journal for the specwise flow.
//!
//! The paper's flow (Fig. 6) is a long pipeline — feasibility search →
//! per-spec worst-case operating/statistical points → spec-wise
//! linearization → feasibility-guided optimization → MC/IS verification —
//! and this crate gives every phase a machine-readable record: a tree of
//! named [`Span`]s with monotonic timestamps, typed attributes (worst-case
//! points `θ_wc`/`ŝ_wc`, worst-case distances `β_wc`, accepted/rejected
//! flags, estimator variances) and per-span counters (simulator calls,
//! cache hits, retries) that absorb the `SimCounter`/`ExecReport`
//! attribution from `specwise-exec`.
//!
//! # Design
//!
//! * **Zero dependencies.** JSON is written and parsed by a small built-in
//!   module ([`json`]); everything else is `std`.
//! * **Opt-in, zero overhead when off.** The flow threads a [`Tracer`]
//!   handle through its entry points. [`Tracer::disabled`] (the default)
//!   makes every emission a single branch; [`Tracer::from_env`] enables
//!   journaling when `SPECWISE_TRACE=path.jsonl` is set.
//! * **Deterministic modulo timestamps.** Span ids are assigned in open
//!   order; under the optimizer's serial control flow two bit-identical
//!   runs produce journals that differ only in `*_us` fields.
//! * **Thread-safe.** The [`Journal`] sink appends under one mutex, so
//!   scoped-thread workers can emit concurrently without losing records,
//!   and each thread's records stay in its emission order.
//!
//! # Output formats
//!
//! A run serializes to one JSONL file (one record per line, streamed as
//! spans complete) and exports to the Chrome Trace Event Format via
//! [`Journal::to_chrome_trace`] for flamegraph-style inspection in
//! `chrome://tracing` or Perfetto.
//!
//! # The specwise span hierarchy
//!
//! When the yield optimizer runs with a tracer attached it emits (see
//! `docs/ARCHITECTURE.md` for the full walkthrough):
//!
//! ```text
//! run
//! ├─ feasible_start          Gauss–Newton projection onto c(d) ≥ 0
//! ├─ wc_analysis
//! │  ├─ corners              per-spec worst-case θ_wc (Eq. 2)
//! │  ├─ wcd_spec  × n_specs  worst-case distance search (Eq. 8): θ_wc, ŝ_wc, β_wc
//! │  └─ linearize × n_specs  FD gradient batches → spec-wise models (Eq. 16)
//! ├─ iteration    × n_iters  accepted/rejected, base/best bad-sample counts
//! │  ├─ constraints          linearized sizing rules c(d) ≥ 0 (Eq. 15)
//! │  ├─ coordinate_search    model-yield maximization (Eqs. 17–20)
//! │  ├─ line_search          pull-back onto feasibility (Eq. 23)
//! │  └─ wc_analysis          relinearization at the new point
//! └─ mc_verify / is_verify / norm_min_verify
//!                            Eqs. 6–7 MC, mean-shift IS (Eqs. 11–12), or
//!                            norm-minimization IS — one root span per
//!                            verification, emitted by the shared
//!                            estimator driver
//! ```
//!
//! # Example
//!
//! ```
//! use std::sync::Arc;
//! use specwise_trace::{Journal, Tracer};
//!
//! let journal = Arc::new(Journal::in_memory());
//! let tracer = Tracer::new(Arc::clone(&journal));
//! {
//!     let mut run = tracer.span("run");
//!     let child = run.tracer();
//!     {
//!         let mut wcd = child.span("wcd_spec");
//!         wcd.set_attr("spec", 0usize);
//!         wcd.set_attr("beta_wc", 3.2);
//!         wcd.add_count("sims", 41);
//!     }
//!     run.add_count("sims", 41);
//! }
//! let tree = journal.span_tree();
//! assert_eq!(tree[0].span.name, "run");
//! assert_eq!(tree[0].children[0].span.name, "wcd_spec");
//! let parsed = Journal::from_jsonl(&journal.to_jsonl()).unwrap();
//! assert_eq!(parsed.len(), 2);
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod journal;
pub mod json;
mod tracer;

pub use journal::{
    EventRecord, Journal, JournalParseError, Record, SpanNode, SpanRecord, Subscription,
};
pub use json::{Json, JsonError, TraceValue};
pub use tracer::{Span, Tracer, TRACE_ENV_VAR};

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    fn normalized(mut record: Record) -> Record {
        // JSON objects do not preserve key order, so compare attribute
        // lists order-insensitively.
        match &mut record {
            Record::Span(s) => {
                s.attrs.sort_by(|a, b| a.0.cmp(&b.0));
                s.counters.sort_by(|a, b| a.0.cmp(&b.0));
            }
            Record::Event(e) => e.attrs.sort_by(|a, b| a.0.cmp(&b.0)),
        }
        record
    }

    fn sample_journal() -> Arc<Journal> {
        let journal = Arc::new(Journal::in_memory());
        let tracer = Tracer::new(Arc::clone(&journal));
        let mut run = tracer.span("run");
        let inner = run.tracer();
        {
            let mut feas = inner.span("feasible_start");
            feas.set_attr("converged", true);
            feas.add_count("sims", 12);
        }
        for spec in 0..3usize {
            let mut wcd = inner.span("wcd_spec");
            wcd.set_attr("spec", spec);
            wcd.set_attr("name", format!("spec{spec}"));
            wcd.set_attr("beta_wc", 1.5 + spec as f64 + 0.25);
            wcd.set_attr("s_wc", vec![0.5, -0.5, 0.125 * spec as f64]);
            wcd.add_count("sims", 40 + spec as u64);
            wcd.tracer().event("fd_batch", &[("points", 8usize.into())]);
        }
        run.set_attr("label", "unit-test \"run\"\n");
        run.add_count("sims", 135);
        drop(run);
        journal
    }

    #[test]
    fn jsonl_round_trip_preserves_records() {
        let journal = sample_journal();
        let text = journal.to_jsonl();
        let parsed = Journal::from_jsonl(&text).expect("journal parses");
        let original = journal.records();
        assert_eq!(parsed.len(), original.len());
        for (a, b) in original.into_iter().zip(parsed) {
            assert_eq!(normalized(a), normalized(b));
        }
    }

    #[test]
    fn jsonl_parse_reports_line_numbers() {
        let err = Journal::from_jsonl("{\"type\":\"span\",\"id\":1,\"name\":\"x\"}\nnot json\n")
            .unwrap_err();
        assert_eq!(err.line, 2);
    }

    #[test]
    fn chrome_trace_is_schema_valid() {
        let journal = sample_journal();
        let doc = json::parse(&journal.to_chrome_trace()).expect("chrome export is valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(Json::as_arr)
            .expect("traceEvents array");
        assert_eq!(events.len(), journal.len());
        for event in events {
            // Required Trace Event Format fields.
            assert!(event.get("name").and_then(Json::as_str).is_some());
            let ph = event.get("ph").and_then(Json::as_str).unwrap();
            assert!(event.get("ts").and_then(Json::as_u64).is_some());
            assert!(event.get("pid").and_then(Json::as_u64).is_some());
            assert!(event.get("tid").and_then(Json::as_u64).is_some());
            match ph {
                "X" => assert!(event.get("dur").and_then(Json::as_u64).is_some()),
                "i" => assert_eq!(event.get("s").and_then(Json::as_str), Some("t")),
                other => panic!("unexpected phase {other:?}"),
            }
        }
        // The wcd_spec spans carry their worst-case attributes into args.
        let wcd = events
            .iter()
            .find(|e| e.get("name").and_then(Json::as_str) == Some("wcd_spec"))
            .unwrap();
        let args = wcd.get("args").unwrap();
        assert!(args.get("beta_wc").and_then(Json::as_f64).is_some());
        assert_eq!(
            args.get("s_wc").and_then(Json::as_arr).map(<[Json]>::len),
            Some(3)
        );
        assert!(args.get("sims").and_then(Json::as_u64).is_some());
    }

    #[test]
    fn concurrent_emission_is_loss_free_and_ordered_per_thread() {
        const THREADS: usize = 8;
        const SPANS_PER_THREAD: usize = 200;
        let journal = Arc::new(Journal::in_memory());
        let tracer = Tracer::new(Arc::clone(&journal));
        std::thread::scope(|scope| {
            for t in 0..THREADS {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for j in 0..SPANS_PER_THREAD {
                        let mut span = tracer.span("worker_span");
                        span.set_attr("worker", t);
                        span.set_attr("seq", j);
                    }
                });
            }
        });
        let records = journal.records();
        assert_eq!(records.len(), THREADS * SPANS_PER_THREAD, "no records lost");
        // Per worker, spans appear in that worker's emission order.
        let mut last_seq = [None::<u64>; THREADS];
        for record in &records {
            let Record::Span(span) = record else {
                panic!("unexpected event")
            };
            let worker = match span.attr("worker") {
                Some(TraceValue::U64(w)) => *w as usize,
                other => panic!("bad worker attr {other:?}"),
            };
            let seq = match span.attr("seq") {
                Some(TraceValue::U64(s)) => *s,
                other => panic!("bad seq attr {other:?}"),
            };
            if let Some(prev) = last_seq[worker] {
                assert!(
                    seq > prev,
                    "worker {worker} out of order: {prev} then {seq}"
                );
            }
            last_seq[worker] = Some(seq);
        }
        // All span ids are distinct.
        let mut ids: Vec<u64> = records
            .iter()
            .map(|r| match r {
                Record::Span(s) => s.id,
                Record::Event(_) => unreachable!(),
            })
            .collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), THREADS * SPANS_PER_THREAD);
    }

    #[test]
    fn jsonl_file_streaming_matches_in_memory() {
        let dir = std::env::temp_dir().join("specwise-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("stream-{}.jsonl", std::process::id()));
        {
            let journal = Arc::new(Journal::with_jsonl(&path).unwrap());
            let tracer = Tracer::new(Arc::clone(&journal));
            {
                let mut span = tracer.span("run");
                span.add_count("sims", 3);
            }
            journal.flush();
            let on_disk = std::fs::read_to_string(&path).unwrap();
            assert_eq!(on_disk, journal.to_jsonl());
            assert_eq!(journal.path(), Some(path.clone()));
        }
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn attach_jsonl_replays_backlog_and_tails_live_records() {
        let dir = std::env::temp_dir().join("specwise-trace-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join(format!("attach-{}.jsonl", std::process::id()));
        let journal = Arc::new(Journal::in_memory());
        let tracer = Tracer::new(Arc::clone(&journal));
        {
            let mut span = tracer.span("before_attach");
            span.add_count("sims", 1);
        }
        journal.attach_jsonl(&path).unwrap();
        // Backlog is already on disk, flushed, before any new record.
        let backlog = std::fs::read_to_string(&path).unwrap();
        assert_eq!(backlog.lines().count(), 1);
        assert!(backlog.contains("before_attach"));
        // Live records are flushed per-record: visible without an explicit
        // flush, which is what lets another process tail the file.
        tracer.event("after_attach", &[]);
        let on_disk = std::fs::read_to_string(&path).unwrap();
        assert_eq!(on_disk, journal.to_jsonl());
        let parsed = Journal::from_jsonl(&on_disk).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(journal.path(), Some(path.clone()));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn disabled_tracer_records_nothing() {
        let tracer = Tracer::disabled();
        assert!(!tracer.is_enabled());
        let mut span = tracer.span("ignored");
        assert!(!span.is_enabled());
        assert_eq!(span.id(), None);
        span.set_attr("x", 1.0);
        span.add_count("sims", 5);
        span.tracer().event("nothing", &[]);
        assert!(tracer.journal().is_none());
    }

    #[test]
    fn summary_renders_span_tree() {
        let journal = sample_journal();
        let summary = journal.summary();
        assert!(summary.contains("run"));
        assert!(summary.contains("- feasible_start"));
        assert!(summary.contains("- wcd_spec"));
        assert!(summary.contains("135"));
    }

    #[test]
    fn subscription_delivers_backlog_then_live_records_in_order() {
        let journal = Arc::new(Journal::in_memory());
        let tracer = Tracer::new(Arc::clone(&journal));
        {
            let mut span = tracer.span("backlog_span");
            span.add_count("sims", 1);
        }
        tracer.event("backlog_event", &[]);
        let sub = journal.subscribe();
        {
            let mut span = tracer.span("live_span");
            span.add_count("sims", 2);
        }
        drop(tracer);
        let names: Vec<String> = sub
            .drain()
            .iter()
            .map(|r| match r {
                Record::Span(s) => s.name.clone(),
                Record::Event(e) => e.name.clone(),
            })
            .collect();
        assert_eq!(names, ["backlog_span", "backlog_event", "live_span"]);
        // The feed matches the journal's own record store exactly.
        assert_eq!(journal.len(), 3);
        // A dropped subscriber must not break later emission.
        drop(sub);
        tracer2_emits(&journal);
        assert_eq!(journal.len(), 4);
    }

    fn tracer2_emits(journal: &Arc<Journal>) {
        let tracer = Tracer::new(Arc::clone(journal));
        tracer.event("after_drop", &[]);
    }

    #[test]
    fn subscription_streams_from_concurrent_emitters_loss_free() {
        const THREADS: usize = 4;
        const EVENTS: usize = 100;
        let journal = Arc::new(Journal::in_memory());
        let tracer = Tracer::new(Arc::clone(&journal));
        let sub = journal.subscribe();
        std::thread::scope(|scope| {
            for _ in 0..THREADS {
                let tracer = tracer.clone();
                scope.spawn(move || {
                    for _ in 0..EVENTS {
                        tracer.event("tick", &[]);
                    }
                });
            }
        });
        assert_eq!(sub.drain().len(), THREADS * EVENTS);
    }

    #[test]
    fn record_json_line_round_trips() {
        let journal = sample_journal();
        for record in journal.records() {
            let line = journal_line(&record);
            let parsed = Record::from_json_str(&line).expect("record parses");
            assert_eq!(normalized(record), normalized(parsed));
        }
        assert!(Record::from_json_str("not json").is_err());
        assert!(Record::from_json_str("{\"type\":\"mystery\",\"name\":\"x\"}").is_err());
    }

    fn journal_line(record: &Record) -> String {
        let line = record.to_json();
        assert!(!line.contains('\n'), "to_json must be a single line");
        line
    }

    #[test]
    fn span_ids_are_deterministic_in_serial_flow() {
        let ids = |journal: &Journal| -> Vec<(String, u64, Option<u64>)> {
            journal
                .records()
                .iter()
                .filter_map(|r| match r {
                    Record::Span(s) => Some((s.name.clone(), s.id, s.parent)),
                    Record::Event(_) => None,
                })
                .collect()
        };
        let a = sample_journal();
        let b = sample_journal();
        assert_eq!(ids(&a), ids(&b));
    }
}
