//! Minimal hand-rolled JSON support.
//!
//! The workspace is fully offline and `specwise-trace` is zero-dependency by
//! design, so journal records are serialized with a small purpose-built
//! writer and parsed back (for round-trip tests and [`crate::Journal::from_jsonl`])
//! with an equally small recursive-descent parser. Both cover exactly the
//! JSON subset the journal emits: objects, arrays, strings, finite numbers,
//! booleans and `null`.

use std::collections::BTreeMap;
use std::fmt;

/// A typed attribute value attached to a span or event.
///
/// Everything the flow records — spec indices, worst-case distances
/// `β_wc`, statistical points `ŝ_wc`, accepted/rejected flags, estimator
/// variances — fits one of these variants. Non-finite floats serialize as
/// `null` (JSON has no NaN/∞).
#[derive(Debug, Clone, PartialEq)]
pub enum TraceValue {
    /// A boolean flag (e.g. `accepted`, `converged`, `mirrored`).
    Bool(bool),
    /// An unsigned counter-like value (sample counts, spec indices).
    U64(u64),
    /// A signed integer.
    I64(i64),
    /// A scalar measurement (margins, distances, variances).
    F64(f64),
    /// A free-form label (spec names, corner descriptions).
    Str(String),
    /// A numeric vector (worst-case points `θ_wc`, `ŝ_wc`).
    List(Vec<f64>),
}

impl From<bool> for TraceValue {
    fn from(v: bool) -> Self {
        TraceValue::Bool(v)
    }
}
impl From<u64> for TraceValue {
    fn from(v: u64) -> Self {
        TraceValue::U64(v)
    }
}
impl From<usize> for TraceValue {
    fn from(v: usize) -> Self {
        TraceValue::U64(v as u64)
    }
}
impl From<u32> for TraceValue {
    fn from(v: u32) -> Self {
        TraceValue::U64(u64::from(v))
    }
}
impl From<i64> for TraceValue {
    fn from(v: i64) -> Self {
        TraceValue::I64(v)
    }
}
impl From<f64> for TraceValue {
    fn from(v: f64) -> Self {
        TraceValue::F64(v)
    }
}
impl From<&str> for TraceValue {
    fn from(v: &str) -> Self {
        TraceValue::Str(v.to_string())
    }
}
impl From<String> for TraceValue {
    fn from(v: String) -> Self {
        TraceValue::Str(v)
    }
}
impl From<&[f64]> for TraceValue {
    fn from(v: &[f64]) -> Self {
        TraceValue::List(v.to_vec())
    }
}
impl From<Vec<f64>> for TraceValue {
    fn from(v: Vec<f64>) -> Self {
        TraceValue::List(v)
    }
}

impl TraceValue {
    /// Append this value's JSON representation to `out`.
    pub fn write_json(&self, out: &mut String) {
        match self {
            TraceValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            TraceValue::U64(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            TraceValue::I64(n) => {
                use fmt::Write as _;
                let _ = write!(out, "{n}");
            }
            TraceValue::F64(x) => write_f64(out, *x),
            TraceValue::Str(s) => write_json_string(out, s),
            TraceValue::List(xs) => {
                out.push('[');
                for (i, x) in xs.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_f64(out, *x);
                }
                out.push(']');
            }
        }
    }

    /// Reconstruct a value from parsed JSON (inverse of [`write_json`]).
    ///
    /// Integral numbers come back as [`TraceValue::U64`]/[`TraceValue::I64`],
    /// everything else as [`TraceValue::F64`]; `null` (a serialized
    /// non-finite float) comes back as NaN.
    ///
    /// [`write_json`]: TraceValue::write_json
    pub fn from_json(json: &Json) -> Option<TraceValue> {
        match json {
            Json::Bool(b) => Some(TraceValue::Bool(*b)),
            Json::Num(x) => Some(num_to_value(*x)),
            Json::Str(s) => Some(TraceValue::Str(s.clone())),
            Json::Null => Some(TraceValue::F64(f64::NAN)),
            Json::Arr(items) => {
                let mut xs = Vec::with_capacity(items.len());
                for item in items {
                    match item {
                        Json::Num(x) => xs.push(*x),
                        Json::Null => xs.push(f64::NAN),
                        _ => return None,
                    }
                }
                Some(TraceValue::List(xs))
            }
            Json::Obj(_) => None,
        }
    }
}

fn num_to_value(x: f64) -> TraceValue {
    if x.fract() == 0.0 && x.abs() < 9.0e15 {
        if x >= 0.0 {
            TraceValue::U64(x as u64)
        } else {
            TraceValue::I64(x as i64)
        }
    } else {
        TraceValue::F64(x)
    }
}

/// Write a finite float as a round-trippable JSON number (`null` if
/// non-finite, which JSON cannot represent).
pub fn write_f64(out: &mut String, x: f64) {
    use fmt::Write as _;
    if x.is_finite() {
        if x.fract() == 0.0 && x.abs() < 1.0e15 {
            // Keep integral floats compact and unambiguous ("3.0", not "3").
            let _ = write!(out, "{x:.1}");
        } else {
            let _ = write!(out, "{x}");
        }
    } else {
        out.push_str("null");
    }
}

/// Append `s` to `out` as a JSON string literal with full escaping.
pub fn write_json_string(out: &mut String, s: &str) {
    use fmt::Write as _;
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// A parsed JSON value (used by [`crate::Journal::from_jsonl`] and the
/// schema tests; not a general-purpose JSON library).
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number (parsed as `f64`).
    Num(f64),
    /// A string literal.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object. Key order is not preserved (keys are sorted).
    Obj(BTreeMap<String, Json>),
}

impl Json {
    /// Object field lookup; `None` for non-objects or missing keys.
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(map) => map.get(key),
            _ => None,
        }
    }

    /// The value as a float, if it is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Json::Num(x) => Some(*x),
            _ => None,
        }
    }

    /// The value as an unsigned integer, if it is an integral number ≥ 0.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::Num(x) if x.fract() == 0.0 && *x >= 0.0 && *x < 9.0e15 => Some(*x as u64),
            _ => None,
        }
    }

    /// The value as a string slice, if it is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as an array slice, if it is an array.
    pub fn as_arr(&self) -> Option<&[Json]> {
        match self {
            Json::Arr(items) => Some(items),
            _ => None,
        }
    }
}

/// Error produced by [`parse`]: byte offset plus a short description.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What the parser expected or found.
    pub message: String,
}

impl fmt::Display for JsonError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "JSON parse error at byte {}: {}",
            self.offset, self.message
        )
    }
}

impl std::error::Error for JsonError {}

/// Parse a single JSON document. Trailing non-whitespace is an error.
pub fn parse(input: &str) -> Result<Json, JsonError> {
    let bytes = input.as_bytes();
    let mut pos = 0usize;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after JSON value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => Ok(Json::Str(parse_string(bytes, pos)?)),
        Some(b't') => parse_literal(bytes, pos, "true", Json::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", Json::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", Json::Null),
        Some(_) => parse_number(bytes, pos),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    literal: &str,
    value: Json,
) -> Result<Json, JsonError> {
    if bytes[*pos..].starts_with(literal.as_bytes()) {
        *pos += literal.len();
        Ok(value)
    } else {
        Err(err(*pos, "invalid literal"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    while *pos < bytes.len()
        && matches!(bytes[*pos], b'-' | b'+' | b'.' | b'e' | b'E' | b'0'..=b'9')
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|_| err(start, "invalid utf-8"))?;
    text.parse::<f64>()
        .map(Json::Num)
        .map_err(|_| err(start, "invalid number"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    debug_assert_eq!(bytes[*pos], b'"');
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or_else(|| err(*pos, "truncated \\u escape"))?;
                        let hex = std::str::from_utf8(hex)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| err(*pos, "invalid \\u escape"))?;
                        out.push(
                            char::from_u32(code).ok_or_else(|| err(*pos, "invalid code point"))?,
                        );
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "invalid escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 code point.
                let rest =
                    std::str::from_utf8(&bytes[*pos..]).map_err(|_| err(*pos, "invalid utf-8"))?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'[');
    *pos += 1;
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected ',' or ']'")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    debug_assert_eq!(bytes[*pos], b'{');
    *pos += 1;
    let mut map = BTreeMap::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(map));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected object key"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected ':'"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        map.insert(key, value);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(map));
            }
            _ => return Err(err(*pos, "expected ',' or '}'")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_nested_document() {
        let doc = r#"{"a": [1, 2.5, -3e2, null], "b": {"c": "x\n\"y\""}, "t": true}"#;
        let json = parse(doc).unwrap();
        assert_eq!(json.get("a").unwrap().as_arr().unwrap().len(), 4);
        assert_eq!(
            json.get("a").unwrap().as_arr().unwrap()[2].as_f64(),
            Some(-300.0)
        );
        assert_eq!(
            json.get("b").unwrap().get("c").unwrap().as_str(),
            Some("x\n\"y\"")
        );
        assert_eq!(json.get("t"), Some(&Json::Bool(true)));
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("[1,").is_err());
        assert!(parse("\"open").is_err());
    }

    #[test]
    fn string_escaping_round_trips() {
        let nasty = "tab\t newline\n quote\" backslash\\ unicode \u{1}µ";
        let mut out = String::new();
        write_json_string(&mut out, nasty);
        let parsed = parse(&out).unwrap();
        assert_eq!(parsed.as_str(), Some(nasty));
    }

    #[test]
    fn float_formatting_round_trips() {
        for x in [0.0, -1.5, 3.0, 1.0e-12, 6.02214076e23, -0.3333333333333333] {
            let mut out = String::new();
            write_f64(&mut out, x);
            let parsed = parse(&out).unwrap();
            assert_eq!(parsed.as_f64(), Some(x), "value {x} via {out}");
        }
        let mut out = String::new();
        write_f64(&mut out, f64::NAN);
        assert_eq!(out, "null");
    }

    #[test]
    fn trace_value_round_trips() {
        let values = [
            TraceValue::Bool(true),
            TraceValue::U64(42),
            TraceValue::I64(-7),
            TraceValue::F64(1.25),
            TraceValue::Str("β_wc".to_string()),
            TraceValue::List(vec![0.5, -0.5, 3.0]),
        ];
        for v in values {
            let mut out = String::new();
            v.write_json(&mut out);
            let parsed = parse(&out).unwrap();
            assert_eq!(TraceValue::from_json(&parsed), Some(v), "via {out}");
        }
    }
}
