//! Hostile-input fuzzing for the deck parser: random byte soups, truncated
//! decks, and brace bombs must produce typed [`ParseDeckError`]s (or a
//! harmless parse), never a panic. This is the ingestion boundary
//! `specwise-serve` exposes to untrusted clients.
//!
//! Beyond byte soup, the structure-aware generator from `specwise-fuzz`
//! drives grammar-shaped decks through the parser: generated decks must
//! parse (or fail with a typed, 1-based-line error), round-trip through
//! `to_deck()`, and survive stacked mutations without ever panicking.

use proptest::prelude::*;
use rand::{rngs::StdRng, SeedableRng};
use specwise_fuzz::generator::{generate_deck, GenConfig};
use specwise_fuzz::mutate::mutate_n;
use specwise_mna::{
    parse_deck, parse_deck_ast, parse_deck_ast_limited, DeckLimits, ParseDeckError,
};

/// A representative annotated deck exercising every directive and element
/// kind the grammar supports.
const DECK: &str = ".name fuzz testbench
.nodes vdd inp out
.temp 27
.design w1 um 2 400 8
.design ib uA 1 100 10
.range temp -40 125
.range vdd 4.5 5.5
.spec A0 dB min 80 dcgain
.match m1 m2
.tb vinp VINP
VDD vdd 0 {vdd} ; supply
VINP inp 0 2.5 AC 0.5
IB1 vdd bias {ib}
RZ a b 1.2e3
CC a out 3p
E1 e 0 a b 2
G1 g 0 a b 1m
M1 out inp 0 0 NMOS W={w1} L=2e-6
D1 a 0 IS=1e-12 N=2
.end
";

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    #[test]
    fn random_byte_soup_never_panics(raw in prop::collection::vec(0u16..256, 0..2048)) {
        let bytes: Vec<u8> = raw.iter().map(|b| *b as u8).collect();
        let text = String::from_utf8_lossy(&bytes);
        let _ = parse_deck_ast(&text);
        let _ = parse_deck(&text);
    }

    #[test]
    fn random_token_decks_never_panic(
        lines in prop::collection::vec(
            prop::collection::vec(0usize..TOKENS.len(), 0..8),
            0..40,
        ),
    ) {
        let text: String = lines
            .iter()
            .map(|line| {
                let mut s = line.iter().map(|i| TOKENS[*i]).collect::<Vec<_>>().join(" ");
                s.push('\n');
                s
            })
            .collect();
        let _ = parse_deck_ast(&text);
        let _ = parse_deck(&text);
    }

    #[test]
    fn truncated_decks_never_panic(cut in 0usize..600) {
        let cut = cut.min(DECK.len());
        // The deck is pure ASCII, so any cut is a char boundary.
        let _ = parse_deck_ast(&DECK[..cut]);
        let _ = parse_deck(&DECK[..cut]);
    }

    #[test]
    fn brace_bombs_are_rejected_with_a_typed_error(depth in 2usize..64) {
        let token = format!("{}w1{}", "{".repeat(depth), "}".repeat(depth));
        let deck = format!("V1 a 0 {token}\n");
        let err = parse_deck_ast(&deck).unwrap_err();
        prop_assert!(
            matches!(err, ParseDeckError::ParamTooDeep { line: 1, .. }),
            "depth {}: {:?}",
            depth,
            err
        );
    }

    #[test]
    fn tight_limits_always_yield_limit_errors_not_panics(
        max_bytes in 1usize..64,
        max_directives in 1usize..4,
        max_elements in 1usize..4,
    ) {
        let limits = DeckLimits {
            max_bytes,
            max_directives,
            max_elements,
            max_param_depth: 1,
            ..DeckLimits::default()
        };
        // Whatever the limits, the parser returns — it never panics, and
        // the full deck always violates at least `max_bytes` here.
        prop_assert!(parse_deck_ast_limited(DECK, &limits).is_err());
    }

    #[test]
    fn generated_decks_parse_and_round_trip(seed in 0u64..u64::MAX, annotate in 0.0f64..1.0) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { annotate, ..GenConfig::default() };
        let deck = generate_deck(&mut rng, &cfg);
        // Generator output is always grammatical: it must parse, not
        // merely fail politely.
        let ast = parse_deck_ast(&deck.text);
        prop_assert!(ast.is_ok(), "generated deck failed to parse: {:?}\n{}", ast, deck.text);
        let ast = ast.unwrap();
        // `to_deck()` round-trips: reparse equals, reprint is idempotent.
        let printed = ast.to_deck();
        let reparsed = parse_deck_ast(&printed);
        prop_assert!(reparsed.is_ok(), "printed deck failed to reparse: {:?}", reparsed);
        let reparsed = reparsed.unwrap();
        prop_assert_eq!(&reparsed, &ast, "round-trip changed the AST");
        prop_assert_eq!(reparsed.to_deck(), printed, "printing is not idempotent");
        // Fully numeric decks must lower to a circuit or give a typed
        // element error; never panic.
        if deck.concrete {
            let _ = ast.to_circuit();
        }
    }

    #[test]
    fn mutated_generated_decks_give_typed_errors(
        seed in 0u64..u64::MAX,
        stacked in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = GenConfig { annotate: 0.5, ..GenConfig::default() };
        let base = generate_deck(&mut rng, &cfg);
        let mutated = mutate_n(&base.text, &mut rng, stacked);
        // Mutated decks may be arbitrary garbage; the contract is a typed
        // error carrying a 1-based line, or a harmless parse.
        match parse_deck_ast(&mutated) {
            Ok(ast) => {
                let _ = ast.to_circuit();
            }
            Err(e) => prop_assert!(e.line() >= 1, "0-based line in {e}"),
        }
        let _ = parse_deck(&mutated);
    }

    #[test]
    fn mutated_reference_deck_never_panics(seed in 0u64..u64::MAX, stacked in 1usize..6) {
        let mut rng = StdRng::seed_from_u64(seed);
        let mutated = mutate_n(DECK, &mut rng, stacked);
        match parse_deck_ast(&mutated) {
            Ok(ast) => {
                let printed = ast.to_deck();
                // A deck the parser accepted must print to a deck the
                // parser accepts again (the corpus pinned `1e999` and
                // `.temp` counterexamples to exactly this property).
                prop_assert!(parse_deck_ast(&printed).is_ok(), "reprint failed:\n{printed}");
            }
            Err(e) => prop_assert!(e.line() >= 1, "0-based line in {e}"),
        }
    }
}

/// Grammar-adjacent tokens: valid heads, directives, values, and junk, so
/// random decks reach deep into every parse arm.
const TOKENS: &[&str] = &[
    ".design",
    ".spec",
    ".range",
    ".match",
    ".tb",
    ".name",
    ".nodes",
    ".temp",
    ".end",
    ".include",
    "R1",
    "C1",
    "V1",
    "I1",
    "E1",
    "G1",
    "M1",
    "D1",
    "X1",
    "a",
    "b",
    "0",
    "gnd",
    "out",
    "1k",
    "2.5u",
    "-5",
    "1e308",
    "-1e308",
    "nan",
    "{w1}",
    "{{w1}}",
    "{",
    "}",
    "{}",
    "AC",
    "NMOS",
    "PMOS",
    "W=10u",
    "L=",
    "W={w1}",
    "IS=1e-12",
    "N=2",
    "min",
    "max",
    "um",
    ";",
    "*",
    "\u{1F4A3}",
    "",
];
