//! Dense-vs-sparse backend parity on a MOSFET circuit large enough to take
//! the sparse path under `Auto`, plus the symbolic-cache regression: reusing
//! the cached symbolic factorization across a parameter sweep must produce
//! solutions bit-identical to factoring fresh every time.

use std::sync::Mutex;

use specwise_mna::{
    clear_symbolic_cache, set_solver_override, symbolic_cache_len, uses_sparse, AcSolver, Circuit,
    DcOp, MosfetModel, MosfetParams, SolverChoice, Transient, TransientOptions, Waveform,
};

/// The backend override is process-global; serialize tests that flip it.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<R>(choice: SolverChoice, f: impl FnOnce() -> R) -> R {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_solver_override(Some(choice));
    let out = f();
    set_solver_override(None);
    out
}

/// Five-transistor OTA: NMOS differential pair, PMOS mirror load, resistive
/// tail — 6 non-ground nodes + 3 source branches = 9 MNA unknowns, above the
/// sparse auto-threshold.
fn ota(vdd_v: f64, w_scale: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let inp = ckt.node("inp");
    let inn = ckt.node("inn");
    let tail = ckt.node("tail");
    let d1 = ckt.node("d1");
    let out = ckt.node("out");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, vdd_v)
        .unwrap();
    ckt.voltage_source("VINP", inp, Circuit::GROUND, 1.2)
        .unwrap();
    ckt.set_ac("VINP", 1.0).unwrap();
    ckt.voltage_source("VINN", inn, Circuit::GROUND, 1.2)
        .unwrap();
    let nmos = |w: f64| MosfetParams::new(MosfetModel::default_nmos(), w * w_scale, 1e-6);
    let pmos = |w: f64| MosfetParams::new(MosfetModel::default_pmos(), w * w_scale, 1e-6);
    ckt.mosfet("M1", d1, inp, tail, Circuit::GROUND, nmos(20e-6))
        .unwrap();
    ckt.mosfet("M2", out, inn, tail, Circuit::GROUND, nmos(20e-6))
        .unwrap();
    ckt.mosfet("M3", d1, d1, vdd, vdd, pmos(40e-6)).unwrap();
    ckt.mosfet("M4", out, d1, vdd, vdd, pmos(40e-6)).unwrap();
    ckt.resistor("RT", tail, Circuit::GROUND, 20e3).unwrap();
    ckt.capacitor("CL", out, Circuit::GROUND, 1e-12).unwrap();
    ckt
}

#[test]
fn ota_takes_sparse_path_under_auto() {
    let ckt = ota(3.0, 1.0);
    assert!(ckt.num_unknowns() >= 8, "n = {}", ckt.num_unknowns());
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_solver_override(None);
    // Default env has no SPECWISE_SOLVER; Auto applies.
    if std::env::var("SPECWISE_SOLVER").is_err() {
        assert!(uses_sparse(ckt.num_unknowns()));
    }
    assert!(!uses_sparse(2));
}

#[test]
fn dc_sparse_matches_dense() {
    let ckt = ota(3.0, 1.0);
    let dense = with_backend(SolverChoice::Dense, || DcOp::new(&ckt).solve().unwrap());
    let sparse = with_backend(SolverChoice::Sparse, || DcOp::new(&ckt).solve().unwrap());
    for i in 0..dense.unknowns().len() {
        assert!(
            (dense.unknowns()[i] - sparse.unknowns()[i]).abs() < 1e-8,
            "unknown {i}: dense {} sparse {}",
            dense.unknowns()[i],
            sparse.unknowns()[i]
        );
    }
    for (md, ms) in dense.mosfet_ops().iter().zip(sparse.mosfet_ops()) {
        assert_eq!(md.region, ms.region, "{}", md.name);
        assert!(
            (md.id - ms.id).abs() < 1e-12 * (1.0 + md.id.abs()),
            "{}",
            md.name
        );
    }
}

#[test]
fn ac_sparse_matches_dense() {
    let ckt = ota(3.0, 1.0);
    let out = ckt.find_node("out").unwrap();
    let run = |choice| {
        with_backend(choice, || {
            let op = DcOp::new(&ckt).solve().unwrap();
            let ac = AcSolver::new(&ckt, &op);
            [1.0, 1e3, 1e6, 1e9]
                .iter()
                .map(|&f| ac.solve(f).unwrap().voltage(out))
                .collect::<Vec<_>>()
        })
    };
    let dense = run(SolverChoice::Dense);
    let sparse = run(SolverChoice::Sparse);
    for (hd, hs) in dense.iter().zip(&sparse) {
        let err = (*hd - *hs).abs() / (1.0 + hd.abs());
        assert!(err < 1e-9, "dense {hd:?} sparse {hs:?}");
    }
}

#[test]
fn transient_sparse_matches_dense() {
    let mut ckt = ota(3.0, 1.0);
    ckt.set_stimulus(
        "VINP",
        Waveform::Step {
            v0: 1.2,
            v1: 1.3,
            t0: 5e-9,
            t_rise: 1e-9,
        },
    )
    .unwrap();
    let out = ckt.find_node("out").unwrap();
    let run = |choice| {
        with_backend(choice, || {
            Transient::new(&ckt, TransientOptions::new(0.5e-9, 50e-9))
                .run()
                .unwrap()
                .voltage(out)
        })
    };
    let dense = run(SolverChoice::Dense);
    let sparse = run(SolverChoice::Sparse);
    assert_eq!(dense.len(), sparse.len());
    for (k, (vd, vs)) in dense.iter().zip(&sparse).enumerate() {
        assert!((vd - vs).abs() < 1e-7, "step {k}: dense {vd} sparse {vs}");
    }
}

#[test]
fn symbolic_cache_reuse_is_bit_identical_across_sweep() {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_solver_override(Some(SolverChoice::Sparse));

    let vdds = [2.7, 2.85, 3.0, 3.15, 3.3];

    // Pass 1: the symbolic factorization is computed once and reused for
    // every sweep point (all five circuits share one topology).
    clear_symbolic_cache();
    let cached: Vec<Vec<f64>> = vdds
        .iter()
        .map(|&v| {
            let ckt = ota(v, 1.0);
            DcOp::new(&ckt)
                .solve()
                .unwrap()
                .unknowns()
                .as_slice()
                .to_vec()
        })
        .collect();
    assert_eq!(symbolic_cache_len(), 1, "one topology, one DC cache entry");

    // Pass 2: force a fresh symbolic analysis before every point.
    let fresh: Vec<Vec<f64>> = vdds
        .iter()
        .map(|&v| {
            clear_symbolic_cache();
            let ckt = ota(v, 1.0);
            DcOp::new(&ckt)
                .solve()
                .unwrap()
                .unknowns()
                .as_slice()
                .to_vec()
        })
        .collect();

    set_solver_override(None);
    for (k, (a, b)) in cached.iter().zip(&fresh).enumerate() {
        assert_eq!(a, b, "sweep point {k} not bit-identical");
    }
}

#[test]
fn solution_from_reconstructs_operating_records() {
    let ckt = ota(3.0, 1.0);
    let solved = with_backend(SolverChoice::Sparse, || DcOp::new(&ckt).solve().unwrap());
    let rebuilt = DcOp::new(&ckt)
        .solution_from(solved.unknowns().clone())
        .unwrap();
    assert_eq!(rebuilt.iterations(), 0);
    assert_eq!(
        solved.unknowns().as_slice(),
        rebuilt.unknowns().as_slice(),
        "unknowns pass through untouched"
    );
    for (a, b) in solved.mosfet_ops().iter().zip(rebuilt.mosfet_ops()) {
        assert_eq!(a.region, b.region);
        assert_eq!(a.id, b.id, "{}: bit-identical op records", a.name);
    }
}
