//! Failure-hygiene properties: structurally singular and near-singular MNA
//! systems must come back as clean [`MnaError`]s — never a panic — through
//! BOTH the dense and the sparse LU backend, and the two backends must agree
//! on whether a given system is solvable.

use std::sync::Mutex;

use proptest::prelude::*;
use specwise_mna::{set_solver_override, Circuit, DcOp, MnaError, SolverChoice};

/// The backend override is process-global; serialize tests that flip it.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<R>(choice: SolverChoice, f: impl FnOnce() -> R) -> R {
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());
    set_solver_override(Some(choice));
    let out = f();
    set_solver_override(None);
    out
}

/// A resistive ladder driven by one voltage source, with optional extras
/// appended by the individual properties.
fn ladder(resistors: &[f64], v1: f64) -> Circuit {
    let mut ckt = Circuit::new();
    let top = ckt.node("n0");
    ckt.voltage_source("V1", top, Circuit::GROUND, v1).unwrap();
    let mut prev = top;
    for (k, &r) in resistors.iter().enumerate() {
        let n = ckt.node(&format!("n{}", k + 1));
        ckt.resistor(&format!("Rs{k}"), prev, n, r).unwrap();
        ckt.resistor(&format!("Rp{k}"), n, Circuit::GROUND, 2.0 * r)
            .unwrap();
        prev = n;
    }
    ckt
}

/// A singular or non-converging system must be reported as such — not as a
/// panic, not as `InvalidValue`/`NotFound` noise.
fn clean_failure(e: &MnaError) -> bool {
    matches!(
        e,
        MnaError::SingularMatrix { .. } | MnaError::NoConvergence { .. }
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Two voltage sources across the same node pair make the MNA branch
    /// columns linearly dependent whatever their values are — gmin stepping
    /// cannot regularize that. Both backends must refuse with a clean error.
    #[test]
    fn voltage_source_loop_fails_cleanly_on_both_backends(
        resistors in prop::collection::vec(10.0..10_000.0f64, 1..6),
        v1 in -5.0..5.0f64,
        v2 in -5.0..5.0f64,
    ) {
        let mut ckt = ladder(&resistors, v1);
        let top = ckt.find_node("n0").unwrap();
        ckt.voltage_source("V2", top, Circuit::GROUND, v2).unwrap();
        for choice in [SolverChoice::Dense, SolverChoice::Sparse] {
            let r = with_backend(choice, || DcOp::new(&ckt).solve());
            match r {
                Err(e) => prop_assert!(
                    clean_failure(&e),
                    "{choice:?}: expected singular/no-convergence, got {e}"
                ),
                Ok(_) => prop_assert!(false, "{choice:?}: solved a VS loop"),
            }
        }
    }

    /// A node hanging on a near-infinite resistance (conductance at or below
    /// the gmin shunt) is the classic near-singular system. Whatever each
    /// backend decides, it must decide cleanly — and the two must agree on
    /// solvability, producing finite voltages when they solve.
    #[test]
    fn nearly_floating_node_agrees_across_backends(
        resistors in prop::collection::vec(10.0..10_000.0f64, 1..5),
        v1 in 0.5..5.0f64,
        rexp in 10.0..15.0f64,
    ) {
        let mut ckt = ladder(&resistors, v1);
        let top = ckt.find_node("n0").unwrap();
        let dangling = ckt.node("dangling");
        ckt.resistor("Rbig", top, dangling, 10f64.powf(rexp)).unwrap();
        let dense = with_backend(SolverChoice::Dense, || DcOp::new(&ckt).solve());
        let sparse = with_backend(SolverChoice::Sparse, || DcOp::new(&ckt).solve());
        prop_assert_eq!(
            dense.is_ok(),
            sparse.is_ok(),
            "backends disagree: dense {:?} sparse {:?}",
            dense.as_ref().err(),
            sparse.as_ref().err()
        );
        for (label, r) in [("dense", &dense), ("sparse", &sparse)] {
            match r {
                Ok(op) => {
                    let v = op.voltage(dangling);
                    prop_assert!(v.is_finite(), "{label}: non-finite v(dangling) {v}");
                }
                Err(e) => prop_assert!(clean_failure(e), "{label}: dirty error {e}"),
            }
        }
    }

    /// A current source feeding a node whose only other path to ground is
    /// the gmin shunt: solvable only thanks to the regularization, at node
    /// voltages around I/gmin. No panic, matching verdicts, finite results.
    #[test]
    fn current_fed_island_never_panics(
        resistors in prop::collection::vec(10.0..10_000.0f64, 1..5),
        v1 in -5.0..5.0f64,
        i in -1e-6..1e-6f64,
    ) {
        let mut ckt = ladder(&resistors, v1);
        let island = ckt.node("island");
        ckt.current_source("Iisl", Circuit::GROUND, island, i).unwrap();
        let dense = with_backend(SolverChoice::Dense, || DcOp::new(&ckt).solve());
        let sparse = with_backend(SolverChoice::Sparse, || DcOp::new(&ckt).solve());
        prop_assert_eq!(
            dense.is_ok(),
            sparse.is_ok(),
            "backends disagree: dense {:?} sparse {:?}",
            dense.as_ref().err(),
            sparse.as_ref().err()
        );
        for (label, r) in [("dense", &dense), ("sparse", &sparse)] {
            match r {
                Ok(op) => prop_assert!(
                    op.voltage(island).is_finite(),
                    "{label}: non-finite island voltage"
                ),
                Err(e) => prop_assert!(clean_failure(e), "{label}: dirty error {e}"),
            }
        }
    }
}
