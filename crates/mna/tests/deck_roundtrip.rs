//! Property tests for the annotated-deck parser: `deck → parse → print →
//! parse` must reproduce the same AST for randomly generated directives and
//! elements, and malformed directives must be rejected.

use proptest::prelude::*;
use specwise_mna::{parse_deck_ast, DeckValue, ParseDeckError};

const UNITS: &[&str] = &["um", "nm", "uA", "pF", "dB", "MHz", "mW", "V/us", "deg"];
const MEASURES: &[&str] = &[
    "dcgain", "ugf", "pm", "cmrr", "psrr", "slew", "power", "vdc(out)",
];

fn fnum() -> impl Strategy<Value = f64> {
    (0usize..6, 0.0..1.0f64).prop_map(|(k, u)| match k {
        0 => -1e9 + u * 2e9,
        1 => -10.0 + u * 20.0,
        2 => 1e-15 + u * 1e-3,
        3 => 0.0,
        4 => -40.0,
        _ => 125.0,
    })
}

fn fbool() -> impl Strategy<Value = bool> {
    (0usize..2).prop_map(|b| b == 1)
}

#[derive(Debug, Clone)]
struct DesignGen {
    unit: usize,
    lower: f64,
    span: f64,
}

#[derive(Debug, Clone)]
struct SpecGen {
    unit: usize,
    min: bool,
    bound: f64,
    measure: usize,
}

fn design_gen() -> impl Strategy<Value = DesignGen> {
    (0..UNITS.len(), fnum(), 0.1..1e6f64).prop_map(|(unit, lower, span)| DesignGen {
        unit,
        lower,
        span,
    })
}

fn spec_gen() -> impl Strategy<Value = SpecGen> {
    (0..UNITS.len(), fbool(), fnum(), 0..MEASURES.len()).prop_map(|(unit, min, bound, measure)| {
        SpecGen {
            unit,
            min,
            bound,
            measure,
        }
    })
}

/// Builds a deck exercising every directive plus a few elements with both
/// literal and `{param}` values.
fn build_deck(
    designs: &[DesignGen],
    specs: &[SpecGen],
    temp: (f64, f64),
    vdd: (f64, f64),
    match_sizes: &[usize],
    r_value: f64,
    use_param_cap: bool,
) -> String {
    let mut deck = String::from(".name generated deck\n.nodes vdd out\n");
    for (i, d) in designs.iter().enumerate() {
        deck.push_str(&format!(
            ".design v{i} {} {:e} {:e} {:e}\n",
            UNITS[d.unit],
            d.lower,
            d.lower + d.span,
            d.lower + d.span / 2.0
        ));
    }
    // Categories in the canonical printer order so the `line` fields of the
    // reparsed AST line up with the original.
    deck.push_str(&format!(".range temp {:e} {:e}\n", temp.0, temp.0 + temp.1));
    deck.push_str(&format!(".range vdd {:e} {:e}\n", vdd.0, vdd.0 + vdd.1));
    for (i, s) in specs.iter().enumerate() {
        deck.push_str(&format!(
            ".spec S{i} {} {} {:e} {}\n",
            UNITS[s.unit],
            if s.min { "min" } else { "max" },
            s.bound,
            MEASURES[s.measure]
        ));
    }
    let mut dev = 0;
    for &size in match_sizes {
        let names: Vec<String> = (0..size.max(1))
            .map(|_| {
                dev += 1;
                format!("m{dev}")
            })
            .collect();
        deck.push_str(&format!(".match {}\n", names.join(" ")));
    }
    deck.push_str(".tb out out\n.tb vinp VINP\n");
    deck.push_str("VDD vdd 0 {vdd}\nVINP inp 0 2.5 AC 0.5\n");
    deck.push_str(&format!("R1 vdd out {r_value:e}\n"));
    if use_param_cap {
        deck.push_str("CL out 0 {cl}\n");
    } else {
        deck.push_str("CL out 0 1p\n");
    }
    deck.push_str("M1 out inp 0 0 NMOS W={w} L=1u\n.end\n");
    deck
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn print_parse_round_trip(
        designs in prop::collection::vec(design_gen(), 0..5),
        specs in prop::collection::vec(spec_gen(), 0..5),
        temp in (fnum(), 1.0..500.0f64),
        vdd in (0.5..10.0f64, 0.1..5.0f64),
        match_sizes in prop::collection::vec(1usize..4, 0..4),
        r_value in 1.0..1e9f64,
        use_param_cap in fbool(),
    ) {
        let deck = build_deck(
            &designs, &specs, temp, vdd, &match_sizes, r_value, use_param_cap,
        );
        let ast = parse_deck_ast(&deck).expect("generated deck parses");
        prop_assert_eq!(ast.designs.len(), designs.len());
        prop_assert_eq!(ast.specs.len(), specs.len());
        prop_assert_eq!(ast.matches.len(), match_sizes.len());
        let printed = ast.to_deck();
        let reparsed = parse_deck_ast(&printed)
            .unwrap_or_else(|e| panic!("printed deck must parse: {e}\n{printed}"));
        prop_assert_eq!(&ast, &reparsed, "printed deck:\n{}", printed);
        // Printing is a fixed point after one canonicalization pass.
        prop_assert_eq!(printed, reparsed.to_deck());
    }

    #[test]
    fn numeric_values_survive_the_round_trip_bit_for_bit(v in fnum()) {
        let deck = format!("R1 a 0 {v:e}\n");
        let ast = parse_deck_ast(&deck).unwrap();
        let printed = ast.to_deck();
        let reparsed = parse_deck_ast(&printed).unwrap();
        let get = |a: &specwise_mna::DeckAst| match &a.elements[0].kind {
            specwise_mna::DeckElementKind::Resistor { value: DeckValue::Num(x), .. } => *x,
            other => panic!("unexpected: {other:?}"),
        };
        prop_assert_eq!(get(&ast).to_bits(), get(&reparsed).to_bits());
    }
}

#[test]
fn malformed_spec_lines_are_rejected_with_line_numbers() {
    for (deck, line) in [
        ("R1 a 0 1k\n.spec A0 dB min 80", 2),
        (".spec A0 dB between 1 2", 1),
        ("* c\n\n.spec A0 dB min 80 dcgain extra", 3),
    ] {
        let err = parse_deck_ast(deck).expect_err(deck);
        assert!(
            matches!(err, ParseDeckError::BadDirective { ref directive, .. } if directive == ".spec"),
            "{deck:?} gave {err:?}"
        );
        assert_eq!(err.line(), line, "{deck:?}");
    }
}

#[test]
fn malformed_match_lines_are_rejected() {
    for deck in [".match", ".match m1 m2 m1"] {
        let err = parse_deck_ast(deck).expect_err(deck);
        assert!(
            matches!(err, ParseDeckError::BadDirective { ref directive, .. } if directive == ".match"),
            "{deck:?} gave {err:?}"
        );
    }
}
