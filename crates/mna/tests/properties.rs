//! Property-based tests of the MNA simulator against circuit theory:
//! superposition, reciprocity, KCL, and analytic ladder responses.

use proptest::prelude::*;
use specwise_mna::{AcSolver, Circuit, DcOp};

/// Builds a random resistive ladder driven by two sources and returns the
/// voltage at the last node.
fn ladder_voltage(resistors: &[f64], v1: f64, i2: f64) -> f64 {
    let mut ckt = Circuit::new();
    let top = ckt.node("n0");
    ckt.voltage_source("V1", top, Circuit::GROUND, v1).unwrap();
    let mut prev = top;
    for (k, &r) in resistors.iter().enumerate() {
        let n = ckt.node(&format!("n{}", k + 1));
        ckt.resistor(&format!("Rs{k}"), prev, n, r).unwrap();
        ckt.resistor(&format!("Rp{k}"), n, Circuit::GROUND, 2.0 * r)
            .unwrap();
        prev = n;
    }
    // Current source injecting into the last node.
    ckt.current_source("I2", Circuit::GROUND, prev, i2).unwrap();
    let op = DcOp::new(&ckt).solve().unwrap();
    op.voltage(prev)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(50))]

    #[test]
    fn superposition_holds_for_linear_networks(
        resistors in prop::collection::vec(10.0..10_000.0f64, 1..6),
        v1 in -5.0..5.0f64,
        i2 in -1e-3..1e-3f64,
    ) {
        let both = ladder_voltage(&resistors, v1, i2);
        let only_v = ladder_voltage(&resistors, v1, 0.0);
        let only_i = ladder_voltage(&resistors, 0.0, i2);
        prop_assert!(
            (both - only_v - only_i).abs() < 1e-6 * (1.0 + both.abs()),
            "superposition: {both} vs {} + {}", only_v, only_i
        );
    }

    #[test]
    fn scaling_the_source_scales_the_response(
        resistors in prop::collection::vec(10.0..10_000.0f64, 1..6),
        v1 in 0.1..5.0f64,
        k in 0.1..4.0f64,
    ) {
        let base = ladder_voltage(&resistors, v1, 0.0);
        let scaled = ladder_voltage(&resistors, k * v1, 0.0);
        prop_assert!((scaled - k * base).abs() < 1e-6 * (1.0 + scaled.abs()));
    }

    #[test]
    fn divider_chain_matches_closed_form(
        r1 in 100.0..100_000.0f64,
        r2 in 100.0..100_000.0f64,
        v in 0.5..10.0f64,
    ) {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let mid = ckt.node("mid");
        ckt.voltage_source("V", a, Circuit::GROUND, v).unwrap();
        ckt.resistor("R1", a, mid, r1).unwrap();
        ckt.resistor("R2", mid, Circuit::GROUND, r2).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let expected = v * r2 / (r1 + r2);
        prop_assert!((op.voltage(mid) - expected).abs() < 1e-7 * (1.0 + expected.abs()));
        // Source current is −v/(r1+r2) (flowing out of + into the chain).
        let i = op.branch_current("V").unwrap();
        prop_assert!((i + v / (r1 + r2)).abs() < 1e-9 * (1.0 + i.abs()));
    }

    #[test]
    fn rc_transfer_magnitude_phase_consistent(
        r in 100.0..100_000.0f64,
        c in 1e-12..1e-6f64,
        fexp in 0.0..8.0f64,
    ) {
        let f = 10f64.powf(fexp);
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0).unwrap();
        ckt.set_ac("VIN", 1.0).unwrap();
        ckt.resistor("R", vin, vout, r).unwrap();
        ckt.capacitor("C", vout, Circuit::GROUND, c).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let h = AcSolver::new(&ckt, &op).solve(f).unwrap().voltage(vout);
        let w = 2.0 * std::f64::consts::PI * f;
        let mag = 1.0 / (1.0 + (w * r * c).powi(2)).sqrt();
        prop_assert!((h.abs() - mag).abs() < 1e-5 * (1.0 + mag), "f={f}");
        prop_assert!((h.arg() + (w * r * c).atan()).abs() < 1e-5);
    }

    #[test]
    fn vccs_gain_is_gm_times_load(
        gm in 1e-5..1e-2f64,
        rl in 100.0..1e6f64,
        vin in -1.0..1.0f64,
    ) {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("VIN", inp, Circuit::GROUND, vin).unwrap();
        ckt.vccs("G", out, Circuit::GROUND, inp, Circuit::GROUND, gm).unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, rl).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        // i = gm·vin leaves node `out`, so v(out) = −gm·rl·vin.
        let expected = -gm * rl * vin;
        prop_assert!(
            (op.voltage(out) - expected).abs() < 1e-6 * (1.0 + expected.abs()) + 1e-9
        );
    }
}
