use std::error::Error;
use std::fmt;

use specwise_linalg::LinalgError;

/// Errors produced by the circuit simulator.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum MnaError {
    /// An element value is invalid (negative resistance, zero length, …).
    InvalidValue {
        /// Element name.
        element: String,
        /// What was wrong.
        reason: &'static str,
    },
    /// Two elements share the same name.
    DuplicateName {
        /// The offending name.
        name: String,
    },
    /// An element or node name was not found.
    NotFound {
        /// The name that failed to resolve.
        name: String,
    },
    /// The DC Newton iteration failed to converge even with homotopy fallbacks.
    NoConvergence {
        /// Analysis that failed ("dc", "transient step", …).
        analysis: &'static str,
        /// Iterations performed before giving up.
        iterations: usize,
        /// Final residual ∞-norm, if meaningful.
        residual: f64,
    },
    /// The MNA matrix is singular — usually a floating node or a voltage
    /// source loop.
    SingularMatrix {
        /// Analysis during which the factorization failed.
        analysis: &'static str,
    },
    /// An invalid analysis request (bad frequency, non-positive time step, …).
    InvalidRequest {
        /// What was wrong.
        reason: &'static str,
    },
}

impl fmt::Display for MnaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MnaError::InvalidValue { element, reason } => {
                write!(f, "invalid value for element {element}: {reason}")
            }
            MnaError::DuplicateName { name } => write!(f, "duplicate element name {name}"),
            MnaError::NotFound { name } => write!(f, "element or node {name} not found"),
            MnaError::NoConvergence {
                analysis,
                iterations,
                residual,
            } => write!(
                f,
                "{analysis} analysis failed to converge after {iterations} iterations \
                 (residual {residual:.3e})"
            ),
            MnaError::SingularMatrix { analysis } => {
                write!(
                    f,
                    "singular MNA matrix in {analysis} analysis (floating node?)"
                )
            }
            MnaError::InvalidRequest { reason } => write!(f, "invalid analysis request: {reason}"),
        }
    }
}

impl Error for MnaError {}

impl From<LinalgError> for MnaError {
    fn from(e: LinalgError) -> Self {
        match e {
            LinalgError::Singular { .. } | LinalgError::NotPositiveDefinite { .. } => {
                MnaError::SingularMatrix {
                    analysis: "linear solve",
                }
            }
            _ => MnaError::InvalidRequest {
                reason: "linear algebra dimension error",
            },
        }
    }
}
