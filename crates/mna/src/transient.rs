//! Fixed-step transient analysis with capacitor companion models
//! (backward Euler or trapezoidal) and a Newton solve per time step.
//!
//! MOSFET charge storage is approximated by the Meyer capacitances frozen
//! at the initial operating point (adequate for the slew-rate extraction
//! this workspace needs; documented in DESIGN.md §2).

pub use crate::netlist::Stimulus as Waveform;

use specwise_linalg::DVec;

use crate::dc::{eval_mosfet_at, stamp_system, DcOp};
use crate::mosfet::MosRegion;
use crate::netlist::ElementKind;
use crate::solver::{Analysis, SystemSolver};
use crate::{Circuit, MnaError, NodeId};

/// Integration method for the capacitor companion models.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Integrator {
    /// Backward Euler — damped, robust, first order.
    BackwardEuler,
    /// Trapezoidal — second order, energy preserving.
    Trapezoidal,
}

/// Options of a transient run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TransientOptions {
    /// Fixed time step \[s\].
    pub dt: f64,
    /// Stop time \[s\].
    pub t_stop: f64,
    /// Integration method.
    pub integrator: Integrator,
    /// Maximum Newton iterations per step.
    pub max_iterations: usize,
    /// Node-voltage convergence tolerance \[V\].
    pub vntol: f64,
}

impl TransientOptions {
    /// Creates options with the given step and stop time (trapezoidal).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < dt < t_stop`.
    pub fn new(dt: f64, t_stop: f64) -> Self {
        assert!(dt > 0.0 && t_stop > dt, "need 0 < dt < t_stop");
        TransientOptions {
            dt,
            t_stop,
            integrator: Integrator::Trapezoidal,
            max_iterations: 60,
            vntol: 1e-7,
        }
    }
}

/// Result of a transient run: time points and node-voltage trajectories.
#[derive(Debug, Clone)]
pub struct TransientResult {
    times: Vec<f64>,
    /// `voltages[k]` is the full unknown vector at `times[k]`.
    states: Vec<DVec>,
}

impl TransientResult {
    /// The simulated time points \[s\].
    pub fn times(&self) -> &[f64] {
        &self.times
    }

    /// Trajectory of one node voltage.
    pub fn voltage(&self, n: NodeId) -> Vec<f64> {
        if n.is_ground() {
            return vec![0.0; self.times.len()];
        }
        self.states.iter().map(|x| x[n.index() - 1]).collect()
    }

    /// Maximum of `|dv/dt|` over the run for a node — the slew-rate readout.
    ///
    /// Returns `0.0` for runs with fewer than two points.
    pub fn max_slope(&self, n: NodeId) -> f64 {
        let v = self.voltage(n);
        let mut best = 0.0_f64;
        for k in 1..v.len() {
            let dt = self.times[k] - self.times[k - 1];
            if dt > 0.0 {
                best = best.max(((v[k] - v[k - 1]) / dt).abs());
            }
        }
        best
    }

    /// Value of a node voltage at the final time point.
    ///
    /// # Panics
    ///
    /// Panics on an empty result (cannot happen for a successful run).
    pub fn final_voltage(&self, n: NodeId) -> f64 {
        *self
            .voltage(n)
            .last()
            .expect("transient result is never empty")
    }
}

/// A capacitor participating in the integration: terminals and value.
#[derive(Debug, Clone, Copy)]
struct TranCap {
    a: NodeId,
    b: NodeId,
    farads: f64,
    /// Companion-model history: voltage across at previous step.
    v_prev: f64,
    /// Current through at previous step (trapezoidal only), a→b.
    i_prev: f64,
}

/// Fixed-step transient analysis.
///
/// # Example — RC step response
///
/// ```
/// use specwise_mna::{Circuit, Transient, TransientOptions, Waveform};
///
/// # fn main() -> Result<(), specwise_mna::MnaError> {
/// let mut ckt = Circuit::new();
/// let vin = ckt.node("in");
/// let vout = ckt.node("out");
/// ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)?;
/// ckt.set_stimulus("VIN", Waveform::Step { v0: 0.0, v1: 1.0, t0: 0.0, t_rise: 1e-9 })?;
/// ckt.resistor("R1", vin, vout, 1e3)?;
/// ckt.capacitor("C1", vout, Circuit::GROUND, 1e-9)?;
/// let tr = Transient::new(&ckt, TransientOptions::new(10e-9, 10e-6)).run()?;
/// // After 10 time constants the output has settled to 1 V.
/// assert!((tr.final_voltage(vout) - 1.0).abs() < 1e-3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug)]
pub struct Transient<'c> {
    circuit: &'c Circuit,
    options: TransientOptions,
}

impl<'c> Transient<'c> {
    /// Creates a transient analysis.
    pub fn new(circuit: &'c Circuit, options: TransientOptions) -> Self {
        Transient { circuit, options }
    }

    /// Runs the analysis. The initial condition is the DC operating point
    /// with every stimulus evaluated at `t = 0`.
    ///
    /// # Errors
    ///
    /// Returns the usual DC errors for the initial point and
    /// [`MnaError::NoConvergence`] if a time step fails.
    pub fn run(&self) -> Result<TransientResult, MnaError> {
        let ckt = self.circuit;
        let n = ckt.num_unknowns();

        // Initial DC operating point (stimuli at t = 0 equal their dc value
        // by construction of `Stimulus::initial`, which callers should keep
        // consistent with the `dc` value of the source).
        let op0 = DcOp::new(ckt).solve()?;
        let mut x = op0.unknowns().clone();

        // Collect capacitors: explicit ones plus frozen MOSFET Meyer caps.
        let mut caps: Vec<TranCap> = Vec::new();
        for kind in ckt.kinds() {
            match kind {
                ElementKind::Capacitor { a, b, farads } => {
                    caps.push(TranCap {
                        a: *a,
                        b: *b,
                        farads: *farads,
                        v_prev: 0.0,
                        i_prev: 0.0,
                    });
                }
                ElementKind::Mosfet { d, g, s, b, params } => {
                    let (_, _, _, ev) = eval_mosfet_at(ckt, &x, *d, *g, *s, *b, params);
                    let cov = params.model.cov * params.w;
                    let cch = params.model.cox * params.w * params.l;
                    let (cgs, cgd, cgb) = match ev.region {
                        MosRegion::Cutoff => (cov, cov, cch),
                        MosRegion::Triode => (cov + 0.5 * cch, cov + 0.5 * cch, 0.0),
                        MosRegion::Saturation => (cov + 2.0 / 3.0 * cch, cov, 0.0),
                    };
                    for (na, nb, c) in [(*g, *s, cgs), (*g, *d, cgd), (*g, *b, cgb)] {
                        if c > 0.0 {
                            caps.push(TranCap {
                                a: na,
                                b: nb,
                                farads: c,
                                v_prev: 0.0,
                                i_prev: 0.0,
                            });
                        }
                    }
                }
                _ => {}
            }
        }
        let vnode = |x: &DVec, node: NodeId| -> f64 {
            match ckt.node_unknown(node) {
                Some(i) => x[i],
                None => 0.0,
            }
        };
        for cap in &mut caps {
            cap.v_prev = vnode(&x, cap.a) - vnode(&x, cap.b);
            cap.i_prev = 0.0; // steady state
        }

        let dt = self.options.dt;
        let steps = (self.options.t_stop / dt).ceil() as usize;
        let mut times = Vec::with_capacity(steps + 1);
        let mut states = Vec::with_capacity(steps + 1);
        times.push(0.0);
        states.push(x.clone());

        // One workspace for the whole run: assembly buffer plus (on the
        // sparse backend) a factorization that refactors in place across
        // every Newton iteration of every time step. The `Tran` pattern
        // includes all capacitor companion entries.
        let mut sys = SystemSolver::new(ckt, Analysis::Tran);
        let mut res = DVec::zeros(n);
        for step in 1..=steps {
            let t = step as f64 * dt;
            // Newton at time t with companion models.
            let mut converged = false;
            for _ in 0..self.options.max_iterations {
                stamp_system(ckt, &x, 1e-12, 1.0, Some(t), sys.stamper(), &mut res);
                let jac = sys.stamper();
                for cap in &caps {
                    let v_now = vnode(&x, cap.a) - vnode(&x, cap.b);
                    let (geq, ieq_hist) = match self.options.integrator {
                        Integrator::BackwardEuler => {
                            let geq = cap.farads / dt;
                            (geq, -geq * cap.v_prev)
                        }
                        Integrator::Trapezoidal => {
                            let geq = 2.0 * cap.farads / dt;
                            (geq, -geq * cap.v_prev - cap.i_prev)
                        }
                    };
                    let i_cap = geq * v_now + ieq_hist;
                    let (ia, ib) = (ckt.node_unknown(cap.a), ckt.node_unknown(cap.b));
                    if let Some(i) = ia {
                        res[i] += i_cap;
                        jac.add(i, i, geq);
                    }
                    if let Some(j) = ib {
                        res[j] -= i_cap;
                        jac.add(j, j, geq);
                    }
                    if let (Some(i), Some(j)) = (ia, ib) {
                        jac.add(i, j, -geq);
                        jac.add(j, i, -geq);
                    }
                }
                let delta = sys.factor_solve(&res, "transient")?;
                x += &delta;
                let mut dv = 0.0_f64;
                for i in 0..(ckt.num_nodes() - 1) {
                    dv = dv.max(delta[i].abs());
                }
                if dv < self.options.vntol {
                    converged = true;
                    break;
                }
            }
            if !converged {
                return Err(MnaError::NoConvergence {
                    analysis: "transient step",
                    iterations: self.options.max_iterations,
                    residual: res.norm_inf(),
                });
            }
            // Update companion history.
            for cap in &mut caps {
                let v_now = vnode(&x, cap.a) - vnode(&x, cap.b);
                let i_now = match self.options.integrator {
                    Integrator::BackwardEuler => cap.farads / dt * (v_now - cap.v_prev),
                    Integrator::Trapezoidal => {
                        2.0 * cap.farads / dt * (v_now - cap.v_prev) - cap.i_prev
                    }
                };
                cap.v_prev = v_now;
                cap.i_prev = i_now;
            }
            times.push(t);
            states.push(x.clone());
        }
        Ok(TransientResult { times, states })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetModel, MosfetParams};

    #[test]
    fn rc_step_matches_exponential() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_stimulus(
            "VIN",
            Waveform::Step {
                v0: 0.0,
                v1: 1.0,
                t0: 0.0,
                t_rise: 1e-12,
            },
        )
        .unwrap();
        ckt.resistor("R1", vin, vout, 1e3).unwrap();
        ckt.capacitor("C1", vout, Circuit::GROUND, 1e-9).unwrap();
        let tau = 1e-6;
        let tr = Transient::new(&ckt, TransientOptions::new(tau / 200.0, 5.0 * tau))
            .run()
            .unwrap();
        let v = tr.voltage(vout);
        let times = tr.times();
        for (k, &t) in times.iter().enumerate() {
            if t < tau / 10.0 {
                continue; // skip the rise of the stimulus itself
            }
            let exact = 1.0 - (-t / tau).exp();
            assert!((v[k] - exact).abs() < 5e-3, "t={t}: {} vs {exact}", v[k]);
        }
    }

    #[test]
    fn backward_euler_also_converges() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_stimulus(
            "VIN",
            Waveform::Step {
                v0: 0.0,
                v1: 2.0,
                t0: 0.0,
                t_rise: 1e-12,
            },
        )
        .unwrap();
        ckt.resistor("R1", vin, vout, 1e3).unwrap();
        ckt.capacitor("C1", vout, Circuit::GROUND, 1e-9).unwrap();
        let mut opts = TransientOptions::new(5e-9, 10e-6);
        opts.integrator = Integrator::BackwardEuler;
        let tr = Transient::new(&ckt, opts).run().unwrap();
        assert!((tr.final_voltage(vout) - 2.0).abs() < 1e-2);
    }

    #[test]
    fn sine_amplitude_preserved_well_below_pole() {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_stimulus(
            "VIN",
            Waveform::Sine {
                offset: 0.0,
                ampl: 1.0,
                freq: 1e3,
                delay: 0.0,
            },
        )
        .unwrap();
        ckt.resistor("R1", vin, vout, 1e3).unwrap();
        ckt.capacitor("C1", vout, Circuit::GROUND, 1e-9).unwrap(); // pole at 159 kHz
        let tr = Transient::new(&ckt, TransientOptions::new(1e-6, 2e-3))
            .run()
            .unwrap();
        let v = tr.voltage(vout);
        let peak = v.iter().fold(0.0_f64, |m, &x| m.max(x.abs()));
        assert!((peak - 1.0).abs() < 0.02, "peak {peak}");
    }

    #[test]
    fn current_limited_cap_charge_is_linear_slew() {
        // A current source charging a capacitor: dv/dt = I/C exactly — the
        // canonical slew-rate situation.
        let mut ckt = Circuit::new();
        let out = ckt.node("out");
        // 10 µA from ground into node out.
        ckt.current_source("I1", Circuit::GROUND, out, 10e-6)
            .unwrap();
        ckt.resistor("Rbig", out, Circuit::GROUND, 1e5).unwrap();
        ckt.capacitor("CL", out, Circuit::GROUND, 1e-12).unwrap();
        let tr = Transient::new(&ckt, TransientOptions::new(1e-9, 200e-9))
            .run()
            .unwrap();
        // Slope should be I/C = 1e7 V/s — but the DC initial point already
        // charges the node to I·R; instead check the slope during charge by
        // observing it is bounded by I/C.
        let slope = tr.max_slope(out);
        assert!(slope <= 1.001e7, "slope {slope}");
    }

    #[test]
    fn mosfet_inverter_transient_settles() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_stimulus(
            "VG",
            Waveform::Step {
                v0: 0.0,
                v1: 1.2,
                t0: 10e-9,
                t_rise: 1e-9,
            },
        )
        .unwrap();
        ckt.resistor("RD", vdd, out, 20e3).unwrap();
        ckt.capacitor("CL", out, Circuit::GROUND, 0.5e-12).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let tr = Transient::new(&ckt, TransientOptions::new(0.2e-9, 300e-9))
            .run()
            .unwrap();
        let v = tr.voltage(out);
        // Starts at VDD (device off), ends lower once the device turns on.
        assert!((v[0] - 3.0).abs() < 1e-6);
        assert!(tr.final_voltage(out) < 2.0);
    }

    #[test]
    fn times_are_monotone() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let tr = Transient::new(&ckt, TransientOptions::new(1e-9, 20e-9))
            .run()
            .unwrap();
        for w in tr.times().windows(2) {
            assert!(w[1] > w[0]);
        }
    }
}
