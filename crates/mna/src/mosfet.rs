//! Level-1 (square-law) MOSFET model with body effect, channel-length
//! modulation, temperature dependence, and per-instance statistical
//! deviations.
//!
//! The local-variation hooks are the point of this model: every instance
//! carries a threshold-voltage shift `delta_vth` and a gain multiplier
//! `beta_factor`, which is exactly where the Pelgrom-style mismatch
//! deviations of the yield flow enter the simulator.

/// Channel polarity of a MOSFET.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosPolarity {
    /// N-channel device.
    Nmos,
    /// P-channel device.
    Pmos,
}

impl std::fmt::Display for MosPolarity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosPolarity::Nmos => write!(f, "nmos"),
            MosPolarity::Pmos => write!(f, "pmos"),
        }
    }
}

/// Operating region of a MOSFET at a DC operating point.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MosRegion {
    /// `V_GS ≤ V_th`: (essentially) no channel.
    Cutoff,
    /// `0 < V_DS < V_GS − V_th`: resistive channel.
    Triode,
    /// `V_DS ≥ V_GS − V_th`: current source behaviour.
    Saturation,
}

impl std::fmt::Display for MosRegion {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            MosRegion::Cutoff => write!(f, "cutoff"),
            MosRegion::Triode => write!(f, "triode"),
            MosRegion::Saturation => write!(f, "saturation"),
        }
    }
}

/// Technology-level (model card) parameters of the Level-1 model.
///
/// All values at the reference temperature `t_nom`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetModel {
    /// Channel polarity.
    pub polarity: MosPolarity,
    /// Zero-bias threshold voltage magnitude \[V\] (positive for both
    /// polarities; the sign convention is handled internally).
    pub vth0: f64,
    /// Transconductance parameter `K' = µ·C_ox` \[A/V²\].
    pub kp: f64,
    /// Channel-length modulation \[1/V\].
    pub lambda: f64,
    /// Body-effect coefficient γ \[√V\].
    pub gamma: f64,
    /// Surface potential `2φ_F` \[V\].
    pub phi: f64,
    /// Gate-oxide capacitance per area \[F/m²\].
    pub cox: f64,
    /// Gate-drain/source overlap capacitance per width \[F/m\].
    pub cov: f64,
    /// Threshold temperature coefficient \[V/K\] (applied as
    /// `vth(T) = vth0 − tc_vth·(T − t_nom)`).
    pub tc_vth: f64,
    /// Mobility temperature exponent (`kp(T) = kp·(T/t_nom)^{−bex}`).
    pub bex: f64,
    /// Reference temperature \[K\].
    pub t_nom: f64,
    /// Reference length for channel-length modulation \[m\]: the effective
    /// modulation is `λ_eff = lambda·lambda_lref/L`, capturing the
    /// first-order `λ ∝ 1/L` dependence that makes gain a function of the
    /// designable channel lengths.
    pub lambda_lref: f64,
}

impl MosfetModel {
    /// A representative 0.6 µm-class NMOS model card.
    pub fn default_nmos() -> Self {
        MosfetModel {
            polarity: MosPolarity::Nmos,
            vth0: 0.7,
            kp: 120e-6,
            lambda: 0.05,
            gamma: 0.45,
            phi: 0.7,
            cox: 2.5e-3,
            cov: 3.0e-10,
            tc_vth: 2.0e-3,
            bex: 1.5,
            t_nom: 300.15,
            lambda_lref: 1e-6,
        }
    }

    /// A representative 0.6 µm-class PMOS model card.
    pub fn default_pmos() -> Self {
        MosfetModel {
            polarity: MosPolarity::Pmos,
            vth0: 0.8,
            kp: 40e-6,
            lambda: 0.07,
            gamma: 0.4,
            phi: 0.7,
            cox: 2.5e-3,
            cov: 3.0e-10,
            tc_vth: 1.7e-3,
            bex: 1.4,
            t_nom: 300.15,
            lambda_lref: 1e-6,
        }
    }
}

/// Instance parameters of one MOSFET: geometry plus statistical deviations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosfetParams {
    /// Model card.
    pub model: MosfetModel,
    /// Channel width \[m\].
    pub w: f64,
    /// Channel length \[m\].
    pub l: f64,
    /// Statistical threshold-voltage shift \[V\] added to the magnitude of
    /// `vth0` — global and local (mismatch) Vth deviations enter here.
    pub delta_vth: f64,
    /// Statistical multiplier on the current factor β = K'·W/L (dimensionless;
    /// `1.0` is nominal). Local β mismatch and global K' spread enter here.
    pub beta_factor: f64,
}

impl MosfetParams {
    /// Creates an instance with nominal statistics.
    pub fn new(model: MosfetModel, w: f64, l: f64) -> Self {
        MosfetParams {
            model,
            w,
            l,
            delta_vth: 0.0,
            beta_factor: 1.0,
        }
    }

    /// Effective threshold magnitude at temperature `t` (before body effect).
    pub fn vth_at(&self, t: f64) -> f64 {
        self.model.vth0 + self.delta_vth - self.model.tc_vth * (t - self.model.t_nom)
    }

    /// Effective β = K'(T)·W/L·beta_factor at temperature `t`.
    pub fn beta_at(&self, t: f64) -> f64 {
        let kp_t = self.model.kp * (t / self.model.t_nom).powf(-self.model.bex);
        kp_t * self.w / self.l * self.beta_factor
    }

    /// Effective channel-length modulation `λ_eff = λ·l_ref/L` \[1/V\].
    pub fn lambda_eff(&self) -> f64 {
        self.model.lambda * self.model.lambda_lref / self.l
    }
}

/// Large-signal evaluation of the device at the terminal voltages
/// `(vgs, vds, vbs)` (NMOS sign convention; PMOS callers pass the already
/// reflected voltages), at temperature `t`.
///
/// Returns the drain current and its partial derivatives.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct MosEval {
    /// Drain current \[A\] (NMOS convention: into the drain).
    pub id: f64,
    /// `∂I_D/∂V_GS` \[S\].
    pub gm: f64,
    /// `∂I_D/∂V_DS` \[S\].
    pub gds: f64,
    /// `∂I_D/∂V_BS` \[S\].
    pub gmb: f64,
    /// Operating region.
    pub region: MosRegion,
    /// Effective threshold including body effect \[V\].
    pub vth: f64,
    /// Overdrive `V_GS − V_th` \[V\].
    pub vov: f64,
}

/// Evaluates the Level-1 equations in the NMOS frame.
///
/// The caller is responsible for polarity reflection: for a PMOS device pass
/// `(-vgs, -vds, -vbs)` and negate the resulting current (the derivative
/// signs work out so that the stamps can use the returned conductances
/// directly — see `dc.rs`).
pub fn eval_nmos_frame(p: &MosfetParams, vgs: f64, vds: f64, vbs: f64, t: f64) -> MosEval {
    // Body effect: vth = vth0' + γ(√(φ + v_SB) − √φ), v_SB = −v_BS.
    let phi = p.model.phi;
    let vsb = -vbs;
    let sqrt_arg = (phi + vsb).max(0.0);
    let sqrt_term = sqrt_arg.sqrt();
    let vth = p.vth_at(t) + p.model.gamma * (sqrt_term - phi.sqrt());
    // d vth / d vbs = -d vth / d vsb = -γ / (2√(φ+vsb)), guarded at the clamp.
    let dvth_dvbs = if sqrt_arg > 0.0 {
        p.model.gamma / (2.0 * sqrt_term)
    } else {
        0.0
    };

    let beta = p.beta_at(t);
    let vov = vgs - vth;

    if vov <= 0.0 {
        return MosEval {
            id: 0.0,
            gm: 0.0,
            gds: 0.0,
            gmb: 0.0,
            region: MosRegion::Cutoff,
            vth,
            vov,
        };
    }

    let lambda = p.lambda_eff();
    if vds < vov {
        // Triode; λ term retained so the current is continuous at vds = vov.
        let clm = 1.0 + lambda * vds;
        let core = (vov - vds / 2.0) * vds;
        let id = beta * core * clm;
        let gm = beta * vds * clm;
        let gds = beta * ((vov - vds) * clm + core * lambda);
        // ∂id/∂vbs = ∂id/∂vth · ∂vth/∂vbs = −gm · ∂vth/∂vbs; with
        // ∂vth/∂vbs = −dvth_dvbs (vth falls as vbs rises) this yields +gm·dvth_dvbs.
        let gmb = gm * dvth_dvbs;
        MosEval {
            id,
            gm,
            gds,
            gmb,
            region: MosRegion::Triode,
            vth,
            vov,
        }
    } else {
        let clm = 1.0 + lambda * vds;
        let id = 0.5 * beta * vov * vov * clm;
        let gm = beta * vov * clm;
        let gds = 0.5 * beta * vov * vov * lambda;
        let gmb = gm * dvth_dvbs;
        MosEval {
            id,
            gm,
            gds,
            gmb,
            region: MosRegion::Saturation,
            vth,
            vov,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn nmos_1u() -> MosfetParams {
        MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6)
    }

    #[test]
    fn cutoff_below_threshold() {
        let p = nmos_1u();
        let e = eval_nmos_frame(&p, 0.3, 1.0, 0.0, 300.15);
        assert_eq!(e.region, MosRegion::Cutoff);
        assert_eq!(e.id, 0.0);
        assert_eq!(e.gm, 0.0);
    }

    #[test]
    fn saturation_square_law() {
        let p = nmos_1u();
        let t = 300.15;
        let e = eval_nmos_frame(&p, 1.2, 2.0, 0.0, t);
        assert_eq!(e.region, MosRegion::Saturation);
        let beta = p.beta_at(t);
        let vov = 1.2 - p.model.vth0;
        let want = 0.5 * beta * vov * vov * (1.0 + p.model.lambda * 2.0);
        assert!((e.id / want - 1.0).abs() < 1e-12);
        assert!(e.gm > 0.0 && e.gds > 0.0);
    }

    #[test]
    fn current_continuous_at_triode_saturation_boundary() {
        let p = nmos_1u();
        let t = 300.15;
        let vgs = 1.5;
        let vov = vgs - p.model.vth0;
        let below = eval_nmos_frame(&p, vgs, vov - 1e-9, 0.0, t);
        let above = eval_nmos_frame(&p, vgs, vov + 1e-9, 0.0, t);
        assert_eq!(below.region, MosRegion::Triode);
        assert_eq!(above.region, MosRegion::Saturation);
        assert!((below.id - above.id).abs() < 1e-9 * above.id.max(1e-12));
    }

    #[test]
    fn derivatives_match_finite_differences() {
        let p = nmos_1u();
        let t = 300.15;
        let h = 1e-7;
        for (vgs, vds, vbs) in [(1.2, 2.0, 0.0), (1.5, 0.2, -0.5), (0.9, 0.05, -1.0)] {
            let e = eval_nmos_frame(&p, vgs, vds, vbs, t);
            let gm_fd = (eval_nmos_frame(&p, vgs + h, vds, vbs, t).id
                - eval_nmos_frame(&p, vgs - h, vds, vbs, t).id)
                / (2.0 * h);
            let gds_fd = (eval_nmos_frame(&p, vgs, vds + h, vbs, t).id
                - eval_nmos_frame(&p, vgs, vds - h, vbs, t).id)
                / (2.0 * h);
            let gmb_fd = (eval_nmos_frame(&p, vgs, vds, vbs + h, t).id
                - eval_nmos_frame(&p, vgs, vds, vbs - h, t).id)
                / (2.0 * h);
            assert!(
                (e.gm - gm_fd).abs() < 1e-6 * (1.0 + gm_fd.abs()),
                "gm at {vgs},{vds},{vbs}"
            );
            assert!(
                (e.gds - gds_fd).abs() < 1e-6 * (1.0 + gds_fd.abs()),
                "gds at {vgs},{vds},{vbs}"
            );
            assert!(
                (e.gmb - gmb_fd).abs() < 1e-6 * (1.0 + gmb_fd.abs()),
                "gmb at {vgs},{vds},{vbs}"
            );
        }
    }

    #[test]
    fn body_effect_raises_threshold() {
        let p = nmos_1u();
        let no_bias = eval_nmos_frame(&p, 1.2, 2.0, 0.0, 300.15);
        let reverse = eval_nmos_frame(&p, 1.2, 2.0, -1.0, 300.15);
        assert!(reverse.vth > no_bias.vth);
        assert!(reverse.id < no_bias.id);
    }

    #[test]
    fn delta_vth_shifts_current() {
        let mut p = nmos_1u();
        let base = eval_nmos_frame(&p, 1.2, 2.0, 0.0, 300.15).id;
        p.delta_vth = 0.05;
        let shifted = eval_nmos_frame(&p, 1.2, 2.0, 0.0, 300.15).id;
        assert!(shifted < base, "raising vth must lower the current");
    }

    #[test]
    fn beta_factor_scales_current() {
        let mut p = nmos_1u();
        let base = eval_nmos_frame(&p, 1.2, 2.0, 0.0, 300.15).id;
        p.beta_factor = 1.1;
        let scaled = eval_nmos_frame(&p, 1.2, 2.0, 0.0, 300.15).id;
        assert!((scaled / base - 1.1).abs() < 1e-12);
    }

    #[test]
    fn temperature_reduces_current_at_high_overdrive() {
        // At high overdrive the mobility term dominates the Vth term.
        let p = nmos_1u();
        let cold = eval_nmos_frame(&p, 2.5, 2.5, 0.0, 250.0).id;
        let hot = eval_nmos_frame(&p, 2.5, 2.5, 0.0, 400.0).id;
        assert!(hot < cold);
    }

    #[test]
    fn temperature_increases_current_near_threshold() {
        // Near threshold the Vth reduction with temperature dominates.
        let p = nmos_1u();
        let cold = eval_nmos_frame(&p, 0.78, 2.0, 0.0, 250.0).id;
        let hot = eval_nmos_frame(&p, 0.78, 2.0, 0.0, 400.0).id;
        assert!(hot > cold);
    }

    #[test]
    fn vth_at_reflects_temperature_coefficient() {
        let p = nmos_1u();
        let t0 = p.model.t_nom;
        assert!((p.vth_at(t0) - p.model.vth0).abs() < 1e-15);
        assert!((p.vth_at(t0 + 100.0) - (p.model.vth0 - 0.2)).abs() < 1e-12);
    }
}
