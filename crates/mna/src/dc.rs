//! DC operating-point analysis: damped Newton–Raphson on the MNA equations
//! with gmin-stepping and source-stepping homotopy fallbacks.

use std::collections::HashMap;

use specwise_linalg::DVec;

use crate::mosfet::{eval_nmos_frame, MosPolarity, MosRegion};
use crate::netlist::ElementKind;
use crate::solver::{Analysis, Stamper, SystemSolver};
use crate::{Circuit, ElementId, MnaError, NodeId};

/// Tuning knobs of the Newton iteration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NewtonOptions {
    /// Maximum Newton iterations per homotopy stage.
    pub max_iterations: usize,
    /// Absolute node-voltage convergence tolerance \[V\].
    pub vntol: f64,
    /// Relative convergence tolerance.
    pub reltol: f64,
    /// Residual convergence tolerance (KCL rows in amps, branch rows in volts).
    pub restol: f64,
    /// Maximum node-voltage change per damped Newton step \[V\].
    pub damping_vmax: f64,
    /// Minimum shunt conductance from every node to ground \[S\].
    pub gmin: f64,
}

impl Default for NewtonOptions {
    fn default() -> Self {
        NewtonOptions {
            max_iterations: 150,
            vntol: 1e-9,
            reltol: 1e-9,
            restol: 1e-9,
            damping_vmax: 0.5,
            gmin: 1e-12,
        }
    }
}

/// Operating-point record of one MOSFET.
///
/// `vsat_margin` is the quantity the paper's *functional constraints* are
/// built from: `v_DS − v_Dsat` in the device's forward frame, positive when
/// the transistor is safely saturated.
#[derive(Debug, Clone, PartialEq)]
pub struct MosOpInfo {
    /// Element id within the circuit.
    pub element: ElementId,
    /// Instance name.
    pub name: String,
    /// Operating region.
    pub region: MosRegion,
    /// Drain current \[A\], conventional current into the drain terminal
    /// (negative for PMOS in normal operation).
    pub id: f64,
    /// Gate-source voltage in the real frame \[V\].
    pub vgs: f64,
    /// Drain-source voltage in the real frame \[V\].
    pub vds: f64,
    /// Bulk-source voltage in the real frame \[V\].
    pub vbs: f64,
    /// Overdrive `|V_GS| − |V_th|` in the forward frame \[V\].
    pub vov: f64,
    /// Saturation margin `|V_DS| − V_ov` in the forward frame \[V\].
    pub vsat_margin: f64,
    /// Transconductance \[S\].
    pub gm: f64,
    /// Output conductance \[S\].
    pub gds: f64,
    /// Body transconductance \[S\].
    pub gmb: f64,
    /// Effective threshold (forward frame, magnitude) \[V\].
    pub vth: f64,
}

/// A converged DC solution: node voltages, branch currents, and per-MOSFET
/// operating details.
#[derive(Debug, Clone)]
pub struct DcSolution {
    x: DVec,
    num_nodes: usize,
    mos_ops: Vec<MosOpInfo>,
    branch_of: HashMap<String, usize>,
    branch_base: usize,
    iterations: usize,
}

impl DcSolution {
    /// Voltage of a node \[V\] (ground reads 0).
    pub fn voltage(&self, n: NodeId) -> f64 {
        if n.is_ground() {
            0.0
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Current through a voltage source or VCVS, flowing from the + terminal
    /// through the source to the − terminal \[A\].
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] when the name is not a branch element.
    pub fn branch_current(&self, name: &str) -> Result<f64, MnaError> {
        let branch = self.branch_of.get(name).ok_or_else(|| MnaError::NotFound {
            name: name.to_string(),
        })?;
        Ok(self.x[self.branch_base + branch])
    }

    /// Operating info of a MOSFET by name.
    pub fn mosfet_op(&self, name: &str) -> Option<&MosOpInfo> {
        self.mos_ops.iter().find(|m| m.name == name)
    }

    /// Operating info of every MOSFET, in netlist order.
    pub fn mosfet_ops(&self) -> &[MosOpInfo] {
        &self.mos_ops
    }

    /// The raw unknown vector (node voltages then branch currents).
    pub fn unknowns(&self) -> &DVec {
        &self.x
    }

    /// Newton iterations spent (across the successful homotopy stage).
    pub fn iterations(&self) -> usize {
        self.iterations
    }

    /// Number of nodes (including ground) of the circuit this solves.
    pub fn num_nodes(&self) -> usize {
        self.num_nodes
    }
}

/// DC operating-point analysis of a [`Circuit`].
///
/// See the [crate-level example](crate) for usage.
#[derive(Debug, Clone)]
pub struct DcOp<'c> {
    circuit: &'c Circuit,
    options: NewtonOptions,
}

impl<'c> DcOp<'c> {
    /// Creates an analysis with default [`NewtonOptions`].
    pub fn new(circuit: &'c Circuit) -> Self {
        DcOp {
            circuit,
            options: NewtonOptions::default(),
        }
    }

    /// Creates an analysis with custom options.
    pub fn with_options(circuit: &'c Circuit, options: NewtonOptions) -> Self {
        DcOp { circuit, options }
    }

    /// Solves for the operating point from a flat (all-zero) initial guess.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NoConvergence`] when direct Newton, gmin stepping
    /// and source stepping all fail, or [`MnaError::SingularMatrix`] for a
    /// structurally singular circuit.
    pub fn solve(&self) -> Result<DcSolution, MnaError> {
        self.solve_from(&DVec::zeros(self.circuit.num_unknowns()))
    }

    /// Solves starting from a previous solution's unknown vector (warm start).
    ///
    /// # Errors
    ///
    /// Same as [`DcOp::solve`]; additionally [`MnaError::InvalidRequest`]
    /// when the initial guess has the wrong length.
    pub fn solve_from(&self, initial: &DVec) -> Result<DcSolution, MnaError> {
        let n = self.circuit.num_unknowns();
        if initial.len() != n {
            return Err(MnaError::InvalidRequest {
                reason: "initial guess length mismatch",
            });
        }
        if n == 0 {
            return Err(MnaError::InvalidRequest {
                reason: "circuit has no unknowns",
            });
        }

        // One workspace for the whole solve: the assembly buffer and (on
        // the sparse backend) the numeric factorization survive every
        // Newton iteration and homotopy stage below.
        let mut sys = SystemSolver::new(self.circuit, Analysis::Dc);

        // Stage 1: plain Newton.
        if let Ok((x, iters)) = self.newton(&mut sys, initial.clone(), self.options.gmin, 1.0) {
            return Ok(self.finish(x, iters));
        }

        // Stage 2: gmin stepping.
        let mut x = initial.clone();
        let mut ok = true;
        let mut g = 1e-2;
        let mut total_iters = 0;
        while g > self.options.gmin {
            match self.newton(&mut sys, x.clone(), g, 1.0) {
                Ok((xg, it)) => {
                    x = xg;
                    total_iters += it;
                }
                Err(_) => {
                    ok = false;
                    break;
                }
            }
            g *= 0.1;
        }
        if ok {
            if let Ok((xf, it)) = self.newton(&mut sys, x.clone(), self.options.gmin, 1.0) {
                return Ok(self.finish(xf, total_iters + it));
            }
        }

        // Stage 3: source stepping.
        let mut x = DVec::zeros(n);
        let mut total_iters = 0;
        let steps = 20;
        for k in 1..=steps {
            let alpha = k as f64 / steps as f64;
            match self.newton(&mut sys, x.clone(), self.options.gmin, alpha) {
                Ok((xa, it)) => {
                    x = xa;
                    total_iters += it;
                }
                Err(e) => return Err(e),
            }
        }
        Ok(self.finish(x, total_iters))
    }

    /// Wraps an already-converged unknown vector as a [`DcSolution`] without
    /// running Newton.
    ///
    /// This is the exact-hit path of warm-start caches: when a caller knows
    /// `x` is the converged solution of this very circuit (bit-identical
    /// parameter signature), re-deriving the operating records from `x` is
    /// deterministic and skips the solve entirely.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidRequest`] when `x` has the wrong length.
    pub fn solution_from(&self, x: DVec) -> Result<DcSolution, MnaError> {
        if x.len() != self.circuit.num_unknowns() {
            return Err(MnaError::InvalidRequest {
                reason: "solution vector length mismatch",
            });
        }
        Ok(self.finish(x, 0))
    }

    /// One Newton solve at fixed shunt conductance and source scale.
    fn newton(
        &self,
        sys: &mut SystemSolver,
        mut x: DVec,
        gshunt: f64,
        scale: f64,
    ) -> Result<(DVec, usize), MnaError> {
        let n = self.circuit.num_unknowns();
        let damping_vmax = damping_for(self.circuit, &self.options);
        let mut res = DVec::zeros(n);
        for iter in 0..self.options.max_iterations {
            match newton_iteration(
                self.circuit,
                &self.options,
                sys,
                &mut x,
                &mut res,
                gshunt,
                scale,
                damping_vmax,
            ) {
                NewtonStep::Converged => return Ok((x, iter + 1)),
                NewtonStep::Continue => {}
                NewtonStep::NonFinite => {
                    return Err(MnaError::NoConvergence {
                        analysis: "dc",
                        iterations: iter,
                        residual: f64::NAN,
                    })
                }
                NewtonStep::Failed(e) => return Err(e),
            }
        }
        stamp_system(
            self.circuit,
            &x,
            gshunt,
            scale,
            None,
            sys.stamper(),
            &mut res,
        );
        Err(MnaError::NoConvergence {
            analysis: "dc",
            iterations: self.options.max_iterations,
            residual: res.norm_inf(),
        })
    }

    pub(crate) fn finish(&self, x: DVec, iterations: usize) -> DcSolution {
        let mos_ops = mosfet_operating_points(self.circuit, &x);
        let mut branch_of = HashMap::new();
        for (idx, kind) in self.circuit.kinds().iter().enumerate() {
            match kind {
                ElementKind::VoltageSource { branch, .. } | ElementKind::Vcvs { branch, .. } => {
                    branch_of.insert(
                        self.circuit.element_name(ElementId(idx)).to_string(),
                        *branch,
                    );
                }
                _ => {}
            }
        }
        DcSolution {
            x,
            num_nodes: self.circuit.num_nodes(),
            mos_ops,
            branch_of,
            branch_base: self.circuit.num_nodes() - 1,
            iterations,
        }
    }
}

/// Damping bound for one Newton solve of `circuit`.
///
/// Purely linear circuits solve exactly in one Newton step; damping would
/// only slow (or for large node voltages, prevent) convergence.
pub(crate) fn damping_for(circuit: &Circuit, options: &NewtonOptions) -> f64 {
    let has_nonlinear = circuit
        .kinds()
        .iter()
        .any(|k| matches!(k, ElementKind::Mosfet { .. } | ElementKind::Diode { .. }));
    if has_nonlinear {
        options.damping_vmax
    } else {
        f64::INFINITY
    }
}

/// Outcome of one Newton iteration ([`newton_iteration`]).
pub(crate) enum NewtonStep {
    /// Converged: `x` holds the accepted solution.
    Converged,
    /// Not converged yet; iterate again.
    Continue,
    /// Residual or Jacobian went non-finite.
    NonFinite,
    /// The linear solve failed.
    Failed(MnaError),
}

/// One iteration of the damped Newton loop: stamp, factor, solve, damp,
/// update, check convergence. Shared verbatim between the scalar solver
/// ([`DcOp::solve_from`]) and the lockstep batch solver so the two produce
/// bit-identical float sequences per sample.
#[allow(clippy::too_many_arguments)]
pub(crate) fn newton_iteration(
    circuit: &Circuit,
    options: &NewtonOptions,
    sys: &mut SystemSolver,
    x: &mut DVec,
    res: &mut DVec,
    gshunt: f64,
    scale: f64,
    damping_vmax: f64,
) -> NewtonStep {
    let nv = circuit.num_nodes() - 1;
    stamp_system(circuit, x, gshunt, scale, None, sys.stamper(), res);
    if !res.is_finite() || !sys.is_finite() {
        return NewtonStep::NonFinite;
    }
    let mut delta = match sys.factor_solve(res, "dc") {
        Ok(d) => d,
        Err(e) => return NewtonStep::Failed(e),
    };
    let mut vmax = 0.0_f64;
    for i in 0..nv {
        vmax = vmax.max(delta[i].abs());
    }
    // Residual-based acceptance: when the KCL residual is already far below
    // tolerance and the proposed update is sub-µV, the point is converged
    // even if a near-singular Jacobian (cut-off devices hanging on gmin)
    // keeps Δv from meeting the strict voltage criterion.
    if res.norm_inf() < options.restol && vmax < 1e-6 {
        return NewtonStep::Converged;
    }
    // Damp: bound the node-voltage update.
    if vmax > damping_vmax {
        delta *= damping_vmax / vmax;
    }
    *x += &delta;

    // Convergence: voltage update small and residual small.
    let mut dv_ok = true;
    for i in 0..nv {
        if delta[i].abs() > options.vntol + options.reltol * x[i].abs() {
            dv_ok = false;
            break;
        }
    }
    if dv_ok {
        stamp_system(circuit, x, gshunt, scale, None, sys.stamper(), res);
        if res.norm_inf() < options.restol {
            return NewtonStep::Converged;
        }
    }
    NewtonStep::Continue
}

/// A [`Stamper`] that discards every Jacobian entry — used for
/// residual-only evaluations (sensitivity right-hand sides).
pub(crate) struct NullStamper;

impl Stamper for NullStamper {
    fn clear(&mut self) {}
    fn add(&mut self, _r: usize, _c: usize, _v: f64) {}
}

/// Residual of the MNA system of `circuit` at a fixed unknown vector `x`
/// (no Jacobian assembly). The sensitivity right-hand side is the difference
/// of two of these between a perturbed and a base circuit.
pub(crate) fn residual_at(circuit: &Circuit, x: &DVec, gshunt: f64, res: &mut DVec) {
    stamp_system(circuit, x, gshunt, 1.0, None, &mut NullStamper, res);
}

/// Voltage of node `n` given the unknown vector.
fn vnode(x: &DVec, ckt: &Circuit, n: NodeId) -> f64 {
    match ckt.node_unknown(n) {
        Some(i) => x[i],
        None => 0.0,
    }
}

/// Effective-frame MOSFET evaluation shared by DC, AC and transient.
///
/// Returns `(effective_drain, effective_source, sign, eval)` where the
/// current `sign·eval.id` flows from `effective_drain` to `effective_source`
/// in the real frame.
pub(crate) fn eval_mosfet_at(
    ckt: &Circuit,
    x: &DVec,
    d: NodeId,
    g: NodeId,
    s: NodeId,
    b: NodeId,
    params: &crate::MosfetParams,
) -> (NodeId, NodeId, f64, crate::mosfet::MosEval) {
    let sgn = match params.model.polarity {
        MosPolarity::Nmos => 1.0,
        MosPolarity::Pmos => -1.0,
    };
    let vd = sgn * vnode(x, ckt, d);
    let vg = sgn * vnode(x, ckt, g);
    let vs = sgn * vnode(x, ckt, s);
    let vb = sgn * vnode(x, ckt, b);
    // Forward frame: if the reflected drain sits below the reflected source,
    // the device conducts in reverse — swap the roles so the square-law
    // formulas stay in their valid region (standard SPICE treatment).
    let (ed, es, vgs, vds, vbs) = if vd >= vs {
        (d, s, vg - vs, vd - vs, vb - vs)
    } else {
        (s, d, vg - vd, vs - vd, vb - vd)
    };
    let ev = eval_nmos_frame(params, vgs, vds, vbs, ckt.temperature());
    (ed, es, sgn, ev)
}

/// Stamps the full nonlinear system at `x` into `jac` and `res`.
///
/// `res` is the KCL residual (currents leaving each node) plus the branch
/// voltage equations; `jac` its Jacobian, written through the [`Stamper`]
/// abstraction (dense matrix, sparse value array, or pattern collector).
/// Both targets are zeroed in place first. `stimulus_time` selects transient
/// stimulus values for voltage sources when `Some`.
pub(crate) fn stamp_system(
    ckt: &Circuit,
    x: &DVec,
    gshunt: f64,
    source_scale: f64,
    stimulus_time: Option<f64>,
    jac: &mut dyn Stamper,
    res: &mut DVec,
) {
    let n = ckt.num_unknowns();
    jac.clear();
    if res.len() != n {
        *res = DVec::zeros(n);
    } else {
        res.as_mut_slice().fill(0.0);
    }
    let nv = ckt.num_nodes() - 1;

    // Shunt conductance from every node to ground (gmin / homotopy).
    for i in 0..nv {
        jac.add(i, i, gshunt);
        res[i] += gshunt * x[i];
    }

    let add_res = |res: &mut DVec, node: NodeId, val: f64| {
        if let Some(i) = ckt.node_unknown(node) {
            res[i] += val;
        }
    };
    let add_jac = |jac: &mut dyn Stamper, row: Option<usize>, col: Option<usize>, val: f64| {
        if let (Some(r), Some(c)) = (row, col) {
            jac.add(r, c, val);
        }
    };

    for kind in ckt.kinds() {
        match kind {
            ElementKind::Resistor { a, b, ohms } => {
                let g = 1.0 / ohms;
                let i_ab = g * (vnode(x, ckt, *a) - vnode(x, ckt, *b));
                add_res(res, *a, i_ab);
                add_res(res, *b, -i_ab);
                let (ia, ib) = (ckt.node_unknown(*a), ckt.node_unknown(*b));
                add_jac(jac, ia, ia, g);
                add_jac(jac, ia, ib, -g);
                add_jac(jac, ib, ia, -g);
                add_jac(jac, ib, ib, g);
            }
            ElementKind::Capacitor { .. } => {
                // Open circuit in DC; transient adds companion stamps itself.
            }
            ElementKind::CurrentSource { p, n: nn, dc, .. } => {
                let i = source_scale * dc;
                add_res(res, *p, i);
                add_res(res, *nn, -i);
            }
            ElementKind::VoltageSource {
                p,
                n: nn,
                dc,
                stimulus,
                branch,
                ..
            } => {
                let value = match (stimulus_time, stimulus) {
                    (Some(t), Some(stim)) => stim.at(t),
                    _ => *dc,
                } * source_scale;
                let br = ckt.branch_unknown(*branch);
                let i_br = x[br];
                add_res(res, *p, i_br);
                add_res(res, *nn, -i_br);
                let (ip, inn) = (ckt.node_unknown(*p), ckt.node_unknown(*nn));
                add_jac(jac, ip, Some(br), 1.0);
                add_jac(jac, inn, Some(br), -1.0);
                // Branch equation: v(p) − v(n) − V = 0.
                res[br] = vnode(x, ckt, *p) - vnode(x, ckt, *nn) - value;
                add_jac(jac, Some(br), ip, 1.0);
                add_jac(jac, Some(br), inn, -1.0);
            }
            ElementKind::Vccs {
                p,
                n: nn,
                cp,
                cn,
                gm,
            } => {
                let i = gm * (vnode(x, ckt, *cp) - vnode(x, ckt, *cn));
                add_res(res, *p, i);
                add_res(res, *nn, -i);
                let (ip, inn) = (ckt.node_unknown(*p), ckt.node_unknown(*nn));
                let (icp, icn) = (ckt.node_unknown(*cp), ckt.node_unknown(*cn));
                add_jac(jac, ip, icp, *gm);
                add_jac(jac, ip, icn, -gm);
                add_jac(jac, inn, icp, -gm);
                add_jac(jac, inn, icn, *gm);
            }
            ElementKind::Vcvs {
                p,
                n: nn,
                cp,
                cn,
                gain,
                branch,
            } => {
                let br = ckt.branch_unknown(*branch);
                let i_br = x[br];
                add_res(res, *p, i_br);
                add_res(res, *nn, -i_br);
                let (ip, inn) = (ckt.node_unknown(*p), ckt.node_unknown(*nn));
                let (icp, icn) = (ckt.node_unknown(*cp), ckt.node_unknown(*cn));
                add_jac(jac, ip, Some(br), 1.0);
                add_jac(jac, inn, Some(br), -1.0);
                res[br] = vnode(x, ckt, *p)
                    - vnode(x, ckt, *nn)
                    - gain * (vnode(x, ckt, *cp) - vnode(x, ckt, *cn));
                add_jac(jac, Some(br), ip, 1.0);
                add_jac(jac, Some(br), inn, -1.0);
                add_jac(jac, Some(br), icp, -gain);
                add_jac(jac, Some(br), icn, *gain);
            }
            ElementKind::Diode {
                a,
                k,
                is_sat,
                ideality,
            } => {
                // i = Is·(exp(x) − 1), x = v/(n·V_T); the exponential is
                // continued linearly above x = 40 so Newton iterates cannot
                // overflow (value and derivative stay continuous).
                let vt = 8.617_333e-5 * ckt.temperature();
                let v = vnode(x, ckt, *a) - vnode(x, ckt, *k);
                let arg = v / (ideality * vt);
                const XM: f64 = 40.0;
                let (e, de) = if arg <= XM {
                    let e = arg.exp();
                    (e, e)
                } else {
                    let em = XM.exp();
                    (em * (1.0 + (arg - XM)), em)
                };
                let i = is_sat * (e - 1.0);
                let gd = is_sat * de / (ideality * vt);
                add_res(res, *a, i);
                add_res(res, *k, -i);
                let (ia, ik) = (ckt.node_unknown(*a), ckt.node_unknown(*k));
                add_jac(jac, ia, ia, gd);
                add_jac(jac, ia, ik, -gd);
                add_jac(jac, ik, ia, -gd);
                add_jac(jac, ik, ik, gd);
            }
            ElementKind::Mosfet { d, g, s, b, params } => {
                let (ed, es, sgn, ev) = eval_mosfet_at(ckt, x, *d, *g, *s, *b, params);
                let i_real = sgn * ev.id;
                add_res(res, ed, i_real);
                add_res(res, es, -i_real);
                let (ied, ies) = (ckt.node_unknown(ed), ckt.node_unknown(es));
                let (ig, ib) = (ckt.node_unknown(*g), ckt.node_unknown(*b));
                // ∂i_real/∂v: polarity signs cancel (sgn² = 1).
                let gsum = ev.gm + ev.gds + ev.gmb;
                add_jac(jac, ied, ig, ev.gm);
                add_jac(jac, ied, ied, ev.gds);
                add_jac(jac, ied, ib, ev.gmb);
                add_jac(jac, ied, ies, -gsum);
                add_jac(jac, ies, ig, -ev.gm);
                add_jac(jac, ies, ied, -ev.gds);
                add_jac(jac, ies, ib, -ev.gmb);
                add_jac(jac, ies, ies, gsum);
            }
        }
    }
}

/// Computes per-MOSFET operating records at a converged solution.
pub(crate) fn mosfet_operating_points(ckt: &Circuit, x: &DVec) -> Vec<MosOpInfo> {
    let mut out = Vec::new();
    for (idx, kind) in ckt.kinds().iter().enumerate() {
        if let ElementKind::Mosfet { d, g, s, b, params } = kind {
            let (ed, _es, sgn, ev) = eval_mosfet_at(ckt, x, *d, *g, *s, *b, params);
            let vd = vnode(x, ckt, *d);
            let vg = vnode(x, ckt, *g);
            let vs = vnode(x, ckt, *s);
            let vb = vnode(x, ckt, *b);
            // Real-frame drain current: i_real flows ed→es; current into the
            // original drain terminal:
            let i_real = sgn * ev.id;
            let id_drain = if ed == *d { i_real } else { -i_real };
            // Forward-frame vds for the saturation margin.
            let vds_fwd = (sgn * (vd - vs)).abs();
            out.push(MosOpInfo {
                element: ElementId(idx),
                name: ckt.element_name(ElementId(idx)).to_string(),
                region: ev.region,
                id: id_drain,
                vgs: vg - vs,
                vds: vd - vs,
                vbs: vb - vs,
                vov: ev.vov,
                vsat_margin: vds_fwd - ev.vov.max(0.0),
                gm: ev.gm,
                gds: ev.gds,
                gmb: ev.gmb,
                vth: ev.vth,
            });
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetModel, MosfetParams};
    use specwise_linalg::DMat;

    #[test]
    fn resistive_divider() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let mid = ckt.node("mid");
        ckt.voltage_source("V1", a, Circuit::GROUND, 3.0).unwrap();
        ckt.resistor("R1", a, mid, 2e3).unwrap();
        ckt.resistor("R2", mid, Circuit::GROUND, 1e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-8);
        // Source current: 3V over 3k = 1 mA flowing out of + through circuit,
        // so the branch current (through the source, + to −) is −1 mA.
        assert!((op.branch_current("V1").unwrap() + 1e-3).abs() < 1e-9);
    }

    #[test]
    fn current_source_into_resistor() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        // 1 mA pulled out of node a through the source into ground.
        ckt.current_source("I1", a, Circuit::GROUND, 1e-3).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        assert!(
            (op.voltage(a) + 1.0).abs() < 1e-8,
            "v(a) = {}",
            op.voltage(a)
        );
    }

    #[test]
    fn vccs_gain_stage() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("VIN", inp, Circuit::GROUND, 0.1)
            .unwrap();
        ckt.vccs("G1", out, Circuit::GROUND, inp, Circuit::GROUND, 1e-3)
            .unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 10e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        // i = gm·vin = 0.1 mA out of node `out` → v(out) = −i·RL = −1 V.
        assert!((op.voltage(out) + 1.0).abs() < 1e-8);
    }

    #[test]
    fn vcvs_amplifier() {
        let mut ckt = Circuit::new();
        let inp = ckt.node("in");
        let out = ckt.node("out");
        ckt.voltage_source("VIN", inp, Circuit::GROUND, 0.25)
            .unwrap();
        ckt.vcvs("E1", out, Circuit::GROUND, inp, Circuit::GROUND, 4.0)
            .unwrap();
        ckt.resistor("RL", out, Circuit::GROUND, 1e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        assert!((op.voltage(out) - 1.0).abs() < 1e-8);
    }

    #[test]
    fn diode_connected_nmos_settles() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.resistor("R1", vdd, d, 10e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 20e-6, 2e-6);
        ckt.mosfet("M1", d, d, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap();
        assert_eq!(
            m.region,
            MosRegion::Saturation,
            "diode device must saturate"
        );
        // KCL: resistor current equals drain current.
        let ir = (3.0 - op.voltage(d)) / 10e3;
        assert!((ir - m.id).abs() < 1e-9, "ir={ir} id={}", m.id);
        assert!(m.vgs > m.vth, "must be on");
    }

    #[test]
    fn nmos_common_source_gain_stage() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)
            .unwrap();
        ckt.resistor("RD", vdd, out, 20e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap();
        assert!(op.voltage(out) > 0.0 && op.voltage(out) < 3.0);
        assert!(m.id > 0.0);
        // KCL at the output node.
        let ir = (3.0 - op.voltage(out)) / 20e3;
        assert!((ir - m.id).abs() < 1e-9);
    }

    #[test]
    fn pmos_source_follower_polarity() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let gate = ckt.node("g");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)
            .unwrap();
        // PMOS: source at VDD, drain to ground through resistor.
        let params = MosfetParams::new(MosfetModel::default_pmos(), 20e-6, 1e-6);
        ckt.mosfet("M1", out, gate, vdd, vdd, params).unwrap();
        ckt.resistor("RD", out, Circuit::GROUND, 10e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap();
        // PMOS drain current is negative (current flows out of the drain node
        // into the resistor → into the drain terminal it is negative).
        assert!(m.id < 0.0, "PMOS id = {}", m.id);
        assert!(op.voltage(out) > 0.0);
        let ir = op.voltage(out) / 10e3;
        assert!((ir + m.id).abs() < 1e-9, "KCL at out");
    }

    #[test]
    fn nmos_reverse_conduction_swaps_terminals() {
        // Put the "drain" below the "source": device must conduct backwards.
        let mut ckt = Circuit::new();
        let hi = ckt.node("hi");
        let gate = ckt.node("g");
        ckt.voltage_source("VHI", hi, Circuit::GROUND, 2.0).unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 2.0)
            .unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        // Terminals: d = ground side via resistor, s = hi. vds < 0 initially.
        let d = ckt.node("d");
        ckt.mosfet("M1", d, gate, hi, Circuit::GROUND, params)
            .unwrap();
        ckt.resistor("R1", d, Circuit::GROUND, 10e3).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        // Current must flow from hi (acting drain) to d (acting source) and
        // down the resistor: v(d) > 0.
        assert!(op.voltage(d) > 0.1, "v(d) = {}", op.voltage(d));
    }

    #[test]
    fn floating_node_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let fl = ckt.node("floating");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        // `floating` has only one capacitor — no DC path.
        ckt.capacitor("C1", fl, a, 1e-12).unwrap();
        // With the default gmin shunt the matrix is technically nonsingular;
        // the node just reads ~0. Accept either behaviour but require no panic.
        let r = DcOp::new(&ckt).solve();
        if let Ok(op) = r {
            assert!(op.voltage(fl).abs() < 1.0);
        }
    }

    #[test]
    fn warm_start_converges_faster() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.resistor("R1", vdd, d, 10e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 20e-6, 2e-6);
        ckt.mosfet("M1", d, d, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let cold = DcOp::new(&ckt).solve().unwrap();
        let warm = DcOp::new(&ckt).solve_from(cold.unknowns()).unwrap();
        assert!(warm.iterations() <= cold.iterations());
        assert!((warm.voltage(d) - cold.voltage(d)).abs() < 1e-9);
    }

    #[test]
    fn kcl_residual_zero_at_solution() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let out = ckt.node("out");
        let gate = ckt.node("g");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 1.1)
            .unwrap();
        ckt.resistor("RD", vdd, out, 15e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let n = ckt.num_unknowns();
        let mut jac = DMat::zeros(n, n);
        let mut res = DVec::zeros(n);
        stamp_system(&ckt, op.unknowns(), 1e-12, 1.0, None, &mut jac, &mut res);
        assert!(res.norm_inf() < 1e-9, "residual {}", res.norm_inf());
    }

    #[test]
    fn initial_guess_length_checked() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1.0e3).unwrap();
        assert!(matches!(
            DcOp::new(&ckt).solve_from(&DVec::zeros(1)),
            Err(MnaError::InvalidRequest { .. })
        ));
    }
}

#[cfg(test)]
mod diode_tests {
    use super::*;

    #[test]
    fn forward_biased_diode_drops_about_600mv() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 3.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let vd = op.voltage(d);
        assert!(vd > 0.5 && vd < 0.8, "forward drop {vd}");
        // The diode current satisfies the exponential law at the solution.
        let vt = 8.617_333e-5 * ckt.temperature();
        let i_diode = 1e-14 * ((vd / vt).exp() - 1.0);
        let i_res = (3.0 - vd) / 1e3;
        assert!(
            (i_diode / i_res - 1.0).abs() < 1e-6,
            "KCL: {i_diode} vs {i_res}"
        );
    }

    #[test]
    fn reverse_biased_diode_blocks() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, -3.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        // Almost the full supply appears across the diode; the current is
        // just the (tiny) saturation current.
        let i = (op.voltage(a) - op.voltage(d)).abs() / 1e3;
        assert!(i < 1e-11, "reverse current {i}");
        assert!(op.voltage(d) < -2.9);
    }

    #[test]
    fn ideality_factor_shifts_the_knee() {
        let drop = |n: f64| {
            let mut ckt = Circuit::new();
            let a = ckt.node("a");
            let d = ckt.node("d");
            ckt.voltage_source("V1", a, Circuit::GROUND, 3.0).unwrap();
            ckt.resistor("R1", a, d, 10e3).unwrap();
            ckt.diode("D1", d, Circuit::GROUND, 1e-14, n).unwrap();
            let op = DcOp::new(&ckt).solve().unwrap();
            op.voltage(d)
        };
        assert!(
            drop(2.0) > drop(1.0) + 0.3,
            "n=2 roughly doubles the knee voltage"
        );
    }

    #[test]
    fn diode_rejects_bad_parameters() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.diode("D", a, Circuit::GROUND, 0.0, 1.0).is_err());
        assert!(ckt.diode("D", a, Circuit::GROUND, 1e-14, -1.0).is_err());
    }

    #[test]
    fn diode_small_signal_conductance_in_ac() {
        // AC through a forward diode: gd = I/(n·Vt) appears in the G matrix,
        // forming a divider with the series resistor.
        use crate::AcSolver;
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let d = ckt.node("d");
        ckt.voltage_source("V1", a, Circuit::GROUND, 3.0).unwrap();
        ckt.set_ac("V1", 1.0).unwrap();
        ckt.resistor("R1", a, d, 1e3).unwrap();
        ckt.diode("D1", d, Circuit::GROUND, 1e-14, 1.0).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let vt = 8.617_333e-5 * ckt.temperature();
        let i = (3.0 - op.voltage(d)) / 1e3;
        let rd = vt / i; // small-signal resistance ≈ 11 Ω at 2.4 mA
        let ac = AcSolver::new(&ckt, &op);
        let h = ac.solve(0.0).unwrap().voltage(d).abs();
        let expected = rd / (rd + 1e3);
        assert!(
            (h / expected - 1.0).abs() < 0.01,
            "divider {h} vs {expected}"
        );
    }
}
