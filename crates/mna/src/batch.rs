//! Sample-major batched DC operating-point solves.
//!
//! Monte-Carlo verification evaluates the same circuit topology at many
//! parameter points. [`BatchDcOp`] runs the damped Newton iteration for a
//! batch of such lanes in lockstep: every active lane advances one
//! [`newton_iteration`] per round, converged lanes retire immediately, and
//! lanes that fail the plain-Newton stage fall back to the scalar homotopy
//! path ([`DcOp::solve_from`] / [`DcOp::solve`]).
//!
//! Each lane owns its circuit instance (same topology, different parameter
//! values) and its own [`SystemSolver`] workspace, and steps through the
//! *same* shared iteration body as the scalar solver — so a batched solve
//! is bit-identical to solving each lane alone. The batch layout changes
//! the schedule, never the floats.

use specwise_linalg::DVec;

use crate::dc::{damping_for, newton_iteration, DcOp, DcSolution, NewtonOptions, NewtonStep};
use crate::solver::{Analysis, SystemSolver};
use crate::{Circuit, MnaError};

/// Lockstep batched DC operating-point analysis (see the module docs).
#[derive(Debug, Clone, Default)]
pub struct BatchDcOp {
    options: NewtonOptions,
}

/// One in-flight Newton lane.
struct Lane<'c> {
    idx: usize,
    circuit: &'c Circuit,
    damping_vmax: f64,
    sys: SystemSolver,
    x: DVec,
    res: DVec,
}

impl BatchDcOp {
    /// Creates a batched analysis with default [`NewtonOptions`].
    pub fn new() -> Self {
        BatchDcOp::default()
    }

    /// Creates a batched analysis with custom options.
    pub fn with_options(options: NewtonOptions) -> Self {
        BatchDcOp { options }
    }

    /// Solves one lane per `(circuit, seed)` entry in lockstep.
    /// `Some(x0)` warm starts the lane from `x0`; `None` starts cold
    /// (all-zero guess).
    ///
    /// Per-lane results are bit-identical to the scalar equivalents:
    /// `op.solve_from(&x0).or_else(|_| op.solve())` for seeded lanes and
    /// `op.solve()` for cold lanes.
    pub fn solve_lockstep(
        &self,
        lanes: &[(&Circuit, Option<DVec>)],
    ) -> Vec<Result<DcSolution, MnaError>> {
        let mut results: Vec<Option<Result<DcSolution, MnaError>>> =
            (0..lanes.len()).map(|_| None).collect();

        let mut active: Vec<Lane<'_>> = Vec::with_capacity(lanes.len());
        let mut max_iterations = 0usize;
        for (idx, (circuit, seed)) in lanes.iter().enumerate() {
            let n = circuit.num_unknowns();
            if n == 0 {
                results[idx] = Some(Err(MnaError::InvalidRequest {
                    reason: "circuit has no unknowns",
                }));
                continue;
            }
            let x = match seed {
                Some(x0) if x0.len() == n => x0.clone(),
                Some(_) => {
                    // A malformed seed takes the scalar fallback verbatim:
                    // solve_from rejects it, or_else runs the cold solve.
                    results[idx] = Some(self.fallback(circuit, seed));
                    continue;
                }
                None => DVec::zeros(n),
            };
            max_iterations = max_iterations.max(self.options.max_iterations);
            active.push(Lane {
                idx,
                circuit,
                damping_vmax: damping_for(circuit, &self.options),
                sys: SystemSolver::new(circuit, Analysis::Dc),
                x,
                res: DVec::zeros(n),
            });
        }

        // Lockstep plain-Newton stage: the global round index doubles as
        // each lane's own iteration count, since every lane joins at round
        // zero and advances exactly once per round.
        for iter in 0..max_iterations {
            if active.is_empty() {
                break;
            }
            let mut still = Vec::with_capacity(active.len());
            for mut lane in active {
                match newton_iteration(
                    lane.circuit,
                    &self.options,
                    &mut lane.sys,
                    &mut lane.x,
                    &mut lane.res,
                    self.options.gmin,
                    1.0,
                    lane.damping_vmax,
                ) {
                    NewtonStep::Converged => {
                        let op = DcOp::with_options(lane.circuit, self.options);
                        results[lane.idx] = Some(Ok(op.finish(lane.x, iter + 1)));
                    }
                    NewtonStep::Continue => still.push(lane),
                    NewtonStep::NonFinite | NewtonStep::Failed(_) => {
                        results[lane.idx] = Some(self.fallback(lane.circuit, &lanes[lane.idx].1));
                    }
                }
            }
            active = still;
        }

        // Lanes that exhausted the plain-Newton budget take the scalar
        // homotopy path (gmin stepping, then source stepping), exactly as
        // the scalar solver would after its stage-1 failure.
        for lane in active {
            results[lane.idx] = Some(self.fallback(lane.circuit, &lanes[lane.idx].1));
        }

        results
            .into_iter()
            .map(|r| r.expect("every lane resolved"))
            .collect()
    }

    /// Scalar-path fallback for one lane; deterministic, so re-running the
    /// already-failed plain-Newton stage inside reproduces the scalar float
    /// sequence exactly.
    fn fallback(&self, circuit: &Circuit, seed: &Option<DVec>) -> Result<DcSolution, MnaError> {
        let op = DcOp::with_options(circuit, self.options);
        match seed {
            Some(x0) => op.solve_from(x0).or_else(|_| op.solve()),
            None => op.solve(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcOp, MosfetModel, MosfetParams};

    fn five_transistor_ota(w_in: f64) -> Circuit {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let inp = ckt.node("inp");
        let inn = ckt.node("inn");
        let out = ckt.node("out");
        let tail = ckt.node("tail");
        let mir = ckt.node("mir");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VINP", inp, Circuit::GROUND, 1.5)
            .unwrap();
        ckt.voltage_source("VINN", inn, Circuit::GROUND, 1.5)
            .unwrap();
        let nmos = MosfetModel::default_nmos();
        let pmos = MosfetModel::default_pmos();
        ckt.mosfet(
            "M1",
            mir,
            inp,
            tail,
            Circuit::GROUND,
            MosfetParams::new(nmos, w_in, 1e-6),
        )
        .unwrap();
        ckt.mosfet(
            "M2",
            out,
            inn,
            tail,
            Circuit::GROUND,
            MosfetParams::new(nmos, w_in, 1e-6),
        )
        .unwrap();
        ckt.mosfet(
            "M3",
            mir,
            mir,
            vdd,
            vdd,
            MosfetParams::new(pmos, 40e-6, 1e-6),
        )
        .unwrap();
        ckt.mosfet(
            "M4",
            out,
            mir,
            vdd,
            vdd,
            MosfetParams::new(pmos, 40e-6, 1e-6),
        )
        .unwrap();
        ckt.resistor("RT", tail, Circuit::GROUND, 5e3).unwrap();
        ckt
    }

    fn assert_bit_identical(a: &DcSolution, b: &DcSolution) {
        assert_eq!(a.iterations(), b.iterations());
        let (xa, xb) = (a.unknowns(), b.unknowns());
        assert_eq!(xa.len(), xb.len());
        for i in 0..xa.len() {
            assert_eq!(xa[i].to_bits(), xb[i].to_bits(), "unknown {i}");
        }
    }

    #[test]
    fn cold_batch_is_bit_identical_to_scalar() {
        let ckt = five_transistor_ota(20e-6);
        let scalar = DcOp::new(&ckt).solve().unwrap();
        for n_lanes in [1usize, 2, 7] {
            let lanes: Vec<_> = (0..n_lanes).map(|_| (&ckt, None)).collect();
            let batch = BatchDcOp::new().solve_lockstep(&lanes);
            assert_eq!(batch.len(), n_lanes);
            for sol in batch {
                assert_bit_identical(&sol.unwrap(), &scalar);
            }
        }
    }

    #[test]
    fn heterogeneous_lanes_match_their_scalar_solves() {
        // The MC shape: same topology, different device parameters per lane.
        let ckts: Vec<Circuit> = [18e-6, 20e-6, 23e-6, 31e-6]
            .iter()
            .map(|&w| five_transistor_ota(w))
            .collect();
        let lanes: Vec<_> = ckts.iter().map(|c| (c, None)).collect();
        let batch = BatchDcOp::new().solve_lockstep(&lanes);
        for (ckt, got) in ckts.iter().zip(&batch) {
            let want = DcOp::new(ckt).solve().unwrap();
            assert_bit_identical(got.as_ref().unwrap(), &want);
        }
    }

    #[test]
    fn warm_batch_is_bit_identical_to_scalar_warm_path() {
        let ckt = five_transistor_ota(20e-6);
        let base = DcOp::new(&ckt).solve().unwrap();
        // Warm-start from a slightly damped copy of the converged point —
        // the same shape of seed a warm cache would supply.
        let seed = DVec::from_fn(base.unknowns().len(), |i| base.unknowns()[i] * 0.98);
        let op = DcOp::new(&ckt);
        let scalar = op.solve_from(&seed).or_else(|_| op.solve()).unwrap();
        let lanes = vec![
            (&ckt, Some(seed.clone())),
            (&ckt, None),
            (&ckt, Some(seed.clone())),
        ];
        let batch = BatchDcOp::new().solve_lockstep(&lanes);
        assert_bit_identical(batch[0].as_ref().unwrap(), &scalar);
        assert_bit_identical(batch[2].as_ref().unwrap(), &scalar);
        let cold = DcOp::new(&ckt).solve().unwrap();
        assert_bit_identical(batch[1].as_ref().unwrap(), &cold);
    }

    #[test]
    fn malformed_seed_falls_back_to_cold_solve() {
        let ckt = five_transistor_ota(20e-6);
        let cold = DcOp::new(&ckt).solve().unwrap();
        let lanes = vec![(&ckt, Some(DVec::zeros(2)))];
        let batch = BatchDcOp::new().solve_lockstep(&lanes);
        assert_bit_identical(batch[0].as_ref().unwrap(), &cold);
    }

    #[test]
    fn empty_batch_is_fine() {
        assert!(BatchDcOp::new().solve_lockstep(&[]).is_empty());
    }

    #[test]
    fn mixed_seed_lanes_match_their_scalar_solves() {
        let ckt = five_transistor_ota(20e-6);
        let base = DcOp::new(&ckt).solve().unwrap();
        let mk = |f: f64| DVec::from_fn(base.unknowns().len(), |i| base.unknowns()[i] * f);
        let seeds = [Some(mk(0.9)), Some(mk(1.0)), Some(mk(1.05)), None];
        let lanes: Vec<_> = seeds.iter().map(|s| (&ckt, s.clone())).collect();
        let batch = BatchDcOp::new().solve_lockstep(&lanes);
        let op = DcOp::new(&ckt);
        for (seed, got) in seeds.iter().zip(&batch) {
            let want = match seed {
                Some(s) => op.solve_from(s).or_else(|_| op.solve()).unwrap(),
                None => op.solve().unwrap(),
            };
            assert_bit_identical(got.as_ref().unwrap(), &want);
        }
    }
}
