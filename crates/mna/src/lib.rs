//! A from-scratch analog circuit simulator based on modified nodal analysis
//! (MNA), standing in for the Infineon TITAN simulator used in the DAC 2001
//! paper (see DESIGN.md §2 for the substitution argument).
//!
//! Capabilities:
//!
//! * [`Circuit`] — netlist builder: resistors, capacitors, independent
//!   voltage/current sources, controlled sources, and Level-1 MOSFETs with
//!   temperature dependence and per-instance statistical deviations,
//! * [`DcOp`] — DC operating point by damped Newton–Raphson with gmin
//!   stepping and source stepping fallbacks,
//! * [`AcSolver`] — small-signal AC analysis around the operating point
//!   (complex MNA), including Meyer-style MOSFET capacitances,
//! * [`Transient`] — fixed-step trapezoidal/backward-Euler transient with a
//!   Newton solve per time step,
//! * [`DcSweep`] — swept DC analyses.
//!
//! # Example — an RC low-pass filter
//!
//! ```
//! use specwise_mna::{AcSolver, Circuit, DcOp};
//!
//! # fn main() -> Result<(), specwise_mna::MnaError> {
//! let mut ckt = Circuit::new();
//! let vin = ckt.node("in");
//! let vout = ckt.node("out");
//! ckt.voltage_source("VIN", vin, Circuit::GROUND, 1.0)?;
//! ckt.set_ac("VIN", 1.0)?;
//! ckt.resistor("R1", vin, vout, 1.0e3)?;
//! ckt.capacitor("C1", vout, Circuit::GROUND, 1.0e-6)?;
//!
//! let op = DcOp::new(&ckt).solve()?;
//! assert!((op.voltage(vout) - 1.0).abs() < 1e-9);
//!
//! let ac = AcSolver::new(&ckt, &op);
//! let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1.0e3 * 1.0e-6);
//! let h = ac.solve(f3db)?.voltage(vout);
//! assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-6);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod ac;
mod batch;
mod dc;
mod error;
mod mosfet;
mod netlist;
mod parser;
mod sens;
mod solver;
mod sweep;
mod transient;

pub use ac::{AcSolution, AcSolver};
pub use batch::BatchDcOp;
pub use dc::{DcOp, DcSolution, MosOpInfo, NewtonOptions};
pub use error::MnaError;
pub use mosfet::{MosEval, MosPolarity, MosRegion, MosfetModel, MosfetParams};
pub use netlist::{Circuit, ElementId, NodeId, Stimulus};
pub use parser::{
    parse_deck, parse_deck_ast, parse_deck_ast_limited, DeckAst, DeckElement, DeckElementKind,
    DeckLimits, DeckValue, DesignDirective, MatchDirective, ParseDeckError, RangeDirective,
    SpecDirective, TbDirective,
};
pub use sens::DcSensitivity;
pub use solver::{
    clear_symbolic_cache, set_solver_override, symbolic_cache_len, uses_sparse, SolverChoice,
    SPARSE_AUTO_THRESHOLD,
};
pub use sweep::DcSweep;
pub use transient::{Integrator, Transient, TransientOptions, TransientResult, Waveform};
