//! Small-signal AC analysis: the circuit is linearized at a DC operating
//! point and the complex MNA system `(G + jωC)·x = b` is solved per
//! frequency.

use std::collections::HashMap;
use std::fmt;
use std::sync::{Arc, Mutex};

use specwise_linalg::{CMat, CVec, Complex64, DMat, DVec, SparseLu, SparseSymbolic};

use crate::dc::{eval_mosfet_at, stamp_system, DcSolution};
use crate::mosfet::MosRegion;
use crate::netlist::ElementKind;
use crate::solver::{self, Analysis};
use crate::{Circuit, MnaError, NodeId};

/// Phasor solution of one AC frequency point.
#[derive(Debug, Clone)]
pub struct AcSolution {
    x: CVec,
    branch_of: Arc<HashMap<String, usize>>,
    branch_base: usize,
    freq: f64,
}

impl AcSolution {
    /// Complex node voltage (phasor); ground reads 0.
    pub fn voltage(&self, n: NodeId) -> Complex64 {
        if n.is_ground() {
            Complex64::ZERO
        } else {
            self.x[n.index() - 1]
        }
    }

    /// Complex branch current of a voltage source or VCVS.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] when the name is not a branch element.
    pub fn branch_current(&self, name: &str) -> Result<Complex64, MnaError> {
        let branch = self.branch_of.get(name).ok_or_else(|| MnaError::NotFound {
            name: name.to_string(),
        })?;
        Ok(self.x[self.branch_base + branch])
    }

    /// The analysis frequency \[Hz\].
    pub fn frequency(&self) -> f64 {
        self.freq
    }

    /// Gain magnitude in dB of a node voltage (assuming unit stimulus).
    pub fn gain_db(&self, n: NodeId) -> f64 {
        20.0 * self.voltage(n).abs().log10()
    }

    /// Phase of a node voltage in degrees.
    pub fn phase_deg(&self, n: NodeId) -> f64 {
        self.voltage(n).arg().to_degrees()
    }

    /// The raw complex unknown vector (node voltages then branch currents).
    ///
    /// Adjoint sensitivity analysis consumes this as the forward solution
    /// `y` in the bilinear form `−λᵀ·ΔA·y`.
    pub fn unknowns(&self) -> &CVec {
        &self.x
    }
}

/// Small-signal AC solver bound to a circuit and its DC operating point.
///
/// The real conductance matrix `G` (the DC Jacobian at the operating point),
/// the capacitance matrix `C` (linear capacitors plus Meyer MOSFET
/// capacitances) and the stimulus vector are built once; each
/// [`AcSolver::solve`] then factors one complex system. On the sparse
/// backend the cached symbolic factorization of the circuit topology is
/// shared across every frequency point, and the numeric factorization of
/// one frequency refactors in place for the next; the dense backend reuses
/// one complex workspace instead of allocating `n²` per point.
pub struct AcSolver {
    g: DMat,
    c: DMat,
    b: DVec,
    branch_of: Arc<HashMap<String, usize>>,
    branch_base: usize,
    sparse: Option<AcSparse>,
    dense_ws: Mutex<DenseWs>,
}

/// Reused dense complex system (one allocation for all frequency points).
struct DenseWs {
    a: CMat,
    rhs: CVec,
}

impl DenseWs {
    fn fresh(n: usize) -> Self {
        DenseWs {
            a: CMat::zeros(n, n),
            rhs: CVec::zeros(n),
        }
    }
}

/// Sparse AC data: G and C gathered onto the cached AC sparsity pattern.
struct AcSparse {
    sym: Arc<SparseSymbolic>,
    gvals: Vec<f64>,
    cvals: Vec<f64>,
    state: Mutex<AcSparseState>,
}

/// Mutable per-solve state: complex values, warm factorization, buffers.
struct AcSparseState {
    zvals: Vec<Complex64>,
    lu: Option<SparseLu<Complex64>>,
    bbuf: Vec<Complex64>,
    xbuf: Vec<Complex64>,
    scratch: Vec<Complex64>,
}

impl AcSparseState {
    fn fresh(n: usize, nnz: usize) -> Self {
        AcSparseState {
            zvals: vec![Complex64::ZERO; nnz],
            lu: None,
            bbuf: vec![Complex64::ZERO; n],
            xbuf: vec![Complex64::ZERO; n],
            scratch: vec![Complex64::ZERO; n],
        }
    }
}

impl Clone for AcSolver {
    fn clone(&self) -> Self {
        let n = self.g.nrows();
        AcSolver {
            g: self.g.clone(),
            c: self.c.clone(),
            b: self.b.clone(),
            branch_of: Arc::clone(&self.branch_of),
            branch_base: self.branch_base,
            sparse: self.sparse.as_ref().map(|s| AcSparse {
                sym: Arc::clone(&s.sym),
                gvals: s.gvals.clone(),
                cvals: s.cvals.clone(),
                state: Mutex::new(AcSparseState::fresh(n, s.gvals.len())),
            }),
            dense_ws: Mutex::new(DenseWs::fresh(n)),
        }
    }
}

impl fmt::Debug for AcSolver {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("AcSolver")
            .field("n", &self.g.nrows())
            .field("sparse", &self.sparse.is_some())
            .finish_non_exhaustive()
    }
}

/// Stamps the small-signal conductance matrix `G` (the DC Jacobian at the
/// operating point, including the default gmin shunt), the capacitance
/// matrix `C` (linear capacitors plus Meyer MOSFET capacitances) and the
/// stimulus vector `b` from the netlist's AC magnitudes, all linearized at
/// the operating-point unknowns `x`.
fn stamp_gcb(circuit: &Circuit, x: &DVec) -> (DMat, DMat, DVec) {
    let n = circuit.num_unknowns();
    let mut g = DMat::zeros(n, n);
    let mut res = DVec::zeros(n);
    stamp_system(circuit, x, 1e-12, 1.0, None, &mut g, &mut res);

    let mut c = DMat::zeros(n, n);
    let stamp_cap = |c: &mut DMat, a: NodeId, b: NodeId, farads: f64, ckt: &Circuit| {
        let (ia, ib) = (ckt.node_unknown(a), ckt.node_unknown(b));
        if let Some(i) = ia {
            c[(i, i)] += farads;
        }
        if let Some(j) = ib {
            c[(j, j)] += farads;
        }
        if let (Some(i), Some(j)) = (ia, ib) {
            c[(i, j)] -= farads;
            c[(j, i)] -= farads;
        }
    };
    let mut b = DVec::zeros(n);

    for kind in circuit.kinds() {
        match kind {
            ElementKind::Capacitor { a, b: nb, farads } => {
                stamp_cap(&mut c, *a, *nb, *farads, circuit);
            }
            ElementKind::Mosfet {
                d,
                g: ng,
                s,
                b: nbk,
                params,
            } => {
                let (_, _, _, ev) = eval_mosfet_at(circuit, x, *d, *ng, *s, *nbk, params);
                let cov = params.model.cov * params.w;
                let cch = params.model.cox * params.w * params.l;
                let (cgs, cgd, cgb) = match ev.region {
                    MosRegion::Cutoff => (cov, cov, cch),
                    MosRegion::Triode => (cov + 0.5 * cch, cov + 0.5 * cch, 0.0),
                    MosRegion::Saturation => (cov + 2.0 / 3.0 * cch, cov, 0.0),
                };
                stamp_cap(&mut c, *ng, *s, cgs, circuit);
                stamp_cap(&mut c, *ng, *d, cgd, circuit);
                stamp_cap(&mut c, *ng, *nbk, cgb, circuit);
            }
            ElementKind::VoltageSource { ac, branch, .. } if *ac != 0.0 => {
                b[circuit.branch_unknown(*branch)] = *ac;
            }
            ElementKind::CurrentSource { p, n: nn, ac, .. } if *ac != 0.0 => {
                if let Some(i) = circuit.node_unknown(*p) {
                    b[i] -= ac;
                }
                if let Some(i) = circuit.node_unknown(*nn) {
                    b[i] += ac;
                }
            }
            _ => {}
        }
    }
    (g, c, b)
}

/// Assembles `G + jωC` onto the cached sparse pattern and factors it,
/// refactoring on the frozen pivot sequence of the previous frequency
/// point; falls back to a fresh factorization when the pivots go stale
/// (bit-identical results whenever both succeed). The caller stores the
/// returned factor back into `st.lu` after its solves.
fn factor_sparse(
    sp: &AcSparse,
    st: &mut AcSparseState,
    omega: f64,
) -> Result<SparseLu<Complex64>, MnaError> {
    for k in 0..sp.gvals.len() {
        st.zvals[k] = Complex64::new(sp.gvals[k], omega * sp.cvals[k]);
    }
    let refreshed = match st.lu.take() {
        Some(mut f) => match f.refactor(&sp.sym, &st.zvals) {
            Ok(()) => Some(f),
            Err(_) => None,
        },
        None => None,
    };
    match refreshed {
        Some(f) => Ok(f),
        None => SparseLu::factor(&sp.sym, &st.zvals)
            .map_err(|_| MnaError::SingularMatrix { analysis: "ac" }),
    }
}

impl AcSolver {
    /// Builds the AC system for `circuit` linearized at `op`.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to a circuit of the same size.
    pub fn new(circuit: &Circuit, op: &DcSolution) -> Self {
        let n = circuit.num_unknowns();
        assert_eq!(
            op.unknowns().len(),
            n,
            "operating point does not match circuit size"
        );

        let (g, c, b) = stamp_gcb(circuit, op.unknowns());

        let mut branch_of = HashMap::new();
        for (idx, kind) in circuit.kinds().iter().enumerate() {
            match kind {
                ElementKind::VoltageSource { branch, .. } | ElementKind::Vcvs { branch, .. } => {
                    branch_of.insert(
                        circuit.element_name(crate::ElementId(idx)).to_string(),
                        *branch,
                    );
                }
                _ => {}
            }
        }

        // Sparse backend: gather G and C onto the cached AC sparsity
        // pattern (a superset of both matrices' nonzeros — the pattern
        // includes every capacitance pair over all MOSFET regions).
        let sparse = if solver::uses_sparse(n) {
            let sym = solver::symbolic_for(circuit, Analysis::Ac);
            let pat = sym.pattern();
            let nnz = pat.nnz();
            let mut gvals = vec![0.0; nnz];
            let mut cvals = vec![0.0; nnz];
            for col in 0..n {
                let start = pat.col_range(col).start;
                for (off, &row) in pat.col(col).iter().enumerate() {
                    gvals[start + off] = g[(row, col)];
                    cvals[start + off] = c[(row, col)];
                }
            }
            Some(AcSparse {
                sym,
                gvals,
                cvals,
                state: Mutex::new(AcSparseState::fresh(n, nnz)),
            })
        } else {
            None
        };

        AcSolver {
            g,
            c,
            b,
            branch_of: Arc::new(branch_of),
            branch_base: circuit.num_nodes() - 1,
            sparse,
            dense_ws: Mutex::new(DenseWs::fresh(n)),
        }
    }

    /// Stamps only the small-signal matrices `(G, C)` of `circuit`
    /// linearized at `op` — no stimulus, no solver state. Adjoint
    /// sensitivity analysis uses this to assemble perturbed matrices for
    /// the bilinear form [`AcSolver::delta_bilinear`] without paying for a
    /// full solver build.
    ///
    /// # Panics
    ///
    /// Panics if `op` does not belong to a circuit of the same size.
    pub fn small_signal_matrices(circuit: &Circuit, op: &DcSolution) -> (DMat, DMat) {
        assert_eq!(
            op.unknowns().len(),
            circuit.num_unknowns(),
            "operating point does not match circuit size"
        );
        let (g, c, _) = stamp_gcb(circuit, op.unknowns());
        (g, c)
    }

    /// Builds a stimulus vector from `(voltage-source name, AC magnitude)`
    /// pairs, equivalent to cloning the circuit, clearing every AC
    /// magnitude and calling `set_ac` per source — without the clone or the
    /// solver rebuild.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] when a name is not a branch element
    /// (voltage source or VCVS).
    pub fn drive(&self, sources: &[(&str, f64)]) -> Result<DVec, MnaError> {
        let mut b = DVec::zeros(self.g.nrows());
        for (name, mag) in sources {
            let branch = self
                .branch_of
                .get(*name)
                .ok_or_else(|| MnaError::NotFound {
                    name: (*name).to_string(),
                })?;
            b[self.branch_base + branch] = *mag;
        }
        Ok(b)
    }

    /// Solves the complex system at frequency `freq` \[Hz\].
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidRequest`] for negative or non-finite
    /// frequency and [`MnaError::SingularMatrix`] when the complex MNA
    /// matrix cannot be factored.
    pub fn solve(&self, freq: f64) -> Result<AcSolution, MnaError> {
        self.solve_driven(freq, &self.b)
    }

    /// Solves the complex system at `freq` against an explicit stimulus
    /// vector (see [`AcSolver::drive`]). The system matrix `G + jωC` does
    /// not depend on the stimulus, so differential-mode, common-mode and
    /// supply drives share one factorization per frequency point instead
    /// of rebuilding a solver per drive.
    ///
    /// # Errors
    ///
    /// As [`AcSolver::solve`], plus [`MnaError::InvalidRequest`] when `b`
    /// has the wrong length.
    pub fn solve_driven(&self, freq: f64, b: &DVec) -> Result<AcSolution, MnaError> {
        if !freq.is_finite() || freq < 0.0 {
            return Err(MnaError::InvalidRequest {
                reason: "frequency must be finite and >= 0",
            });
        }
        let n = self.g.nrows();
        if b.len() != n {
            return Err(MnaError::InvalidRequest {
                reason: "stimulus vector length does not match system size",
            });
        }
        let omega = 2.0 * std::f64::consts::PI * freq;
        let x = if let Some(sp) = &self.sparse {
            let mut guard = sp.state.lock().expect("ac sparse state poisoned");
            let st = &mut *guard;
            let f = factor_sparse(sp, st, omega)?;
            for i in 0..n {
                st.bbuf[i] = Complex64::from_real(b[i]);
            }
            f.solve_slice(&st.bbuf, &mut st.xbuf, &mut st.scratch)?;
            st.lu = Some(f);
            CVec::from_slice(&st.xbuf)
        } else {
            let mut ws = self.dense_ws.lock().expect("ac dense workspace poisoned");
            for i in 0..n {
                for j in 0..n {
                    ws.a[(i, j)] = Complex64::new(self.g[(i, j)], omega * self.c[(i, j)]);
                }
            }
            for i in 0..n {
                ws.rhs[i] = Complex64::from_real(b[i]);
            }
            ws.a.lu()
                .map_err(|_| MnaError::SingularMatrix { analysis: "ac" })?
                .solve(&ws.rhs)?
        };
        Ok(AcSolution {
            x,
            branch_of: Arc::clone(&self.branch_of),
            branch_base: self.branch_base,
            freq,
        })
    }

    /// Solves the transposed system `(G + jωC)ᵀ·λ = rhs` on the same
    /// factors as the forward solve — the adjoint solve of sensitivity
    /// analysis. One factorization serves both directions, so a margin
    /// gradient costs one extra triangular solve per output instead of a
    /// full simulation per parameter.
    ///
    /// # Errors
    ///
    /// As [`AcSolver::solve_driven`].
    pub fn solve_adjoint(&self, freq: f64, rhs: &CVec) -> Result<CVec, MnaError> {
        if !freq.is_finite() || freq < 0.0 {
            return Err(MnaError::InvalidRequest {
                reason: "frequency must be finite and >= 0",
            });
        }
        let n = self.g.nrows();
        if rhs.len() != n {
            return Err(MnaError::InvalidRequest {
                reason: "adjoint rhs length does not match system size",
            });
        }
        let omega = 2.0 * std::f64::consts::PI * freq;
        if let Some(sp) = &self.sparse {
            let mut guard = sp.state.lock().expect("ac sparse state poisoned");
            let st = &mut *guard;
            let f = factor_sparse(sp, st, omega)?;
            st.bbuf.copy_from_slice(rhs.as_slice());
            f.solve_transposed_slice(&st.bbuf, &mut st.xbuf, &mut st.scratch)?;
            st.lu = Some(f);
            Ok(CVec::from_slice(&st.xbuf))
        } else {
            let mut ws = self.dense_ws.lock().expect("ac dense workspace poisoned");
            for i in 0..n {
                for j in 0..n {
                    ws.a[(i, j)] = Complex64::new(self.g[(i, j)], omega * self.c[(i, j)]);
                }
            }
            let lu =
                ws.a.lu()
                    .map_err(|_| MnaError::SingularMatrix { analysis: "ac" })?;
            Ok(lu.solve_transposed(rhs)?)
        }
    }

    /// Evaluates the first-order transfer-function perturbation
    /// `λᵀ·ΔA·y` with `ΔA = (G′ − G) + jω(C′ − C)`, where `(G′, C′)` are
    /// perturbed small-signal matrices (see
    /// [`AcSolver::small_signal_matrices`]), `λ` is an adjoint solution and
    /// `y` a forward solution. The delta is formed entry-wise before the
    /// products so nearly-identical matrices do not cancel catastrophically.
    pub fn delta_bilinear(
        &self,
        gp: &DMat,
        cp: &DMat,
        freq: f64,
        lambda: &CVec,
        y: &CVec,
    ) -> Complex64 {
        let omega = 2.0 * std::f64::consts::PI * freq;
        let n = self.g.nrows();
        let mut acc = Complex64::ZERO;
        for i in 0..n {
            let li = lambda[i];
            if li == Complex64::ZERO {
                continue;
            }
            let mut row = Complex64::ZERO;
            for j in 0..n {
                let dg = gp[(i, j)] - self.g[(i, j)];
                let dc = cp[(i, j)] - self.c[(i, j)];
                if dg != 0.0 || dc != 0.0 {
                    row += Complex64::new(dg, omega * dc) * y[j];
                }
            }
            acc += li * row;
        }
        acc
    }

    /// Evaluates `λᵀ·C·y` — the frequency-derivative bilinear form:
    /// `∂H/∂f = −j2π·λᵀ·C·y` at the evaluation frequency of `λ` and `y`.
    pub fn cap_bilinear(&self, lambda: &CVec, y: &CVec) -> Complex64 {
        let n = self.g.nrows();
        let mut acc = Complex64::ZERO;
        for i in 0..n {
            let li = lambda[i];
            if li == Complex64::ZERO {
                continue;
            }
            let mut row = Complex64::ZERO;
            for j in 0..n {
                let cij = self.c[(i, j)];
                if cij != 0.0 {
                    row += y[j] * cij;
                }
            }
            acc += li * row;
        }
        acc
    }

    /// Solves a list of frequencies.
    ///
    /// # Errors
    ///
    /// Propagates the first per-point error.
    pub fn solve_many(&self, freqs: &[f64]) -> Result<Vec<AcSolution>, MnaError> {
        freqs.iter().map(|&f| self.solve(f)).collect()
    }

    /// Finds the frequency where the magnitude of the node voltage crosses
    /// `target` (e.g. 1.0 for the unity-gain frequency), by decade scan
    /// followed by bisection on `log f`.
    ///
    /// Returns `None` when the magnitude never crosses the target within
    /// `[f_lo, f_hi]`.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn find_crossing(
        &self,
        node: NodeId,
        target: f64,
        f_lo: f64,
        f_hi: f64,
    ) -> Result<Option<f64>, MnaError> {
        self.find_crossing_driven(node, target, f_lo, f_hi, &self.b)
    }

    /// [`AcSolver::find_crossing`] against an explicit stimulus vector
    /// (see [`AcSolver::drive`]), sharing this solver's factorization
    /// state across drives.
    ///
    /// # Errors
    ///
    /// Propagates solver errors.
    pub fn find_crossing_driven(
        &self,
        node: NodeId,
        target: f64,
        f_lo: f64,
        f_hi: f64,
        b: &DVec,
    ) -> Result<Option<f64>, MnaError> {
        if !(f_lo > 0.0) || !(f_hi > f_lo) {
            return Err(MnaError::InvalidRequest {
                reason: "need 0 < f_lo < f_hi",
            });
        }
        let mag = |s: &AcSolution| s.voltage(node).abs();
        let mut prev_f = f_lo;
        let mut prev_m = mag(&self.solve_driven(f_lo, b)?);
        if prev_m < target {
            return Ok(None); // already below target at the low end
        }
        // Scan upward in fractional decades until the magnitude drops below
        // the target.
        let steps_per_decade = 4.0;
        let ratio = 10f64.powf(1.0 / steps_per_decade);
        let mut f = f_lo * ratio;
        let mut bracket = None;
        while f <= f_hi * (1.0 + 1e-12) {
            let m = mag(&self.solve_driven(f, b)?);
            if m < target {
                bracket = Some((prev_f, f));
                break;
            }
            prev_f = f;
            prev_m = m;
            f *= ratio;
        }
        let _ = prev_m;
        let (mut lo, mut hi) = match bracket {
            Some(b) => b,
            None => return Ok(None),
        };
        // Bisection on log-frequency.
        for _ in 0..80 {
            let mid = (lo * hi).sqrt();
            let m = mag(&self.solve_driven(mid, b)?);
            if m >= target {
                lo = mid;
            } else {
                hi = mid;
            }
            if hi / lo < 1.0 + 1e-12 {
                break;
            }
        }
        Ok(Some((lo * hi).sqrt()))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcOp, MosfetModel, MosfetParams};

    fn rc_lowpass() -> (Circuit, NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_ac("VIN", 1.0).unwrap();
        ckt.resistor("R1", vin, vout, 1e3).unwrap();
        ckt.capacitor("C1", vout, Circuit::GROUND, 1e-9).unwrap();
        (ckt, vout)
    }

    #[test]
    fn rc_pole_frequency() {
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let h = ac.solve(f3db).unwrap().voltage(vout);
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
        assert!((h.arg().to_degrees() + 45.0).abs() < 1e-6);
        // Low-frequency gain ~ 1, 20 dB/dec rolloff far above the pole.
        let lo = ac.solve(1.0).unwrap().voltage(vout).abs();
        assert!((lo - 1.0).abs() < 1e-6);
        let m1 = ac.solve(100.0 * f3db).unwrap().voltage(vout).abs();
        let m2 = ac.solve(1000.0 * f3db).unwrap().voltage(vout).abs();
        assert!((m1 / m2 - 10.0).abs() < 0.1);
    }

    #[test]
    fn dc_frequency_allowed() {
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let h = ac.solve(0.0).unwrap().voltage(vout);
        assert!((h.abs() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn negative_frequency_rejected() {
        let (ckt, _) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        assert!(matches!(
            ac.solve(-1.0),
            Err(MnaError::InvalidRequest { .. })
        ));
    }

    #[test]
    fn find_crossing_locates_unity_gain() {
        // Integrator-like: gain 100 at DC, single pole; crossing where |H|=1.
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let vout = ckt.node("out");
        ckt.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.set_ac("VIN", 1.0).unwrap();
        // VCCS driving an RC load: H(0) = gm·R = 100.
        ckt.vccs("G1", vout, Circuit::GROUND, Circuit::GROUND, vin, 1e-3)
            .unwrap();
        ckt.resistor("RL", vout, Circuit::GROUND, 100e3).unwrap();
        ckt.capacitor("CL", vout, Circuit::GROUND, 1e-9).unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        // (tolerance accounts for the 1e-12 S gmin shunt at the output node)
        assert!((ac.solve(0.0).unwrap().voltage(vout).abs() - 100.0).abs() < 1e-3);
        let fu = ac.find_crossing(vout, 1.0, 1.0, 1e12).unwrap().unwrap();
        // Analytic: |H| = 100/√(1+(2πf RC)²) = 1 → 2πf RC = √9999.
        let fexp = (9999.0f64).sqrt() / (2.0 * std::f64::consts::PI * 100e3 * 1e-9);
        assert!((fu / fexp - 1.0).abs() < 1e-3, "fu={fu} expected {fexp}");
    }

    #[test]
    fn find_crossing_none_when_below_target() {
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        // Max gain is 1; never crosses 2.
        assert!(ac.find_crossing(vout, 2.0, 1.0, 1e9).unwrap().is_none());
    }

    #[test]
    fn common_source_amplifier_gain_and_rolloff() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)
            .unwrap();
        ckt.set_ac("VG", 1.0).unwrap();
        ckt.resistor("RD", vdd, out, 20e3).unwrap();
        ckt.capacitor("CL", out, Circuit::GROUND, 1e-12).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap().clone();
        let ac = AcSolver::new(&ckt, &op);
        let h0 = ac.solve(0.0).unwrap().voltage(out);
        // Common source: Av ≈ −gm·(RD ∥ 1/gds); phase ≈ 180°.
        let rd_eff = 1.0 / (1.0 / 20e3 + m.gds);
        let av = m.gm * rd_eff;
        assert!(h0.re < 0.0, "inverting stage");
        assert!(
            (h0.abs() / av - 1.0).abs() < 0.05,
            "|H|={} vs {av}",
            h0.abs()
        );
        // Gain must fall at high frequency (CL + device caps).
        let hf = ac.solve(10e9).unwrap().voltage(out).abs();
        assert!(hf < h0.abs());
    }

    #[test]
    fn driven_solve_is_bit_identical_to_rebuilt_solver() {
        // The clone + clear_ac + set_ac + AcSolver::new path must give the
        // same bits as drive() + solve_driven() on the shared solver — the
        // system matrix does not depend on the stimulus magnitudes.
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let shared = AcSolver::new(&ckt, &op);
        let b_half = shared.drive(&[("VIN", 0.5)]).unwrap();

        let mut ckt2 = ckt.clone();
        ckt2.clear_ac();
        ckt2.set_ac("VIN", 0.5).unwrap();
        let rebuilt = AcSolver::new(&ckt2, &op);

        for f in [0.0, 10.0, 159154.9, 1e8] {
            let a = shared.solve_driven(f, &b_half).unwrap().voltage(vout);
            let want = rebuilt.solve(f).unwrap().voltage(vout);
            assert_eq!(a.re.to_bits(), want.re.to_bits(), "f={f}");
            assert_eq!(a.im.to_bits(), want.im.to_bits(), "f={f}");
        }
    }

    #[test]
    fn adjoint_gain_identity() {
        // With Aᵀλ = e_out, the gain is h = e_outᵀ·x = λᵀ·b.
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let n = ckt.num_unknowns();
        for f in [0.0, 1e3, 159154.9, 1e7] {
            let h = ac.solve(f).unwrap().voltage(vout);
            let mut e_out = CVec::zeros(n);
            e_out[vout.index() - 1] = Complex64::ONE;
            let lambda = ac.solve_adjoint(f, &e_out).unwrap();
            let mut h_adj = Complex64::ZERO;
            for i in 0..n {
                h_adj += lambda[i] * Complex64::from_real(ac.b[i]);
            }
            assert!((h_adj - h).abs() <= 1e-12 * h.abs().max(1.0), "f={f}");
        }
    }

    #[test]
    fn delta_bilinear_predicts_perturbed_gain_first_order() {
        // Perturb R by 0.1%: ΔH ≈ −λᵀ·ΔA·y must match the recomputed gain
        // to first order (error O(‖ΔA‖²) ≈ 1e-6 relative).
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let n = ckt.num_unknowns();

        let mut pert = Circuit::new();
        let vin = pert.node("in");
        let vo = pert.node("out");
        pert.voltage_source("VIN", vin, Circuit::GROUND, 0.0)
            .unwrap();
        pert.set_ac("VIN", 1.0).unwrap();
        pert.resistor("R1", vin, vo, 1e3 * 1.001).unwrap();
        pert.capacitor("C1", vo, Circuit::GROUND, 1e-9).unwrap();
        let op_p = DcOp::new(&pert).solve().unwrap();
        let (gp, cp) = AcSolver::small_signal_matrices(&pert, &op_p);
        let exact = AcSolver::new(&pert, &op_p);

        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        for f in [f3db, 10.0 * f3db] {
            let sol = ac.solve(f).unwrap();
            let h = sol.voltage(vout);
            let mut e_out = CVec::zeros(n);
            e_out[vout.index() - 1] = Complex64::ONE;
            let lambda = ac.solve_adjoint(f, &e_out).unwrap();
            let dh = -(ac.delta_bilinear(&gp, &cp, f, &lambda, sol.unknowns()));
            let h_exact = exact.solve(f).unwrap().voltage(vout);
            let err = ((h + dh) - h_exact).abs();
            assert!(err < 1e-5 * h.abs(), "f={f} err={err}");
        }
    }

    #[test]
    fn cap_bilinear_matches_frequency_derivative() {
        // ∂H/∂f = −j2π·λᵀ·C·y, checked against a central difference.
        let (ckt, vout) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let n = ckt.num_unknowns();
        let f0 = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let sol = ac.solve(f0).unwrap();
        let mut e_out = CVec::zeros(n);
        e_out[vout.index() - 1] = Complex64::ONE;
        let lambda = ac.solve_adjoint(f0, &e_out).unwrap();
        let dhdf = -(Complex64::I * (2.0 * std::f64::consts::PI))
            * ac.cap_bilinear(&lambda, sol.unknowns());
        let df = f0 * 1e-6;
        let hp = ac.solve(f0 + df).unwrap().voltage(vout);
        let hm = ac.solve(f0 - df).unwrap().voltage(vout);
        let fd = (hp - hm) * (1.0 / (2.0 * df));
        assert!(
            (dhdf - fd).abs() < 1e-6 * fd.abs(),
            "dhdf={dhdf:?} fd={fd:?}"
        );
    }

    #[test]
    fn drive_rejects_unknown_source() {
        let (ckt, _) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        assert!(matches!(
            ac.drive(&[("NOPE", 1.0)]),
            Err(MnaError::NotFound { .. })
        ));
    }

    #[test]
    fn branch_current_through_source() {
        let (ckt, _) = rc_lowpass();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-9);
        let i = ac.solve(f3db).unwrap().branch_current("VIN").unwrap();
        // |I| = |V| / |Z|, Z = R + 1/(jωC) with |Z| = √2·R at the pole.
        let want = 1.0 / (2f64.sqrt() * 1e3);
        assert!((i.abs() / want - 1.0).abs() < 1e-9);
    }
}
