//! Solver-backend selection and the shared Newton linear-system workspace.
//!
//! Every analysis (DC, transient, AC) assembles the same MNA Jacobian
//! structure over and over: per Newton iteration, per homotopy step, per
//! time step, per frequency, per sweep point, per Monte-Carlo sample. This
//! module provides the machinery that makes the repeat work cheap:
//!
//! * [`Stamper`] — the assembly target abstraction. Element stamps write
//!   through `add(r, c, v)`, which lands either in a dense [`DMat`] or in a
//!   flat sparse value array through a precomputed CSC index map (no
//!   hashing, no allocation per iteration).
//! * a process-wide **symbolic cache**: the sparsity pattern and
//!   fill-reducing ordering of a circuit topology are computed once, keyed
//!   by an exact structural key (element kinds + node wiring — values
//!   excluded), and shared by every subsequent solve of any circuit with
//!   that topology. MC/IS sampling re-evaluates one topology thousands of
//!   times, so the hit rate is essentially 100% after the first sample.
//! * [`SystemSolver`] — the per-analysis workspace holding the assembly
//!   buffer and the numeric factorization. The sparse backend keeps its
//!   [`SparseLu`] alive across Newton iterations and refactors in place
//!   (`O(flops)`, no symbolic work); the dense backend zeroes its matrix in
//!   place instead of reallocating.
//!
//! Backend choice: the env knob `SPECWISE_SOLVER=dense|sparse|auto`
//! (default `auto`: sparse for systems with at least
//! [`SPARSE_AUTO_THRESHOLD`] unknowns), overridable at runtime with
//! [`set_solver_override`] for benches and parity tests. The dense path is
//! bit-identical to the historical implementation.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use specwise_linalg::{DMat, DVec, SparseLu, SparsePattern, SparseSymbolic};

use crate::dc::stamp_system;
use crate::netlist::ElementKind;
use crate::{Circuit, MnaError};

/// Linear-solver backend requested for MNA systems.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SolverChoice {
    /// Pick per system size: sparse at or above [`SPARSE_AUTO_THRESHOLD`]
    /// unknowns, dense below.
    Auto,
    /// Always dense (the historical bit-exact path).
    Dense,
    /// Always sparse.
    Sparse,
}

/// Systems with at least this many unknowns use the sparse backend under
/// [`SolverChoice::Auto`]. Below it the dense kernel is faster (and keeps
/// tiny unit-test circuits on the historical bit-exact path).
pub const SPARSE_AUTO_THRESHOLD: usize = 8;

/// 0 = no override (env / auto), 1 = auto, 2 = dense, 3 = sparse.
static SOLVER_OVERRIDE: AtomicU8 = AtomicU8::new(0);

/// Overrides the backend choice process-wide, taking precedence over the
/// `SPECWISE_SOLVER` environment variable. `None` restores env/auto
/// behaviour. Intended for benches and parity tests.
pub fn set_solver_override(choice: Option<SolverChoice>) {
    let v = match choice {
        None => 0,
        Some(SolverChoice::Auto) => 1,
        Some(SolverChoice::Dense) => 2,
        Some(SolverChoice::Sparse) => 3,
    };
    SOLVER_OVERRIDE.store(v, Ordering::SeqCst);
}

fn env_choice() -> SolverChoice {
    match std::env::var("SPECWISE_SOLVER") {
        Ok(s) => match s.trim().to_ascii_lowercase().as_str() {
            "dense" => SolverChoice::Dense,
            "sparse" => SolverChoice::Sparse,
            _ => SolverChoice::Auto,
        },
        Err(_) => SolverChoice::Auto,
    }
}

/// Whether a system of `n` unknowns uses the sparse backend under the
/// current override/env/auto policy.
pub fn uses_sparse(n: usize) -> bool {
    let choice = match SOLVER_OVERRIDE.load(Ordering::SeqCst) {
        1 => SolverChoice::Auto,
        2 => SolverChoice::Dense,
        3 => SolverChoice::Sparse,
        _ => env_choice(),
    };
    match choice {
        SolverChoice::Dense => false,
        SolverChoice::Sparse => true,
        SolverChoice::Auto => n >= SPARSE_AUTO_THRESHOLD,
    }
}

/// Which analysis a sparsity pattern serves. Transient and AC patterns are
/// supersets of the DC pattern: they union in the capacitor companion /
/// Meyer-capacitance node pairs (over *all* MOSFET regions, so the pattern
/// stays independent of the operating point).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) enum Analysis {
    Dc,
    Tran,
    Ac,
}

/// Assembly target of [`stamp_system`]: dense matrix, sparse value array,
/// or pattern collector.
pub(crate) trait Stamper {
    /// Zeroes the assembly buffer in place (no reallocation).
    fn clear(&mut self);
    /// Adds `v` at `(r, c)`.
    fn add(&mut self, r: usize, c: usize, v: f64);
}

impl Stamper for DMat {
    fn clear(&mut self) {
        self.fill(0.0);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        self[(r, c)] += v;
    }
}

/// Records the set of stamped coordinates (symbolic-analysis pass).
pub(crate) struct PatternCollector {
    pub entries: Vec<(usize, usize)>,
}

impl Stamper for PatternCollector {
    fn clear(&mut self) {
        self.entries.clear();
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, _v: f64) {
        self.entries.push((r, c));
    }
}

/// Sparse assembly buffer: values laid out per the cached pattern.
pub(crate) struct SparseWork {
    sym: Arc<SparseSymbolic>,
    pub vals: Vec<f64>,
}

impl SparseWork {
    pub(crate) fn new(sym: Arc<SparseSymbolic>) -> Self {
        let nnz = sym.pattern().nnz();
        SparseWork {
            sym,
            vals: vec![0.0; nnz],
        }
    }

    pub(crate) fn symbolic(&self) -> &Arc<SparseSymbolic> {
        &self.sym
    }
}

impl Stamper for SparseWork {
    fn clear(&mut self) {
        self.vals.fill(0.0);
    }
    #[inline]
    fn add(&mut self, r: usize, c: usize, v: f64) {
        let idx = self
            .sym
            .pattern()
            .index_of(r, c)
            .expect("stamp lands outside the precomputed sparsity pattern");
        self.vals[idx] += v;
    }
}

// ---------------------------------------------------------------------------
// Symbolic cache
// ---------------------------------------------------------------------------

type SymbolicKey = (Vec<u64>, u8);

fn cache() -> &'static Mutex<HashMap<SymbolicKey, Arc<SparseSymbolic>>> {
    static CACHE: OnceLock<Mutex<HashMap<SymbolicKey, Arc<SparseSymbolic>>>> = OnceLock::new();
    CACHE.get_or_init(|| Mutex::new(HashMap::new()))
}

/// Drops every cached symbolic factorization (test/bench hook; the cache
/// repopulates transparently on the next sparse solve).
pub fn clear_symbolic_cache() {
    cache().lock().expect("symbolic cache poisoned").clear();
}

/// Number of distinct (topology, analysis) entries currently cached.
pub fn symbolic_cache_len() -> usize {
    cache().lock().expect("symbolic cache poisoned").len()
}

/// Adds the node pairs of a two-terminal capacitance to the pattern
/// (the same four stamps `stamp_cap`/companion models produce).
fn push_cap_pairs(
    entries: &mut Vec<(usize, usize)>,
    ckt: &Circuit,
    a: crate::NodeId,
    b: crate::NodeId,
) {
    let (ia, ib) = (ckt.node_unknown(a), ckt.node_unknown(b));
    if let Some(i) = ia {
        entries.push((i, i));
    }
    if let Some(j) = ib {
        entries.push((j, j));
    }
    if let (Some(i), Some(j)) = (ia, ib) {
        entries.push((i, j));
        entries.push((j, i));
    }
}

/// Builds the analysis pattern of a circuit: one structural stamping pass at
/// `x = 0` (stamp coordinates are value-independent — the MOSFET
/// drain/source swap permutes stamp order but not the coordinate set), plus
/// the capacitance pairs for transient/AC.
fn build_pattern(ckt: &Circuit, analysis: Analysis) -> SparsePattern {
    let n = ckt.num_unknowns();
    let mut collector = PatternCollector {
        entries: Vec::new(),
    };
    let x = DVec::zeros(n);
    let mut res = DVec::zeros(n);
    stamp_system(ckt, &x, 1.0, 1.0, None, &mut collector, &mut res);
    let mut entries = collector.entries;
    if analysis != Analysis::Dc {
        for kind in ckt.kinds() {
            match kind {
                ElementKind::Capacitor { a, b, .. } => push_cap_pairs(&mut entries, ckt, *a, *b),
                ElementKind::Mosfet { d, g, s, b, .. } => {
                    for (na, nb) in [(*g, *s), (*g, *d), (*g, *b)] {
                        push_cap_pairs(&mut entries, ckt, na, nb);
                    }
                }
                _ => {}
            }
        }
    }
    SparsePattern::from_entries(n, &entries).expect("circuit with unknowns has a pattern")
}

/// Returns the shared symbolic factorization for a circuit topology,
/// computing and caching it on first sight.
pub(crate) fn symbolic_for(ckt: &Circuit, analysis: Analysis) -> Arc<SparseSymbolic> {
    let tag = match analysis {
        Analysis::Dc => 0u8,
        Analysis::Tran => 1,
        Analysis::Ac => 2,
    };
    let key = (ckt.structure_key(), tag);
    if let Some(hit) = cache().lock().expect("symbolic cache poisoned").get(&key) {
        return Arc::clone(hit);
    }
    let sym = Arc::new(SparseSymbolic::new(build_pattern(ckt, analysis)));
    Arc::clone(
        cache()
            .lock()
            .expect("symbolic cache poisoned")
            .entry(key)
            .or_insert(sym),
    )
}

// ---------------------------------------------------------------------------
// Newton system workspace
// ---------------------------------------------------------------------------

// One long-lived instance per analysis run; the variant size gap is
// irrelevant next to the heap buffers both variants own.
#[allow(clippy::large_enum_variant)]
enum Backend {
    Dense {
        jac: DMat,
    },
    Sparse {
        work: SparseWork,
        lu: Option<SparseLu<f64>>,
        bbuf: Vec<f64>,
        xbuf: Vec<f64>,
        scratch: Vec<f64>,
    },
}

/// Reusable linear-system workspace of one Newton-based analysis.
///
/// Created once per analysis run; the assembly buffer and (for the sparse
/// backend) the numeric factorization survive across Newton iterations,
/// homotopy stages, and time steps.
pub(crate) struct SystemSolver {
    n: usize,
    backend: Backend,
}

impl SystemSolver {
    pub(crate) fn new(ckt: &Circuit, analysis: Analysis) -> Self {
        let n = ckt.num_unknowns();
        let backend = if uses_sparse(n) {
            Backend::Sparse {
                work: SparseWork::new(symbolic_for(ckt, analysis)),
                lu: None,
                bbuf: vec![0.0; n],
                xbuf: vec![0.0; n],
                scratch: vec![0.0; n],
            }
        } else {
            Backend::Dense {
                jac: DMat::zeros(n, n),
            }
        };
        SystemSolver { n, backend }
    }

    /// Whether this workspace runs the sparse backend.
    #[allow(dead_code)]
    pub(crate) fn is_sparse(&self) -> bool {
        matches!(self.backend, Backend::Sparse { .. })
    }

    /// The assembly target for [`stamp_system`] and companion stamps.
    pub(crate) fn stamper(&mut self) -> &mut dyn Stamper {
        match &mut self.backend {
            Backend::Dense { jac } => jac,
            Backend::Sparse { work, .. } => work,
        }
    }

    /// True when every assembled Jacobian entry is finite.
    pub(crate) fn is_finite(&self) -> bool {
        match &self.backend {
            Backend::Dense { jac } => jac.is_finite(),
            Backend::Sparse { work, .. } => work.vals.iter().all(|v| v.is_finite()),
        }
    }

    /// Factors the assembled Jacobian and solves `J·delta = −res`.
    ///
    /// The sparse backend refactors in place on the frozen pivot sequence,
    /// falling back to a fresh (re-pivoting) factorization when the frozen
    /// pivots go numerically stale — the two produce bit-identical results
    /// whenever both succeed, so the fallback is purely a robustness path.
    pub(crate) fn factor_solve(
        &mut self,
        res: &DVec,
        analysis: &'static str,
    ) -> Result<DVec, MnaError> {
        match &mut self.backend {
            Backend::Dense { jac } => {
                let lu = jac
                    .lu()
                    .map_err(|_| MnaError::SingularMatrix { analysis })?;
                Ok(lu.solve(&(-res))?)
            }
            Backend::Sparse {
                work,
                lu,
                bbuf,
                xbuf,
                scratch,
            } => {
                let refreshed = match lu.take() {
                    Some(mut f) => match f.refactor(work.symbolic(), &work.vals) {
                        Ok(()) => Some(f),
                        Err(_) => None,
                    },
                    None => None,
                };
                let f = match refreshed {
                    Some(f) => f,
                    None => SparseLu::factor(work.symbolic(), &work.vals)
                        .map_err(|_| MnaError::SingularMatrix { analysis })?,
                };
                for i in 0..self.n {
                    bbuf[i] = -res[i];
                }
                f.solve_slice(bbuf, xbuf, scratch)?;
                *lu = Some(f);
                Ok(DVec::from_slice(xbuf))
            }
        }
    }
}
