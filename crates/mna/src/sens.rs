//! Semi-analytic DC sensitivity on the cached operating-point Jacobian.
//!
//! At a converged DC operating point `x` the Newton Jacobian `J = ∂F/∂x`
//! is factored once. A perturbed circuit of identical topology (shifted
//! device geometry, threshold, bias, …) is then re-solved with one
//! frozen-Jacobian Newton step
//!
//! ```text
//! x′ = x − J⁻¹ · F_perturbed(x)
//! ```
//!
//! — a single residual stamp plus one pair of triangular solves instead of
//! a full Newton run. For a linear circuit the step is exact; for the
//! MOSFET decks the error is second order in the perturbation, which is
//! the same order as the finite-difference truncation error the adjoint
//! gradient path replaces.

use specwise_linalg::{DMat, DVec, Lu, SparseLu};

use crate::dc::{residual_at, stamp_system, DcOp, DcSolution};
use crate::solver::{self, Analysis, SparseWork};
use crate::{Circuit, MnaError};

/// Shunt conductance used for the sensitivity Jacobian and residuals —
/// the same gmin the final homotopy stage of the DC solver converged with,
/// so `F(x) ≈ 0` at the base point.
const SENS_GMIN: f64 = 1e-12;

/// The factored base Jacobian (dense or sparse per [`solver::uses_sparse`]).
enum SensFactor {
    Dense(Lu),
    Sparse(Box<SparseLu<f64>>),
}

/// Factored DC operating-point Jacobian for semi-analytic re-solves of
/// perturbed circuits (see the module docs).
pub struct DcSensitivity {
    x: DVec,
    factor: SensFactor,
}

impl std::fmt::Debug for DcSensitivity {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("DcSensitivity")
            .field("n", &self.x.len())
            .field("sparse", &matches!(self.factor, SensFactor::Sparse(_)))
            .finish_non_exhaustive()
    }
}

impl DcSensitivity {
    /// Stamps and factors the Jacobian of `circuit` at the converged
    /// operating point `op`.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidRequest`] on a size mismatch and
    /// [`MnaError::SingularMatrix`] when the Jacobian cannot be factored
    /// (callers fall back to finite differences).
    pub fn new(circuit: &Circuit, op: &DcSolution) -> Result<Self, MnaError> {
        let n = circuit.num_unknowns();
        if op.unknowns().len() != n {
            return Err(MnaError::InvalidRequest {
                reason: "operating point does not match circuit size",
            });
        }
        let mut res = DVec::zeros(n);
        let factor = if solver::uses_sparse(n) {
            let mut work = SparseWork::new(solver::symbolic_for(circuit, Analysis::Dc));
            stamp_system(
                circuit,
                op.unknowns(),
                SENS_GMIN,
                1.0,
                None,
                &mut work,
                &mut res,
            );
            let f = SparseLu::factor(work.symbolic(), &work.vals).map_err(|_| {
                MnaError::SingularMatrix {
                    analysis: "dc sensitivity",
                }
            })?;
            SensFactor::Sparse(Box::new(f))
        } else {
            let mut jac = DMat::zeros(n, n);
            stamp_system(
                circuit,
                op.unknowns(),
                SENS_GMIN,
                1.0,
                None,
                &mut jac,
                &mut res,
            );
            SensFactor::Dense(jac.lu().map_err(|_| MnaError::SingularMatrix {
                analysis: "dc sensitivity",
            })?)
        };
        Ok(DcSensitivity {
            x: op.unknowns().clone(),
            factor,
        })
    }

    /// The base operating-point unknowns the Jacobian was factored at.
    pub fn base_unknowns(&self) -> &DVec {
        &self.x
    }

    /// Solves the operating point of a perturbed circuit of identical
    /// topology with one frozen-Jacobian Newton step (see module docs).
    /// The returned solution carries re-derived MOSFET operating records
    /// and branch currents, so every downstream measure evaluates on it
    /// transparently.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidRequest`] on a size mismatch and
    /// [`MnaError::NoConvergence`] when the perturbed residual is
    /// non-finite; propagates triangular-solve errors.
    pub fn solve_perturbed(&self, perturbed: &Circuit) -> Result<DcSolution, MnaError> {
        let n = self.x.len();
        if perturbed.num_unknowns() != n {
            return Err(MnaError::InvalidRequest {
                reason: "perturbed circuit does not match base circuit size",
            });
        }
        let mut res = DVec::zeros(n);
        residual_at(perturbed, &self.x, SENS_GMIN, &mut res);
        if !res.is_finite() {
            return Err(MnaError::NoConvergence {
                analysis: "dc sensitivity",
                iterations: 0,
                residual: f64::NAN,
            });
        }
        let delta = match &self.factor {
            SensFactor::Dense(lu) => lu.solve(&res)?,
            SensFactor::Sparse(f) => f.solve(&res)?,
        };
        let xp = &self.x - &delta;
        Ok(DcOp::new(perturbed).finish(xp, 1))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{DcOp, MosfetModel, MosfetParams};

    fn divider(volts: f64, r1: f64) -> (Circuit, crate::NodeId) {
        let mut ckt = Circuit::new();
        let vin = ckt.node("in");
        let mid = ckt.node("mid");
        ckt.voltage_source("V1", vin, Circuit::GROUND, volts)
            .unwrap();
        ckt.resistor("R1", vin, mid, r1).unwrap();
        ckt.resistor("R2", mid, Circuit::GROUND, 1e3).unwrap();
        (ckt, mid)
    }

    #[test]
    fn exact_for_bias_perturbations() {
        // Only the right-hand side changes when a source value shifts, so
        // the frozen-Jacobian step is exact (up to roundoff) on a linear
        // circuit.
        let (base, _) = divider(2.0, 1e3);
        let op = DcOp::new(&base).solve().unwrap();
        let sens = DcSensitivity::new(&base, &op).unwrap();

        let (pert, mid_p) = divider(2.3, 1e3);
        let fast = sens.solve_perturbed(&pert).unwrap();
        let full = DcOp::new(&pert).solve().unwrap();
        assert!((fast.voltage(mid_p) - full.voltage(mid_p)).abs() < 1e-12);
        assert!(
            (fast.branch_current("V1").unwrap() - full.branch_current("V1").unwrap()).abs() < 1e-15
        );
    }

    #[test]
    fn second_order_in_element_perturbations() {
        // An element change also perturbs the Jacobian, so the frozen step
        // leaves an O(Δp²) error: 10× smaller perturbation, ~100× smaller
        // error.
        let (base, _) = divider(2.0, 1e3);
        let op = DcOp::new(&base).solve().unwrap();
        let sens = DcSensitivity::new(&base, &op).unwrap();
        let mut errs = Vec::new();
        for rel in [1e-2, 1e-3] {
            let (pert, mid_p) = divider(2.0, 1e3 * (1.0 + rel));
            let fast = sens.solve_perturbed(&pert).unwrap();
            let full = DcOp::new(&pert).solve().unwrap();
            errs.push((fast.voltage(mid_p) - full.voltage(mid_p)).abs());
        }
        assert!(
            errs[1] < errs[0] / 50.0,
            "errors not second order: {errs:?}"
        );
    }

    fn common_source(width: f64) -> (Circuit, crate::NodeId) {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let gate = ckt.node("g");
        let out = ckt.node("out");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
            .unwrap();
        ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)
            .unwrap();
        ckt.resistor("RD", vdd, out, 20e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), width, 1e-6);
        ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        (ckt, out)
    }

    #[test]
    fn second_order_accurate_on_mosfet_deck() {
        let (base, out) = common_source(10e-6);
        let op = DcOp::new(&base).solve().unwrap();
        let sens = DcSensitivity::new(&base, &op).unwrap();

        // Relative width perturbations: the one-step error must shrink
        // quadratically.
        let mut errs = Vec::new();
        for rel in [1e-2, 1e-3] {
            let (pert, out_p) = common_source(10e-6 * (1.0 + rel));
            let fast = sens.solve_perturbed(&pert).unwrap();
            let full = DcOp::new(&pert).solve().unwrap();
            errs.push((fast.voltage(out_p) - full.voltage(out_p)).abs());
            // Sanity: the perturbation actually moves the output.
            assert!((full.voltage(out_p) - op.voltage(out)).abs() > 1e-6);
        }
        // 10× smaller perturbation → ≥ ~50× smaller error (quadratic, with
        // slack for roundoff).
        assert!(
            errs[1] < errs[0] / 50.0,
            "errors not second order: {errs:?}"
        );
        // And the step error itself is far below the signal at 1e-3.
        assert!(errs[1] < 1e-6, "one-step error too large: {errs:?}");
    }

    #[test]
    fn mosfet_records_rederived_on_perturbed_point() {
        let (base, _) = common_source(10e-6);
        let op = DcOp::new(&base).solve().unwrap();
        let sens = DcSensitivity::new(&base, &op).unwrap();
        let (pert, _) = common_source(10e-6 * 1.001);
        let fast = sens.solve_perturbed(&pert).unwrap();
        let full = DcOp::new(&pert).solve().unwrap();
        let a = fast.mosfet_op("M1").unwrap();
        let b = full.mosfet_op("M1").unwrap();
        // One-step node-voltage error is O(Δp²) ≈ 1e-8 V at Δp = 1e-3,
        // which maps to ~1e-6 relative error in the device records.
        assert!((a.id - b.id).abs() < 1e-5 * b.id.abs().max(1e-12));
        assert!((a.gm - b.gm).abs() < 1e-4 * b.gm.abs().max(1e-12));
    }

    #[test]
    fn rejects_size_mismatch() {
        let (base, _) = common_source(10e-6);
        let op = DcOp::new(&base).solve().unwrap();
        let sens = DcSensitivity::new(&base, &op).unwrap();
        let mut tiny = Circuit::new();
        let a = tiny.node("a");
        tiny.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(matches!(
            sens.solve_perturbed(&tiny),
            Err(MnaError::InvalidRequest { .. })
        ));
    }
}
