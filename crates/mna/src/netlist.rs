//! Netlist representation and builder.

use std::collections::HashMap;

use crate::{MnaError, MosfetParams};

/// Identifier of a circuit node. Node 0 ([`Circuit::GROUND`]) is ground.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub(crate) usize);

impl NodeId {
    /// Raw index (0 = ground).
    pub fn index(self) -> usize {
        self.0
    }

    /// `true` for the ground node.
    pub fn is_ground(self) -> bool {
        self.0 == 0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// Identifier of an element within a [`Circuit`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ElementId(pub(crate) usize);

/// Time-dependent stimulus of an independent source (used by transient
/// analysis; DC and AC analyses use the `dc`/`ac` fields of the element).
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Stimulus {
    /// Constant value.
    Dc(f64),
    /// Linear ramp from `v0` to `v1` starting at `t0`, rising over `t_rise`.
    Step {
        /// Initial value.
        v0: f64,
        /// Final value.
        v1: f64,
        /// Ramp start time \[s\].
        t0: f64,
        /// Ramp duration \[s\] (must be > 0).
        t_rise: f64,
    },
    /// Sine `offset + ampl·sin(2π·freq·(t − delay))` for `t ≥ delay`.
    Sine {
        /// DC offset.
        offset: f64,
        /// Amplitude.
        ampl: f64,
        /// Frequency \[Hz\].
        freq: f64,
        /// Start delay \[s\].
        delay: f64,
    },
}

impl Stimulus {
    /// Value of the stimulus at time `t`.
    pub fn at(&self, t: f64) -> f64 {
        match *self {
            Stimulus::Dc(v) => v,
            Stimulus::Step { v0, v1, t0, t_rise } => {
                if t <= t0 {
                    v0
                } else if t >= t0 + t_rise {
                    v1
                } else {
                    v0 + (v1 - v0) * (t - t0) / t_rise
                }
            }
            Stimulus::Sine {
                offset,
                ampl,
                freq,
                delay,
            } => {
                if t < delay {
                    offset
                } else {
                    offset + ampl * (2.0 * std::f64::consts::PI * freq * (t - delay)).sin()
                }
            }
        }
    }

    /// Value at `t = 0` (the DC operating point for transient start).
    pub fn initial(&self) -> f64 {
        self.at(0.0)
    }
}

/// The element kinds understood by the analyses.
#[derive(Debug, Clone, PartialEq)]
pub(crate) enum ElementKind {
    Resistor {
        a: NodeId,
        b: NodeId,
        ohms: f64,
    },
    Capacitor {
        a: NodeId,
        b: NodeId,
        farads: f64,
    },
    /// Independent voltage source from `p` (+) to `n` (−); adds one branch
    /// current unknown.
    VoltageSource {
        p: NodeId,
        n: NodeId,
        dc: f64,
        ac: f64,
        stimulus: Option<Stimulus>,
        branch: usize,
    },
    /// Independent current source; positive `dc` drives conventional current
    /// out of `p`, through the source, into `n`.
    CurrentSource {
        p: NodeId,
        n: NodeId,
        dc: f64,
        ac: f64,
    },
    /// Voltage-controlled current source: `i(p→n) = gm·(v(cp) − v(cn))`.
    Vccs {
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    },
    /// Voltage-controlled voltage source: `v(p) − v(n) = gain·(v(cp) − v(cn))`.
    Vcvs {
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
        branch: usize,
    },
    Mosfet {
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosfetParams,
    },
    /// pn-junction diode from anode `a` to cathode `k`:
    /// `i = Is·(exp(v/(n·V_T)) − 1)`.
    Diode {
        a: NodeId,
        k: NodeId,
        is_sat: f64,
        ideality: f64,
    },
}

/// A flat analog netlist plus global simulation conditions (temperature).
///
/// Build the circuit with the `resistor`/`capacitor`/`voltage_source`/…
/// methods, then hand it to [`crate::DcOp`], [`crate::AcSolver`] or
/// [`crate::Transient`].
///
/// # Example
///
/// ```
/// use specwise_mna::{Circuit, DcOp};
///
/// # fn main() -> Result<(), specwise_mna::MnaError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// ckt.voltage_source("V1", a, Circuit::GROUND, 2.0)?;
/// let mid = ckt.node("mid");
/// ckt.resistor("R1", a, mid, 1e3)?;
/// ckt.resistor("R2", mid, Circuit::GROUND, 1e3)?;
/// let op = DcOp::new(&ckt).solve()?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Circuit {
    node_names: Vec<String>,
    node_lookup: HashMap<String, NodeId>,
    names: Vec<String>,
    kinds: Vec<ElementKind>,
    name_lookup: HashMap<String, ElementId>,
    branches: usize,
    temperature: f64,
}

impl Default for Circuit {
    fn default() -> Self {
        Self::new()
    }
}

impl Circuit {
    /// The ground node (node 0).
    pub const GROUND: NodeId = NodeId(0);

    /// Creates an empty circuit at the default temperature (27 °C).
    pub fn new() -> Self {
        let mut node_lookup = HashMap::new();
        node_lookup.insert("0".to_string(), NodeId(0));
        Circuit {
            node_names: vec!["0".to_string()],
            node_lookup,
            names: Vec::new(),
            kinds: Vec::new(),
            name_lookup: HashMap::new(),
            branches: 0,
            temperature: 300.15,
        }
    }

    /// Returns the node with the given name, creating it if necessary.
    /// The name `"0"` always refers to ground.
    pub fn node(&mut self, name: &str) -> NodeId {
        if let Some(&id) = self.node_lookup.get(name) {
            return id;
        }
        let id = NodeId(self.node_names.len());
        self.node_names.push(name.to_string());
        self.node_lookup.insert(name.to_string(), id);
        id
    }

    /// Looks up an existing node by name.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names.
    pub fn find_node(&self, name: &str) -> Result<NodeId, MnaError> {
        self.node_lookup
            .get(name)
            .copied()
            .ok_or_else(|| MnaError::NotFound {
                name: name.to_string(),
            })
    }

    /// Name of a node.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn node_name(&self, id: NodeId) -> &str {
        &self.node_names[id.0]
    }

    /// Number of nodes including ground.
    pub fn num_nodes(&self) -> usize {
        self.node_names.len()
    }

    /// Number of branch-current unknowns (voltage sources and VCVS).
    pub fn num_branches(&self) -> usize {
        self.branches
    }

    /// Size of the MNA unknown vector: `(num_nodes − 1) + num_branches`.
    pub fn num_unknowns(&self) -> usize {
        self.num_nodes() - 1 + self.branches
    }

    /// Simulation temperature \[K\].
    pub fn temperature(&self) -> f64 {
        self.temperature
    }

    /// Sets the simulation temperature \[K\].
    ///
    /// # Panics
    ///
    /// Panics for non-positive or non-finite temperatures.
    pub fn set_temperature(&mut self, kelvin: f64) {
        assert!(
            kelvin.is_finite() && kelvin > 0.0,
            "invalid temperature {kelvin}"
        );
        self.temperature = kelvin;
    }

    fn insert(&mut self, name: &str, kind: ElementKind) -> Result<ElementId, MnaError> {
        if self.name_lookup.contains_key(name) {
            return Err(MnaError::DuplicateName {
                name: name.to_string(),
            });
        }
        let id = ElementId(self.kinds.len());
        self.names.push(name.to_string());
        self.kinds.push(kind);
        self.name_lookup.insert(name.to_string(), id);
        Ok(id)
    }

    /// Adds a resistor.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidValue`] for non-positive resistance and
    /// [`MnaError::DuplicateName`] for a reused name.
    pub fn resistor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        ohms: f64,
    ) -> Result<ElementId, MnaError> {
        if !(ohms > 0.0) || !ohms.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "resistance must be positive and finite",
            });
        }
        self.insert(name, ElementKind::Resistor { a, b, ohms })
    }

    /// Adds a capacitor.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidValue`] for negative capacitance and
    /// [`MnaError::DuplicateName`] for a reused name.
    pub fn capacitor(
        &mut self,
        name: &str,
        a: NodeId,
        b: NodeId,
        farads: f64,
    ) -> Result<ElementId, MnaError> {
        if !(farads >= 0.0) || !farads.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "capacitance must be non-negative and finite",
            });
        }
        self.insert(name, ElementKind::Capacitor { a, b, farads })
    }

    /// Adds an independent voltage source (`p` is the + terminal).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::DuplicateName`] for a reused name.
    pub fn voltage_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        dc: f64,
    ) -> Result<ElementId, MnaError> {
        if !dc.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "source DC value must be finite",
            });
        }
        let branch = self.branches;
        let id = self.insert(
            name,
            ElementKind::VoltageSource {
                p,
                n,
                dc,
                ac: 0.0,
                stimulus: None,
                branch,
            },
        )?;
        self.branches += 1;
        Ok(id)
    }

    /// Adds an independent current source; positive `dc` drives conventional
    /// current out of `p`, through the source, into `n`.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::DuplicateName`] for a reused name.
    pub fn current_source(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        dc: f64,
    ) -> Result<ElementId, MnaError> {
        if !dc.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "source DC value must be finite",
            });
        }
        self.insert(name, ElementKind::CurrentSource { p, n, dc, ac: 0.0 })
    }

    /// Adds a voltage-controlled current source
    /// `i(p→n) = gm·(v(cp) − v(cn))`.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::DuplicateName`] for a reused name.
    pub fn vccs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gm: f64,
    ) -> Result<ElementId, MnaError> {
        if !gm.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "transconductance must be finite",
            });
        }
        self.insert(name, ElementKind::Vccs { p, n, cp, cn, gm })
    }

    /// Adds a voltage-controlled voltage source
    /// `v(p) − v(n) = gain·(v(cp) − v(cn))`.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::DuplicateName`] for a reused name.
    pub fn vcvs(
        &mut self,
        name: &str,
        p: NodeId,
        n: NodeId,
        cp: NodeId,
        cn: NodeId,
        gain: f64,
    ) -> Result<ElementId, MnaError> {
        if !gain.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "gain must be finite",
            });
        }
        let branch = self.branches;
        let id = self.insert(
            name,
            ElementKind::Vcvs {
                p,
                n,
                cp,
                cn,
                gain,
                branch,
            },
        )?;
        self.branches += 1;
        Ok(id)
    }

    /// Adds a MOSFET with terminals drain, gate, source, bulk.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidValue`] for non-positive geometry and
    /// [`MnaError::DuplicateName`] for a reused name.
    pub fn mosfet(
        &mut self,
        name: &str,
        d: NodeId,
        g: NodeId,
        s: NodeId,
        b: NodeId,
        params: MosfetParams,
    ) -> Result<ElementId, MnaError> {
        if !(params.w > 0.0) || !(params.l > 0.0) || !params.w.is_finite() || !params.l.is_finite()
        {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "W and L must be positive and finite",
            });
        }
        if !(params.beta_factor > 0.0) {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "beta_factor must be positive",
            });
        }
        self.insert(name, ElementKind::Mosfet { d, g, s, b, params })
    }

    /// Adds a pn-junction diode (`a` = anode, `k` = cathode) with
    /// saturation current `is_sat` \[A\] and ideality factor `ideality`.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::InvalidValue`] for non-positive parameters and
    /// [`MnaError::DuplicateName`] for a reused name.
    pub fn diode(
        &mut self,
        name: &str,
        a: NodeId,
        k: NodeId,
        is_sat: f64,
        ideality: f64,
    ) -> Result<ElementId, MnaError> {
        if !(is_sat > 0.0) || !is_sat.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "saturation current must be positive and finite",
            });
        }
        if !(ideality > 0.0) || !ideality.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "ideality factor must be positive and finite",
            });
        }
        self.insert(
            name,
            ElementKind::Diode {
                a,
                k,
                is_sat,
                ideality,
            },
        )
    }

    /// Looks up an element by name.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names.
    pub fn find(&self, name: &str) -> Result<ElementId, MnaError> {
        self.name_lookup
            .get(name)
            .copied()
            .ok_or_else(|| MnaError::NotFound {
                name: name.to_string(),
            })
    }

    /// Name of an element.
    ///
    /// # Panics
    ///
    /// Panics if the id does not belong to this circuit.
    pub fn element_name(&self, id: ElementId) -> &str {
        &self.names[id.0]
    }

    /// Number of elements.
    pub fn num_elements(&self) -> usize {
        self.kinds.len()
    }

    /// Sets the DC value of an independent source.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names and
    /// [`MnaError::InvalidValue`] when the element is not a source.
    pub fn set_dc(&mut self, name: &str, value: f64) -> Result<(), MnaError> {
        let id = self.find(name)?;
        match &mut self.kinds[id.0] {
            ElementKind::VoltageSource { dc, .. } | ElementKind::CurrentSource { dc, .. } => {
                *dc = value;
                Ok(())
            }
            _ => Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "set_dc requires an independent source",
            }),
        }
    }

    /// Sets the AC magnitude of an independent source.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names and
    /// [`MnaError::InvalidValue`] when the element is not a source.
    pub fn set_ac(&mut self, name: &str, magnitude: f64) -> Result<(), MnaError> {
        if !magnitude.is_finite() {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "AC magnitude must be finite",
            });
        }
        let id = self.find(name)?;
        match &mut self.kinds[id.0] {
            ElementKind::VoltageSource { ac, .. } | ElementKind::CurrentSource { ac, .. } => {
                *ac = magnitude;
                Ok(())
            }
            _ => Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "set_ac requires an independent source",
            }),
        }
    }

    /// Clears the AC magnitude of every independent source (convenient when
    /// reusing one netlist for several transfer functions, e.g. the
    /// differential and common-mode runs of a CMRR extraction).
    pub fn clear_ac(&mut self) {
        for kind in &mut self.kinds {
            match kind {
                ElementKind::VoltageSource { ac, .. } | ElementKind::CurrentSource { ac, .. } => {
                    *ac = 0.0;
                }
                _ => {}
            }
        }
    }

    /// Attaches a transient stimulus to a voltage source.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names and
    /// [`MnaError::InvalidValue`] when the element is not a voltage source.
    pub fn set_stimulus(&mut self, name: &str, stim: Stimulus) -> Result<(), MnaError> {
        let id = self.find(name)?;
        match &mut self.kinds[id.0] {
            ElementKind::VoltageSource { stimulus, .. } => {
                *stimulus = Some(stim);
                Ok(())
            }
            _ => Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "set_stimulus requires a voltage source",
            }),
        }
    }

    /// Replaces the parameters of a MOSFET (used to inject statistical
    /// deviations without rebuilding the netlist).
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] for unknown names and
    /// [`MnaError::InvalidValue`] when the element is not a MOSFET or the
    /// new geometry is invalid.
    pub fn set_mosfet_params(&mut self, name: &str, params: MosfetParams) -> Result<(), MnaError> {
        if !(params.w > 0.0) || !(params.l > 0.0) || !(params.beta_factor > 0.0) {
            return Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "invalid MOSFET parameters",
            });
        }
        let id = self.find(name)?;
        match &mut self.kinds[id.0] {
            ElementKind::Mosfet { params: p, .. } => {
                *p = params;
                Ok(())
            }
            _ => Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "set_mosfet_params requires a MOSFET",
            }),
        }
    }

    /// Parameters of a MOSFET.
    ///
    /// # Errors
    ///
    /// Returns [`MnaError::NotFound`] / [`MnaError::InvalidValue`] like
    /// [`Circuit::set_mosfet_params`].
    pub fn mosfet_params(&self, name: &str) -> Result<MosfetParams, MnaError> {
        let id = self.find(name)?;
        match &self.kinds[id.0] {
            ElementKind::Mosfet { params, .. } => Ok(*params),
            _ => Err(MnaError::InvalidValue {
                element: name.to_string(),
                reason: "mosfet_params requires a MOSFET",
            }),
        }
    }

    /// Names of all MOSFETs in insertion order.
    pub fn mosfet_names(&self) -> Vec<&str> {
        self.kinds
            .iter()
            .zip(&self.names)
            .filter_map(|(k, n)| match k {
                ElementKind::Mosfet { .. } => Some(n.as_str()),
                _ => None,
            })
            .collect()
    }

    /// Internal: element kinds (for the analyses).
    pub(crate) fn kinds(&self) -> &[ElementKind] {
        &self.kinds
    }

    /// Exact structural key of the circuit topology: node/branch counts plus
    /// every element's kind tag and terminal wiring, element values excluded.
    ///
    /// Two circuits share a key iff they stamp the same MNA coordinates for
    /// every analysis, so the key indexes the symbolic-factorization cache.
    /// The per-element tag + fixed arity make the encoding prefix-free — no
    /// two distinct topologies collide.
    pub(crate) fn structure_key(&self) -> Vec<u64> {
        let mut key = Vec::with_capacity(2 + self.kinds.len() * 6);
        key.push(self.num_nodes() as u64);
        key.push(self.branches as u64);
        for kind in &self.kinds {
            match kind {
                ElementKind::Resistor { a, b, .. } => {
                    key.extend([1, a.0 as u64, b.0 as u64]);
                }
                ElementKind::Capacitor { a, b, .. } => {
                    key.extend([2, a.0 as u64, b.0 as u64]);
                }
                ElementKind::VoltageSource { p, n, branch, .. } => {
                    key.extend([3, p.0 as u64, n.0 as u64, *branch as u64]);
                }
                ElementKind::CurrentSource { p, n, .. } => {
                    key.extend([4, p.0 as u64, n.0 as u64]);
                }
                ElementKind::Vccs { p, n, cp, cn, .. } => {
                    key.extend([5, p.0 as u64, n.0 as u64, cp.0 as u64, cn.0 as u64]);
                }
                ElementKind::Vcvs {
                    p,
                    n,
                    cp,
                    cn,
                    branch,
                    ..
                } => {
                    key.extend([
                        6,
                        p.0 as u64,
                        n.0 as u64,
                        cp.0 as u64,
                        cn.0 as u64,
                        *branch as u64,
                    ]);
                }
                ElementKind::Mosfet { d, g, s, b, .. } => {
                    key.extend([7, d.0 as u64, g.0 as u64, s.0 as u64, b.0 as u64]);
                }
                ElementKind::Diode { a, k, .. } => {
                    key.extend([8, a.0 as u64, k.0 as u64]);
                }
            }
        }
        key
    }

    /// Internal: index of the unknown carrying a node voltage, `None` for ground.
    pub(crate) fn node_unknown(&self, n: NodeId) -> Option<usize> {
        if n.is_ground() {
            None
        } else {
            Some(n.0 - 1)
        }
    }

    /// Internal: index of the unknown carrying a branch current.
    pub(crate) fn branch_unknown(&self, branch: usize) -> usize {
        self.num_nodes() - 1 + branch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{MosfetModel, MosfetParams};

    #[test]
    fn node_interning() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let a2 = ckt.node("a");
        assert_eq!(a, a2);
        assert_eq!(ckt.num_nodes(), 2);
        assert_eq!(ckt.node("0"), Circuit::GROUND);
        assert_eq!(ckt.node_name(a), "a");
    }

    #[test]
    fn duplicate_names_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.resistor("R1", a, Circuit::GROUND, 1.0).unwrap();
        assert!(matches!(
            ckt.resistor("R1", a, Circuit::GROUND, 2.0),
            Err(MnaError::DuplicateName { .. })
        ));
    }

    #[test]
    fn invalid_values_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        assert!(ckt.resistor("R", a, Circuit::GROUND, 0.0).is_err());
        assert!(ckt.resistor("R", a, Circuit::GROUND, -5.0).is_err());
        assert!(ckt.capacitor("C", a, Circuit::GROUND, -1e-12).is_err());
        let params = MosfetParams::new(MosfetModel::default_nmos(), 0.0, 1e-6);
        assert!(ckt
            .mosfet("M", a, a, Circuit::GROUND, Circuit::GROUND, params)
            .is_err());
    }

    #[test]
    fn unknown_counting() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        let b = ckt.node("b");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.resistor("R1", a, b, 1e3).unwrap();
        ckt.vcvs("E1", b, Circuit::GROUND, a, Circuit::GROUND, 2.0)
            .unwrap();
        assert_eq!(ckt.num_nodes(), 3);
        assert_eq!(ckt.num_branches(), 2);
        assert_eq!(ckt.num_unknowns(), 4);
    }

    #[test]
    fn set_dc_and_ac() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 1.0).unwrap();
        ckt.set_dc("V1", 2.5).unwrap();
        ckt.set_ac("V1", 1.0).unwrap();
        ckt.clear_ac();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(ckt.set_dc("R1", 1.0).is_err());
        assert!(ckt.set_ac("R1", 1.0).is_err());
        assert!(ckt.set_dc("missing", 1.0).is_err());
    }

    #[test]
    fn mosfet_param_update() {
        let mut ckt = Circuit::new();
        let d = ckt.node("d");
        let g = ckt.node("g");
        let params = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
        ckt.mosfet("M1", d, g, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let mut p2 = ckt.mosfet_params("M1").unwrap();
        p2.delta_vth = 0.01;
        ckt.set_mosfet_params("M1", p2).unwrap();
        assert_eq!(ckt.mosfet_params("M1").unwrap().delta_vth, 0.01);
        assert_eq!(ckt.mosfet_names(), vec!["M1"]);
    }

    #[test]
    fn stimulus_shapes() {
        let step = Stimulus::Step {
            v0: 0.0,
            v1: 1.0,
            t0: 1e-6,
            t_rise: 1e-6,
        };
        assert_eq!(step.at(0.0), 0.0);
        assert!((step.at(1.5e-6) - 0.5).abs() < 1e-12);
        assert_eq!(step.at(5e-6), 1.0);
        let sine = Stimulus::Sine {
            offset: 1.0,
            ampl: 0.5,
            freq: 1e3,
            delay: 0.0,
        };
        assert!((sine.at(0.25e-3) - 1.5).abs() < 1e-12);
        assert_eq!(Stimulus::Dc(3.0).initial(), 3.0);
    }

    #[test]
    fn temperature_guarded() {
        let mut ckt = Circuit::new();
        ckt.set_temperature(350.0);
        assert_eq!(ckt.temperature(), 350.0);
    }

    #[test]
    #[should_panic(expected = "invalid temperature")]
    fn temperature_rejects_zero() {
        Circuit::new().set_temperature(0.0);
    }
}
