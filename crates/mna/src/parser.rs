//! A SPICE-style netlist deck parser with testbench annotations.
//!
//! The parser is two-layered:
//!
//! 1. [`parse_deck_ast`] turns the text into a [`DeckAst`] — elements whose
//!    values may be `{param}` placeholders, plus typed records for the
//!    testbench directives (`.design`, `.spec`, `.range`, `.match`, …). The
//!    AST can be printed back to canonical deck text with
//!    [`DeckAst::to_deck`] (a `parse → print → parse` round trip is the
//!    identity).
//! 2. [`parse_deck`] (and [`DeckAst::to_circuit`]) lowers the AST to a
//!    [`Circuit`] for direct simulation; every `{param}` placeholder must
//!    have been substituted by then (`specwise-ckt`'s `Testbench` is the
//!    layer that binds placeholders to design variables).
//!
//! Supported element lines:
//!
//! ```text
//! * comment lines start with '*', ';' starts an inline comment
//! R<name> <n+> <n-> <value>
//! C<name> <n+> <n-> <value>
//! V<name> <n+> <n-> <value>            ; independent voltage source
//! V<name> <n+> <n-> <value> AC <mag>   ; with AC magnitude
//! I<name> <n+> <n-> <value>            ; independent current source
//! E<name> <n+> <n-> <nc+> <nc-> <gain> ; VCVS
//! G<name> <n+> <n-> <nc+> <nc-> <gm>   ; VCCS
//! M<name> <d> <g> <s> <b> <NMOS|PMOS> W=<value> L=<value>
//! D<name> <a> <k> [IS=<value>] [N=<value>]
//! ```
//!
//! Testbench directives (consumed by `Testbench::from_deck`; ignored when
//! lowering to a plain [`Circuit`]):
//!
//! ```text
//! .name <free text>                    ; environment name
//! .nodes <n1> <n2> ...                 ; pre-declare node ordering
//! .design <var> <unit> <lo> <hi> <init>
//! .spec <name> <unit> <min|max> <bound> <measure>
//! .range <temp|vdd> <lo> <hi>
//! .match <dev> [<dev> ...]             ; local-mismatch group
//! .tb <key> <value>                    ; harness wiring (vinp, out, ...)
//! .temp <celsius>
//! .end
//! ```
//!
//! Values accept the SPICE magnitude suffixes `T G MEG K M U N P F`
//! (case-insensitive; `M` is milli, `MEG` is 1e6) with an optional trailing
//! unit word (`10K`, `2.5u`, `1.2pF`, `3meg`), or a `{param}` placeholder.
//!
//! MOSFETs use the built-in Level-1 model cards
//! ([`MosfetModel::default_nmos`]/[`MosfetModel::default_pmos`]); per-deck
//! model cards are out of scope.

use crate::{Circuit, MnaError, MosPolarity, MosfetModel, MosfetParams, NodeId};

/// Parses a numeric field with SPICE magnitude suffixes.
fn parse_value(token: &str, line: usize) -> Result<f64, ParseDeckError> {
    let t = token.trim();
    if t.is_empty() {
        return Err(ParseDeckError::BadValue {
            line,
            token: token.to_string(),
        });
    }
    // Split the leading numeric part from the suffix.
    let num_end = t
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(t.len());
    // Guard against exponents like 1e-9 whose '-' follows 'e'.
    let (num_str, suffix) = t.split_at(num_end);
    let base: f64 = num_str.parse().map_err(|_| ParseDeckError::BadValue {
        line,
        token: token.to_string(),
    })?;
    let suffix = suffix.to_ascii_lowercase();
    let scale = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // A bare unit word like "V" or "Ohm".
            Some(c) if c.is_ascii_alphabetic() => 1.0,
            Some(_) => {
                return Err(ParseDeckError::BadValue {
                    line,
                    token: token.to_string(),
                });
            }
        }
    };
    let value = base * scale;
    // Overflowed literals ("1e999") and any suffix-scaled overflow must be
    // rejected here: a non-finite value poisons every downstream consumer
    // and prints as "inf"/"NaN", which the parser itself cannot read back.
    if !value.is_finite() {
        return Err(ParseDeckError::BadValue {
            line,
            token: token.to_string(),
        });
    }
    Ok(value)
}

/// Hard ingestion limits for deck text, enforced by
/// [`parse_deck_ast_limited`] (and, with the defaults below, by
/// [`parse_deck_ast`] itself).
///
/// These bound the work an untrusted deck can demand before any circuit is
/// built: total size, directive and element counts, and `{param}` brace
/// nesting. Violations surface as typed [`ParseDeckError`] variants — the
/// parser never panics on hostile input.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DeckLimits {
    /// Maximum deck size in bytes.
    pub max_bytes: usize,
    /// Maximum number of `.`-directive lines (including `.end`).
    pub max_directives: usize,
    /// Maximum number of element lines.
    pub max_elements: usize,
    /// Maximum `{param}` brace-nesting depth. The grammar substitutes one
    /// layer, so depths beyond 1 are always an attempted expansion bomb.
    pub max_param_depth: usize,
    /// Maximum number of distinct non-ground node names. The dense solver
    /// allocates O(n²) for n unknowns, so node count — not element count —
    /// is what bounds the memory an untrusted deck can demand.
    pub max_nodes: usize,
}

impl Default for DeckLimits {
    fn default() -> Self {
        DeckLimits {
            max_bytes: 1 << 20,
            max_directives: 1_024,
            max_elements: 16_384,
            max_param_depth: 1,
            max_nodes: 4_096,
        }
    }
}

/// A value field in a deck: a resolved number or a `{param}` placeholder to
/// be bound by a higher layer (e.g. a design variable of a testbench).
#[derive(Debug, Clone, PartialEq)]
pub enum DeckValue {
    /// A literal numeric value (SI units after suffix expansion).
    Num(f64),
    /// An unbound `{name}` placeholder.
    Param(String),
}

impl DeckValue {
    fn parse(token: &str, line: usize, limits: &DeckLimits) -> Result<Self, ParseDeckError> {
        if let Some(inner) = token.strip_prefix('{').and_then(|t| t.strip_suffix('}')) {
            let open = token.chars().take_while(|c| *c == '{').count();
            let close = token.chars().rev().take_while(|c| *c == '}').count();
            // A brace anywhere inside the placeholder name is an attempted
            // deeper expansion, not a legal name character.
            if open.min(close) > limits.max_param_depth || inner.contains(['{', '}']) {
                return Err(ParseDeckError::ParamTooDeep {
                    line,
                    token: token.to_string(),
                    limit: limits.max_param_depth,
                });
            }
            if inner.is_empty() || inner.contains(char::is_whitespace) {
                return Err(ParseDeckError::BadValue {
                    line,
                    token: token.to_string(),
                });
            }
            return Ok(DeckValue::Param(inner.to_string()));
        }
        Ok(DeckValue::Num(parse_value(token, line)?))
    }

    /// The literal value, or an [`ParseDeckError::UnboundParam`] error when
    /// this is still a placeholder.
    fn require_num(&self, line: usize) -> Result<f64, ParseDeckError> {
        match self {
            DeckValue::Num(v) => Ok(*v),
            DeckValue::Param(name) => Err(ParseDeckError::UnboundParam {
                line,
                name: name.clone(),
            }),
        }
    }
}

impl std::fmt::Display for DeckValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            // `{:e}` prints the shortest exponent form that round-trips.
            DeckValue::Num(v) => write!(f, "{v:e}"),
            DeckValue::Param(name) => write!(f, "{{{name}}}"),
        }
    }
}

/// One element line of a deck.
#[derive(Debug, Clone)]
pub struct DeckElement {
    /// 1-based source line.
    pub line: usize,
    /// Instance name (the full head token, e.g. `"RZ"`, `"m1"`).
    pub name: String,
    /// Terminals and values.
    pub kind: DeckElementKind,
}

// AST equality is semantic: `line` is provenance, not content. Two decks
// that differ only in layout (comments, blank lines, section order) parse
// to equal ASTs, which is what makes the `to_deck()` round-trip guarantee
// hold for decks written in any directive order.
impl PartialEq for DeckElement {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name && self.kind == other.kind
    }
}

/// The typed body of a [`DeckElement`]. Node fields hold raw node names
/// (`"0"`/`"gnd"` mean ground).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum DeckElementKind {
    /// `R<name> a b value`.
    Resistor {
        /// First terminal node.
        a: String,
        /// Second terminal node.
        b: String,
        /// Resistance \[Ω\].
        value: DeckValue,
    },
    /// `C<name> a b value`.
    Capacitor {
        /// First terminal node.
        a: String,
        /// Second terminal node.
        b: String,
        /// Capacitance \[F\].
        value: DeckValue,
    },
    /// `V<name> p n dc [AC mag]`.
    VoltageSource {
        /// Positive terminal node.
        p: String,
        /// Negative terminal node.
        n: String,
        /// DC value \[V\].
        dc: DeckValue,
        /// Optional AC magnitude.
        ac: Option<f64>,
    },
    /// `I<name> p n dc [AC mag]`.
    CurrentSource {
        /// Positive terminal node (current flows p → n inside the source).
        p: String,
        /// Negative terminal node.
        n: String,
        /// DC value \[A\].
        dc: DeckValue,
        /// Optional AC magnitude.
        ac: Option<f64>,
    },
    /// `E<name> p n cp cn gain` (VCVS).
    Vcvs {
        /// Positive output node.
        p: String,
        /// Negative output node.
        n: String,
        /// Positive controlling node.
        cp: String,
        /// Negative controlling node.
        cn: String,
        /// Voltage gain.
        gain: DeckValue,
    },
    /// `G<name> p n cp cn gm` (VCCS).
    Vccs {
        /// Positive output node.
        p: String,
        /// Negative output node.
        n: String,
        /// Positive controlling node.
        cp: String,
        /// Negative controlling node.
        cn: String,
        /// Transconductance \[S\].
        gm: DeckValue,
    },
    /// `M<name> d g s b NMOS|PMOS W= L=`.
    Mosfet {
        /// Drain node.
        d: String,
        /// Gate node.
        g: String,
        /// Source node.
        s: String,
        /// Bulk node.
        b: String,
        /// Channel polarity.
        polarity: MosPolarity,
        /// Channel width \[m\].
        w: DeckValue,
        /// Channel length \[m\].
        l: DeckValue,
    },
    /// `D<name> a k [IS=] [N=]`.
    Diode {
        /// Anode node.
        a: String,
        /// Cathode node.
        k: String,
        /// Saturation current \[A\].
        is_sat: DeckValue,
        /// Ideality factor.
        ideality: DeckValue,
    },
}

/// A `.design <var> <unit> <lo> <hi> <init>` directive: one design variable
/// of the testbench, referenced from element values as `{var}`.
#[derive(Debug, Clone)]
pub struct DesignDirective {
    /// 1-based source line.
    pub line: usize,
    /// Variable name.
    pub name: String,
    /// Display/scaling unit (e.g. `um`, `uA`, `pF`).
    pub unit: String,
    /// Lower bound (in `unit`).
    pub lower: f64,
    /// Upper bound (in `unit`).
    pub upper: f64,
    /// Initial value (in `unit`).
    pub initial: f64,
}

impl PartialEq for DesignDirective {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.unit == other.unit
            && self.lower == other.lower
            && self.upper == other.upper
            && self.initial == other.initial
    }
}

/// A `.spec <name> <unit> <min|max> <bound> <measure>` directive.
#[derive(Debug, Clone)]
pub struct SpecDirective {
    /// 1-based source line.
    pub line: usize,
    /// Specification name (e.g. `A0`).
    pub name: String,
    /// Display unit; also selects the SI conversion (e.g. `MHz`, `mW`).
    pub unit: String,
    /// `true` for a `min` (lower-bound) spec, `false` for `max`.
    pub lower_bound: bool,
    /// The bound value (in `unit`).
    pub bound: f64,
    /// The measurement producing this performance (e.g. `dcgain`, `ugf`,
    /// `vdc(out)`).
    pub measure: String,
}

impl PartialEq for SpecDirective {
    fn eq(&self, other: &Self) -> bool {
        self.name == other.name
            && self.unit == other.unit
            && self.lower_bound == other.lower_bound
            && self.bound == other.bound
            && self.measure == other.measure
    }
}

/// A `.range <temp|vdd> <lo> <hi>` directive: one axis of the operating
/// range Θ.
#[derive(Debug, Clone)]
pub struct RangeDirective {
    /// 1-based source line.
    pub line: usize,
    /// The quantity: `"temp"` \[°C\] or `"vdd"` \[V\] (lower-cased).
    pub quantity: String,
    /// Lower bound.
    pub lower: f64,
    /// Upper bound.
    pub upper: f64,
}

impl PartialEq for RangeDirective {
    fn eq(&self, other: &Self) -> bool {
        self.quantity == other.quantity && self.lower == other.lower && self.upper == other.upper
    }
}

/// A `.match <dev> [<dev> ...]` directive: a group of devices that receive
/// local (Pelgrom) mismatch parameters, in declaration order.
#[derive(Debug, Clone)]
pub struct MatchDirective {
    /// 1-based source line.
    pub line: usize,
    /// MOSFET instance names.
    pub devices: Vec<String>,
}

impl PartialEq for MatchDirective {
    fn eq(&self, other: &Self) -> bool {
        self.devices == other.devices
    }
}

/// A `.tb <key> <value>` directive: testbench harness wiring (which sources
/// are the inputs/supply, which node is the output, …).
#[derive(Debug, Clone)]
pub struct TbDirective {
    /// 1-based source line.
    pub line: usize,
    /// Key (e.g. `vinp`, `out`, `tail`, `slewcap`).
    pub key: String,
    /// Value (an element or node name).
    pub value: String,
}

impl PartialEq for TbDirective {
    fn eq(&self, other: &Self) -> bool {
        self.key == other.key && self.value == other.value
    }
}

/// The parsed form of an annotated deck: elements (values possibly still
/// `{param}` placeholders) plus the testbench directives.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct DeckAst {
    /// `.name` free text, when present.
    pub title: Option<String>,
    /// `.nodes` pre-declared node names, in order. Declaring nodes pins the
    /// node numbering regardless of element order.
    pub nodes: Vec<String>,
    /// `.temp` value \[°C\], when present.
    pub temp_c: Option<f64>,
    /// Element lines, in order.
    pub elements: Vec<DeckElement>,
    /// `.design` directives, in order.
    pub designs: Vec<DesignDirective>,
    /// `.spec` directives, in order.
    pub specs: Vec<SpecDirective>,
    /// `.range` directives, in order.
    pub ranges: Vec<RangeDirective>,
    /// `.match` directives, in order.
    pub matches: Vec<MatchDirective>,
    /// `.tb` directives, in order.
    pub tb: Vec<TbDirective>,
}

/// Errors produced when parsing a netlist deck. Every variant carries the
/// 1-based deck line it originates from (see [`ParseDeckError::line`]).
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseDeckError {
    /// A numeric field could not be parsed.
    BadValue {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
    },
    /// A line has too few fields for its element type or directive.
    TooFewFields {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown element prefix or directive.
    UnknownElement {
        /// 1-based line number.
        line: usize,
        /// The leading token.
        token: String,
    },
    /// A MOSFET line is missing `W=`/`L=` or names an unknown model.
    BadMosfet {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// A testbench directive is malformed.
    BadDirective {
        /// 1-based line number.
        line: usize,
        /// The directive (e.g. `".spec"`).
        directive: String,
        /// What was wrong.
        reason: String,
    },
    /// A `{param}` placeholder survived to circuit lowering without being
    /// bound to a value.
    UnboundParam {
        /// 1-based line number of the element using the placeholder.
        line: usize,
        /// The placeholder name.
        name: String,
    },
    /// The netlist builder rejected an element (duplicate name, bad value…).
    Circuit {
        /// 1-based line number of the offending element.
        line: usize,
        /// The element's instance name.
        element: String,
        /// The underlying netlist error.
        source: MnaError,
    },
    /// The deck text exceeds [`DeckLimits::max_bytes`].
    DeckTooLarge {
        /// Actual deck size in bytes.
        bytes: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More `.`-directive lines than [`DeckLimits::max_directives`] allows.
    TooManyDirectives {
        /// 1-based line number of the first directive over the limit.
        line: usize,
        /// The configured limit.
        limit: usize,
    },
    /// More element lines than [`DeckLimits::max_elements`] allows.
    TooManyElements {
        /// 1-based line number of the first element over the limit.
        line: usize,
        /// The configured limit.
        limit: usize,
    },
    /// A `{param}` placeholder nests braces deeper than
    /// [`DeckLimits::max_param_depth`].
    ParamTooDeep {
        /// 1-based line number.
        line: usize,
        /// The offending token.
        token: String,
        /// The configured depth limit.
        limit: usize,
    },
    /// More distinct non-ground node names than [`DeckLimits::max_nodes`]
    /// allows.
    TooManyNodes {
        /// 1-based line number of the line introducing the node over the
        /// limit.
        line: usize,
        /// The configured limit.
        limit: usize,
    },
}

impl ParseDeckError {
    /// The 1-based deck line the error originates from.
    /// [`ParseDeckError::DeckTooLarge`] applies to the whole deck and
    /// reports line 1.
    pub fn line(&self) -> usize {
        match self {
            ParseDeckError::BadValue { line, .. }
            | ParseDeckError::TooFewFields { line }
            | ParseDeckError::UnknownElement { line, .. }
            | ParseDeckError::BadMosfet { line, .. }
            | ParseDeckError::BadDirective { line, .. }
            | ParseDeckError::UnboundParam { line, .. }
            | ParseDeckError::TooManyDirectives { line, .. }
            | ParseDeckError::TooManyElements { line, .. }
            | ParseDeckError::ParamTooDeep { line, .. }
            | ParseDeckError::TooManyNodes { line, .. }
            | ParseDeckError::Circuit { line, .. } => *line,
            ParseDeckError::DeckTooLarge { .. } => 1,
        }
    }
}

impl std::fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDeckError::BadValue { line, token } => {
                write!(f, "line {line}: cannot parse value {token:?}")
            }
            ParseDeckError::TooFewFields { line } => write!(f, "line {line}: too few fields"),
            ParseDeckError::UnknownElement { line, token } => {
                write!(f, "line {line}: unknown element or directive {token:?}")
            }
            ParseDeckError::BadMosfet { line, reason } => {
                write!(f, "line {line}: bad MOSFET: {reason}")
            }
            ParseDeckError::BadDirective {
                line,
                directive,
                reason,
            } => {
                write!(f, "line {line}: bad {directive} directive: {reason}")
            }
            ParseDeckError::UnboundParam { line, name } => {
                write!(f, "line {line}: unbound parameter {{{name}}}")
            }
            ParseDeckError::Circuit {
                line,
                element,
                source,
            } => {
                write!(f, "line {line}: netlist error at {element:?}: {source}")
            }
            ParseDeckError::DeckTooLarge { bytes, limit } => {
                write!(f, "deck is {bytes} bytes, limit is {limit}")
            }
            ParseDeckError::TooManyDirectives { line, limit } => {
                write!(f, "line {line}: more than {limit} directives")
            }
            ParseDeckError::TooManyElements { line, limit } => {
                write!(f, "line {line}: more than {limit} elements")
            }
            ParseDeckError::ParamTooDeep { line, token, limit } => {
                write!(
                    f,
                    "line {line}: parameter {token:?} nests braces deeper than {limit}"
                )
            }
            ParseDeckError::TooManyNodes { line, limit } => {
                write!(f, "line {line}: more than {limit} distinct nodes")
            }
        }
    }
}

impl std::error::Error for ParseDeckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDeckError::Circuit { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// The node names an element line references (raw, including ground
/// spellings).
fn kind_nodes(kind: &DeckElementKind) -> Vec<&str> {
    match kind {
        DeckElementKind::Resistor { a, b, .. } | DeckElementKind::Capacitor { a, b, .. } => {
            vec![a, b]
        }
        DeckElementKind::VoltageSource { p, n, .. }
        | DeckElementKind::CurrentSource { p, n, .. } => vec![p, n],
        DeckElementKind::Vcvs { p, n, cp, cn, .. } | DeckElementKind::Vccs { p, n, cp, cn, .. } => {
            vec![p, n, cp, cn]
        }
        DeckElementKind::Mosfet { d, g, s, b, .. } => vec![d, g, s, b],
        DeckElementKind::Diode { a, k, .. } => vec![a, k],
    }
}

/// Records node names against [`DeckLimits::max_nodes`]. Ground spellings
/// (`0`, `gnd`) are free; the limit counts distinct MNA unknowns-to-be.
fn track_nodes<'a>(
    seen: &mut std::collections::HashSet<String>,
    names: impl IntoIterator<Item = &'a str>,
    line: usize,
    limit: usize,
) -> Result<(), ParseDeckError> {
    for name in names {
        if name == "0" || name.eq_ignore_ascii_case("gnd") {
            continue;
        }
        if !seen.contains(name) {
            if seen.len() >= limit {
                return Err(ParseDeckError::TooManyNodes { line, limit });
            }
            seen.insert(name.to_string());
        }
    }
    Ok(())
}

/// Extracts the value of a `K=<value>` style keyword field,
/// case-insensitively on the key, preserving the value's case.
fn keyword_value<'a>(field: &'a str, key: &str) -> Option<&'a str> {
    let prefix_len = key.len() + 1;
    if field.len() >= prefix_len
        && field.as_bytes()[key.len()] == b'='
        && field[..key.len()].eq_ignore_ascii_case(key)
    {
        Some(&field[prefix_len..])
    } else {
        None
    }
}

/// Parses a deck into its [`DeckAst`] without building a circuit, keeping
/// `{param}` placeholders and testbench directives.
///
/// Enforces [`DeckLimits::default`] as a hostile-input backstop; use
/// [`parse_deck_ast_limited`] to tighten (or relax) the bounds at an
/// untrusted boundary.
///
/// # Errors
///
/// Returns [`ParseDeckError`] (with the 1-based line number) for malformed
/// lines or directives.
pub fn parse_deck_ast(deck: &str) -> Result<DeckAst, ParseDeckError> {
    parse_deck_ast_limited(deck, &DeckLimits::default())
}

/// [`parse_deck_ast`] with explicit [`DeckLimits`] — the untrusted-input
/// entry point used by ingestion boundaries such as `specwise-serve`.
///
/// # Errors
///
/// Returns [`ParseDeckError`] for malformed lines or directives, including
/// the typed limit violations [`ParseDeckError::DeckTooLarge`],
/// [`ParseDeckError::TooManyDirectives`],
/// [`ParseDeckError::TooManyElements`] and
/// [`ParseDeckError::ParamTooDeep`]. Never panics, whatever the input.
pub fn parse_deck_ast_limited(deck: &str, limits: &DeckLimits) -> Result<DeckAst, ParseDeckError> {
    if deck.len() > limits.max_bytes {
        return Err(ParseDeckError::DeckTooLarge {
            bytes: deck.len(),
            limit: limits.max_bytes,
        });
    }
    let mut ast = DeckAst::default();
    let mut directives = 0usize;
    let mut node_names = std::collections::HashSet::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() || text.starts_with('*') {
            continue;
        }
        let fields: Vec<&str> = text.split_whitespace().collect();
        let head = fields[0];
        let upper = head.to_ascii_uppercase();

        let need = |k: usize| -> Result<&str, ParseDeckError> {
            fields
                .get(k)
                .copied()
                .ok_or(ParseDeckError::TooFewFields { line })
        };
        let num = |k: usize| -> Result<f64, ParseDeckError> { parse_value(need(k)?, line) };
        let value = |k: usize| -> Result<DeckValue, ParseDeckError> {
            DeckValue::parse(need(k)?, line, limits)
        };
        let bad = |directive: &str, reason: String| ParseDeckError::BadDirective {
            line,
            directive: directive.to_string(),
            reason,
        };

        if let Some(directive) = upper.strip_prefix('.') {
            directives += 1;
            if directives > limits.max_directives {
                return Err(ParseDeckError::TooManyDirectives {
                    line,
                    limit: limits.max_directives,
                });
            }
            match directive {
                "END" => break,
                "TEMP" => {
                    let c = num(1)?;
                    // `Circuit::set_temperature` asserts kelvin > 0; reject
                    // physically impossible temperatures at the parse
                    // boundary so hostile decks get a typed error.
                    if c <= -273.15 {
                        return Err(bad(
                            ".temp",
                            format!("temperature {c} °C is at or below absolute zero"),
                        ));
                    }
                    ast.temp_c = Some(c);
                }
                "NAME" => {
                    if fields.len() < 2 {
                        return Err(ParseDeckError::TooFewFields { line });
                    }
                    ast.title = Some(fields[1..].join(" "));
                }
                "NODES" => {
                    if fields.len() < 2 {
                        return Err(ParseDeckError::TooFewFields { line });
                    }
                    track_nodes(
                        &mut node_names,
                        fields[1..].iter().copied(),
                        line,
                        limits.max_nodes,
                    )?;
                    for f in &fields[1..] {
                        ast.nodes.push((*f).to_string());
                    }
                }
                "DESIGN" => {
                    if fields.len() != 6 {
                        return Err(bad(
                            ".design",
                            format!(
                                "expected `.design <var> <unit> <lo> <hi> <init>`, got {} fields",
                                fields.len()
                            ),
                        ));
                    }
                    ast.designs.push(DesignDirective {
                        line,
                        name: need(1)?.to_string(),
                        unit: need(2)?.to_string(),
                        lower: num(3)?,
                        upper: num(4)?,
                        initial: num(5)?,
                    });
                }
                "SPEC" => {
                    if fields.len() != 6 {
                        return Err(bad(
                            ".spec",
                            format!("expected `.spec <name> <unit> <min|max> <bound> <measure>`, got {} fields", fields.len()),
                        ));
                    }
                    let dir = need(3)?;
                    let lower_bound = if dir.eq_ignore_ascii_case("min") {
                        true
                    } else if dir.eq_ignore_ascii_case("max") {
                        false
                    } else {
                        return Err(bad(
                            ".spec",
                            format!("direction must be `min` or `max`, got {dir:?}"),
                        ));
                    };
                    ast.specs.push(SpecDirective {
                        line,
                        name: need(1)?.to_string(),
                        unit: need(2)?.to_string(),
                        lower_bound,
                        bound: num(4)?,
                        measure: need(5)?.to_string(),
                    });
                }
                "RANGE" => {
                    if fields.len() != 4 {
                        return Err(bad(
                            ".range",
                            format!(
                                "expected `.range <temp|vdd> <lo> <hi>`, got {} fields",
                                fields.len()
                            ),
                        ));
                    }
                    let quantity = need(1)?.to_ascii_lowercase();
                    if quantity != "temp" && quantity != "vdd" {
                        return Err(bad(
                            ".range",
                            format!("quantity must be `temp` or `vdd`, got {:?}", need(1)?),
                        ));
                    }
                    ast.ranges.push(RangeDirective {
                        line,
                        quantity,
                        lower: num(2)?,
                        upper: num(3)?,
                    });
                }
                "MATCH" => {
                    if fields.len() < 2 {
                        return Err(bad(".match", "expected at least one device".to_string()));
                    }
                    let devices: Vec<String> =
                        fields[1..].iter().map(|f| (*f).to_string()).collect();
                    for (i, dev) in devices.iter().enumerate() {
                        if devices[..i].contains(dev) {
                            return Err(bad(".match", format!("device {dev:?} listed twice")));
                        }
                    }
                    ast.matches.push(MatchDirective { line, devices });
                }
                "TB" => {
                    if fields.len() != 3 {
                        return Err(bad(
                            ".tb",
                            format!("expected `.tb <key> <value>`, got {} fields", fields.len()),
                        ));
                    }
                    ast.tb.push(TbDirective {
                        line,
                        key: need(1)?.to_ascii_lowercase(),
                        value: need(2)?.to_string(),
                    });
                }
                _ => {
                    return Err(ParseDeckError::UnknownElement {
                        line,
                        token: head.to_string(),
                    })
                }
            }
            continue;
        }

        let node = |k: usize| -> Result<String, ParseDeckError> { Ok(need(k)?.to_string()) };
        let kind = match upper.chars().next() {
            Some('R') => DeckElementKind::Resistor {
                a: node(1)?,
                b: node(2)?,
                value: value(3)?,
            },
            Some('C') => DeckElementKind::Capacitor {
                a: node(1)?,
                b: node(2)?,
                value: value(3)?,
            },
            Some('V') | Some('I') => {
                let p = node(1)?;
                let n = node(2)?;
                let dc = value(3)?;
                let ac = match fields.get(4) {
                    Some(kw) if kw.eq_ignore_ascii_case("ac") => Some(num(5)?),
                    _ => None,
                };
                if upper.starts_with('V') {
                    DeckElementKind::VoltageSource { p, n, dc, ac }
                } else {
                    DeckElementKind::CurrentSource { p, n, dc, ac }
                }
            }
            Some('E') => DeckElementKind::Vcvs {
                p: node(1)?,
                n: node(2)?,
                cp: node(3)?,
                cn: node(4)?,
                gain: value(5)?,
            },
            Some('G') => DeckElementKind::Vccs {
                p: node(1)?,
                n: node(2)?,
                cp: node(3)?,
                cn: node(4)?,
                gm: value(5)?,
            },
            Some('D') => {
                let a = node(1)?;
                let k = node(2)?;
                let mut is_sat = DeckValue::Num(1e-14);
                let mut ideality = DeckValue::Num(1.0);
                for f in &fields[3..] {
                    if let Some(v) = keyword_value(f, "IS") {
                        is_sat = DeckValue::parse(v, line, limits)?;
                    } else if let Some(v) = keyword_value(f, "N") {
                        ideality = DeckValue::parse(v, line, limits)?;
                    }
                }
                DeckElementKind::Diode {
                    a,
                    k,
                    is_sat,
                    ideality,
                }
            }
            Some('M') => {
                let d = node(1)?;
                let g = node(2)?;
                let s = node(3)?;
                let b = node(4)?;
                let polarity = match need(5)?.to_ascii_uppercase().as_str() {
                    "NMOS" => MosPolarity::Nmos,
                    "PMOS" => MosPolarity::Pmos,
                    _ => {
                        return Err(ParseDeckError::BadMosfet {
                            line,
                            reason: "model must be NMOS or PMOS",
                        })
                    }
                };
                let mut w = None;
                let mut l = None;
                for f in &fields[6..] {
                    if let Some(v) = keyword_value(f, "W") {
                        w = Some(DeckValue::parse(v, line, limits)?);
                    } else if let Some(v) = keyword_value(f, "L") {
                        l = Some(DeckValue::parse(v, line, limits)?);
                    }
                }
                let (Some(w), Some(l)) = (w, l) else {
                    return Err(ParseDeckError::BadMosfet {
                        line,
                        reason: "W= and L= are required",
                    });
                };
                DeckElementKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    polarity,
                    w,
                    l,
                }
            }
            _ => {
                return Err(ParseDeckError::UnknownElement {
                    line,
                    token: head.to_string(),
                })
            }
        };
        if ast.elements.len() >= limits.max_elements {
            return Err(ParseDeckError::TooManyElements {
                line,
                limit: limits.max_elements,
            });
        }
        track_nodes(&mut node_names, kind_nodes(&kind), line, limits.max_nodes)?;
        ast.elements.push(DeckElement {
            line,
            name: head.to_string(),
            kind,
        });
    }
    Ok(ast)
}

impl DeckAst {
    /// Lowers the AST to a [`Circuit`]. Testbench directives (`.design`,
    /// `.spec`, …) carry no circuit content and are ignored; every element
    /// value must be a literal by now.
    ///
    /// # Errors
    ///
    /// Returns [`ParseDeckError::UnboundParam`] for surviving `{param}`
    /// placeholders and [`ParseDeckError::Circuit`] (with the element's
    /// line) when the netlist builder rejects an element.
    pub fn to_circuit(&self) -> Result<Circuit, ParseDeckError> {
        let mut ckt = Circuit::new();
        for n in &self.nodes {
            ckt_node(&mut ckt, n);
        }
        if let Some(c) = self.temp_c {
            // The parser already rejects these, but a hand-built AST can
            // carry any value; keep the trust boundary panic-free. The AST
            // does not record the `.temp` source line, so report line 1.
            if !c.is_finite() || c <= -273.15 {
                return Err(ParseDeckError::BadDirective {
                    line: 1,
                    directive: ".temp".to_string(),
                    reason: format!("temperature {c} °C is at or below absolute zero"),
                });
            }
            ckt.set_temperature(c + 273.15);
        }
        for e in &self.elements {
            let line = e.line;
            let wrap = |err: MnaError| ParseDeckError::Circuit {
                line,
                element: e.name.clone(),
                source: err,
            };
            match &e.kind {
                DeckElementKind::Resistor { a, b, value } => {
                    let (a, b) = (ckt_node(&mut ckt, a), ckt_node(&mut ckt, b));
                    ckt.resistor(&e.name, a, b, value.require_num(line)?)
                        .map_err(wrap)?;
                }
                DeckElementKind::Capacitor { a, b, value } => {
                    let (a, b) = (ckt_node(&mut ckt, a), ckt_node(&mut ckt, b));
                    ckt.capacitor(&e.name, a, b, value.require_num(line)?)
                        .map_err(wrap)?;
                }
                DeckElementKind::VoltageSource { p, n, dc, ac } => {
                    let (p, n) = (ckt_node(&mut ckt, p), ckt_node(&mut ckt, n));
                    ckt.voltage_source(&e.name, p, n, dc.require_num(line)?)
                        .map_err(wrap)?;
                    if let Some(mag) = ac {
                        ckt.set_ac(&e.name, *mag).map_err(wrap)?;
                    }
                }
                DeckElementKind::CurrentSource { p, n, dc, ac } => {
                    let (p, n) = (ckt_node(&mut ckt, p), ckt_node(&mut ckt, n));
                    ckt.current_source(&e.name, p, n, dc.require_num(line)?)
                        .map_err(wrap)?;
                    if let Some(mag) = ac {
                        ckt.set_ac(&e.name, *mag).map_err(wrap)?;
                    }
                }
                DeckElementKind::Vcvs { p, n, cp, cn, gain } => {
                    let (p, n) = (ckt_node(&mut ckt, p), ckt_node(&mut ckt, n));
                    let (cp, cn) = (ckt_node(&mut ckt, cp), ckt_node(&mut ckt, cn));
                    ckt.vcvs(&e.name, p, n, cp, cn, gain.require_num(line)?)
                        .map_err(wrap)?;
                }
                DeckElementKind::Vccs { p, n, cp, cn, gm } => {
                    let (p, n) = (ckt_node(&mut ckt, p), ckt_node(&mut ckt, n));
                    let (cp, cn) = (ckt_node(&mut ckt, cp), ckt_node(&mut ckt, cn));
                    ckt.vccs(&e.name, p, n, cp, cn, gm.require_num(line)?)
                        .map_err(wrap)?;
                }
                DeckElementKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    polarity,
                    w,
                    l,
                } => {
                    let (d, g) = (ckt_node(&mut ckt, d), ckt_node(&mut ckt, g));
                    let (s, b) = (ckt_node(&mut ckt, s), ckt_node(&mut ckt, b));
                    let model = match polarity {
                        MosPolarity::Nmos => MosfetModel::default_nmos(),
                        MosPolarity::Pmos => MosfetModel::default_pmos(),
                    };
                    let params =
                        MosfetParams::new(model, w.require_num(line)?, l.require_num(line)?);
                    ckt.mosfet(&e.name, d, g, s, b, params).map_err(wrap)?;
                }
                DeckElementKind::Diode {
                    a,
                    k,
                    is_sat,
                    ideality,
                } => {
                    let (a, k) = (ckt_node(&mut ckt, a), ckt_node(&mut ckt, k));
                    ckt.diode(
                        &e.name,
                        a,
                        k,
                        is_sat.require_num(line)?,
                        ideality.require_num(line)?,
                    )
                    .map_err(wrap)?;
                }
            }
        }
        Ok(ckt)
    }

    /// Prints the AST back to canonical deck text. Parsing the output
    /// reproduces an equal AST (numbers are printed in round-trip exponent
    /// form, placeholders as `{name}`).
    pub fn to_deck(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let n = |v: f64| format!("{v:e}");
        if let Some(title) = &self.title {
            let _ = writeln!(out, ".name {title}");
        }
        if !self.nodes.is_empty() {
            let _ = writeln!(out, ".nodes {}", self.nodes.join(" "));
        }
        if let Some(c) = self.temp_c {
            let _ = writeln!(out, ".temp {}", n(c));
        }
        for d in &self.designs {
            let _ = writeln!(
                out,
                ".design {} {} {} {} {}",
                d.name,
                d.unit,
                n(d.lower),
                n(d.upper),
                n(d.initial)
            );
        }
        for r in &self.ranges {
            let _ = writeln!(out, ".range {} {} {}", r.quantity, n(r.lower), n(r.upper));
        }
        for s in &self.specs {
            let _ = writeln!(
                out,
                ".spec {} {} {} {} {}",
                s.name,
                s.unit,
                if s.lower_bound { "min" } else { "max" },
                n(s.bound),
                s.measure
            );
        }
        for m in &self.matches {
            let _ = writeln!(out, ".match {}", m.devices.join(" "));
        }
        for t in &self.tb {
            let _ = writeln!(out, ".tb {} {}", t.key, t.value);
        }
        for e in &self.elements {
            match &e.kind {
                DeckElementKind::Resistor { a, b, value }
                | DeckElementKind::Capacitor { a, b, value } => {
                    let _ = writeln!(out, "{} {} {} {}", e.name, a, b, value);
                }
                DeckElementKind::VoltageSource { p, n, dc, ac }
                | DeckElementKind::CurrentSource { p, n, dc, ac } => {
                    let _ = write!(out, "{} {} {} {}", e.name, p, n, dc);
                    if let Some(mag) = ac {
                        let _ = write!(out, " AC {mag:e}");
                    }
                    out.push('\n');
                }
                DeckElementKind::Vcvs { p, n, cp, cn, gain } => {
                    let _ = writeln!(out, "{} {} {} {} {} {}", e.name, p, n, cp, cn, gain);
                }
                DeckElementKind::Vccs { p, n, cp, cn, gm } => {
                    let _ = writeln!(out, "{} {} {} {} {} {}", e.name, p, n, cp, cn, gm);
                }
                DeckElementKind::Mosfet {
                    d,
                    g,
                    s,
                    b,
                    polarity,
                    w,
                    l,
                } => {
                    let model = match polarity {
                        MosPolarity::Nmos => "NMOS",
                        MosPolarity::Pmos => "PMOS",
                    };
                    let _ = writeln!(
                        out,
                        "{} {} {} {} {} {} W={} L={}",
                        e.name, d, g, s, b, model, w, l
                    );
                }
                DeckElementKind::Diode {
                    a,
                    k,
                    is_sat,
                    ideality,
                } => {
                    let _ = writeln!(out, "{} {} {} IS={} N={}", e.name, a, k, is_sat, ideality);
                }
            }
        }
        out.push_str(".end\n");
        out
    }
}

/// Parses a SPICE-style deck into a [`Circuit`].
///
/// Testbench directives are accepted and ignored at this level; decks with
/// unbound `{param}` placeholders are rejected (use
/// `specwise_ckt::Testbench::from_deck` to bind them).
///
/// # Errors
///
/// Returns [`ParseDeckError`] for malformed lines; element-level validation
/// errors are wrapped in [`ParseDeckError::Circuit`] with the element's
/// 1-based line number and instance name.
///
/// # Example
///
/// ```
/// use specwise_mna::{parse_deck, DcOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ckt = parse_deck(
///     "* resistive divider
///      V1 in 0 2.0
///      R1 in mid 1k
///      R2 mid 0 1k
///      .end",
/// )?;
/// let op = DcOp::new(&ckt).solve()?;
/// let mid = ckt.find_node("mid")?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(deck: &str) -> Result<Circuit, ParseDeckError> {
    parse_deck_ast(deck)?.to_circuit()
}

/// Node interning that maps `0`/`GND`/`gnd` to ground.
fn ckt_node(ckt: &mut Circuit, name: &str) -> NodeId {
    if name == "0" || name.eq_ignore_ascii_case("gnd") {
        Circuit::GROUND
    } else {
        ckt.node(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcSolver, DcOp};

    #[test]
    fn value_suffixes() {
        let close = |t: &str, want: f64| {
            let got = parse_value(t, 1).unwrap();
            assert!((got / want - 1.0).abs() < 1e-12, "{t}: {got} vs {want}");
        };
        close("10k", 10e3);
        close("2.5u", 2.5e-6);
        close("1.2pF", 1.2e-12);
        close("3meg", 3e6);
        close("3MEG", 3e6);
        close("5m", 5e-3);
        close("7", 7.0);
        close("1e-9", 1e-9);
        close("2.2n", 2.2e-9);
        close("4f", 4e-15);
        close("1G", 1e9);
        close("3V", 3.0);
        assert!(parse_value("abc", 1).is_err());
        assert!(parse_value("", 1).is_err());
    }

    #[test]
    fn divider_deck() {
        let ckt = parse_deck(
            "* divider
             V1 in 0 2.0
             R1 in mid 1k
             R2 mid gnd 1K
             .end",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let mid = ckt.find_node("mid").unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rc_with_ac_stimulus() {
        let ckt = parse_deck(
            "V1 in 0 0 AC 1
             R1 in out 1k
             C1 out 0 1u",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let out = ckt.find_node("out").unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let h = ac.solve(f3db).unwrap().voltage(out);
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn mosfet_line() {
        let ckt = parse_deck(
            "VDD vdd 0 3.0
             VG g 0 1.0
             RD vdd d 20k
             M1 d g 0 0 NMOS W=10u L=1u",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap();
        assert!(m.id > 1e-6, "device conducts");
        let p = ckt.mosfet_params("M1").unwrap();
        assert!((p.w - 10e-6).abs() < 1e-18);
        assert!((p.l - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn controlled_sources_and_temp() {
        let ckt = parse_deck(
            ".temp 85
             V1 in 0 0.5
             E1 out 0 in 0 4
             RL out 0 1k
             G1 out2 0 in 0 1m
             R2 out2 0 2k",
        )
        .unwrap();
        assert!((ckt.temperature() - (85.0 + 273.15)).abs() < 1e-9);
        let op = DcOp::new(&ckt).solve().unwrap();
        assert!((op.voltage(ckt.find_node("out").unwrap()) - 2.0).abs() < 1e-9);
        // G1 pulls gm·vin out of out2: v = −1m·0.5·2k = −1.
        assert!((op.voltage(ckt.find_node("out2").unwrap()) + 1.0).abs() < 1e-8);
    }

    #[test]
    fn diode_line_with_defaults_and_params() {
        let ckt = parse_deck(
            "V1 a 0 3.0
             R1 a d 1k
             D1 d 0
             D2 d 0 IS=1e-12 N=2",
        )
        .unwrap();
        assert_eq!(ckt.num_elements(), 4);
        let op = DcOp::new(&ckt).solve().unwrap();
        let d = ckt.find_node("d").unwrap();
        assert!(op.voltage(d) > 0.3 && op.voltage(d) < 0.9);
    }

    #[test]
    fn comments_and_end() {
        let ckt = parse_deck(
            "* top comment
             V1 a 0 1.0 ; inline comment
             R1 a 0 1k
             .END
             R2 ignored 0 1k",
        )
        .unwrap();
        assert_eq!(ckt.num_elements(), 2, ".end stops parsing");
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_deck("R1 a 0"),
            Err(ParseDeckError::TooFewFields { line: 1 })
        ));
        assert!(matches!(
            parse_deck("X1 a 0 1k"),
            Err(ParseDeckError::UnknownElement { line: 1, .. })
        ));
        assert!(matches!(
            parse_deck("M1 d g 0 0 NMOS W=10u"),
            Err(ParseDeckError::BadMosfet { .. })
        ));
        assert!(matches!(
            parse_deck("M1 d g 0 0 BJT W=1u L=1u"),
            Err(ParseDeckError::BadMosfet { .. })
        ));
        assert!(matches!(
            parse_deck("R1 a 0 -5"),
            Err(ParseDeckError::Circuit { .. })
        ));
        assert!(matches!(
            parse_deck(".include foo.cir"),
            Err(ParseDeckError::UnknownElement { .. })
        ));
    }

    #[test]
    fn circuit_errors_carry_line_and_element() {
        let err = parse_deck("V1 a 0 1.0\nR1 a 0 1k\nR2 b 0 -5").unwrap_err();
        match &err {
            ParseDeckError::Circuit { line, element, .. } => {
                assert_eq!(*line, 3);
                assert_eq!(element, "R2");
            }
            other => panic!("expected Circuit error, got {other:?}"),
        }
        assert_eq!(err.line(), 3);
        let msg = err.to_string();
        assert!(msg.contains("line 3"), "message was: {msg}");
        assert!(msg.contains("R2"), "message was: {msg}");
    }

    #[test]
    fn duplicate_names_rejected_via_circuit_error() {
        let r = parse_deck("R1 a 0 1k\nR1 a 0 2k");
        assert!(matches!(
            r,
            Err(ParseDeckError::Circuit {
                line: 2,
                source: MnaError::DuplicateName { .. },
                ..
            })
        ));
    }

    #[test]
    fn directives_parse_into_ast() {
        let ast = parse_deck_ast(
            ".name my testbench
             .nodes vdd out
             .design w1 um 2 400 8
             .spec A0 dB min 80 dcgain
             .spec Power mW max 1.3 power
             .range temp -40 125
             .range vdd 4.5 5.5
             .match m1 m2
             .tb out out
             VDD vdd 0 {vdd}
             M1 out vdd 0 0 NMOS W={w1} L=1u
             .end",
        )
        .unwrap();
        assert_eq!(ast.title.as_deref(), Some("my testbench"));
        assert_eq!(ast.nodes, vec!["vdd", "out"]);
        assert_eq!(ast.designs.len(), 1);
        assert_eq!(ast.designs[0].name, "w1");
        assert_eq!(ast.designs[0].unit, "um");
        assert_eq!(ast.designs[0].lower, 2.0);
        assert_eq!(ast.specs.len(), 2);
        assert!(ast.specs[0].lower_bound);
        assert!(!ast.specs[1].lower_bound);
        assert_eq!(ast.specs[1].measure, "power");
        assert_eq!(ast.ranges.len(), 2);
        assert_eq!(ast.matches[0].devices, vec!["m1", "m2"]);
        assert_eq!(ast.tb[0].key, "out");
        match &ast.elements[0].kind {
            DeckElementKind::VoltageSource { dc, .. } => {
                assert_eq!(*dc, DeckValue::Param("vdd".to_string()));
            }
            other => panic!("unexpected: {other:?}"),
        }
    }

    #[test]
    fn unbound_param_rejected_at_circuit_level() {
        let err = parse_deck("V1 a 0 {vdd}").unwrap_err();
        assert!(matches!(err, ParseDeckError::UnboundParam { line: 1, .. }));
        assert!(err.to_string().contains("{vdd}"));
    }

    #[test]
    fn malformed_directives_rejected() {
        // .spec: wrong arity, bad direction, bad bound.
        assert!(matches!(
            parse_deck_ast(".spec A0 dB min 80"),
            Err(ParseDeckError::BadDirective { line: 1, .. })
        ));
        assert!(matches!(
            parse_deck_ast(".spec A0 dB atleast 80 dcgain"),
            Err(ParseDeckError::BadDirective { .. })
        ));
        assert!(matches!(
            parse_deck_ast(".spec A0 dB min eighty dcgain"),
            Err(ParseDeckError::BadValue { .. })
        ));
        // .match: empty, duplicate device.
        assert!(matches!(
            parse_deck_ast(".match"),
            Err(ParseDeckError::BadDirective { .. })
        ));
        assert!(matches!(
            parse_deck_ast(".match m1 m1"),
            Err(ParseDeckError::BadDirective { .. })
        ));
        // .range: unknown quantity.
        assert!(matches!(
            parse_deck_ast(".range humidity 0 1"),
            Err(ParseDeckError::BadDirective { .. })
        ));
        // .design: wrong arity.
        assert!(matches!(
            parse_deck_ast(".design w1 um 2 400"),
            Err(ParseDeckError::BadDirective { .. })
        ));
    }

    #[test]
    fn ingestion_limits_reject_hostile_decks_with_typed_errors() {
        // Oversized deck.
        let tight = DeckLimits {
            max_bytes: 64,
            ..DeckLimits::default()
        };
        let big = "* padding\n".repeat(20);
        assert!(matches!(
            parse_deck_ast_limited(&big, &tight),
            Err(ParseDeckError::DeckTooLarge { limit: 64, .. })
        ));

        // Too many directives.
        let tight = DeckLimits {
            max_directives: 3,
            ..DeckLimits::default()
        };
        let deck = ".tb out out\n".repeat(5);
        let err = parse_deck_ast_limited(&deck, &tight).unwrap_err();
        assert!(matches!(
            err,
            ParseDeckError::TooManyDirectives { line: 4, limit: 3 }
        ));

        // Too many elements.
        let tight = DeckLimits {
            max_elements: 2,
            ..DeckLimits::default()
        };
        let deck = "R1 a 0 1k\nR2 a 0 1k\nR3 a 0 1k\n";
        assert!(matches!(
            parse_deck_ast_limited(deck, &tight),
            Err(ParseDeckError::TooManyElements { line: 3, limit: 2 })
        ));

        // Brace-nesting bombs, under the default depth limit of 1.
        for token in ["{{w1}}", "{a{b}c}", "{{{x}}}"] {
            let deck = format!("V1 a 0 {token}\n");
            let err = parse_deck_ast(&deck).unwrap_err();
            assert!(
                matches!(err, ParseDeckError::ParamTooDeep { line: 1, .. }),
                "{token}: {err:?}"
            );
            assert_eq!(err.line(), 1);
        }
        // A plain placeholder still parses.
        let ast = parse_deck_ast("V1 a 0 {vdd}\n").unwrap();
        assert_eq!(ast.elements.len(), 1);
    }

    #[test]
    fn default_limits_accept_real_decks() {
        let deck = "V1 in 0 2.0\nR1 in mid 1k\nR2 mid 0 1k\n.end";
        assert_eq!(
            parse_deck_ast(deck).unwrap(),
            parse_deck_ast_limited(deck, &DeckLimits::default()).unwrap()
        );
    }

    #[test]
    fn print_parse_round_trip() {
        let deck = ".name Miller opamp
             .nodes vdd inp out
             .temp 27
             .design w1 um 2 400 8
             .design ib uA 1 100 10
             .range temp -40 125
             .spec A0 dB min 80 dcgain
             .match m1 m2
             .tb vinp VINP
             VDD vdd 0 {vdd} ; supply
             VINP inp 0 2.5 AC 0.5
             IB1 vdd bias {ib}
             RZ a b 1.2e3
             CC a out 3p
             E1 e 0 a b 2
             G1 g 0 a b 1m
             M1 out inp 0 0 NMOS W={w1} L=2e-6
             D1 a 0 IS=1e-12 N=2
             .end";
        let ast = parse_deck_ast(deck).unwrap();
        let printed = ast.to_deck();
        let ast2 = parse_deck_ast(&printed).unwrap();
        assert_eq!(ast, ast2, "printed deck:\n{printed}");
        // Printing is idempotent.
        assert_eq!(printed, ast2.to_deck());
    }

    #[test]
    fn declared_nodes_pin_numbering() {
        let ckt = parse_deck(
            ".nodes b a
             V1 a 0 1.0
             R1 a b 1k
             R2 b 0 1k",
        )
        .unwrap();
        // `b` was declared first, so it gets the smaller node id even
        // though `a` appears first in the elements.
        let a = ckt.find_node("a").unwrap();
        let b = ckt.find_node("b").unwrap();
        assert!(b < a);
    }
}
