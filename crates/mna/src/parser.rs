//! A SPICE-style netlist deck parser.
//!
//! Supports the subset of SPICE syntax the simulator implements, so decks
//! can be written by hand or exported from schematic tools:
//!
//! ```text
//! * comment lines start with '*', ';' starts an inline comment
//! R<name> <n+> <n-> <value>
//! C<name> <n+> <n-> <value>
//! V<name> <n+> <n-> <value>            ; independent voltage source
//! V<name> <n+> <n-> <value> AC <mag>   ; with AC magnitude
//! I<name> <n+> <n-> <value>            ; independent current source
//! E<name> <n+> <n-> <nc+> <nc-> <gain> ; VCVS
//! G<name> <n+> <n-> <nc+> <nc-> <gm>   ; VCCS
//! M<name> <d> <g> <s> <b> <NMOS|PMOS> W=<value> L=<value>
//! D<name> <a> <k> [IS=<value>] [N=<value>]
//! .TEMP <celsius>
//! .END
//! ```
//!
//! Values accept the SPICE magnitude suffixes `T G MEG K M U N P F`
//! (case-insensitive; `M` is milli, `MEG` is 1e6) with an optional trailing
//! unit word (`10K`, `2.5u`, `1.2pF`, `3meg`).
//!
//! MOSFETs use the built-in Level-1 model cards
//! ([`MosfetModel::default_nmos`]/[`MosfetModel::default_pmos`]); per-deck
//! model cards are out of scope.

use crate::{Circuit, MnaError, MosfetModel, MosfetParams, NodeId};

/// Parses a numeric field with SPICE magnitude suffixes.
///
/// # Errors
///
/// Returns [`MnaError::InvalidRequest`]-style parse errors via
/// [`ParseDeckError`].
fn parse_value(token: &str) -> Result<f64, ParseDeckError> {
    let t = token.trim();
    if t.is_empty() {
        return Err(ParseDeckError::BadValue {
            token: token.to_string(),
        });
    }
    // Split the leading numeric part from the suffix.
    let num_end = t
        .find(|c: char| {
            !(c.is_ascii_digit() || c == '.' || c == '-' || c == '+' || c == 'e' || c == 'E')
        })
        .unwrap_or(t.len());
    // Guard against exponents like 1e-9 whose '-' follows 'e'.
    let (num_str, suffix) = t.split_at(num_end);
    let base: f64 = num_str.parse().map_err(|_| ParseDeckError::BadValue {
        token: token.to_string(),
    })?;
    let suffix = suffix.to_ascii_lowercase();
    let scale = if suffix.starts_with("meg") {
        1e6
    } else {
        match suffix.chars().next() {
            None => 1.0,
            Some('t') => 1e12,
            Some('g') => 1e9,
            Some('k') => 1e3,
            Some('m') => 1e-3,
            Some('u') => 1e-6,
            Some('n') => 1e-9,
            Some('p') => 1e-12,
            Some('f') => 1e-15,
            // A bare unit word like "V" or "Ohm".
            Some(c) if c.is_ascii_alphabetic() => 1.0,
            Some(_) => {
                return Err(ParseDeckError::BadValue {
                    token: token.to_string(),
                });
            }
        }
    };
    Ok(base * scale)
}

/// Errors produced when parsing a netlist deck.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ParseDeckError {
    /// A numeric field could not be parsed.
    BadValue {
        /// The offending token.
        token: String,
    },
    /// A line has too few fields for its element type.
    TooFewFields {
        /// 1-based line number.
        line: usize,
    },
    /// Unknown element prefix or directive.
    UnknownElement {
        /// 1-based line number.
        line: usize,
        /// The leading token.
        token: String,
    },
    /// A MOSFET line is missing `W=`/`L=` or names an unknown model.
    BadMosfet {
        /// 1-based line number.
        line: usize,
        /// What was wrong.
        reason: &'static str,
    },
    /// The netlist builder rejected an element (duplicate name, bad value…).
    Circuit(MnaError),
}

impl std::fmt::Display for ParseDeckError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ParseDeckError::BadValue { token } => write!(f, "cannot parse value {token:?}"),
            ParseDeckError::TooFewFields { line } => write!(f, "too few fields on line {line}"),
            ParseDeckError::UnknownElement { line, token } => {
                write!(f, "unknown element or directive {token:?} on line {line}")
            }
            ParseDeckError::BadMosfet { line, reason } => {
                write!(f, "bad MOSFET on line {line}: {reason}")
            }
            ParseDeckError::Circuit(e) => write!(f, "netlist error: {e}"),
        }
    }
}

impl std::error::Error for ParseDeckError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ParseDeckError::Circuit(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MnaError> for ParseDeckError {
    fn from(e: MnaError) -> Self {
        ParseDeckError::Circuit(e)
    }
}

/// Parses a SPICE-style deck into a [`Circuit`].
///
/// # Errors
///
/// Returns [`ParseDeckError`] for malformed lines; element-level validation
/// errors are wrapped in [`ParseDeckError::Circuit`].
///
/// # Example
///
/// ```
/// use specwise_mna::{parse_deck, DcOp};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let ckt = parse_deck(
///     "* resistive divider
///      V1 in 0 2.0
///      R1 in mid 1k
///      R2 mid 0 1k
///      .end",
/// )?;
/// let op = DcOp::new(&ckt).solve()?;
/// let mid = ckt.find_node("mid")?;
/// assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
pub fn parse_deck(deck: &str) -> Result<Circuit, ParseDeckError> {
    let mut ckt = Circuit::new();
    for (lineno, raw) in deck.lines().enumerate() {
        let line = lineno + 1;
        // Strip comments.
        let text = raw.split(';').next().unwrap_or("").trim();
        if text.is_empty() || text.starts_with('*') {
            continue;
        }
        let fields: Vec<&str> = text.split_whitespace().collect();
        let head = fields[0];
        let upper = head.to_ascii_uppercase();

        if let Some(directive) = upper.strip_prefix('.') {
            match directive {
                "END" => break,
                "TEMP" => {
                    let celsius =
                        parse_value(fields.get(1).ok_or(ParseDeckError::TooFewFields { line })?)?;
                    ckt.set_temperature(celsius + 273.15);
                }
                _ => {
                    return Err(ParseDeckError::UnknownElement {
                        line,
                        token: head.to_string(),
                    })
                }
            }
            continue;
        }

        let mut node = |name: &str| -> NodeId { ckt_node(&mut ckt, name) };
        let need = |k: usize| -> Result<&str, ParseDeckError> {
            fields
                .get(k)
                .copied()
                .ok_or(ParseDeckError::TooFewFields { line })
        };

        match upper.chars().next() {
            Some('R') => {
                let (a, b) = (node(need(1)?), node(need(2)?));
                let v = parse_value(need(3)?)?;
                ckt.resistor(head, a, b, v)?;
            }
            Some('C') => {
                let (a, b) = (node(need(1)?), node(need(2)?));
                let v = parse_value(need(3)?)?;
                ckt.capacitor(head, a, b, v)?;
            }
            Some('V') => {
                let (p, n) = (node(need(1)?), node(need(2)?));
                let v = parse_value(need(3)?)?;
                ckt.voltage_source(head, p, n, v)?;
                // Optional "AC <mag>".
                if let Some(kw) = fields.get(4) {
                    if kw.eq_ignore_ascii_case("ac") {
                        let mag = parse_value(need(5)?)?;
                        ckt.set_ac(head, mag)?;
                    }
                }
            }
            Some('I') => {
                let (p, n) = (node(need(1)?), node(need(2)?));
                let v = parse_value(need(3)?)?;
                ckt.current_source(head, p, n, v)?;
                if let Some(kw) = fields.get(4) {
                    if kw.eq_ignore_ascii_case("ac") {
                        let mag = parse_value(need(5)?)?;
                        ckt.set_ac(head, mag)?;
                    }
                }
            }
            Some('E') => {
                let (p, n) = (node(need(1)?), node(need(2)?));
                let (cp, cn) = (node(need(3)?), node(need(4)?));
                let gain = parse_value(need(5)?)?;
                ckt.vcvs(head, p, n, cp, cn, gain)?;
            }
            Some('G') => {
                let (p, n) = (node(need(1)?), node(need(2)?));
                let (cp, cn) = (node(need(3)?), node(need(4)?));
                let gm = parse_value(need(5)?)?;
                ckt.vccs(head, p, n, cp, cn, gm)?;
            }
            Some('D') => {
                let (a, k) = (node(need(1)?), node(need(2)?));
                let mut is_sat = 1e-14;
                let mut ideality = 1.0;
                for f in &fields[3..] {
                    let fu = f.to_ascii_uppercase();
                    if let Some(v) = fu.strip_prefix("IS=") {
                        is_sat = parse_value(v)?;
                    } else if let Some(v) = fu.strip_prefix("N=") {
                        ideality = parse_value(v)?;
                    }
                }
                ckt.diode(head, a, k, is_sat, ideality)?;
            }
            Some('M') => {
                let (d, g) = (node(need(1)?), node(need(2)?));
                let (s, b) = (node(need(3)?), node(need(4)?));
                let model_name = need(5)?.to_ascii_uppercase();
                let model = match model_name.as_str() {
                    "NMOS" => MosfetModel::default_nmos(),
                    "PMOS" => MosfetModel::default_pmos(),
                    _ => {
                        return Err(ParseDeckError::BadMosfet {
                            line,
                            reason: "model must be NMOS or PMOS",
                        })
                    }
                };
                let mut w = None;
                let mut l = None;
                for f in &fields[6..] {
                    let fu = f.to_ascii_uppercase();
                    if let Some(v) = fu.strip_prefix("W=") {
                        w = Some(parse_value(v)?);
                    } else if let Some(v) = fu.strip_prefix("L=") {
                        l = Some(parse_value(v)?);
                    }
                }
                let (Some(w), Some(l)) = (w, l) else {
                    return Err(ParseDeckError::BadMosfet {
                        line,
                        reason: "W= and L= are required",
                    });
                };
                ckt.mosfet(head, d, g, s, b, MosfetParams::new(model, w, l))?;
            }
            _ => {
                return Err(ParseDeckError::UnknownElement {
                    line,
                    token: head.to_string(),
                })
            }
        }
    }
    Ok(ckt)
}

/// Node interning that maps `0`/`GND`/`gnd` to ground.
fn ckt_node(ckt: &mut Circuit, name: &str) -> NodeId {
    if name == "0" || name.eq_ignore_ascii_case("gnd") {
        Circuit::GROUND
    } else {
        ckt.node(name)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{AcSolver, DcOp};

    #[test]
    fn value_suffixes() {
        let close = |t: &str, want: f64| {
            let got = parse_value(t).unwrap();
            assert!((got / want - 1.0).abs() < 1e-12, "{t}: {got} vs {want}");
        };
        close("10k", 10e3);
        close("2.5u", 2.5e-6);
        close("1.2pF", 1.2e-12);
        close("3meg", 3e6);
        close("3MEG", 3e6);
        close("5m", 5e-3);
        close("7", 7.0);
        close("1e-9", 1e-9);
        close("2.2n", 2.2e-9);
        close("4f", 4e-15);
        close("1G", 1e9);
        close("3V", 3.0);
        assert!(parse_value("abc").is_err());
        assert!(parse_value("").is_err());
    }

    #[test]
    fn divider_deck() {
        let ckt = parse_deck(
            "* divider
             V1 in 0 2.0
             R1 in mid 1k
             R2 mid gnd 1K
             .end",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let mid = ckt.find_node("mid").unwrap();
        assert!((op.voltage(mid) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rc_with_ac_stimulus() {
        let ckt = parse_deck(
            "V1 in 0 0 AC 1
             R1 in out 1k
             C1 out 0 1u",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let ac = AcSolver::new(&ckt, &op);
        let out = ckt.find_node("out").unwrap();
        let f3db = 1.0 / (2.0 * std::f64::consts::PI * 1e3 * 1e-6);
        let h = ac.solve(f3db).unwrap().voltage(out);
        assert!((h.abs() - std::f64::consts::FRAC_1_SQRT_2).abs() < 1e-9);
    }

    #[test]
    fn mosfet_line() {
        let ckt = parse_deck(
            "VDD vdd 0 3.0
             VG g 0 1.0
             RD vdd d 20k
             M1 d g 0 0 NMOS W=10u L=1u",
        )
        .unwrap();
        let op = DcOp::new(&ckt).solve().unwrap();
        let m = op.mosfet_op("M1").unwrap();
        assert!(m.id > 1e-6, "device conducts");
        let p = ckt.mosfet_params("M1").unwrap();
        assert!((p.w - 10e-6).abs() < 1e-18);
        assert!((p.l - 1e-6).abs() < 1e-18);
    }

    #[test]
    fn controlled_sources_and_temp() {
        let ckt = parse_deck(
            ".temp 85
             V1 in 0 0.5
             E1 out 0 in 0 4
             RL out 0 1k
             G1 out2 0 in 0 1m
             R2 out2 0 2k",
        )
        .unwrap();
        assert!((ckt.temperature() - (85.0 + 273.15)).abs() < 1e-9);
        let op = DcOp::new(&ckt).solve().unwrap();
        assert!((op.voltage(ckt.find_node("out").unwrap()) - 2.0).abs() < 1e-9);
        // G1 pulls gm·vin out of out2: v = −1m·0.5·2k = −1.
        assert!((op.voltage(ckt.find_node("out2").unwrap()) + 1.0).abs() < 1e-8);
    }

    #[test]
    fn diode_line_with_defaults_and_params() {
        let ckt = parse_deck(
            "V1 a 0 3.0
             R1 a d 1k
             D1 d 0
             D2 d 0 IS=1e-12 N=2",
        )
        .unwrap();
        assert_eq!(ckt.num_elements(), 4);
        let op = DcOp::new(&ckt).solve().unwrap();
        let d = ckt.find_node("d").unwrap();
        assert!(op.voltage(d) > 0.3 && op.voltage(d) < 0.9);
    }

    #[test]
    fn comments_and_end() {
        let ckt = parse_deck(
            "* top comment
             V1 a 0 1.0 ; inline comment
             R1 a 0 1k
             .END
             R2 ignored 0 1k",
        )
        .unwrap();
        assert_eq!(ckt.num_elements(), 2, ".end stops parsing");
    }

    #[test]
    fn error_reporting() {
        assert!(matches!(
            parse_deck("R1 a 0"),
            Err(ParseDeckError::TooFewFields { line: 1 })
        ));
        assert!(matches!(
            parse_deck("X1 a 0 1k"),
            Err(ParseDeckError::UnknownElement { line: 1, .. })
        ));
        assert!(matches!(
            parse_deck("M1 d g 0 0 NMOS W=10u"),
            Err(ParseDeckError::BadMosfet { .. })
        ));
        assert!(matches!(
            parse_deck("M1 d g 0 0 BJT W=1u L=1u"),
            Err(ParseDeckError::BadMosfet { .. })
        ));
        assert!(matches!(
            parse_deck("R1 a 0 -5"),
            Err(ParseDeckError::Circuit(_))
        ));
        assert!(matches!(
            parse_deck(".include foo.cir"),
            Err(ParseDeckError::UnknownElement { .. })
        ));
    }

    #[test]
    fn duplicate_names_rejected_via_circuit_error() {
        let r = parse_deck("R1 a 0 1k\nR1 a 0 2k");
        assert!(matches!(
            r,
            Err(ParseDeckError::Circuit(MnaError::DuplicateName { .. }))
        ));
    }
}
