//! Swept DC analyses (warm-started operating-point sequences).

use crate::{Circuit, DcOp, DcSolution, MnaError};

/// A DC sweep over the value of one independent source.
///
/// Solutions are warm-started from the previous point, which both speeds up
/// and stabilizes the Newton iteration across the sweep.
///
/// # Example
///
/// ```
/// use specwise_mna::{Circuit, DcSweep};
///
/// # fn main() -> Result<(), specwise_mna::MnaError> {
/// let mut ckt = Circuit::new();
/// let a = ckt.node("a");
/// let mid = ckt.node("mid");
/// ckt.voltage_source("V1", a, Circuit::GROUND, 0.0)?;
/// ckt.resistor("R1", a, mid, 1e3)?;
/// ckt.resistor("R2", mid, Circuit::GROUND, 1e3)?;
/// let pts = DcSweep::linear("V1", 0.0, 2.0, 5).run(&mut ckt)?;
/// assert_eq!(pts.len(), 5);
/// let mid_id = ckt.find_node("mid")?;
/// assert!((pts[4].1.voltage(mid_id) - 1.0).abs() < 1e-9);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct DcSweep {
    source: String,
    values: Vec<f64>,
}

impl DcSweep {
    /// Sweep over an explicit list of values.
    pub fn new(source: &str, values: Vec<f64>) -> Self {
        DcSweep {
            source: source.to_string(),
            values,
        }
    }

    /// Linearly spaced sweep with `n ≥ 2` points from `from` to `to`
    /// inclusive (with `n == 1` only `from` is used).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn linear(source: &str, from: f64, to: f64, n: usize) -> Self {
        assert!(n > 0, "sweep needs at least one point");
        let values = if n == 1 {
            vec![from]
        } else {
            (0..n)
                .map(|k| from + (to - from) * k as f64 / (n - 1) as f64)
                .collect()
        };
        DcSweep::new(source, values)
    }

    /// Runs the sweep, returning `(value, solution)` pairs.
    ///
    /// The circuit's source value is restored afterwards.
    ///
    /// # Errors
    ///
    /// Propagates [`MnaError`] from the per-point operating-point solves or
    /// from an unknown source name.
    pub fn run(&self, circuit: &mut Circuit) -> Result<Vec<(f64, DcSolution)>, MnaError> {
        // Remember the original value by probing: set_dc fails for
        // non-sources, so find() first.
        circuit.find(&self.source)?;
        let mut out = Vec::with_capacity(self.values.len());
        let mut warm: Option<DcSolution> = None;
        for &v in &self.values {
            circuit.set_dc(&self.source, v)?;
            let dc = DcOp::new(circuit);
            let sol = match &warm {
                Some(prev) => dc.solve_from(prev.unknowns())?,
                None => dc.solve()?,
            };
            warm = Some(sol.clone());
            out.push((v, sol));
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{Circuit, MosfetModel, MosfetParams};

    #[test]
    fn sweep_produces_monotone_diode_current() {
        let mut ckt = Circuit::new();
        let vdd = ckt.node("vdd");
        let d = ckt.node("d");
        ckt.voltage_source("VDD", vdd, Circuit::GROUND, 0.0)
            .unwrap();
        ckt.resistor("R1", vdd, d, 10e3).unwrap();
        let params = MosfetParams::new(MosfetModel::default_nmos(), 20e-6, 2e-6);
        ckt.mosfet("M1", d, d, Circuit::GROUND, Circuit::GROUND, params)
            .unwrap();
        let pts = DcSweep::linear("VDD", 0.5, 3.0, 11).run(&mut ckt).unwrap();
        let mut last = -1.0;
        for (v, sol) in &pts {
            let id = sol.mosfet_op("M1").unwrap().id;
            assert!(id >= last - 1e-12, "current must not decrease at VDD={v}");
            last = id;
        }
        assert!(last > 1e-6, "device must conduct at VDD=3");
    }

    #[test]
    fn single_point_sweep() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 0.0).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        let pts = DcSweep::linear("V1", 1.5, 9.0, 1).run(&mut ckt).unwrap();
        assert_eq!(pts.len(), 1);
        assert_eq!(pts[0].0, 1.5);
    }

    #[test]
    fn unknown_source_rejected() {
        let mut ckt = Circuit::new();
        let a = ckt.node("a");
        ckt.voltage_source("V1", a, Circuit::GROUND, 0.0).unwrap();
        ckt.resistor("R1", a, Circuit::GROUND, 1e3).unwrap();
        assert!(DcSweep::linear("VX", 0.0, 1.0, 3).run(&mut ckt).is_err());
    }
}
