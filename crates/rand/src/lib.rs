//! Offline stand-in for the [`rand`](https://crates.io/crates/rand) 0.8 API
//! surface used by this workspace.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` section substitutes this crate (DESIGN.md §3). It
//! implements exactly what the workspace consumes:
//!
//! * [`RngCore`] / [`Rng`] with `gen::<f64>()`, `gen::<u64>()` and
//!   `gen_range` over primitive ranges,
//! * [`SeedableRng::seed_from_u64`],
//! * [`rngs::StdRng`] — here a xoshiro256++ generator seeded via SplitMix64
//!   (not the ChaCha12 of upstream `rand`; streams differ from upstream but
//!   are deterministic per seed, which is all the workspace relies on),
//! * [`seq::SliceRandom::shuffle`] (Fisher–Yates).
//!
//! Statistical quality: xoshiro256++ passes BigCrush; every consumer in the
//! workspace only asserts distributional tolerances and per-seed
//! reproducibility, both of which hold here.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

/// A source of random `u64`s — the minimal core trait.
pub trait RngCore {
    /// The next 64 random bits.
    fn next_u64(&mut self) -> u64;

    /// The next 32 random bits (upper half of [`RngCore::next_u64`]).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Construction of a generator from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (byte array for [`rngs::StdRng`]).
    type Seed;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the generator from a `u64`, expanding it with SplitMix64 —
    /// the same convenience entry point upstream `rand` offers.
    fn seed_from_u64(state: u64) -> Self;
}

/// Conversion of raw generator output into a primitive sample — the
/// stand-in for upstream's `Standard` distribution.
pub trait StandardSample {
    /// Draws one value from `rng`.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl StandardSample for f64 {
    /// Uniform in `[0, 1)` with 53 random mantissa bits.
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl StandardSample for u64 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl StandardSample for u32 {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u32()
    }
}

impl StandardSample for bool {
    fn standard_sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A half-open range a value can be drawn from uniformly — the stand-in for
/// upstream's `SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "gen_range: empty range");
        let u = f64::standard_sample(rng);
        self.start + u * (self.end - self.start)
    }
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end - self.start) as u64;
                // Multiply-shift rejection-free bounded sampling (Lemire);
                // bias < 2^-64·span is irrelevant at workspace sample sizes.
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                self.start + hi as $t
            }
        }
    )*};
}
int_sample_range!(u64, usize, u32, u16, u8);

macro_rules! signed_sample_range {
    ($($t:ty : $u:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "gen_range: empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                let hi = ((rng.next_u64() as u128 * span as u128) >> 64) as u64;
                ((self.start as i64).wrapping_add(hi as i64)) as $t
            }
        }
    )*};
}
signed_sample_range!(i64: u64, i32: u32, i16: u16, i8: u8, isize: usize);

/// Extension methods every generator gets for free.
pub trait Rng: RngCore {
    /// Draws one value of type `T` from the standard distribution
    /// (`f64` → uniform `[0, 1)`).
    fn gen<T: StandardSample>(&mut self) -> T {
        T::standard_sample(self)
    }

    /// Draws one value uniformly from `range`.
    fn gen_range<T, Rge: SampleRange<T>>(&mut self, range: Rge) -> T {
        range.sample_single(self)
    }

    /// Draws a `bool` that is `true` with probability `p`.
    fn gen_bool(&mut self, p: f64) -> bool {
        f64::standard_sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Generator implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ (Blackman–Vigna).
    ///
    /// Upstream `rand 0.8` uses ChaCha12 here; the streams therefore differ
    /// from upstream, but every consumer in this workspace only relies on
    /// determinism per seed and statistical quality.
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn splitmix_next(state: &mut u64) -> u64 {
            *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = *state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, lane) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *lane = u64::from_le_bytes(b);
            }
            // All-zero state is invalid for xoshiro; escape via SplitMix64.
            if s.iter().all(|&x| x == 0) {
                let mut sm = 0xDEAD_BEEF_CAFE_F00Du64;
                for lane in &mut s {
                    *lane = Self::splitmix_next(&mut sm);
                }
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> Self {
            let mut sm = state;
            let mut s = [0u64; 4];
            for lane in &mut s {
                *lane = Self::splitmix_next(&mut sm);
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            // xoshiro256++
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

/// Slice sampling helpers.
pub mod seq {
    use super::{Rng, RngCore};

    /// Random operations on slices (the subset of upstream's trait the
    /// workspace uses).
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// One uniformly chosen element, or `None` when empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = rng.gen_range(0..i + 1);
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }
    }
}

/// The prelude upstream `rand` exposes; re-exported for drop-in `use`.
pub mod prelude {
    pub use super::rngs::StdRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.gen::<u64>(), c.gen::<u64>());
    }

    #[test]
    fn f64_in_unit_interval_with_plausible_mean() {
        let mut rng = StdRng::seed_from_u64(7);
        let n = 100_000;
        let mut sum = 0.0;
        for _ in 0..n {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
            sum += x;
        }
        assert!((sum / n as f64 - 0.5).abs() < 0.01);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(9);
        for _ in 0..10_000 {
            let x = rng.gen_range(3usize..17);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-2.5..4.5f64);
            assert!((-2.5..4.5).contains(&y));
            let z = rng.gen_range(-5i32..5);
            assert!((-5..5).contains(&z));
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut v: Vec<usize> = (0..100).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<_>>());
        assert_ne!(
            v,
            (0..100).collect::<Vec<_>>(),
            "shuffle left input in order"
        );
    }
}
