//! Property-based tests for the statistical substrate.

use proptest::prelude::*;
use specwise_stat::{
    std_normal_cdf, std_normal_quantile, LogNormal, Normal, RunningMoments, Uniform,
    UnivariateDistribution, YieldEstimate,
};

proptest! {
    #[test]
    fn normal_quantile_cdf_roundtrip(
        mu in -100.0..100.0f64,
        sigma in 0.01..50.0f64,
        p in 0.001..0.999f64,
    ) {
        let d = Normal::new(mu, sigma).unwrap();
        let x = d.quantile(p);
        prop_assert!((d.cdf(x) - p).abs() < 1e-9);
    }

    #[test]
    fn normal_cdf_monotone(mu in -10.0..10.0f64, sigma in 0.1..5.0f64, a in -20.0..20.0f64, gap in 0.001..10.0f64) {
        let d = Normal::new(mu, sigma).unwrap();
        prop_assert!(d.cdf(a) <= d.cdf(a + gap));
    }

    #[test]
    fn lognormal_normal_space_roundtrip(
        mu in -2.0..2.0f64,
        sigma in 0.05..1.0f64,
        z in -3.0..3.0f64,
    ) {
        let d = LogNormal::new(mu, sigma).unwrap();
        let x = d.from_standard_normal(z);
        prop_assert!(x > 0.0);
        let z2 = d.to_standard_normal(x);
        prop_assert!((z2 - z).abs() < 1e-7, "z={z} z2={z2}");
    }

    #[test]
    fn uniform_transform_preserves_order(
        a in -10.0..0.0f64,
        width in 0.1..10.0f64,
        p1 in 0.01..0.99f64,
        p2 in 0.01..0.99f64,
    ) {
        let d = Uniform::new(a, a + width).unwrap();
        let (x1, x2) = (d.quantile(p1), d.quantile(p2));
        let (z1, z2) = (d.to_standard_normal(x1), d.to_standard_normal(x2));
        // The normal-space transform is monotone: order must be preserved.
        prop_assert_eq!(x1 < x2, z1 < z2);
    }

    #[test]
    fn std_quantile_is_inverse(p in 0.0001..0.9999f64) {
        prop_assert!((std_normal_cdf(std_normal_quantile(p)) - p).abs() < 1e-10);
    }

    #[test]
    fn yield_estimate_in_unit_interval(passed in 0usize..1000, extra in 0usize..1000) {
        let total = passed + extra + 1;
        let e = YieldEstimate::from_counts(passed.min(total), total);
        prop_assert!((0.0..=1.0).contains(&e.value()));
        let (lo, hi) = e.wilson_interval(0.95);
        prop_assert!(0.0 <= lo && lo <= e.value() + 1e-12);
        prop_assert!(e.value() - 1e-12 <= hi && hi <= 1.0);
    }

    #[test]
    fn moments_merge_matches_sequential(data in prop::collection::vec(-1e3..1e3f64, 2..60), split in 0usize..60) {
        let k = split.min(data.len());
        let (l, r) = data.split_at(k);
        let mut a: RunningMoments = l.iter().copied().collect();
        let b: RunningMoments = r.iter().copied().collect();
        a.merge(&b);
        let full: RunningMoments = data.iter().copied().collect();
        prop_assert_eq!(a.count(), full.count());
        prop_assert!((a.mean() - full.mean()).abs() < 1e-8 * (1.0 + full.mean().abs()));
        prop_assert!((a.sample_variance() - full.sample_variance()).abs()
            < 1e-6 * (1.0 + full.sample_variance()));
    }

    #[test]
    fn moments_bounds_contain_mean(data in prop::collection::vec(-1e3..1e3f64, 1..50)) {
        let m: RunningMoments = data.iter().copied().collect();
        prop_assert!(m.min() <= m.mean() + 1e-9);
        prop_assert!(m.mean() <= m.max() + 1e-9);
    }
}
