//! Univariate distributions with normal-space transforms.
//!
//! The paper (Sec. 2, refs [14, 15]) notes that normal, log-normal and
//! uniform statistical parameters "can be transformed into a normal
//! (Gaussian) distribution" so the whole flow only ever handles Gaussians.
//! [`UnivariateDistribution::to_standard_normal`] /
//! [`UnivariateDistribution::from_standard_normal`] implement exactly that
//! transform (the probability-integral / quantile map).

use rand::Rng;

use crate::{std_normal_cdf, std_normal_quantile, StandardNormal, StatError};

/// Common interface of the univariate distributions used for statistical
/// circuit parameters.
pub trait UnivariateDistribution {
    /// Cumulative distribution function.
    fn cdf(&self, x: f64) -> f64;

    /// Quantile function (inverse CDF).
    ///
    /// # Panics
    ///
    /// Implementations panic if `p` is outside `(0, 1)`.
    fn quantile(&self, p: f64) -> f64;

    /// Mean of the distribution.
    fn mean(&self) -> f64;

    /// Standard deviation of the distribution.
    fn std_dev(&self) -> f64;

    /// Draws one sample.
    #[allow(clippy::wrong_self_convention)]
    fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64
    where
        Self: Sized,
    {
        self.quantile(rng.gen_range(f64::EPSILON..1.0))
    }

    /// Maps a value of this distribution to the equivalent standard-normal
    /// deviate: `z = Φ⁻¹(F(x))`.
    ///
    /// This is the transform that lets the yield machinery treat every
    /// statistical parameter as Gaussian.
    fn to_standard_normal(&self, x: f64) -> f64 {
        let p = self.cdf(x).clamp(1e-300, 1.0 - 1e-16);
        std_normal_quantile(p)
    }

    /// Inverse of [`UnivariateDistribution::to_standard_normal`]:
    /// `x = F⁻¹(Φ(z))`.
    #[allow(clippy::wrong_self_convention)] // reads "construct x *from* a z-score"
    fn from_standard_normal(&self, z: f64) -> f64 {
        let p = std_normal_cdf(z).clamp(1e-300, 1.0 - 1e-16);
        self.quantile(p)
    }
}

/// Normal distribution `N(µ, σ²)`.
///
/// ```
/// use specwise_stat::{Normal, UnivariateDistribution};
///
/// # fn main() -> Result<(), specwise_stat::StatError> {
/// let d = Normal::new(10.0, 2.0)?;
/// assert!((d.cdf(10.0) - 0.5).abs() < 1e-14);
/// assert!((d.quantile(0.5) - 10.0).abs() < 1e-12);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Normal {
    mu: f64,
    sigma: f64,
}

impl Normal {
    /// Creates `N(mu, sigma²)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] unless `sigma > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatError> {
        if !mu.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(Normal { mu, sigma })
    }

    /// The standard normal `N(0, 1)`.
    pub fn standard() -> Self {
        Normal {
            mu: 0.0,
            sigma: 1.0,
        }
    }

    /// Location parameter µ.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Scale parameter σ.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }

    /// Draws a sample using a provided Box–Muller sampler (avoids the
    /// quantile evaluation of the generic path).
    pub fn sample_with<R: Rng + ?Sized>(&self, normal: &StandardNormal, rng: &mut R) -> f64 {
        self.mu + self.sigma * normal.sample(rng)
    }
}

impl UnivariateDistribution for Normal {
    fn cdf(&self, x: f64) -> f64 {
        std_normal_cdf((x - self.mu) / self.sigma)
    }

    fn quantile(&self, p: f64) -> f64 {
        self.mu + self.sigma * std_normal_quantile(p)
    }

    fn mean(&self) -> f64 {
        self.mu
    }

    fn std_dev(&self) -> f64 {
        self.sigma
    }
}

/// Log-normal distribution: `ln X ~ N(µ, σ²)`.
///
/// Typical for strictly positive process parameters such as saturation
/// currents or oxide thickness.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LogNormal {
    mu: f64,
    sigma: f64,
}

impl LogNormal {
    /// Creates a log-normal with log-space parameters `mu`, `sigma`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] unless `sigma > 0` and both
    /// parameters are finite.
    pub fn new(mu: f64, sigma: f64) -> Result<Self, StatError> {
        if !mu.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "mu",
                value: mu,
            });
        }
        if !(sigma > 0.0) || !sigma.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "sigma",
                value: sigma,
            });
        }
        Ok(LogNormal { mu, sigma })
    }

    /// Log-space location parameter.
    pub fn mu(&self) -> f64 {
        self.mu
    }

    /// Log-space scale parameter.
    pub fn sigma(&self) -> f64 {
        self.sigma
    }
}

impl UnivariateDistribution for LogNormal {
    fn cdf(&self, x: f64) -> f64 {
        if x <= 0.0 {
            0.0
        } else {
            std_normal_cdf((x.ln() - self.mu) / self.sigma)
        }
    }

    fn quantile(&self, p: f64) -> f64 {
        (self.mu + self.sigma * std_normal_quantile(p)).exp()
    }

    fn mean(&self) -> f64 {
        (self.mu + self.sigma * self.sigma / 2.0).exp()
    }

    fn std_dev(&self) -> f64 {
        let s2 = self.sigma * self.sigma;
        (((s2).exp() - 1.0) * (2.0 * self.mu + s2).exp()).sqrt()
    }
}

/// Continuous uniform distribution on `[a, b]`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Uniform {
    a: f64,
    b: f64,
}

impl Uniform {
    /// Creates `U[a, b]`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] unless `a < b` and both are
    /// finite.
    pub fn new(a: f64, b: f64) -> Result<Self, StatError> {
        if !a.is_finite() {
            return Err(StatError::InvalidParameter {
                name: "a",
                value: a,
            });
        }
        if !b.is_finite() || !(b > a) {
            return Err(StatError::InvalidParameter {
                name: "b",
                value: b,
            });
        }
        Ok(Uniform { a, b })
    }

    /// Lower bound.
    pub fn lower(&self) -> f64 {
        self.a
    }

    /// Upper bound.
    pub fn upper(&self) -> f64 {
        self.b
    }
}

impl UnivariateDistribution for Uniform {
    fn cdf(&self, x: f64) -> f64 {
        ((x - self.a) / (self.b - self.a)).clamp(0.0, 1.0)
    }

    fn quantile(&self, p: f64) -> f64 {
        assert!(p > 0.0 && p < 1.0, "quantile argument {p} outside (0, 1)");
        self.a + p * (self.b - self.a)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.a + self.b)
    }

    fn std_dev(&self) -> f64 {
        (self.b - self.a) / 12.0_f64.sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn normal_rejects_bad_sigma() {
        assert!(Normal::new(0.0, 0.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, f64::INFINITY).is_err());
    }

    #[test]
    fn normal_quantile_roundtrip() {
        let d = Normal::new(-3.0, 0.5).unwrap();
        for p in [0.01, 0.2, 0.5, 0.9, 0.999] {
            assert!((d.cdf(d.quantile(p)) - p).abs() < 1e-12);
        }
    }

    #[test]
    fn normal_standard_transform_is_zscore() {
        let d = Normal::new(5.0, 2.0).unwrap();
        assert!((d.to_standard_normal(7.0) - 1.0).abs() < 1e-10);
        assert!((d.from_standard_normal(-1.0) - 3.0).abs() < 1e-10);
    }

    #[test]
    fn lognormal_support_and_moments() {
        let d = LogNormal::new(0.0, 0.25).unwrap();
        assert_eq!(d.cdf(-1.0), 0.0);
        assert_eq!(d.cdf(0.0), 0.0);
        assert!((d.cdf(1.0) - 0.5).abs() < 1e-14); // median = e^mu = 1
        assert!((d.mean() - (0.25f64 * 0.25 / 2.0).exp()).abs() < 1e-14);
        assert!(d.std_dev() > 0.0);
    }

    #[test]
    fn lognormal_normal_space_roundtrip() {
        let d = LogNormal::new(1.0, 0.3).unwrap();
        for x in [0.5, 1.0, 3.0, 10.0] {
            let z = d.to_standard_normal(x);
            let back = d.from_standard_normal(z);
            assert!((back / x - 1.0).abs() < 1e-9, "x={x}");
        }
    }

    #[test]
    fn uniform_cdf_clamps() {
        let d = Uniform::new(2.0, 4.0).unwrap();
        assert_eq!(d.cdf(1.0), 0.0);
        assert_eq!(d.cdf(5.0), 1.0);
        assert!((d.cdf(3.0) - 0.5).abs() < 1e-15);
        assert!((d.mean() - 3.0).abs() < 1e-15);
    }

    #[test]
    fn uniform_rejects_degenerate() {
        assert!(Uniform::new(1.0, 1.0).is_err());
        assert!(Uniform::new(2.0, 1.0).is_err());
    }

    #[test]
    fn uniform_to_normal_median_maps_to_zero() {
        let d = Uniform::new(0.0, 2.0).unwrap();
        assert!(d.to_standard_normal(1.0).abs() < 1e-12);
        // 97.5 % point of the uniform maps to +1.96 of the normal.
        assert!((d.to_standard_normal(1.95) - 1.959963984540054).abs() < 1e-9);
    }

    #[test]
    fn sampling_matches_distribution_mean() {
        let mut rng = StdRng::seed_from_u64(2024);
        let d = LogNormal::new(0.5, 0.2).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng)).sum::<f64>() / n as f64;
        assert!(
            (mean / d.mean() - 1.0).abs() < 0.02,
            "mean {mean} vs {}",
            d.mean()
        );
    }

    #[test]
    fn normal_sample_with_box_muller() {
        let mut rng = StdRng::seed_from_u64(8);
        let bm = StandardNormal::new();
        let d = Normal::new(100.0, 5.0).unwrap();
        let n = 50_000;
        let mean: f64 = (0..n).map(|_| d.sample_with(&bm, &mut rng)).sum::<f64>() / n as f64;
        assert!((mean - 100.0).abs() < 0.1);
    }
}
