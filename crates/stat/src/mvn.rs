//! Multivariate normal distribution with Cholesky-factor sampling.

use rand::Rng;
use specwise_linalg::{Cholesky, DMat, DVec};

use crate::{StandardNormal, StatError};

/// A multivariate normal distribution `N(µ, C)` factored as `C = G·Gᵀ`.
///
/// This is the statistical-parameter model of the paper: samples are drawn
/// as `s = G·ŝ + s0` with `ŝ ~ N(0, I)` (Eq. 11) so the probability density
/// becomes the standard normal of Eq. 12, and the same factor maps
/// worst-case points back and forth between the physical and the
/// standardized space.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use specwise_linalg::{DMat, DVec};
/// use specwise_stat::Mvn;
///
/// # fn main() -> Result<(), specwise_stat::StatError> {
/// let mean = DVec::from_slice(&[1.0, -1.0]);
/// let cov = DMat::from_rows(&[&[2.0, 0.5], &[0.5, 1.0]]).map_err(specwise_stat::StatError::from)?;
/// let mvn = Mvn::new(mean, &cov)?;
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let s = mvn.sample(&mut rng);
/// assert_eq!(s.len(), 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Mvn {
    mean: DVec,
    chol: Cholesky,
}

impl Mvn {
    /// Creates `N(mean, cov)`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::DimensionMismatch`] if the mean length and the
    /// covariance dimension differ, or [`StatError::Covariance`] if the
    /// covariance is not symmetric positive definite.
    pub fn new(mean: DVec, cov: &DMat) -> Result<Self, StatError> {
        if cov.nrows() != mean.len() {
            return Err(StatError::DimensionMismatch {
                expected: mean.len(),
                found: cov.nrows(),
            });
        }
        let chol = cov.cholesky()?;
        Ok(Mvn { mean, chol })
    }

    /// Creates a standard normal `N(0, I)` of dimension `n`.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::Covariance`] only for `n = 0`.
    pub fn standard(n: usize) -> Result<Self, StatError> {
        Mvn::new(DVec::zeros(n), &DMat::identity(n))
    }

    /// Creates an axis-aligned normal from per-component standard deviations.
    ///
    /// # Errors
    ///
    /// Returns [`StatError::InvalidParameter`] if any `sigma <= 0`, or a
    /// dimension error when lengths differ.
    pub fn from_sigmas(mean: DVec, sigmas: &DVec) -> Result<Self, StatError> {
        if sigmas.len() != mean.len() {
            return Err(StatError::DimensionMismatch {
                expected: mean.len(),
                found: sigmas.len(),
            });
        }
        for &s in sigmas.iter() {
            if !(s > 0.0) || !s.is_finite() {
                return Err(StatError::InvalidParameter {
                    name: "sigma",
                    value: s,
                });
            }
        }
        let cov = DMat::from_diagonal(&sigmas.hadamard(sigmas)?);
        Mvn::new(mean, &cov)
    }

    /// Dimension of the distribution.
    pub fn dim(&self) -> usize {
        self.mean.len()
    }

    /// Mean vector `µ`.
    pub fn mean(&self) -> &DVec {
        &self.mean
    }

    /// The Cholesky factor `G` with `C = G·Gᵀ`.
    pub fn factor(&self) -> &DMat {
        self.chol.factor()
    }

    /// Maps a standardized vector into the physical space: `s = G·ŝ + µ`.
    pub fn from_standard(&self, s_hat: &DVec) -> DVec {
        &self.chol.transform(s_hat) + &self.mean
    }

    /// Maps a physical vector into the standardized space: `ŝ = G⁻¹(s − µ)`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `s.len() != dim()`.
    pub fn to_standard(&self, s: &DVec) -> Result<DVec, StatError> {
        Ok(self.chol.inverse_transform(&(s - &self.mean))?)
    }

    /// Mahalanobis distance of `s` from the mean — in the standardized
    /// space this is just the Euclidean norm, i.e. the worst-case distance
    /// `β` of the paper.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `s.len() != dim()`.
    pub fn mahalanobis(&self, s: &DVec) -> Result<f64, StatError> {
        Ok(self.to_standard(s)?.norm2())
    }

    /// Draws one sample.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> DVec {
        let normal = StandardNormal::new();
        let s_hat = DVec::from(normal.sample_vec(rng, self.dim()));
        self.from_standard(&s_hat)
    }

    /// Draws `n` samples as rows of a matrix.
    pub fn sample_matrix<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> DMat {
        let mut out = DMat::zeros(n, self.dim());
        for i in 0..n {
            out.set_row(i, &self.sample(rng));
        }
        out
    }

    /// Natural logarithm of the density at `s`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error if `s.len() != dim()`.
    pub fn ln_pdf(&self, s: &DVec) -> Result<f64, StatError> {
        let z = self.to_standard(s)?;
        let n = self.dim() as f64;
        Ok(-0.5 * z.dot(&z)
            - 0.5 * n * (2.0 * std::f64::consts::PI).ln()
            - 0.5 * self.chol.ln_det())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn example() -> Mvn {
        let mean = DVec::from_slice(&[1.0, 2.0, -1.0]);
        let cov = DMat::from_rows(&[&[2.0, 0.4, 0.0], &[0.4, 1.0, 0.2], &[0.0, 0.2, 0.5]]).unwrap();
        Mvn::new(mean, &cov).unwrap()
    }

    #[test]
    fn standard_roundtrip() {
        let mvn = example();
        let s_hat = DVec::from_slice(&[0.5, -1.5, 2.0]);
        let s = mvn.from_standard(&s_hat);
        let back = mvn.to_standard(&s).unwrap();
        assert!((&back - &s_hat).norm_inf() < 1e-12);
    }

    #[test]
    fn mahalanobis_of_mean_is_zero() {
        let mvn = example();
        assert!(mvn.mahalanobis(mvn.mean()).unwrap() < 1e-14);
    }

    #[test]
    fn sample_covariance_matches() {
        let mvn = example();
        let mut rng = StdRng::seed_from_u64(17);
        let n = 40_000;
        let samples = mvn.sample_matrix(&mut rng, n);
        // Empirical mean.
        let mut mean = DVec::zeros(3);
        for i in 0..n {
            mean += &samples.row(i);
        }
        mean *= 1.0 / n as f64;
        for k in 0..3 {
            assert!((mean[k] - mvn.mean()[k]).abs() < 0.05, "mean[{k}]");
        }
        // Empirical covariance vs C = G·Gᵀ.
        let g = mvn.factor();
        let c = g.matmul(&g.transpose()).unwrap();
        for a in 0..3 {
            for b in 0..3 {
                let mut acc = 0.0;
                for i in 0..n {
                    acc += (samples[(i, a)] - mean[a]) * (samples[(i, b)] - mean[b]);
                }
                let emp = acc / (n - 1) as f64;
                assert!(
                    (emp - c[(a, b)]).abs() < 0.08,
                    "cov[{a}][{b}]: {emp} vs {}",
                    c[(a, b)]
                );
            }
        }
    }

    #[test]
    fn rejects_dimension_mismatch() {
        let mean = DVec::zeros(2);
        let cov = DMat::identity(3);
        assert!(matches!(
            Mvn::new(mean, &cov),
            Err(StatError::DimensionMismatch { .. })
        ));
    }

    #[test]
    fn rejects_indefinite_covariance() {
        let mean = DVec::zeros(2);
        let cov = DMat::from_rows(&[&[1.0, 2.0], &[2.0, 1.0]]).unwrap();
        assert!(matches!(
            Mvn::new(mean, &cov),
            Err(StatError::Covariance(_))
        ));
    }

    #[test]
    fn from_sigmas_diagonal() {
        let mvn = Mvn::from_sigmas(DVec::zeros(2), &DVec::from_slice(&[2.0, 3.0])).unwrap();
        let s = mvn.from_standard(&DVec::from_slice(&[1.0, 1.0]));
        assert!((s[0] - 2.0).abs() < 1e-14);
        assert!((s[1] - 3.0).abs() < 1e-14);
        assert!(Mvn::from_sigmas(DVec::zeros(2), &DVec::from_slice(&[1.0, 0.0])).is_err());
    }

    #[test]
    fn ln_pdf_peak_at_mean() {
        let mvn = example();
        let at_mean = mvn.ln_pdf(mvn.mean()).unwrap();
        let off = mvn
            .ln_pdf(&(mvn.mean() + &DVec::from_slice(&[1.0, 0.0, 0.0])))
            .unwrap();
        assert!(at_mean > off);
    }

    #[test]
    fn standard_constructor() {
        let mvn = Mvn::standard(4).unwrap();
        assert_eq!(mvn.dim(), 4);
        let z = DVec::from_slice(&[1.0, 0.0, 0.0, 0.0]);
        assert_eq!(mvn.from_standard(&z), z);
    }
}
