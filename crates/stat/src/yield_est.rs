//! Monte-Carlo yield estimation (paper Eqs. 6–7 and 17–18).

/// A Monte-Carlo yield estimate: the fraction of samples that pass all
/// specifications, together with its sampling uncertainty.
///
/// The paper reports yields as percentages (Tables 1, 3, 4, 6) and counts of
/// "bad samples" per mille; both views are provided here.
///
/// # Example
///
/// ```
/// use specwise_stat::YieldEstimate;
///
/// let est = YieldEstimate::from_counts(297, 300);
/// assert!((est.value() - 0.99).abs() < 1e-12);
/// assert_eq!(est.bad_samples(), 3);
/// let (lo, hi) = est.wilson_interval(0.95);
/// assert!(lo < 0.99 && 0.99 < hi);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct YieldEstimate {
    passed: usize,
    total: usize,
}

impl YieldEstimate {
    /// Creates an estimate from pass/total counts.
    ///
    /// # Panics
    ///
    /// Panics if `passed > total` or `total == 0`.
    pub fn from_counts(passed: usize, total: usize) -> Self {
        assert!(total > 0, "yield estimate needs at least one sample");
        assert!(passed <= total, "passed {passed} exceeds total {total}");
        YieldEstimate { passed, total }
    }

    /// Creates an estimate by consuming an iterator of pass/fail trials.
    ///
    /// # Panics
    ///
    /// Panics if the iterator is empty.
    pub fn from_trials<I: IntoIterator<Item = bool>>(trials: I) -> Self {
        let mut passed = 0;
        let mut total = 0;
        for ok in trials {
            total += 1;
            if ok {
                passed += 1;
            }
        }
        YieldEstimate::from_counts(passed, total)
    }

    /// The point estimate `Ỹ = passed / total` (paper Eq. 6).
    pub fn value(&self) -> f64 {
        self.passed as f64 / self.total as f64
    }

    /// The point estimate as a percentage.
    pub fn percent(&self) -> f64 {
        100.0 * self.value()
    }

    /// Number of passing samples.
    pub fn passed(&self) -> usize {
        self.passed
    }

    /// Number of failing ("bad") samples.
    pub fn bad_samples(&self) -> usize {
        self.total - self.passed
    }

    /// Failing samples per mille — the unit of the "bad samples [‰]" rows in
    /// the paper's tables.
    pub fn bad_per_mille(&self) -> f64 {
        1000.0 * self.bad_samples() as f64 / self.total as f64
    }

    /// Total sample count.
    pub fn total(&self) -> usize {
        self.total
    }

    /// Standard error of the binomial proportion.
    pub fn std_error(&self) -> f64 {
        let p = self.value();
        (p * (1.0 - p) / self.total as f64).sqrt()
    }

    /// Wilson score interval at the given confidence level.
    ///
    /// Unlike the Wald interval it behaves sensibly at `p = 0` and `p = 1`,
    /// which matters here: optimized circuits routinely reach 100 % passing
    /// samples.
    ///
    /// # Panics
    ///
    /// Panics if `confidence` is not in `(0, 1)`.
    pub fn wilson_interval(&self, confidence: f64) -> (f64, f64) {
        assert!(
            confidence > 0.0 && confidence < 1.0,
            "confidence {confidence} outside (0, 1)"
        );
        let z = crate::std_normal_quantile(0.5 + confidence / 2.0);
        let n = self.total as f64;
        let p = self.value();
        let z2 = z * z;
        let denom = 1.0 + z2 / n;
        let center = (p + z2 / (2.0 * n)) / denom;
        let half = z * (p * (1.0 - p) / n + z2 / (4.0 * n * n)).sqrt() / denom;
        ((center - half).max(0.0), (center + half).min(1.0))
    }
}

impl std::fmt::Display for YieldEstimate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{:.1}% ({}/{})", self.percent(), self.passed, self.total)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn basic_counts() {
        let e = YieldEstimate::from_counts(90, 100);
        assert!((e.value() - 0.9).abs() < 1e-15);
        assert_eq!(e.bad_samples(), 10);
        assert!((e.bad_per_mille() - 100.0).abs() < 1e-12);
        assert_eq!(e.total(), 100);
        assert_eq!(e.passed(), 90);
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_empty() {
        let _ = YieldEstimate::from_counts(0, 0);
    }

    #[test]
    #[should_panic(expected = "exceeds total")]
    fn rejects_inverted_counts() {
        let _ = YieldEstimate::from_counts(5, 3);
    }

    #[test]
    fn from_trials_counts_correctly() {
        let e = YieldEstimate::from_trials([true, false, true, true]);
        assert_eq!(e.passed(), 3);
        assert_eq!(e.total(), 4);
    }

    #[test]
    fn wilson_interval_contains_point_estimate() {
        let e = YieldEstimate::from_counts(45, 300);
        let (lo, hi) = e.wilson_interval(0.95);
        assert!(lo < e.value() && e.value() < hi);
        assert!(lo >= 0.0 && hi <= 1.0);
    }

    #[test]
    fn wilson_interval_sane_at_extremes() {
        let all_pass = YieldEstimate::from_counts(300, 300);
        let (lo, hi) = all_pass.wilson_interval(0.95);
        assert!(hi <= 1.0);
        assert!(lo > 0.95, "lower bound {lo} too pessimistic for 300/300");

        let all_fail = YieldEstimate::from_counts(0, 300);
        let (lo2, hi2) = all_fail.wilson_interval(0.95);
        assert_eq!(lo2, 0.0);
        assert!(hi2 < 0.05);
    }

    #[test]
    fn narrower_interval_with_more_samples() {
        let small = YieldEstimate::from_counts(90, 100);
        let large = YieldEstimate::from_counts(9000, 10_000);
        let (l1, h1) = small.wilson_interval(0.95);
        let (l2, h2) = large.wilson_interval(0.95);
        assert!(h2 - l2 < h1 - l1);
    }

    #[test]
    fn std_error_formula() {
        let e = YieldEstimate::from_counts(50, 100);
        assert!((e.std_error() - 0.05).abs() < 1e-12);
    }

    #[test]
    fn display_contains_percentage() {
        let e = YieldEstimate::from_counts(299, 300);
        let s = format!("{e}");
        assert!(s.contains("99.7"));
        assert!(s.contains("299/300"));
    }
}
