//! Statistical substrate for the `specwise` yield-optimization workspace.
//!
//! Provides what the DAC 2001 flow needs from probability theory:
//!
//! * [`erf`]/[`erfc`], the standard normal CDF [`std_normal_cdf`] and its
//!   inverse [`std_normal_quantile`],
//! * univariate distributions ([`Normal`], [`LogNormal`], [`Uniform`]) with
//!   the normal-space transforms used to reduce every distribution to a
//!   Gaussian (paper Sec. 2, refs [14, 15]),
//! * standard-normal sampling ([`StandardNormal`], Box–Muller over `rand`),
//! * the multivariate normal [`Mvn`] with Cholesky-factor sampling — the
//!   `s = G·ŝ + s0` transform of paper Eq. 11,
//! * Monte-Carlo yield estimation ([`YieldEstimate`]) with Wilson confidence
//!   intervals (paper Eqs. 6–7),
//! * streaming moments ([`RunningMoments`]) for the Table 2 style
//!   mean/variance improvement reports.
//!
//! # Example
//!
//! ```
//! use rand::SeedableRng;
//! use specwise_stat::{StandardNormal, YieldEstimate};
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(7);
//! let normal = StandardNormal::new();
//! // Probability that a standard normal exceeds -1 is about 84 %.
//! let est = YieldEstimate::from_trials((0..4000).map(|_| normal.sample(&mut rng) > -1.0));
//! assert!((est.value() - 0.8413).abs() < 0.02);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dist;
mod erf;
mod error;
mod lhs;
mod moments;
mod mvn;
mod sampler;
mod yield_est;

pub use dist::{LogNormal, Normal, Uniform, UnivariateDistribution};
pub use erf::{erf, erfc, std_normal_cdf, std_normal_pdf, std_normal_quantile};
pub use error::StatError;
pub use lhs::latin_hypercube_normal;
pub use moments::RunningMoments;
pub use mvn::Mvn;
pub use sampler::StandardNormal;
pub use yield_est::YieldEstimate;
