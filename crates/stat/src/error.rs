use std::error::Error;
use std::fmt;

use specwise_linalg::LinalgError;

/// Errors produced by the statistical substrate.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum StatError {
    /// A distribution parameter is out of its valid domain.
    InvalidParameter {
        /// Name of the offending parameter.
        name: &'static str,
        /// The rejected value.
        value: f64,
    },
    /// A probability argument is outside `(0, 1)` where required.
    InvalidProbability {
        /// The rejected value.
        value: f64,
    },
    /// A covariance matrix failed to factor (not positive definite, etc.).
    Covariance(LinalgError),
    /// Dimension mismatch between mean vector and covariance matrix.
    DimensionMismatch {
        /// Dimension expected.
        expected: usize,
        /// Dimension provided.
        found: usize,
    },
}

impl fmt::Display for StatError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StatError::InvalidParameter { name, value } => {
                write!(f, "invalid distribution parameter {name} = {value}")
            }
            StatError::InvalidProbability { value } => {
                write!(f, "probability {value} outside (0, 1)")
            }
            StatError::Covariance(e) => write!(f, "covariance factorization failed: {e}"),
            StatError::DimensionMismatch { expected, found } => {
                write!(f, "dimension mismatch: expected {expected}, found {found}")
            }
        }
    }
}

impl Error for StatError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            StatError::Covariance(e) => Some(e),
            _ => None,
        }
    }
}

impl From<LinalgError> for StatError {
    fn from(e: LinalgError) -> Self {
        StatError::Covariance(e)
    }
}
