//! Latin-hypercube sampling of standard normal vectors — a
//! variance-reduction option for the Monte-Carlo yield estimators.
//!
//! Each dimension's `n` samples are stratified into `n` equal-probability
//! bins (one sample per bin, uniformly placed inside it, mapped through
//! `Φ⁻¹`), and the bins are permuted independently per dimension. Compared
//! to independent sampling this typically reduces the variance of smooth
//! expectations substantially at identical cost.

use rand::seq::SliceRandom;
use rand::Rng;

use crate::std_normal_quantile;

/// Generates `n` standard-normal vectors of dimension `dim` with
/// Latin-hypercube stratification. Returned as a flat row-major buffer of
/// length `n·dim` (`sample j`, `component k` at index `j·dim + k`).
///
/// # Panics
///
/// Panics when `n == 0` or `dim == 0`.
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use specwise_stat::latin_hypercube_normal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let samples = latin_hypercube_normal(&mut rng, 100, 3);
/// assert_eq!(samples.len(), 300);
/// // Stratification ⇒ the per-dimension mean is very close to 0.
/// let mean0: f64 = (0..100).map(|j| samples[j * 3]).sum::<f64>() / 100.0;
/// assert!(mean0.abs() < 0.05);
/// ```
pub fn latin_hypercube_normal<R: Rng + ?Sized>(rng: &mut R, n: usize, dim: usize) -> Vec<f64> {
    assert!(n > 0, "need at least one sample");
    assert!(dim > 0, "need at least one dimension");
    let mut out = vec![0.0; n * dim];
    let mut perm: Vec<usize> = (0..n).collect();
    for k in 0..dim {
        perm.shuffle(rng);
        for (j, &bin) in perm.iter().enumerate() {
            // Uniform placement inside bin `bin` of [0, 1].
            let u = (bin as f64 + rng.gen::<f64>().clamp(1e-12, 1.0 - 1e-12)) / n as f64;
            out[j * dim + k] = std_normal_quantile(u.clamp(1e-12, 1.0 - 1e-12));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn stratification_covers_every_bin() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 64;
        let samples = latin_hypercube_normal(&mut rng, n, 2);
        for k in 0..2 {
            let mut bins = vec![false; n];
            for j in 0..n {
                let z = samples[j * 2 + k];
                let u = crate::std_normal_cdf(z);
                let b = ((u * n as f64) as usize).min(n - 1);
                bins[b] = true;
            }
            assert!(bins.iter().all(|&b| b), "every stratum hit in dim {k}");
        }
    }

    #[test]
    fn moments_close_to_standard_normal() {
        let mut rng = StdRng::seed_from_u64(9);
        let n = 2_000;
        let samples = latin_hypercube_normal(&mut rng, n, 1);
        let mean: f64 = samples.iter().sum::<f64>() / n as f64;
        let var: f64 =
            samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        // Stratification makes these *much* tighter than iid sampling.
        assert!(mean.abs() < 0.005, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn lower_variance_than_iid_for_smooth_expectation() {
        // Estimate E[Φ(Z)] = 0.5 with both samplers over many seeds and
        // compare the spread of the estimates.
        let n = 200;
        let trials = 40;
        let spread = |lhs: bool| -> f64 {
            let mut estimates = Vec::with_capacity(trials);
            for seed in 0..trials as u64 {
                let mut rng = StdRng::seed_from_u64(seed);
                let est = if lhs {
                    let s = latin_hypercube_normal(&mut rng, n, 1);
                    s.iter().map(|&z| crate::std_normal_cdf(z)).sum::<f64>() / n as f64
                } else {
                    let normal = crate::StandardNormal::new();
                    (0..n)
                        .map(|_| crate::std_normal_cdf(normal.sample(&mut rng)))
                        .sum::<f64>()
                        / n as f64
                };
                estimates.push(est);
            }
            let m = estimates.iter().sum::<f64>() / trials as f64;
            (estimates.iter().map(|e| (e - m) * (e - m)).sum::<f64>() / trials as f64).sqrt()
        };
        let sd_lhs = spread(true);
        let sd_iid = spread(false);
        assert!(
            sd_lhs < 0.25 * sd_iid,
            "LHS spread {sd_lhs} should be far below iid spread {sd_iid}"
        );
    }

    #[test]
    #[should_panic(expected = "at least one sample")]
    fn rejects_zero_samples() {
        let mut rng = StdRng::seed_from_u64(1);
        let _ = latin_hypercube_normal(&mut rng, 0, 1);
    }
}
