//! Streaming mean/variance accumulation (Welford's algorithm).

/// Numerically stable streaming estimator of mean and variance.
///
/// Used to build the Table 2 style reports: the paper compares the shift of
/// the performance mean away from the spec and the reduction of the
/// performance standard deviation between optimizer iterations.
///
/// # Example
///
/// ```
/// use specwise_stat::RunningMoments;
///
/// let mut m = RunningMoments::new();
/// for x in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0] {
///     m.push(x);
/// }
/// assert_eq!(m.count(), 8);
/// assert!((m.mean() - 5.0).abs() < 1e-12);
/// assert!((m.population_variance() - 4.0).abs() < 1e-12);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct RunningMoments {
    count: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl RunningMoments {
    /// Creates an empty accumulator.
    pub fn new() -> Self {
        RunningMoments {
            count: 0,
            mean: 0.0,
            m2: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Adds one observation.
    pub fn push(&mut self, x: f64) {
        self.count += 1;
        let delta = x - self.mean;
        self.mean += delta / self.count as f64;
        let delta2 = x - self.mean;
        self.m2 += delta * delta2;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations so far.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Sample mean; `0.0` before any observation.
    pub fn mean(&self) -> f64 {
        self.mean
    }

    /// Unbiased sample variance (`n − 1` denominator); `0.0` for fewer than
    /// two observations.
    pub fn sample_variance(&self) -> f64 {
        if self.count < 2 {
            0.0
        } else {
            self.m2 / (self.count - 1) as f64
        }
    }

    /// Population variance (`n` denominator); `0.0` before any observation.
    pub fn population_variance(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.m2 / self.count as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.sample_variance().sqrt()
    }

    /// Smallest observation; `+∞` before any observation.
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation; `−∞` before any observation.
    pub fn max(&self) -> f64 {
        self.max
    }

    /// The raw accumulator state `(count, mean, m2, min, max)` — exactly
    /// what [`RunningMoments::from_raw`] needs to reconstruct the
    /// accumulator bit-for-bit. Used by the optimizer's checkpoint codec.
    pub fn raw(&self) -> (u64, f64, f64, f64, f64) {
        (self.count, self.mean, self.m2, self.min, self.max)
    }

    /// Rebuilds an accumulator from raw state captured by
    /// [`RunningMoments::raw`]. With `count == 0` the float fields are
    /// ignored and an empty accumulator is returned (so serializers need
    /// not represent the empty state's infinite min/max).
    pub fn from_raw(count: u64, mean: f64, m2: f64, min: f64, max: f64) -> Self {
        if count == 0 {
            return RunningMoments::new();
        }
        RunningMoments {
            count,
            mean,
            m2,
            min,
            max,
        }
    }

    /// Merges another accumulator into this one (parallel Welford).
    pub fn merge(&mut self, other: &RunningMoments) {
        if other.count == 0 {
            return;
        }
        if self.count == 0 {
            *self = *other;
            return;
        }
        let n1 = self.count as f64;
        let n2 = other.count as f64;
        let delta = other.mean - self.mean;
        let total = n1 + n2;
        self.mean += delta * n2 / total;
        self.m2 += other.m2 + delta * delta * n1 * n2 / total;
        self.count += other.count;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

impl FromIterator<f64> for RunningMoments {
    fn from_iter<I: IntoIterator<Item = f64>>(iter: I) -> Self {
        let mut m = RunningMoments::new();
        for x in iter {
            m.push(x);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_defaults() {
        let m = RunningMoments::new();
        assert_eq!(m.count(), 0);
        assert_eq!(m.mean(), 0.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.population_variance(), 0.0);
    }

    #[test]
    fn single_observation() {
        let m: RunningMoments = [3.0].into_iter().collect();
        assert_eq!(m.mean(), 3.0);
        assert_eq!(m.sample_variance(), 0.0);
        assert_eq!(m.min(), 3.0);
        assert_eq!(m.max(), 3.0);
    }

    #[test]
    fn matches_two_pass_formulas() {
        let data = [1.5, -2.0, 0.25, 8.0, 3.5, -1.0];
        let m: RunningMoments = data.iter().copied().collect();
        let mean = data.iter().sum::<f64>() / data.len() as f64;
        let var = data.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / (data.len() - 1) as f64;
        assert!((m.mean() - mean).abs() < 1e-12);
        assert!((m.sample_variance() - var).abs() < 1e-12);
    }

    #[test]
    fn stable_with_large_offset() {
        // Classic catastrophic-cancellation scenario for the naive algorithm.
        let offset = 1e9;
        let m: RunningMoments = [offset + 4.0, offset + 7.0, offset + 13.0, offset + 16.0]
            .into_iter()
            .collect();
        assert!((m.mean() - (offset + 10.0)).abs() < 1e-5);
        assert!((m.sample_variance() - 30.0).abs() < 1e-5);
    }

    #[test]
    fn merge_equals_sequential() {
        let data = [0.5, 1.5, -3.0, 2.0, 4.5, 0.0, -1.25];
        let (left, right) = data.split_at(3);
        let mut a: RunningMoments = left.iter().copied().collect();
        let b: RunningMoments = right.iter().copied().collect();
        a.merge(&b);
        let full: RunningMoments = data.iter().copied().collect();
        assert_eq!(a.count(), full.count());
        assert!((a.mean() - full.mean()).abs() < 1e-12);
        assert!((a.sample_variance() - full.sample_variance()).abs() < 1e-12);
        assert_eq!(a.min(), full.min());
        assert_eq!(a.max(), full.max());
    }

    #[test]
    fn raw_round_trips_bit_for_bit() {
        let m: RunningMoments = [1.5, -2.0, 0.25, 8.0].into_iter().collect();
        let (count, mean, m2, min, max) = m.raw();
        let r = RunningMoments::from_raw(count, mean, m2, min, max);
        assert_eq!(r, m);
        assert_eq!(r.mean().to_bits(), m.mean().to_bits());
        assert_eq!(r.sample_variance().to_bits(), m.sample_variance().to_bits());
        // The empty state reconstructs regardless of the float payload.
        let empty = RunningMoments::from_raw(0, f64::NAN, f64::NAN, f64::NAN, f64::NAN);
        assert_eq!(empty, RunningMoments::new());
    }

    #[test]
    fn merge_with_empty_is_identity() {
        let mut a: RunningMoments = [1.0, 2.0].into_iter().collect();
        let before = a;
        a.merge(&RunningMoments::new());
        assert_eq!(a, before);
        let mut e = RunningMoments::new();
        e.merge(&before);
        assert_eq!(e, before);
    }
}
