//! Standard normal sampling via the Box–Muller transform.
//!
//! Implemented on top of `rand`'s uniform generator rather than pulling in
//! `rand_distr`, per the workspace dependency policy (see DESIGN.md §3).

use rand::Rng;
use std::cell::Cell;
use std::f64::consts::PI;

/// A standard normal `N(0, 1)` sampler (Box–Muller with caching of the
/// second variate).
///
/// # Example
///
/// ```
/// use rand::SeedableRng;
/// use specwise_stat::StandardNormal;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(42);
/// let normal = StandardNormal::new();
/// let mean: f64 = (0..10_000).map(|_| normal.sample(&mut rng)).sum::<f64>() / 10_000.0;
/// assert!(mean.abs() < 0.05);
/// ```
#[derive(Debug, Default)]
pub struct StandardNormal {
    cached: Cell<Option<f64>>,
}

impl StandardNormal {
    /// Creates a sampler with an empty cache.
    pub fn new() -> Self {
        StandardNormal {
            cached: Cell::new(None),
        }
    }

    /// Draws one standard normal variate.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        if let Some(z) = self.cached.take() {
            return z;
        }
        // Box–Muller: u1 in (0, 1] to keep ln(u1) finite.
        let u1: f64 = 1.0 - rng.gen::<f64>();
        let u2: f64 = rng.gen::<f64>();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * PI * u2;
        self.cached.set(Some(r * theta.sin()));
        r * theta.cos()
    }

    /// Fills a slice with independent standard normal variates.
    pub fn fill<R: Rng + ?Sized>(&self, rng: &mut R, out: &mut [f64]) {
        for x in out {
            *x = self.sample(rng);
        }
    }

    /// Draws a vector of `n` independent standard normal variates.
    pub fn sample_vec<R: Rng + ?Sized>(&self, rng: &mut R, n: usize) -> Vec<f64> {
        (0..n).map(|_| self.sample(rng)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn moments_match_standard_normal() {
        let mut rng = StdRng::seed_from_u64(1234);
        let normal = StandardNormal::new();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1) as f64;
        let skew =
            samples.iter().map(|x| (x - mean).powi(3)).sum::<f64>() / n as f64 / var.powf(1.5);
        assert!(mean.abs() < 0.01, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
        assert!(skew.abs() < 0.03, "skew {skew}");
    }

    #[test]
    fn tail_fraction_reasonable() {
        let mut rng = StdRng::seed_from_u64(99);
        let normal = StandardNormal::new();
        let n = 100_000;
        let beyond2 = (0..n)
            .filter(|_| normal.sample(&mut rng).abs() > 2.0)
            .count();
        let frac = beyond2 as f64 / n as f64;
        // P(|Z| > 2) ≈ 0.0455.
        assert!((frac - 0.0455).abs() < 0.005, "frac {frac}");
    }

    #[test]
    fn deterministic_given_seed() {
        let normal = StandardNormal::new();
        let a: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            normal.sample_vec(&mut rng, 8)
        };
        let normal2 = StandardNormal::new();
        let b: Vec<f64> = {
            let mut rng = StdRng::seed_from_u64(5);
            normal2.sample_vec(&mut rng, 8)
        };
        assert_eq!(a, b);
    }

    #[test]
    fn fill_writes_all() {
        let mut rng = StdRng::seed_from_u64(3);
        let normal = StandardNormal::new();
        let mut buf = [0.0; 16];
        normal.fill(&mut rng, &mut buf);
        assert!(buf.iter().any(|&x| x != 0.0));
    }

    #[test]
    fn all_finite() {
        let mut rng = StdRng::seed_from_u64(77);
        let normal = StandardNormal::new();
        for _ in 0..10_000 {
            assert!(normal.sample(&mut rng).is_finite());
        }
    }
}
