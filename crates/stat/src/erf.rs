//! Error function, standard normal CDF/PDF and quantile.
//!
//! `erf` uses the Maclaurin series for `|x| ≤ 2` and the classical
//! Laplace continued fraction (A&S 7.1.14, evaluated with the modified
//! Lentz algorithm) for the tail — both converge to full double precision.
//! The quantile uses Peter Acklam's rational approximation with one Halley
//! refinement step against the exact CDF.

use std::f64::consts::{FRAC_1_SQRT_2, PI};

/// Maclaurin series for `erf`, accurate to machine precision for `|x| ≤ 2`.
fn erf_series(x: f64) -> f64 {
    let x2 = x * x;
    let mut term = x; // (-1)^n x^{2n+1} / n!
    let mut sum = x;
    let mut n = 1.0_f64;
    loop {
        term *= -x2 / n;
        let add = term / (2.0 * n + 1.0);
        sum += add;
        if add.abs() <= f64::EPSILON * sum.abs() || n > 200.0 {
            break;
        }
        n += 1.0;
    }
    sum * 2.0 / PI.sqrt()
}

/// Laplace continued fraction for `erfc(x)·√π·e^{x²}`, valid for `x ≥ 2`.
///
/// `√π e^{x²} erfc(x) = 1/(x + (1/2)/(x + 1/(x + (3/2)/(x + ...))))`
fn erfc_cf(x: f64) -> f64 {
    debug_assert!(x >= 2.0);
    const TINY: f64 = 1e-300;
    let mut f = TINY;
    let mut c = TINY;
    let mut d = 0.0;
    let mut n = 1u32;
    loop {
        let a = if n == 1 { 1.0 } else { (n - 1) as f64 / 2.0 };
        let b = x;
        d = b + a * d;
        if d == 0.0 {
            d = TINY;
        }
        c = b + a / c;
        if c == 0.0 {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = c * d;
        f *= delta;
        if (delta - 1.0).abs() < 1e-16 || n > 300 {
            break;
        }
        n += 1;
    }
    (-x * x).exp() / PI.sqrt() * f
}

/// The error function `erf(x) = 2/√π ∫₀ˣ e^{−t²} dt`.
///
/// Accuracy is close to machine precision over the whole real line.
///
/// ```
/// use specwise_stat::erf;
/// assert!((erf(0.0)).abs() < 1e-15);
/// assert!((erf(1.0) - 0.8427007929497149).abs() < 1e-14);
/// assert!((erf(-1.0) + erf(1.0)).abs() < 1e-15);
/// ```
pub fn erf(x: f64) -> f64 {
    if x.abs() <= 2.0 {
        erf_series(x)
    } else if x > 0.0 {
        1.0 - erfc_cf(x)
    } else {
        erfc_cf(-x) - 1.0
    }
}

/// The complementary error function `erfc(x) = 1 − erf(x)`.
///
/// Does not lose precision in the right tail: `erfc(10)` is representable
/// even though `1 − erf(10)` would round to zero.
///
/// ```
/// use specwise_stat::erfc;
/// assert!(erfc(10.0) > 0.0);
/// assert!((erfc(0.0) - 1.0).abs() < 1e-15);
/// ```
pub fn erfc(x: f64) -> f64 {
    if x >= 2.0 {
        erfc_cf(x)
    } else if x <= -2.0 {
        2.0 - erfc_cf(-x)
    } else {
        1.0 - erf_series(x)
    }
}

/// Standard normal probability density function.
///
/// ```
/// use specwise_stat::std_normal_pdf;
/// assert!((std_normal_pdf(0.0) - 0.3989422804014327).abs() < 1e-15);
/// ```
pub fn std_normal_pdf(x: f64) -> f64 {
    (-0.5 * x * x).exp() / (2.0 * PI).sqrt()
}

/// Standard normal cumulative distribution function `Φ(x)`.
///
/// ```
/// use specwise_stat::std_normal_cdf;
/// assert!((std_normal_cdf(0.0) - 0.5).abs() < 1e-15);
/// assert!((std_normal_cdf(1.6448536269514722) - 0.95).abs() < 1e-10);
/// ```
pub fn std_normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x * FRAC_1_SQRT_2)
}

/// Standard normal quantile (inverse CDF) `Φ⁻¹(p)`.
///
/// Uses Acklam's rational approximation with one Halley refinement step.
///
/// # Panics
///
/// Panics if `p` is not in `(0, 1)`.
///
/// ```
/// use specwise_stat::{std_normal_cdf, std_normal_quantile};
/// let p = 0.975;
/// let x = std_normal_quantile(p);
/// assert!((x - 1.959963984540054).abs() < 1e-12);
/// assert!((std_normal_cdf(x) - p).abs() < 1e-14);
/// ```
pub fn std_normal_quantile(p: f64) -> f64 {
    assert!(p > 0.0 && p < 1.0, "quantile argument {p} outside (0, 1)");

    const A: [f64; 6] = [
        -3.969683028665376e+01,
        2.209460984245205e+02,
        -2.759285104469687e+02,
        1.383577518672690e+02,
        -3.066479806614716e+01,
        2.506628277459239e+00,
    ];
    const B: [f64; 5] = [
        -5.447609879822406e+01,
        1.615858368580409e+02,
        -1.556989798598866e+02,
        6.680131188771972e+01,
        -1.328068155288572e+01,
    ];
    const C: [f64; 6] = [
        -7.784894002430293e-03,
        -3.223964580411365e-01,
        -2.400758277161838e+00,
        -2.549732539343734e+00,
        4.374664141464968e+00,
        2.938163982698783e+00,
    ];
    const D: [f64; 4] = [
        7.784695709041462e-03,
        3.224671290700398e-01,
        2.445134137142996e+00,
        3.754408661907416e+00,
    ];
    const P_LOW: f64 = 0.02425;

    let x = if p < P_LOW {
        let q = (-2.0 * p.ln()).sqrt();
        (((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    } else if p <= 1.0 - P_LOW {
        let q = p - 0.5;
        let r = q * q;
        (((((A[0] * r + A[1]) * r + A[2]) * r + A[3]) * r + A[4]) * r + A[5]) * q
            / (((((B[0] * r + B[1]) * r + B[2]) * r + B[3]) * r + B[4]) * r + 1.0)
    } else {
        let q = (-2.0 * (1.0 - p).ln()).sqrt();
        -(((((C[0] * q + C[1]) * q + C[2]) * q + C[3]) * q + C[4]) * q + C[5])
            / ((((D[0] * q + D[1]) * q + D[2]) * q + D[3]) * q + 1.0)
    };

    // One step of Halley's method against the exact CDF.
    let e = std_normal_cdf(x) - p;
    let u = e * (2.0 * PI).sqrt() * (x * x / 2.0).exp();
    x - u / (1.0 + x * u / 2.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erf_reference_values() {
        // Reference values from Abramowitz & Stegun / mpmath.
        let cases = [
            (0.0, 0.0),
            (0.5, 0.5204998778130465),
            (1.0, 0.8427007929497149),
            (2.0, 0.9953222650189527),
            (3.0, 0.9999779095030014),
        ];
        for (x, want) in cases {
            assert!((erf(x) - want).abs() < 1e-13, "erf({x}) = {}", erf(x));
            assert!((erf(-x) + want).abs() < 1e-13, "erf(-{x})");
        }
    }

    #[test]
    fn erfc_large_argument() {
        // erfc(5) ≈ 1.5374597944280349e-12 (mpmath).
        assert!((erfc(5.0) / 1.5374597944280349e-12 - 1.0).abs() < 1e-10);
        assert!(erfc(10.0) > 0.0);
        assert!(erfc(10.0) < 1e-40);
        assert!((erfc(-5.0) - (2.0 - 1.5374597944280349e-12)).abs() < 1e-12);
    }

    #[test]
    fn erf_erfc_complementary() {
        for x in [-3.5, -2.0, -0.3, 0.0, 0.7, 1.9, 2.0, 2.1, 4.4] {
            assert!((erf(x) + erfc(x) - 1.0).abs() < 1e-14, "x={x}");
        }
    }

    #[test]
    fn erf_continuous_at_segment_boundary() {
        let below = erf(2.0 - 1e-12);
        let above = erf(2.0 + 1e-12);
        assert!((below - above).abs() < 1e-11);
    }

    #[test]
    fn cdf_symmetric() {
        for x in [0.1, 0.7, 1.3, 2.2, 3.7] {
            assert!((std_normal_cdf(x) + std_normal_cdf(-x) - 1.0).abs() < 1e-14);
        }
    }

    #[test]
    fn cdf_reference_values() {
        assert!((std_normal_cdf(1.0) - 0.8413447460685429).abs() < 1e-13);
        assert!((std_normal_cdf(-2.0) - 0.022750131948179195).abs() < 1e-13);
        assert!((std_normal_cdf(3.0) - 0.9986501019683699).abs() < 1e-13);
    }

    #[test]
    fn quantile_inverts_cdf() {
        for p in [1e-6, 1e-3, 0.01, 0.2, 0.5, 0.8, 0.99, 0.999, 1.0 - 1e-6] {
            let x = std_normal_quantile(p);
            assert!((std_normal_cdf(x) - p).abs() < 1e-12, "p={p}");
        }
    }

    #[test]
    fn quantile_known_values() {
        assert!(std_normal_quantile(0.5).abs() < 1e-14);
        assert!((std_normal_quantile(0.975) - 1.959963984540054).abs() < 1e-10);
        assert!((std_normal_quantile(0.841344746068543) - 1.0).abs() < 1e-10);
    }

    #[test]
    #[should_panic(expected = "outside (0, 1)")]
    fn quantile_rejects_zero() {
        let _ = std_normal_quantile(0.0);
    }

    #[test]
    fn pdf_integrates_to_cdf_numerically() {
        // Trapezoidal integration of the pdf over [-6, 1] approximates Φ(1).
        let (a, b) = (-6.0, 1.0);
        let n = 20_000;
        let h = (b - a) / n as f64;
        let mut acc = 0.5 * (std_normal_pdf(a) + std_normal_pdf(b));
        for i in 1..n {
            acc += std_normal_pdf(a + i as f64 * h);
        }
        acc *= h;
        assert!((acc - std_normal_cdf(1.0)).abs() < 1e-8);
    }
}
