//! Ablation benches for the design choices DESIGN.md §5 calls out, run on
//! a deterministic analytic mismatch problem (no simulator noise):
//!
//! * linearization point: worst-case vs nominal (the Table 4 mechanism),
//! * functional constraints on vs off (the Table 3 mechanism),
//! * mirrored (quadratic) models on vs off.
//!
//! Criterion reports the runtime of each variant; the *quality* contrast is
//! asserted by `tests/ablation_mechanism.rs` in the workspace root.

use criterion::{criterion_group, criterion_main, Criterion};
use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_linalg::DVec;
use specwise_wcd::LinearizationPoint;

/// A mismatch-shaped problem where the nominal-point linearization is
/// misleading: the `quad` margin is a ridge in `s0 − s1` whose width
/// depends on the design (`d0` plays the role of device area: larger `d0`
/// reduces the effective mismatch sigma), while `d1` only shifts the mean
/// of a competing spec.
fn mismatch_env() -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![
            DesignParam::new("area", "", 0.5, 8.0, 1.0),
            DesignParam::new("bias", "", 0.0, 4.0, 0.5),
        ]))
        .stat_dim(2)
        .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
        .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| {
            // Effective mismatch deviation shrinks with √area (Pelgrom).
            let z = (s[0] - s[1]) / d[0].sqrt();
            DVec::from_slice(&[1.0 - z * z, d[1] - 1.0 + s[0] * 0.3])
        })
        .constraints(vec!["c".to_string()], |d| {
            DVec::from_slice(&[6.0 - d[0] - d[1]])
        })
        .build()
        .unwrap()
}

fn cfg_base() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.mc_samples = 4_000;
    cfg.verify_samples = 1_000;
    cfg.max_iterations = 2;
    cfg
}

fn bench_linearization_point(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearization_point");
    group.sample_size(10);
    group.bench_function("worst_case", |b| {
        b.iter(|| {
            let env = mismatch_env();
            YieldOptimizer::new(cfg_base()).run(&env).unwrap()
        })
    });
    group.bench_function("nominal", |b| {
        b.iter(|| {
            let env = mismatch_env();
            let mut cfg = cfg_base();
            cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
            YieldOptimizer::new(cfg).run(&env).unwrap()
        })
    });
    group.finish();
}

fn bench_constraints(c: &mut Criterion) {
    let mut group = c.benchmark_group("functional_constraints");
    group.sample_size(10);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let env = mismatch_env();
            YieldOptimizer::new(cfg_base()).run(&env).unwrap()
        })
    });
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let env = mismatch_env();
            let mut cfg = cfg_base();
            cfg.use_constraints = false;
            YieldOptimizer::new(cfg).run(&env).unwrap()
        })
    });
    group.finish();
}

fn bench_mirrored_models(c: &mut Criterion) {
    let mut group = c.benchmark_group("mirrored_models");
    group.sample_size(10);
    group.bench_function("enabled", |b| {
        b.iter(|| {
            let env = mismatch_env();
            YieldOptimizer::new(cfg_base()).run(&env).unwrap()
        })
    });
    group.bench_function("disabled", |b| {
        b.iter(|| {
            let env = mismatch_env();
            let mut cfg = cfg_base();
            cfg.wc_options.mirrored_models = false;
            YieldOptimizer::new(cfg).run(&env).unwrap()
        })
    });
    group.finish();
}

criterion_group!(
    benches,
    bench_linearization_point,
    bench_constraints,
    bench_mirrored_models
);
criterion_main!(benches);
