//! Estimator-layer benchmarks (ISSUE 8): simulation effort of the three
//! `YieldEstimator` implementations — plain Monte Carlo, mean-shift
//! importance sampling, and norm-minimization IS — on synthetic analytic
//! specs where the true failure probability is `Φ(−b)` by construction.
//!
//! Measurements:
//!
//! * `estimator_pass_moderate` — wall-clock of one verification pass per
//!   estimator on the moderate spec (`b = 2`, yield ≈ 97.7 %).
//! * sims-to-±1 %-interval — smallest simulation budget at which each
//!   estimator's standard error on the *yield* drops to ≤ 0.01 (the ±1 %
//!   interval of the paper's verification tables), found by doubling the
//!   sample count; printed and recorded in `BENCH_estimator.json`.
//! * high-sigma case (`b = 4.8`, failure probability ≈ 7.9e−7): at a
//!   4 000-sample budget plain MC sees zero failures (its interval
//!   collapses to a false 100 % yield), while norm-min reports a nonzero
//!   failure probability with ESS ≥ 20. The equivalent MC budget for
//!   norm-min's relative precision is computed from the binomial variance
//!   and recorded as the speedup.
//!
//! Quick mode: `SPECWISE_BENCH_QUICK=1` shrinks workloads (CI smoke job).
//! Gate mode: `SPECWISE_BENCH_GATE=1` asserts the ISSUE 8 acceptance bar —
//! on the high-sigma spec, norm-min beats plain MC by ≥ 5× at equal
//! precision while MC reports zero failures at the same budget.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use specwise::{estimate_yield, NormMinIs, NormMinOptions, Tracer};
use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_exec::Evaluator;
use specwise_linalg::DVec;
use specwise_stat::std_normal_cdf;

fn quick() -> bool {
    std::env::var("SPECWISE_BENCH_QUICK").is_ok()
}

/// margin = b + s0 → failure probability Φ(−b), exactly.
fn env(b: f64) -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "b", "", 0.0, 10.0, b,
        )]))
        .stat_dim(2)
        .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
        .build()
        .unwrap()
}

/// The worst-case point of the linear spec: the closest failure point is
/// `s = (−b, 0)` — what the optimizer's WC analysis would hand MeanShiftIs.
fn wc_shift(b: f64) -> DVec {
    DVec::from_slice(&[-b, 0.0])
}

const MODERATE_B: f64 = 2.0;
const HIGH_SIGMA_B: f64 = 4.8;
const HIGH_SIGMA_BUDGET: usize = 4_000;
const SEED: u64 = 2001;

/// `(std error of the yield, sims spent)` for one verification pass.
fn mc_pass(env: &AnalyticEnv, n: usize) -> (f64, u64) {
    let d = Evaluator::design_space(env).initial();
    let before = Evaluator::sim_count(env);
    let r = specwise::mc_verify(env, &d, n, SEED).expect("MC verifies");
    (
        r.yield_estimate.std_error(),
        Evaluator::sim_count(env) - before,
    )
}

fn is_pass(env: &AnalyticEnv, b: f64, n: usize) -> (f64, u64) {
    let d = Evaluator::design_space(env).initial();
    let before = Evaluator::sim_count(env);
    let r = specwise::importance_verify(env, &d, &wc_shift(b), n, SEED).expect("IS verifies");
    (r.std_error, Evaluator::sim_count(env) - before)
}

fn norm_min_pass(env: &AnalyticEnv, n: usize) -> (f64, u64) {
    let d = Evaluator::design_space(env).initial();
    let before = Evaluator::sim_count(env);
    let r = estimate_yield(
        &NormMinIs {
            options: NormMinOptions {
                n,
                seed: SEED,
                ..NormMinOptions::default()
            },
        },
        env,
        &d,
        &Tracer::disabled(),
    )
    .expect("norm-min verifies");
    (r.std_error, Evaluator::sim_count(env) - before)
}

/// Doubles the sample budget until the yield's standard error is ≤ 1 %
/// absolute; returns the simulation count of the first budget that makes
/// it (search/corner overhead included).
fn sims_to_pm1pct(label: &str, pass: impl Fn(usize) -> (f64, u64)) -> u64 {
    let mut n = 64usize;
    loop {
        let (se, sims) = pass(n);
        if se <= 0.01 {
            println!("sims_to_pm1pct {label}: n={n} sims={sims} std_error={se:.5}");
            return sims;
        }
        n *= 2;
        assert!(n <= 1 << 22, "{label} never reached a ±1% interval");
    }
}

fn bench_passes(c: &mut Criterion) {
    let n = if quick() { 64 } else { 1_024 };
    let moderate = env(MODERATE_B);

    let mut group = c.benchmark_group("estimator_pass_moderate");
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(2));
    }
    group.bench_function("mc", |bch| bch.iter(|| mc_pass(&moderate, n)));
    group.bench_function("is", |bch| bch.iter(|| is_pass(&moderate, MODERATE_B, n)));
    group.bench_function("norm_min", |bch| bch.iter(|| norm_min_pass(&moderate, n)));
    group.finish();
}

fn effort_and_gate(_c: &mut Criterion) {
    // Sims to the ±1 % yield interval on the moderate spec: all three
    // estimators can reach it; the IS family reaches it with a fraction of
    // the samples because the shifted proposals put most of their mass on
    // the informative (failing) side.
    let moderate = env(MODERATE_B);
    let mc_sims = sims_to_pm1pct("mc(b=2)", |n| mc_pass(&moderate, n));
    let is_sims = sims_to_pm1pct("is(b=2)", |n| is_pass(&moderate, MODERATE_B, n));
    let nm_sims = sims_to_pm1pct("norm-min(b=2)", |n| norm_min_pass(&moderate, n));
    println!("moderate sims-to-pm1pct: mc={mc_sims} is={is_sims} norm_min={nm_sims}");

    // High-sigma case: the budget at which plain MC is structurally blind.
    let high = env(HIGH_SIGMA_B);
    let d = Evaluator::design_space(&high).initial();
    let p_true = std_normal_cdf(-HIGH_SIGMA_B);

    let mc = specwise::mc_verify(&high, &d, HIGH_SIGMA_BUDGET, SEED).expect("MC verifies");
    let mc_failures = HIGH_SIGMA_BUDGET - mc.yield_estimate.passed();

    let before = Evaluator::sim_count(&high);
    let nm = estimate_yield(
        &NormMinIs {
            options: NormMinOptions {
                n: HIGH_SIGMA_BUDGET,
                seed: SEED,
                ..NormMinOptions::default()
            },
        },
        &high,
        &d,
        &Tracer::disabled(),
    )
    .expect("norm-min verifies");
    let nm_sims_high = Evaluator::sim_count(&high) - before;

    // The MC budget that matches norm-min's relative precision, from the
    // binomial variance: se_mc = sqrt(p(1-p)/n) ≤ se_nm ⇔ n ≥ p(1-p)/se².
    let rel = nm.std_error / nm.failure_probability;
    let mc_equivalent = p_true * (1.0 - p_true) / (nm.std_error * nm.std_error);
    let speedup = mc_equivalent / nm_sims_high as f64;
    println!(
        "high-sigma b={HIGH_SIGMA_B}: p_true={p_true:.3e} \
         mc_failures_at_{HIGH_SIGMA_BUDGET}={mc_failures} \
         norm_min_p={:.3e} norm_min_rel_err={rel:.3} ess={:.1} \
         search_sims={} sims={nm_sims_high} mc_equivalent_sims={mc_equivalent:.3e} \
         speedup={speedup:.1}x",
        nm.failure_probability, nm.effective_sample_size, nm.search_sims
    );

    if std::env::var("SPECWISE_BENCH_GATE").is_ok() {
        assert_eq!(
            mc_failures, 0,
            "plain MC should be blind at the high-sigma budget"
        );
        assert!(
            nm.failure_probability > 0.0 && !nm.ess_degraded,
            "norm-min must report a nonzero, non-degraded yield loss"
        );
        assert!(
            nm.effective_sample_size >= 20.0,
            "norm-min ESS {} below the acceptance floor",
            nm.effective_sample_size
        );
        assert!(
            speedup >= 5.0,
            "norm-min must beat plain MC by >= 5x at equal precision, got {speedup:.1}x"
        );
        println!(
            "gate: norm-min vs mc {speedup:.1}x, ess {:.1} — PASS",
            nm.effective_sample_size
        );
    }
}

criterion_group!(benches, bench_passes, effort_and_gate);
criterion_main!(benches);
