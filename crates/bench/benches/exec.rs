//! Benchmarks of the `specwise-exec` evaluation engine: parallel batch
//! fan-out versus serial evaluation on a latency-bound environment.
//!
//! Real SPICE-class simulators spend milliseconds to minutes per operating
//! point, so the win from the worker pool is overlap of *waiting*, not of
//! arithmetic. The analytic test circuits in this workspace solve in
//! microseconds, which would make any threading overhead dominate; to model
//! the intended deployment, the environment here sleeps for a fixed
//! per-evaluation latency. Every benchmark first asserts that the parallel
//! results are bit-identical to the serial ones.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specwise::mc_verify;
use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
use specwise_exec::{EvalService, ExecConfig, RetryPolicy};
use specwise_linalg::DVec;
use specwise_wcd::margins_gradient_d;

/// Simulated per-evaluation solver latency.
const SIM_LATENCY: Duration = Duration::from_micros(500);

/// A latency-bound environment with `n_d` design parameters: every
/// evaluation sleeps for [`SIM_LATENCY`] before returning an analytic
/// margin vector.
fn slow_env(n_d: usize) -> AnalyticEnv {
    let params = (0..n_d)
        .map(|k| DesignParam::new(&format!("d{k}"), "", 0.0, 10.0, 1.0))
        .collect();
    AnalyticEnv::builder()
        .design(DesignSpace::new(params))
        .stat_dim(2)
        .spec(Spec::new("f0", "", SpecKind::LowerBound, 0.0))
        .spec(Spec::new("f1", "", SpecKind::LowerBound, 0.0))
        .performances(move |d, s, _| {
            std::thread::sleep(SIM_LATENCY);
            let sum: f64 = (0..d.len()).map(|k| d[k]).sum();
            DVec::from_slice(&[sum + s[0], 2.0 + s[1] - 0.1 * sum])
        })
        .build()
        .unwrap()
}

fn pool_config(workers: usize) -> ExecConfig {
    ExecConfig {
        workers,
        cache_capacity: 0, // measure the fan-out, not memoization
        retry: RetryPolicy::none(),
        min_parallel_batch: 2,
    }
}

/// Monte-Carlo verification: N samples per corner group go out as one
/// batch. The acceptance bar is a ≥ 2× speedup at 4+ workers.
fn bench_mc_verification(c: &mut Criterion) {
    let env = slow_env(2);
    let d = env.design_space().initial();
    let n_samples = 48;

    let serial = mc_verify(&env, &d, n_samples, 42).unwrap();
    for workers in [4usize, 8] {
        let svc = EvalService::new(&env, pool_config(workers));
        let par = mc_verify(&svc, &d, n_samples, 42).unwrap();
        assert_eq!(
            serial.yield_estimate, par.yield_estimate,
            "parallel MC must be identical"
        );
        assert_eq!(serial.per_spec_bad, par.per_spec_bad);
    }

    let mut group = c.benchmark_group("exec_mc_verify_48_samples");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| mc_verify(&env, &d, n_samples, 42).unwrap())
    });
    for workers in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let svc = EvalService::new(&env, pool_config(w));
            b.iter(|| mc_verify(&svc, &d, n_samples, 42).unwrap())
        });
    }
    group.finish();
}

/// Finite-difference design Jacobian: `n_d + 1` evaluations per call, all
/// independent, issued as one batch.
fn bench_fd_jacobian(c: &mut Criterion) {
    let env = slow_env(11);
    let d = env.design_space().initial();
    let s = DVec::zeros(2);
    let theta = env.operating_range().nominal();

    let (m_serial, j_serial) = margins_gradient_d(&env, &d, &s, &theta, 1e-3).unwrap();
    for workers in [4usize, 8] {
        let svc = EvalService::new(&env, pool_config(workers));
        let (m_par, j_par) = margins_gradient_d(&svc, &d, &s, &theta, 1e-3).unwrap();
        assert_eq!(m_serial, m_par, "parallel Jacobian must be identical");
        for i in 0..j_serial.nrows() {
            for k in 0..j_serial.ncols() {
                assert_eq!(j_serial[(i, k)].to_bits(), j_par[(i, k)].to_bits());
            }
        }
    }

    let mut group = c.benchmark_group("exec_fd_jacobian_12_points");
    group.sample_size(10);
    group.bench_function("serial", |b| {
        b.iter(|| margins_gradient_d(&env, &d, &s, &theta, 1e-3).unwrap())
    });
    for workers in [4usize, 8] {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            let svc = EvalService::new(&env, pool_config(w));
            b.iter(|| margins_gradient_d(&svc, &d, &s, &theta, 1e-3).unwrap())
        });
    }
    group.finish();
}

/// Cache effectiveness on repeated anchors: the same corner sweep hits the
/// memoized results after the first pass.
fn bench_cache(c: &mut Criterion) {
    let env = slow_env(2);
    let d = env.design_space().initial();
    let s = DVec::zeros(2);
    let theta = env.operating_range().nominal();

    let mut group = c.benchmark_group("exec_repeated_point");
    group.sample_size(10);
    group.bench_function("uncached", |b| {
        let svc = EvalService::new(&env, pool_config(1));
        b.iter(|| svc_eval(&svc, &d, &s, &theta))
    });
    group.bench_function("cached", |b| {
        let svc = EvalService::new(
            &env,
            ExecConfig {
                cache_capacity: 64,
                ..pool_config(1)
            },
        );
        b.iter(|| svc_eval(&svc, &d, &s, &theta))
    });
    group.finish();
}

fn svc_eval(
    svc: &EvalService<'_, AnalyticEnv>,
    d: &DVec,
    s: &DVec,
    theta: &specwise_ckt::OperatingPoint,
) -> DVec {
    specwise_exec::Evaluator::eval_margins(svc, d, s, theta).unwrap()
}

criterion_group!(
    benches,
    bench_mc_verification,
    bench_fd_jacobian,
    bench_cache
);
criterion_main!(benches);
