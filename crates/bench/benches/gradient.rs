//! Gradient-backend benchmarks (ISSUE 7): adjoint sensitivities on cached
//! LU factors vs finite differences, and the sample-major batched Newton
//! path vs the per-sample scalar loop.
//!
//! Groups:
//!
//! * `linearize_folded_cascode` — one full spec-wise linearization
//!   (`∂m/∂s` + `∂m/∂d` at the initial design, nominal θ, flow-default
//!   steps) per iteration:
//!   - `fd`      — every perturbation direction fully re-simulated,
//!   - `adjoint` — directions priced on the cached factorizations of the
//!     converged base point.
//! * `mc_batched_{folded_cascode,miller}` — a Monte-Carlo margin stream
//!   (24 mismatch samples, fixed design, nominal θ):
//!   - `scalar`  — the per-sample loop,
//!   - `batched` — the lockstep sample-major path (`SPECWISE_BATCH=64`).
//!
//! Quick mode: set `SPECWISE_BENCH_QUICK=1` to shrink the workloads (used
//! by the CI smoke job). Gate mode: set `SPECWISE_BENCH_GATE=1` to assert
//! the adjoint backend linearizes the folded cascode at least 2x faster
//! than finite differences (the ISSUE 7 acceptance bar) after timing.
//!
//! Results are recorded in `EXPERIMENTS.md` and `BENCH_grad.json`.

use std::time::{Duration, Instant};

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specwise_ckt::{CircuitEnv, FoldedCascode, MillerOpamp, OperatingPoint};
use specwise_linalg::{DMat, DVec};
use specwise_wcd::{margins_gradient_d_with, margins_gradient_s_with, GradBackend};

fn quick() -> bool {
    std::env::var("SPECWISE_BENCH_QUICK").is_ok()
}

/// Deterministic stream of standardized mismatch samples `ŝ ~ N(0, I)`.
fn sample_stream(dim: usize, count: usize) -> Vec<DVec> {
    let mut rng = StdRng::seed_from_u64(20010618);
    (0..count)
        .map(|_| {
            DVec::from(
                (0..dim)
                    .map(|_| {
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// One full spec-wise linearization at `(d, ŝ=0, θ_nom)` with the chosen
/// backend; returns a checksum so the work cannot be optimized away.
fn linearize<E: CircuitEnv + Sync>(
    env: &E,
    backend: GradBackend,
    d: &DVec,
    theta: &OperatingPoint,
) -> f64 {
    let s0 = DVec::zeros(env.stat_dim());
    let (base, jac_s) =
        margins_gradient_s_with(env, backend, d, &s0, theta, 0.01).expect("stat gradient");
    let (_, jac_d) =
        margins_gradient_d_with(env, backend, d, &s0, theta, 1e-3).expect("design gradient");
    let mut acc = base.iter().sum::<f64>();
    for j in 0..jac_s.ncols() {
        for i in 0..jac_s.nrows() {
            acc += jac_s[(i, j)];
        }
    }
    for j in 0..jac_d.ncols() {
        for i in 0..jac_d.nrows() {
            acc += jac_d[(i, j)];
        }
    }
    acc
}

fn frob_dev(a: &DMat, b: &DMat) -> f64 {
    let mut diff2 = 0.0;
    let mut norm2 = 0.0;
    for j in 0..b.ncols() {
        for i in 0..b.nrows() {
            diff2 += (a[(i, j)] - b[(i, j)]).powi(2);
            norm2 += b[(i, j)].powi(2);
        }
    }
    diff2.sqrt() / norm2.sqrt().max(1.0)
}

fn bench_linearize(c: &mut Criterion) {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let theta = env.operating_range().nominal();
    let s0 = DVec::zeros(env.stat_dim());

    // Parity guard: the two backends must agree before any timing is
    // trusted (same bar as the adjoint_parity acceptance test).
    let (_, jac_fd) =
        margins_gradient_s_with(&env, GradBackend::Fd, &d0, &s0, &theta, 0.01).unwrap();
    let (_, jac_adj) =
        margins_gradient_s_with(&env, GradBackend::Adjoint, &d0, &s0, &theta, 0.01).unwrap();
    let dev = frob_dev(&jac_adj, &jac_fd);
    assert!(
        dev < 4e-2,
        "fd/adjoint ∂m/∂s disagree: Frobenius dev {dev:e}"
    );

    let mut group = c.benchmark_group("linearize_folded_cascode");
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(4));
    }
    group.bench_function("fd", |b| {
        b.iter(|| linearize(&env, GradBackend::Fd, &d0, &theta));
    });
    group.bench_function("adjoint", |b| {
        b.iter(|| linearize(&env, GradBackend::Adjoint, &d0, &theta));
    });
    group.finish();

    // Acceptance gate (ISSUE 7): adjoint linearization >= 2x faster than
    // finite differences on the folded cascode. Opt-in so a loaded CI box
    // only pays for it in the dedicated smoke step.
    if std::env::var("SPECWISE_BENCH_GATE").is_ok() {
        let reps = if quick() { 2 } else { 5 };
        let time_backend = |backend: GradBackend| {
            let mut best = Duration::MAX;
            for _ in 0..reps {
                let t0 = Instant::now();
                linearize(&env, backend, &d0, &theta);
                best = best.min(t0.elapsed());
            }
            best
        };
        let fd = time_backend(GradBackend::Fd);
        let adjoint = time_backend(GradBackend::Adjoint);
        let speedup = fd.as_secs_f64() / adjoint.as_secs_f64();
        println!("gate: fd {fd:?} / adjoint {adjoint:?} = {speedup:.2}x");
        assert!(
            speedup >= 2.0,
            "adjoint linearization must be >= 2x faster than FD, got {speedup:.2}x"
        );
    }
}

/// Primes the warm cache the way Monte-Carlo verification encounters it in
/// the flow: the optimizer has just evaluated the design at the nominal
/// point, so every sample's Newton solves seed from that committed
/// operating point. Cleared + re-primed inside each timed iteration so
/// exact-hit replay between iterations never flatters the numbers.
fn prime<E: CircuitEnv>(env: &E, clear: fn(&E), d: &DVec, theta: &OperatingPoint) {
    clear(env);
    env.eval_margins(d, &DVec::zeros(env.stat_dim()), theta)
        .unwrap();
    env.warm_commit();
}

/// One MC margin pass over the stream; checksum prevents dead-code elision.
fn mc_scalar<E: CircuitEnv>(env: &E, d: &DVec, points: &[(DVec, OperatingPoint)]) -> f64 {
    points
        .iter()
        .map(|(s, theta)| env.eval_margins(d, s, theta).unwrap().iter().sum::<f64>())
        .sum()
}

fn mc_batched<E: CircuitEnv>(env: &E, d: &DVec, points: &[(DVec, OperatingPoint)]) -> f64 {
    env.eval_margins_samples(d, points)
        .expect("batched path engages")
        .into_iter()
        .map(|r| r.unwrap().iter().sum::<f64>())
        .sum()
}

fn bench_mc<E: CircuitEnv>(c: &mut Criterion, name: &str, make: fn(bool) -> E, clear: fn(&E)) {
    let n_samples = if quick() { 4 } else { 24 };
    let env = make(true);
    let d0 = env.design_space().initial();
    let theta = env.operating_range().nominal();
    let points: Vec<(DVec, OperatingPoint)> = sample_stream(env.stat_dim(), n_samples)
        .into_iter()
        .map(|s| (s, theta))
        .collect();

    // Parity guard: the batched path must reproduce the scalar loop
    // bit-for-bit (the lockstep_batch acceptance test pins this broadly;
    // here it protects the timing comparison).
    std::env::set_var("SPECWISE_BATCH", "64");
    let batched = env.eval_margins_samples(&d0, &points).unwrap();
    for ((s, th), b) in points.iter().zip(&batched) {
        let scalar = env.eval_margins(&d0, s, th).unwrap();
        let b = b.as_ref().unwrap();
        for i in 0..scalar.len() {
            assert_eq!(
                scalar[i].to_bits(),
                b[i].to_bits(),
                "{name}: batched margin {i} differs from scalar"
            );
        }
    }

    let mut group = c.benchmark_group(format!("mc_batched_{name}"));
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(4));
    }
    group.bench_function("scalar", |b| {
        std::env::set_var("SPECWISE_BATCH", "1");
        b.iter(|| {
            prime(&env, clear, &d0, &theta);
            mc_scalar(&env, &d0, &points)
        });
    });
    group.bench_function("batched", |b| {
        std::env::set_var("SPECWISE_BATCH", "64");
        b.iter(|| {
            prime(&env, clear, &d0, &theta);
            mc_batched(&env, &d0, &points)
        });
    });
    group.finish();
    std::env::remove_var("SPECWISE_BATCH");
}

fn bench_mc_folded(c: &mut Criterion) {
    bench_mc(
        c,
        "folded_cascode",
        |warm| FoldedCascode::paper_setup().with_warm_start(warm),
        |e| e.warm_cache().clear(),
    );
}

fn bench_mc_miller(c: &mut Criterion) {
    bench_mc(
        c,
        "miller",
        |warm| MillerOpamp::paper_setup().with_warm_start(warm),
        |e| e.warm_cache().clear(),
    );
}

criterion_group!(benches, bench_linearize, bench_mc_folded, bench_mc_miller);
criterion_main!(benches);
