//! End-to-end benches of the two paper experiments: one full optimizer
//! iteration of the folded-cascode (Table 1) and Miller (Table 6) flows
//! with reduced sample counts. These are the wall-clock numbers behind our
//! Table 7 analogue.

use criterion::{criterion_group, criterion_main, Criterion};
use specwise::{OptimizerConfig, YieldOptimizer};
use specwise_ckt::{FoldedCascode, MillerOpamp};

fn quick_config() -> OptimizerConfig {
    let mut cfg = OptimizerConfig::default();
    cfg.max_iterations = 1;
    cfg.mc_samples = 2_000;
    cfg.verify_samples = 0; // timing the optimization itself, not the MC audit
    cfg
}

fn bench_folded(c: &mut Criterion) {
    let mut group = c.benchmark_group("optimize_one_iteration");
    group.sample_size(10);
    group.bench_function("folded_cascode", |b| {
        b.iter(|| {
            let env = FoldedCascode::paper_setup();
            YieldOptimizer::new(quick_config()).run(&env).unwrap()
        })
    });
    group.bench_function("miller", |b| {
        b.iter(|| {
            let env = MillerOpamp::paper_setup();
            YieldOptimizer::new(quick_config()).run(&env).unwrap()
        })
    });
    group.finish();
}

fn bench_mc_verification(c: &mut Criterion) {
    let mut group = c.benchmark_group("mc_verification_300_samples");
    group.sample_size(10);
    let env = FoldedCascode::paper_setup();
    let d0 = specwise_ckt::CircuitEnv::design_space(&env).initial();
    group.bench_function("folded_cascode", |b| {
        b.iter(|| specwise::mc_verify(&env, &d0, 300, 42).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_folded, bench_mc_verification);
criterion_main!(benches);
