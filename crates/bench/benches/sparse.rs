//! Sparse-MNA kernel benchmarks (ISSUE 2): dense-cold vs sparse-cold vs
//! sparse+warm on the two paper circuits, measured on the workload that
//! dominates Table 7 — an MC-verification style stream of performance
//! evaluations at perturbed statistical samples around a fixed design.
//!
//! Variants:
//!
//! * `dense-cold`  — dense LU, every Newton solve from zero,
//! * `sparse-cold` — cached-symbolic sparse LU, Newton from zero,
//! * `sparse-warm` — sparse LU plus the [`WarmStartCache`]: each sample's
//!   DC solves seed from the previous converged operating point (the warm
//!   cache is cleared at the top of every timed iteration so exact-hit
//!   replay never flatters the numbers).
//!
//! Quick mode: set `SPECWISE_BENCH_QUICK=1` to shrink the sample stream and
//! the measurement budget (used by the CI smoke job).
//!
//! Results are recorded in `EXPERIMENTS.md` and `BENCH_sparse.json`.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use specwise_ckt::{CircuitEnv, FoldedCascode, MillerOpamp};
use specwise_linalg::DVec;
use specwise_mna::{set_solver_override, SolverChoice};

fn quick() -> bool {
    std::env::var("SPECWISE_BENCH_QUICK").is_ok()
}

/// Deterministic stream of standardized mismatch samples `ŝ ~ N(0, I)`
/// (Box–Muller over the vendored xoshiro generator).
fn sample_stream(dim: usize, count: usize) -> Vec<DVec> {
    let mut rng = StdRng::seed_from_u64(20010618);
    (0..count)
        .map(|_| {
            DVec::from(
                (0..dim)
                    .map(|_| {
                        let u1: f64 = rng.gen::<f64>().max(1e-12);
                        let u2: f64 = rng.gen();
                        (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
                    })
                    .collect::<Vec<_>>(),
            )
        })
        .collect()
}

/// Runs one MC-verification pass: performances at every sample of the
/// stream. Returns a checksum so the work cannot be optimized away.
///
/// Commits the warm-start snapshot between samples (a no-op on disabled
/// caches), so each sample's Newton solves can seed from the previous
/// converged operating point — the serial-stream usage pattern.
fn mc_pass<E: CircuitEnv>(env: &E, d: &DVec, samples: &[DVec]) -> f64 {
    let theta = env.operating_range().nominal();
    let mut acc = 0.0;
    for s in samples {
        env.warm_commit();
        let perf = env.eval_performances(d, s, &theta).unwrap();
        acc += perf.iter().sum::<f64>();
    }
    acc
}

struct Workload<E: CircuitEnv> {
    name: &'static str,
    make: fn(bool) -> E,
    clear_warm: fn(&E),
}

fn folded(warm: bool) -> FoldedCascode {
    FoldedCascode::paper_setup().with_warm_start(warm)
}

fn miller(warm: bool) -> MillerOpamp {
    MillerOpamp::paper_setup().with_warm_start(warm)
}

fn bench_workload<E: CircuitEnv>(c: &mut Criterion, w: &Workload<E>) {
    let n_samples = if quick() { 4 } else { 24 };
    let env_cold = (w.make)(false);
    let env_warm = (w.make)(true);
    let d0 = env_cold.design_space().initial();
    let samples = sample_stream(env_cold.stat_dim(), n_samples);

    // Parity guard: the three variants must agree on the first sample
    // before any timing is trusted.
    let theta = env_cold.operating_range().nominal();
    set_solver_override(Some(SolverChoice::Dense));
    let p_dense = env_cold
        .eval_performances(&d0, &samples[0], &theta)
        .unwrap();
    set_solver_override(Some(SolverChoice::Sparse));
    let p_sparse = env_cold
        .eval_performances(&d0, &samples[0], &theta)
        .unwrap();
    for i in 0..p_dense.len() {
        let err = (p_dense[i] - p_sparse[i]).abs() / (1.0 + p_dense[i].abs());
        assert!(
            err < 1e-6,
            "{}: dense/sparse disagree on performance {i}: {} vs {}",
            w.name,
            p_dense[i],
            p_sparse[i]
        );
    }
    set_solver_override(None);

    let mut group = c.benchmark_group(format!("mc_verify_{}", w.name));
    if quick() {
        group
            .sample_size(3)
            .measurement_time(Duration::from_millis(200));
    } else {
        group
            .sample_size(10)
            .measurement_time(Duration::from_secs(4));
    }

    group.bench_function("dense-cold", |b| {
        set_solver_override(Some(SolverChoice::Dense));
        b.iter(|| mc_pass(&env_cold, &d0, &samples));
        set_solver_override(None);
    });
    group.bench_function("sparse-cold", |b| {
        set_solver_override(Some(SolverChoice::Sparse));
        b.iter(|| mc_pass(&env_cold, &d0, &samples));
        set_solver_override(None);
    });
    group.bench_function("sparse-warm", |b| {
        set_solver_override(Some(SolverChoice::Sparse));
        b.iter(|| {
            // Fresh cache each iteration: within-stream near-hit seeding
            // only, no exact-hit replay between iterations.
            (w.clear_warm)(&env_warm);
            mc_pass(&env_warm, &d0, &samples)
        });
        set_solver_override(None);
    });
    group.finish();
}

fn bench_folded(c: &mut Criterion) {
    bench_workload(
        c,
        &Workload {
            name: "folded_cascode",
            make: folded,
            clear_warm: |e| e.warm_cache().clear(),
        },
    );
}

fn bench_miller(c: &mut Criterion) {
    bench_workload(
        c,
        &Workload {
            name: "miller",
            make: miller,
            clear_warm: |e| e.warm_cache().clear(),
        },
    );
}

criterion_group!(benches, bench_folded, bench_miller);
criterion_main!(benches);
