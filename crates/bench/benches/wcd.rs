//! Benchmarks of the worst-case analysis layer: the worst-case distance
//! search (Eq. 8) and the full per-design-point analysis, on an analytic
//! problem (deterministic, no simulator noise) and on the real circuit.

use criterion::{criterion_group, criterion_main, Criterion};
use specwise_ckt::{
    AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, FoldedCascode, Spec, SpecKind,
};
use specwise_linalg::DVec;
use specwise_wcd::{WcAnalysis, WcOptions, WorstCaseSearch};

/// A 27-dimensional analytic problem shaped like the circuit one.
fn analytic_env() -> AnalyticEnv {
    AnalyticEnv::builder()
        .design(DesignSpace::new(vec![DesignParam::new(
            "d0", "", 0.0, 10.0, 3.0,
        )]))
        .stat_dim(27)
        .spec(Spec::new("lin", "", SpecKind::LowerBound, 0.0))
        .spec(Spec::new("quad", "", SpecKind::LowerBound, 0.0))
        .performances(|d, s, _| {
            let lin: f64 = d[0]
                + s.iter()
                    .enumerate()
                    .map(|(i, &x)| x * 0.2 * ((i + 1) as f64).sqrt())
                    .sum::<f64>()
                    * 0.3;
            let z = s[5] - s[6];
            let quad = d[0] - 0.3 * z * z - 0.2 * z;
            DVec::from_slice(&[lin, quad])
        })
        .build()
        .unwrap()
}

fn bench_wc_search_analytic(c: &mut Criterion) {
    let env = analytic_env();
    let d = DVec::from_slice(&[3.0]);
    let theta = env.operating_range().nominal();
    let search = WorstCaseSearch::new(WcOptions::default());
    c.bench_function("wc_distance_linear_27d", |b| {
        b.iter(|| search.run(&env, &d, 0, &theta).unwrap())
    });
    c.bench_function("wc_distance_quadratic_27d", |b| {
        b.iter(|| search.run(&env, &d, 1, &theta).unwrap())
    });
}

fn bench_full_analysis(c: &mut Criterion) {
    let env = analytic_env();
    let d = DVec::from_slice(&[3.0]);
    c.bench_function("wc_analysis_analytic", |b| {
        b.iter(|| WcAnalysis::new(&env, WcOptions::default()).run(&d).unwrap())
    });

    // The real thing: one full worst-case analysis of the folded cascode —
    // the dominant cost of one optimizer iteration.
    let fc = FoldedCascode::paper_setup();
    let d0 = fc.design_space().initial();
    let mut group = c.benchmark_group("wc_analysis_circuit");
    group.sample_size(10);
    group.bench_function("folded_cascode", |b| {
        b.iter(|| WcAnalysis::new(&fc, WcOptions::default()).run(&d0).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_wc_search_analytic, bench_full_analysis);
criterion_main!(benches);
