//! Benchmarks of the linearized-model yield estimator: the Eq. 20
//! incremental coordinate update versus full re-evaluation, and scaling
//! with the Monte-Carlo sample count — the design choices DESIGN.md §5
//! calls out.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use specwise::LinearizedYield;
use specwise_ckt::OperatingPoint;
use specwise_linalg::DVec;
use specwise_wcd::SpecLinearization;

/// A synthetic model set shaped like the folded-cascode problem: 7 models
/// (5 specs + 2 mirrored), 27 statistical dimensions, 10 design dimensions.
fn models() -> Vec<SpecLinearization> {
    let n_s = 27;
    let n_d = 10;
    let mut out = Vec::new();
    for spec in 0..5 {
        let grad_s = DVec::from_fn(n_s, |j| ((spec * 7 + j) as f64 * 0.37).sin() * 0.5);
        let grad_d = DVec::from_fn(n_d, |k| ((spec * 3 + k) as f64 * 0.53).cos());
        let s_wc = grad_s.scaled(-1.2);
        let lin = SpecLinearization {
            spec,
            mirrored: false,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc,
            d_f: DVec::zeros(n_d),
            margin_at_anchor: 0.0,
            grad_s,
            grad_d,
        };
        if spec == 2 {
            out.push(lin.to_mirrored());
        }
        out.push(lin);
    }
    out
}

fn bench_estimate_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("linearized_yield_estimate");
    for n in [1_000usize, 10_000, 100_000] {
        let model = LinearizedYield::new(models(), 5, n, 7).unwrap();
        let d = DVec::filled(10, 0.3);
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, _| {
            b.iter(|| model.estimate(&d).unwrap())
        });
    }
    group.finish();
}

fn bench_incremental_vs_full(c: &mut Criterion) {
    let model = LinearizedYield::new(models(), 5, 10_000, 7).unwrap();
    let d0 = DVec::zeros(10);

    // Naive baseline: evaluate every full linear model (27-dim statistical
    // dot product) for every sample — what Eq. 20 avoids by storing the
    // per-sample constant parts.
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use specwise_stat::StandardNormal;
    let naive_models = models();
    c.bench_function("coord_probe_naive_per_sample_models", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(7);
            let normal = StandardNormal::new();
            let mut d = d0.clone();
            d[3] = 0.7;
            let mut s = DVec::zeros(27);
            let mut pass = 0usize;
            for _ in 0..10_000 {
                normal.fill(&mut rng, s.as_mut_slice());
                if naive_models.iter().all(|m| m.eval(&d, &s) >= 0.0) {
                    pass += 1;
                }
            }
            pass
        })
    });

    // Eq. 20 path A: precomputed sample parts, design shifts rebuilt per
    // candidate (n_d-length dot products).
    c.bench_function("coord_probe_precomputed_parts", |b| {
        b.iter(|| {
            let mut d = d0.clone();
            d[3] = 0.7;
            model.estimate(&d).unwrap()
        })
    });

    // Eq. 20 path B: additionally update only the moved coordinate's term.
    let tracker = model.tracker(&d0).unwrap();
    c.bench_function("coord_probe_incremental", |b| {
        b.iter(|| tracker.estimate_coord(3, 0.7))
    });
}

fn bench_model_construction(c: &mut Criterion) {
    c.bench_function("model_construction_10k_samples", |b| {
        b.iter(|| LinearizedYield::new(models(), 5, 10_000, 7).unwrap())
    });
}

criterion_group!(
    benches,
    bench_estimate_scaling,
    bench_incremental_vs_full,
    bench_model_construction
);
criterion_main!(benches);
