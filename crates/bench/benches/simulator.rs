//! Benchmarks of the MNA simulator substrate: DC operating point, AC
//! solve, and a full opamp performance evaluation — the unit costs behind
//! every number in the paper's Table 7.

use criterion::{criterion_group, criterion_main, Criterion};
use specwise_ckt::{CircuitEnv, FoldedCascode, MillerOpamp};
use specwise_linalg::DVec;
use specwise_mna::{AcSolver, Circuit, DcOp, MosfetModel, MosfetParams};

fn common_source() -> Circuit {
    let mut ckt = Circuit::new();
    let vdd = ckt.node("vdd");
    let gate = ckt.node("g");
    let out = ckt.node("out");
    ckt.voltage_source("VDD", vdd, Circuit::GROUND, 3.0)
        .unwrap();
    ckt.voltage_source("VG", gate, Circuit::GROUND, 1.0)
        .unwrap();
    ckt.set_ac("VG", 1.0).unwrap();
    ckt.resistor("RD", vdd, out, 20e3).unwrap();
    ckt.capacitor("CL", out, Circuit::GROUND, 1e-12).unwrap();
    let m = MosfetParams::new(MosfetModel::default_nmos(), 10e-6, 1e-6);
    ckt.mosfet("M1", out, gate, Circuit::GROUND, Circuit::GROUND, m)
        .unwrap();
    ckt
}

fn bench_dc(c: &mut Criterion) {
    let ckt = common_source();
    c.bench_function("dc_op_common_source", |b| {
        b.iter(|| DcOp::new(&ckt).solve().unwrap())
    });

    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    c.bench_function("dc_constraints_folded_cascode", |b| {
        b.iter(|| env.eval_constraints(&d0).unwrap())
    });
}

fn bench_ac(c: &mut Criterion) {
    let ckt = common_source();
    let op = DcOp::new(&ckt).solve().unwrap();
    let ac = AcSolver::new(&ckt, &op);
    c.bench_function("ac_single_frequency", |b| b.iter(|| ac.solve(1e6).unwrap()));
    let out = ckt.find_node("out").unwrap();
    c.bench_function("ac_find_unity_crossing", |b| {
        b.iter(|| ac.find_crossing(out, 1.0, 1e3, 1e12).unwrap())
    });
}

fn bench_full_eval(c: &mut Criterion) {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let s0 = DVec::zeros(env.stat_dim());
    let theta = env.operating_range().nominal();
    c.bench_function("eval_performances_folded_cascode", |b| {
        b.iter(|| env.eval_performances(&d0, &s0, &theta).unwrap())
    });

    let miller = MillerOpamp::paper_setup();
    let dm = miller.design_space().initial();
    let sm = DVec::zeros(miller.stat_dim());
    let tm = miller.operating_range().nominal();
    c.bench_function("eval_performances_miller", |b| {
        b.iter(|| miller.eval_performances(&dm, &sm, &tm).unwrap())
    });
}

criterion_group!(benches, bench_dc, bench_ac, bench_full_eval);
criterion_main!(benches);
