//! Shared experiment runners for the `specwise` benchmark harness.
//!
//! Every table and figure of the DAC 2001 paper has a runner here; the
//! `tables` binary prints them next to the paper's reference values and the
//! Criterion benches time the underlying machinery. See DESIGN.md §4 for
//! the experiment index.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use specwise::{
    MismatchAnalysis, MismatchEntry, OptimizationTrace, OptimizerConfig, SpecwiseError,
    YieldOptimizer,
};
use specwise_ckt::{CircuitEnv, CktError, FoldedCascode, MillerOpamp};
use specwise_exec::{EvalService, ExecConfig};
use specwise_linalg::DVec;
use specwise_wcd::LinearizationPoint;

/// Runs the Table 1 experiment: folded-cascode yield optimization with
/// functional constraints and worst-case linearization.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table1() -> Result<(FoldedCascode, OptimizationTrace), SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let trace = YieldOptimizer::new(OptimizerConfig::default()).run(&env)?;
    Ok((env, trace))
}

/// Runs the Table 1 optimization through an [`EvalService`] so the trace
/// carries the execution-engine report (per-phase simulation counts, cache
/// hit rate, parallel wall time). The service configuration comes from the
/// `SPECWISE_*` environment variables on top of the defaults.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table1_exec() -> Result<(FoldedCascode, OptimizationTrace), SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let service = EvalService::new(&env, ExecConfig::from_env());
    let trace = YieldOptimizer::new(OptimizerConfig::default()).run(&service)?;
    Ok((env, trace))
}

/// Runs the Table 6 optimization through an [`EvalService`]; see
/// [`run_table1_exec`].
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table6_exec() -> Result<(MillerOpamp, OptimizationTrace), SpecwiseError> {
    let env = MillerOpamp::paper_setup();
    let service = EvalService::new(&env, ExecConfig::from_env());
    let trace = YieldOptimizer::new(OptimizerConfig::default()).run(&service)?;
    Ok((env, trace))
}

/// Runs the Table 3 ablation: no functional constraints.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table3() -> Result<(FoldedCascode, OptimizationTrace), SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let mut cfg = OptimizerConfig::default();
    cfg.use_constraints = false;
    cfg.max_iterations = 1;
    let trace = YieldOptimizer::new(cfg).run(&env)?;
    Ok((env, trace))
}

/// Runs the Table 4 ablation: linearization at the nominal point.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table4() -> Result<(FoldedCascode, OptimizationTrace), SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let mut cfg = OptimizerConfig::default();
    cfg.wc_options.linearization_point = LinearizationPoint::Nominal;
    cfg.max_iterations = 1;
    let trace = YieldOptimizer::new(cfg).run(&env)?;
    Ok((env, trace))
}

/// Runs the Table 5 experiment: mismatch ranking at the initial design.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_table5() -> Result<(FoldedCascode, Vec<MismatchEntry>), SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let analysis =
        specwise_wcd::WcAnalysis::new(&env, specwise_wcd::WcOptions::default()).run(&d0)?;
    let entries = MismatchAnalysis::new().rank_all(analysis.worst_case_points(), 0.01);
    Ok((env, entries))
}

/// Runs the Table 6 experiment: Miller opamp optimization under global
/// variations.
///
/// # Errors
///
/// Propagates optimizer errors.
pub fn run_table6() -> Result<(MillerOpamp, OptimizationTrace), SpecwiseError> {
    let env = MillerOpamp::paper_setup();
    let trace = YieldOptimizer::new(OptimizerConfig::default()).run(&env)?;
    Ok((env, trace))
}

/// One row of a surface CSV: `(x, y, value)`.
pub type SurfacePoint = (f64, f64, f64);

/// Generates the Fig. 1 surface: CMRR over the mirror pair's local Vth
/// deviations at the initial design, `n × n` grid over ±3σ.
///
/// # Errors
///
/// Propagates evaluation errors.
pub fn run_fig1(n: usize) -> Result<Vec<SurfacePoint>, CktError> {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let theta = env.operating_range().nominal();
    let k = env
        .stat_space()
        .index_of("vth_m7")
        .expect("mirror pair exists");
    let l = env
        .stat_space()
        .index_of("vth_m8")
        .expect("mirror pair exists");
    let mut out = Vec::with_capacity(n * n);
    for i in 0..n {
        for j in 0..n {
            let a = -3.0 + 6.0 * i as f64 / (n - 1) as f64;
            let b = -3.0 + 6.0 * j as f64 / (n - 1) as f64;
            let mut s = DVec::zeros(env.stat_dim());
            s[k] = a;
            s[l] = b;
            let cmrr = env.eval_performances(&d0, &s, &theta)?[2];
            out.push((a, b, cmrr));
        }
    }
    Ok(out)
}

/// Generates the Fig. 2 series: the mismatch-line selector `Φ(α)`.
pub fn run_fig2(n: usize) -> Vec<(f64, f64)> {
    let opts = specwise::PhiOptions::default();
    (0..n)
        .map(|i| {
            let a = -std::f64::consts::FRAC_PI_2 + std::f64::consts::PI * i as f64 / (n - 1) as f64;
            (a, specwise::phi(a, &opts))
        })
        .collect()
}

/// Generates the Fig. 3 series: the robustness weight `η(β_wc)`.
pub fn run_fig3(n: usize) -> Vec<(f64, f64)> {
    (0..n)
        .map(|i| {
            let b = -6.0 + 12.0 * i as f64 / (n - 1) as f64;
            (b, specwise::eta(b))
        })
        .collect()
}

/// Generates the Fig. 4 surface: A0 over a 2-D cut (w3, wt) of the design
/// space together with the minimum functional-constraint value — the
/// feasibility region (`min c ≥ 0`) over which A0 is weakly nonlinear.
///
/// Returns `(w3, wt, a0_db, min_constraint)` tuples; points where the
/// circuit does not simulate are skipped.
///
/// # Errors
///
/// Propagates evaluation errors other than per-point simulation failures.
pub fn run_fig4(n: usize) -> Result<Vec<(f64, f64, f64, f64)>, CktError> {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let theta = env.operating_range().nominal();
    let s0 = DVec::zeros(env.stat_dim());
    let mut out = Vec::new();
    for i in 0..n {
        for j in 0..n {
            let w3 = 20.0 + (160.0 - 20.0) * i as f64 / (n - 1) as f64;
            let wt = 10.0 + (90.0 - 10.0) * j as f64 / (n - 1) as f64;
            let mut d = d0.clone();
            d[2] = w3;
            d[8] = wt;
            let c = match env.eval_constraints(&d) {
                Ok(c) => c,
                Err(e) if e.is_simulation_failure() => continue,
                Err(e) => return Err(e),
            };
            let min_c = c.iter().fold(f64::INFINITY, |m, &x| m.min(x));
            let a0 = match env.eval_performances(&d, &s0, &theta) {
                Ok(p) => p[0],
                Err(e) if e.is_simulation_failure() => continue,
                Err(e) => return Err(e),
            };
            out.push((w3, wt, a0, min_c));
        }
    }
    Ok(out)
}

/// Generates the Fig. 5 series: the linearized yield estimate `Ȳ` over one
/// design parameter (`w1`) between its bounds — non-monotonic with flat
/// zero-yield stretches.
///
/// # Errors
///
/// Propagates analysis errors.
pub fn run_fig5(n: usize) -> Result<Vec<(f64, f64)>, SpecwiseError> {
    let env = FoldedCascode::paper_setup();
    let d0 = env.design_space().initial();
    let analysis =
        specwise_wcd::WcAnalysis::new(&env, specwise_wcd::WcOptions::default()).run(&d0)?;
    let model = specwise::LinearizedYield::new(
        analysis.linearizations().to_vec(),
        env.specs().len(),
        10_000,
        2001,
    )?;
    let p = &env.design_space().params()[0];
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let w1 = p.lower + (p.upper - p.lower) * i as f64 / (n - 1) as f64;
        let mut d = d0.clone();
        d[0] = w1;
        out.push((w1, model.estimate(&d)?.value()));
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fig2_selector_peaks_on_mismatch_line() {
        let series = run_fig2(181);
        let peak = series
            .iter()
            .max_by(|a, b| a.1.partial_cmp(&b.1).unwrap())
            .copied()
            .unwrap();
        assert_eq!(peak.1, 1.0);
        // `max_by` returns the last element of the Φ = 1 plateau, which
        // extends delta1 (5°) past the mismatch line.
        assert!((peak.0 + std::f64::consts::FRAC_PI_4).abs() < 0.1);
    }

    #[test]
    fn fig3_weight_monotone_decreasing() {
        let series = run_fig3(101);
        for w in series.windows(2) {
            assert!(w[1].1 <= w[0].1 + 1e-12);
        }
        assert!(series[0].1 > 0.85);
        assert!(series.last().unwrap().1 < 0.1);
    }

    #[test]
    fn fig1_small_grid_has_ridge() {
        let pts = run_fig1(5).unwrap();
        assert_eq!(pts.len(), 25);
        // Mismatch corner (−3, +3) must be markedly worse than the
        // neutral corner (+3, +3).
        let get = |a: f64, b: f64| {
            pts.iter()
                .find(|(x, y, _)| (x - a).abs() < 1e-9 && (y - b).abs() < 1e-9)
                .map(|(_, _, c)| *c)
                .unwrap()
        };
        assert!(get(-3.0, 3.0) < get(3.0, 3.0) - 3.0);
    }
}
