//! Regenerates every table and figure of the DAC 2001 paper.
//!
//! ```text
//! tables <experiment> [args]
//!     table1   folded-cascode optimization trace (constraints + WC points)
//!     table2   improvement decomposition between the last two iterations
//!     table3   ablation: no functional constraints
//!     table4   ablation: linearization at the nominal point
//!     table5   mismatch measure ranking
//!     table6   Miller opamp optimization trace
//!     table7   computational effort of both optimizations
//!     fig1     CMRR surface over the mirror pair's Vth deviations (CSV)
//!     fig2     mismatch-line selector Φ (CSV)
//!     fig3     robustness weight η (CSV)
//!     fig4     A0 over the feasibility region (CSV)
//!     fig5     linearized yield over one design parameter (CSV)
//!     all      every table in sequence (figures skipped)
//! ```
//!
//! Paper reference values are printed alongside, marked `paper:`.

use std::error::Error;
use std::time::Duration;

use specwise::{
    effort_breakdown_table, effort_table, improvement_table, iteration_table, mismatch_table,
};
use specwise_bench::{
    run_fig1, run_fig2, run_fig3, run_fig4, run_fig5, run_table1, run_table1_exec, run_table3,
    run_table4, run_table5, run_table6, run_table6_exec,
};

fn main() -> Result<(), Box<dyn Error>> {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "all".to_string());
    match arg.as_str() {
        "table1" => table1()?,
        "table2" => table2()?,
        "table3" => table3()?,
        "table4" => table4()?,
        "table5" => table5()?,
        "table6" => table6()?,
        "table7" => table7()?,
        "fig1" => fig1()?,
        "fig2" => fig2(),
        "fig3" => fig3(),
        "fig4" => fig4()?,
        "fig5" => fig5()?,
        "all" => {
            table1()?;
            table2()?;
            table3()?;
            table4()?;
            table5()?;
            table6()?;
            table7()?;
        }
        other => {
            eprintln!("unknown experiment {other:?}; see the module docs for the list");
            std::process::exit(2);
        }
    }
    Ok(())
}

fn table1() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 1 ====================");
    println!("Folded-cascode yield optimization (constraints + worst-case points)");
    println!("paper: Y = 0% -> 99.9% -> 100%; initial failures: ft (1000 permil),");
    println!("paper: CMRR (980 permil), SRp (273 permil)\n");
    let (env, trace) = run_table1()?;
    println!("{}", iteration_table(&env, &trace));
    Ok(())
}

fn table2() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 2 ====================");
    println!("Improvement between the final two iterations");
    println!("paper: A0 +15.5/+20.4, ft +12.8/-11.5, CMRR +169/-53.4,");
    println!("paper: SRp +73.4/+3.15, Power -0.59/-1.69 (percent)\n");
    let (env, trace) = run_table1()?;
    let snaps = trace.snapshots();
    if snaps.len() < 2 {
        println!("(only one snapshot; nothing to compare)");
        return Ok(());
    }
    match improvement_table(&env, &snaps[snaps.len() - 2], &snaps[snaps.len() - 1]) {
        Some(t) => println!("{t}"),
        None => println!("(verification disabled; no moment data)"),
    }
    Ok(())
}

fn table3() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 3 ====================");
    println!("Ablation: no functional constraints");
    println!("paper: model bad-samples improve but true yield stays 0%\n");
    let (env, trace) = run_table3()?;
    println!("{}", iteration_table(&env, &trace));
    if trace.final_snapshot().collapsed {
        println!("(the unconstrained move produced an unsimulatable circuit)");
    }
    Ok(())
}

fn table4() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 4 ====================");
    println!("Ablation: linearization at the nominal point s = s0");
    println!("paper: model bad-samples decline but true yield stays 0%");
    println!("(our reproduction shows a weaker contrast at the circuit level —");
    println!("see EXPERIMENTS.md — plus a deterministic analytic demonstration");
    println!("of the mechanism in benches/ablation.rs)\n");
    let (env, trace) = run_table4()?;
    println!("{}", iteration_table(&env, &trace));
    Ok(())
}

fn table5() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 5 ====================");
    println!("Mismatch measure ranking at the initial design");
    println!("paper: CMRR is the only mismatch-sensitive spec; three pairs");
    println!("paper: P1 = 0.84, P2 = 0.11, P3 = 0.06\n");
    let (env, entries) = run_table5()?;
    println!("{}", mismatch_table(&env, &entries, 6));
    Ok(())
}

fn table6() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 6 ====================");
    println!("Miller opamp optimization (global variations only)");
    println!("paper: Y = 33.7% -> 99.3% -> 99.3%; initial failures: SRp (636");
    println!("paper: permil), PM (167 permil)\n");
    let (env, trace) = run_table6()?;
    println!("{}", iteration_table(&env, &trace));
    Ok(())
}

fn table7() -> Result<(), Box<dyn Error>> {
    println!("==================== Table 7 ====================");
    println!("Computational effort");
    println!("paper: Folded-Cascode 689 sims / 30 min; Miller 627 sims / 8 min");
    println!("(on 5x Pentium III with TITAN's internal sensitivities; our");
    println!("finite-difference gradients need more simulator calls, each far");
    println!("cheaper — see EXPERIMENTS.md)\n");
    let (_, trace_fc) = run_table1_exec()?;
    let (_, trace_mi) = run_table6_exec()?;
    let rows = vec![
        (
            "Folded-Cascode".to_string(),
            trace_fc.total_sims,
            trace_fc.wall_time,
        ),
        (
            "Miller".to_string(),
            trace_mi.total_sims,
            trace_mi.wall_time,
        ),
    ];
    println!("{}", effort_table(&rows));
    println!("Per-phase breakdown (simulations attributed to each stage of");
    println!("Fig. 6; Hit % and Workers from the evaluation engine — tune with");
    println!("SPECWISE_WORKERS / SPECWISE_CACHE_CAP / SPECWISE_RETRIES):\n");
    println!(
        "{}",
        effort_breakdown_table(&[
            ("Folded-Cascode".to_string(), &trace_fc),
            ("Miller".to_string(), &trace_mi),
        ])
    );
    for trace in [&trace_fc, &trace_mi] {
        if let Some(report) = &trace.exec {
            println!("{report}");
        }
    }
    let _: Duration = trace_fc.wall_time;
    Ok(())
}

fn fig1() -> Result<(), Box<dyn Error>> {
    println!("# Fig. 1: CMRR [dB] over (vth_m7, vth_m8) in sigma units");
    println!("vth_m7_sigma,vth_m8_sigma,cmrr_db");
    for (a, b, c) in run_fig1(17)? {
        println!("{a:.3},{b:.3},{c:.3}");
    }
    Ok(())
}

fn fig2() {
    println!("# Fig. 2: mismatch-line selector Phi(alpha)");
    println!("alpha_rad,phi");
    for (a, p) in run_fig2(181) {
        println!("{a:.5},{p:.5}");
    }
}

fn fig3() {
    println!("# Fig. 3: robustness weight eta(beta_wc)");
    println!("beta_wc,eta");
    for (b, e) in run_fig3(121) {
        println!("{b:.3},{e:.5}");
    }
}

fn fig4() -> Result<(), Box<dyn Error>> {
    println!("# Fig. 4: A0 [dB] over (w3, wt) with min functional constraint");
    println!("# (the feasibility region is min_constraint >= 0)");
    println!("w3_um,wt_um,a0_db,min_constraint");
    for (w3, wt, a0, c) in run_fig4(13)? {
        println!("{w3:.1},{wt:.1},{a0:.2},{c:.4}");
    }
    Ok(())
}

fn fig5() -> Result<(), Box<dyn Error>> {
    println!("# Fig. 5: linearized yield estimate over w1 between its bounds");
    println!("w1_um,ybar");
    for (w1, y) in run_fig5(160)? {
        println!("{w1:.2},{y:.4}");
    }
    Ok(())
}
