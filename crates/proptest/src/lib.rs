//! Offline stand-in for the [`proptest`](https://crates.io/crates/proptest)
//! 1.x API surface used by this workspace's property tests.
//!
//! The build environment has no access to crates.io, so the workspace
//! `[patch.crates-io]` section substitutes this crate (DESIGN.md §3). It
//! implements the subset the test suites use:
//!
//! * the [`proptest!`] macro with per-function `arg in strategy` bindings
//!   and an optional `#![proptest_config(...)]` header,
//! * [`Strategy`] for primitive ranges, tuples, `prop_map`, and
//!   `prop::collection::vec`,
//! * [`prop_assert!`], [`prop_assert_eq!`], [`prop_assume!`].
//!
//! Differences from upstream: cases are generated from a deterministic
//! per-test seed (derived from the test name), and failing inputs are
//! reported but **not shrunk**. Regression files
//! (`*.proptest-regressions`) are ignored.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::ops::Range;

/// Deterministic generator used to drive strategies (SplitMix64 core).
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    pub fn new(seed: u64) -> Self {
        TestRng {
            state: seed ^ 0x9E37_79B9_7F4A_7C15,
        }
    }

    /// Next 64 random bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform integer in `[0, bound)`.
    pub fn next_below(&mut self, bound: u64) -> u64 {
        assert!(bound > 0, "empty range");
        ((self.next_u64() as u128 * bound as u128) >> 64) as u64
    }
}

/// How one generated case ended.
#[derive(Debug, Clone)]
pub enum TestCaseError {
    /// An assumption (`prop_assume!`) did not hold; the case is skipped.
    Reject(String),
    /// An assertion (`prop_assert!`) failed.
    Fail(String),
}

impl TestCaseError {
    /// Builds a failure.
    pub fn fail(msg: impl Into<String>) -> Self {
        TestCaseError::Fail(msg.into())
    }

    /// Builds a rejection.
    pub fn reject(msg: impl Into<String>) -> Self {
        TestCaseError::Reject(msg.into())
    }
}

/// Runner configuration (`#![proptest_config(...)]`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per test.
    pub cases: u32,
    /// Maximum rejected cases before the test errors out.
    pub max_global_rejects: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 256,
            max_global_rejects: 65_536,
        }
    }
}

impl ProptestConfig {
    /// A configuration running `cases` generated cases.
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..Default::default()
        }
    }
}

/// A generator of values of one type.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps the generated value through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { inner: self, f }
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut TestRng) -> Self::Value {
        (**self).generate(rng)
    }
}

/// The strategy returned by [`Strategy::prop_map`].
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;

    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.inner.generate(rng))
    }
}

impl Strategy for Range<f64> {
    type Value = f64;

    fn generate(&self, rng: &mut TestRng) -> f64 {
        assert!(self.start < self.end, "empty f64 range strategy");
        self.start + rng.next_f64() * (self.end - self.start)
    }
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end - self.start) as u64;
                self.start + rng.next_below(span) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(usize, u64, u32, u16, u8);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty integer range strategy");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                ((self.start as i64).wrapping_add(rng.next_below(span) as i64)) as $t
            }
        }
    )*};
}
signed_range_strategy!(isize, i64, i32, i16, i8);

/// A strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! tuple_strategy {
    ($(($($name:ident),+)),*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    )*};
}
tuple_strategy!(
    (A),
    (A, B),
    (A, B, C),
    (A, B, C, D),
    (A, B, C, D, E),
    (A, B, C, D, E, F)
);

/// Namespaced strategy constructors, mirroring upstream's `prop` module.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use crate::{Strategy, TestRng};
        use std::ops::Range;

        /// Allowed size arguments of [`vec()`]: a fixed length or a range.
        #[derive(Debug, Clone)]
        pub struct SizeRange {
            lo: usize,
            hi: usize,
        }

        impl From<usize> for SizeRange {
            fn from(n: usize) -> Self {
                SizeRange { lo: n, hi: n + 1 }
            }
        }

        impl From<Range<usize>> for SizeRange {
            fn from(r: Range<usize>) -> Self {
                assert!(r.start < r.end, "empty vec length range");
                SizeRange {
                    lo: r.start,
                    hi: r.end,
                }
            }
        }

        /// The strategy returned by [`vec()`].
        #[derive(Debug, Clone)]
        pub struct VecStrategy<S> {
            element: S,
            size: SizeRange,
        }

        impl<S: Strategy> Strategy for VecStrategy<S> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
                let span = (self.size.hi - self.size.lo) as u64;
                let len = self.size.lo + rng.next_below(span.max(1)) as usize;
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }

        /// A vector of values from `element` with a length drawn from
        /// `size` (a fixed `usize` or a `Range<usize>`).
        pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
            VecStrategy {
                element,
                size: size.into(),
            }
        }
    }
}

/// Runs one property test: `config.cases` generated cases of `body`.
///
/// `body` returns `Ok(())` on success, `Reject` to skip a case, `Fail` to
/// fail the test. Used by the [`proptest!`] macro; not part of upstream's
/// public API.
///
/// # Panics
///
/// Panics (failing the enclosing `#[test]`) on the first failing case and
/// when rejections exhaust `max_global_rejects`.
pub fn run_property_test(
    name: &str,
    config: &ProptestConfig,
    mut body: impl FnMut(&mut TestRng) -> Result<(), TestCaseError>,
) {
    // Stable per-test seed: FNV-1a over the test name.
    let mut seed = 0xcbf2_9ce4_8422_2325u64;
    for b in name.bytes() {
        seed ^= b as u64;
        seed = seed.wrapping_mul(0x0000_0100_0000_01B3);
    }
    let mut rejects = 0u32;
    let mut case = 0u32;
    let mut sequence = 0u64;
    while case < config.cases {
        let mut rng = TestRng::new(seed ^ sequence.wrapping_mul(0x2545_F491_4F6C_DD1D));
        sequence += 1;
        match body(&mut rng) {
            Ok(()) => case += 1,
            Err(TestCaseError::Reject(_)) => {
                rejects += 1;
                assert!(
                    rejects < config.max_global_rejects,
                    "property test {name}: too many prop_assume! rejections ({rejects})"
                );
            }
            Err(TestCaseError::Fail(msg)) => {
                panic!("property test {name} failed at case {case}: {msg}");
            }
        }
    }
}

/// The prelude upstream `proptest` exposes; re-exported for drop-in `use`.
pub mod prelude {
    pub use crate::{
        prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Just,
        ProptestConfig, Strategy, TestCaseError,
    };
}

/// Asserts a condition inside a property test, failing the current case.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a == b,
            "assertion failed: {} == {} ({:?} vs {:?})",
            stringify!($a),
            stringify!($b),
            a,
            b
        );
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(
            a != b,
            "assertion failed: {} != {} (both {:?})",
            stringify!($a),
            stringify!($b),
            a
        );
    }};
}

/// Skips the current case when an assumption does not hold.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr) => {
        if !($cond) {
            return Err($crate::TestCaseError::reject(stringify!($cond)));
        }
    };
}

/// Declares property tests: each function body runs for every generated
/// case with its `arg in strategy` bindings filled in.
#[macro_export]
macro_rules! proptest {
    // With a leading config attribute.
    (
        #![proptest_config($config:expr)]
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $config;
                $crate::run_property_test(stringify!($name), &config, |rng| {
                    $(let $arg = $crate::Strategy::generate(&($strat), rng);)+
                    $body
                    #[allow(unreachable_code)]
                    Ok(())
                });
            }
        )*
    };
    // Without a config attribute: default configuration.
    (
        $(
            $(#[$meta:meta])*
            fn $name:ident ( $($arg:ident in $strat:expr),+ $(,)? ) $body:block
        )*
    ) => {
        $crate::proptest! {
            #![proptest_config($crate::ProptestConfig::default())]
            $(
                $(#[$meta])*
                fn $name ( $($arg in $strat),+ ) $body
            )*
        }
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_respect_bounds(x in -3.0..7.0f64, n in 1usize..9) {
            prop_assert!((-3.0..7.0).contains(&x));
            prop_assert!((1..9).contains(&n));
        }

        #[test]
        fn vec_lengths_in_range(v in prop::collection::vec(0.0..1.0f64, 2..5)) {
            prop_assert!(v.len() >= 2 && v.len() < 5);
            prop_assert!(v.iter().all(|x| (0.0..1.0).contains(x)));
        }

        #[test]
        fn map_applies(y in (0.0..1.0f64).prop_map(|x| x + 10.0)) {
            prop_assert!((10.0..11.0).contains(&y));
        }

        #[test]
        fn tuples_and_assume(pair in (0usize..4, -2.0..2.0f64)) {
            prop_assume!(pair.0 != 3);
            prop_assert!(pair.0 < 3);
        }
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failing_property_panics() {
        super::run_property_test("always_fails", &ProptestConfig::with_cases(4), |_rng| {
            Err(TestCaseError::fail("nope"))
        });
    }
}
