//! Wire-level protocol fuzzing against a live `specwise-serve` daemon.
//!
//! The other oracles exercise library boundaries; this one exercises the
//! deployed boundary — raw bytes on a TCP socket. An in-process daemon is
//! started on a loopback port, one *victim* job is submitted under its own
//! tenant, and then each iteration throws one attack at the socket:
//!
//! * random byte bursts (slammed and abandoned),
//! * mutated deck submissions wrapped in well-formed JSON,
//! * oversized (> 4 MiB) lines followed by a valid request on the same
//!   connection (the framing layer must resync),
//! * torn writes — a valid request dribbled one byte at a time across
//!   flushes,
//! * garbage injected after a subscribe handshake.
//!
//! After every attack a fresh connection issues `{"cmd":"status"}`; the
//! daemon must answer `ok`. At the end the victim job must still settle
//! with a result — hostile connections must never take down the listener
//! or drop another tenant's job.

use std::io::{BufRead, BufReader, Write};
use std::net::TcpStream;
use std::time::Duration;

use rand::{rngs::StdRng, Rng, SeedableRng};
use specwise_ckt::MillerOpamp;
use specwise_serve::{Client, Daemon, ServeConfig, SubmitOptions};

use crate::mutate::mutate_n;

/// Attack labels, indexed by the operator draw.
pub const ATTACKS: &[&str] = &[
    "byte-burst",
    "mutated-submit",
    "oversized-resync",
    "torn-write",
    "subscribe-garbage",
];

/// Wire campaign outcome.
#[derive(Debug, Default)]
pub struct WireReport {
    /// Attacks delivered.
    pub attacks: usize,
    /// Per-attack counts, parallel to [`ATTACKS`].
    pub by_attack: [usize; 5],
    /// Protocol-level failures (daemon unreachable, bad resync, dropped
    /// victim job). Empty means the daemon survived everything.
    pub findings: Vec<String>,
}

fn escape_json(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 8);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn raw_conn(addr: std::net::SocketAddr) -> std::io::Result<(BufReader<TcpStream>, TcpStream)> {
    let stream = TcpStream::connect(addr)?;
    stream.set_read_timeout(Some(Duration::from_secs(10)))?;
    stream.set_write_timeout(Some(Duration::from_secs(10)))?;
    let reader = BufReader::new(stream.try_clone()?);
    Ok((reader, stream))
}

fn read_response(reader: &mut BufReader<TcpStream>) -> std::io::Result<String> {
    let mut line = String::new();
    reader.read_line(&mut line)?;
    Ok(line)
}

/// Runs one wire-fuzz campaign. Starts its own daemon, attacks it for
/// `iters` iterations, and verifies liveness plus victim-job survival.
///
/// # Panics
///
/// Panics only on harness setup failures (cannot bind loopback, cannot
/// create the spool); attack-path failures are reported as findings.
pub fn run_wire_campaign(seed: u64, iters: usize, log: impl Fn(&str)) -> WireReport {
    let spool =
        std::env::temp_dir().join(format!("specwise-fuzz-wire-{}-{seed}", std::process::id()));
    let _ = std::fs::remove_dir_all(&spool);
    let mut cfg = ServeConfig::default();
    cfg.addr = "127.0.0.1:0".into();
    cfg.spool = spool.clone();
    cfg.slots = 1;
    let daemon = Daemon::start(cfg).expect("start fuzz daemon");
    let addr = daemon.local_addr();

    let mut report = WireReport::default();
    let mut rng = StdRng::seed_from_u64(seed);

    // The victim: a real job under its own tenant, kept small so it
    // settles within the campaign. Its survival is the cross-tenant
    // isolation check.
    let mut opts = SubmitOptions::default();
    opts.tenant = "victim".into();
    opts.seed = Some(7);
    opts.mc_samples = Some(16);
    opts.verify_samples = Some(0);
    opts.max_iterations = Some(1);
    let victim_job = Client::connect(addr)
        .expect("victim connect")
        .submit(MillerOpamp::deck(), &opts)
        .expect("victim submit");

    let seed_deck = MillerOpamp::deck();
    for i in 0..iters {
        let attack = rng.gen_range(0..ATTACKS.len());
        report.attacks += 1;
        report.by_attack[attack] += 1;
        let outcome: Result<(), String> = (|| {
            match attack {
                // Random byte burst, connection abandoned without reading.
                0 => {
                    let (_, mut w) = raw_conn(addr).map_err(|e| format!("connect: {e}"))?;
                    let len = rng.gen_range(1..2048usize);
                    let burst: Vec<u8> =
                        (0..len).map(|_| (rng.gen::<u32>() & 0xff) as u8).collect();
                    let _ = w.write_all(&burst);
                    let _ = w.flush();
                }
                // A mutated deck inside well-formed JSON: the daemon must
                // answer with ok or a typed error, never hang or die.
                1 => {
                    let n = rng.gen_range(1..4usize);
                    let deck = mutate_n(seed_deck, &mut rng, n);
                    let (mut r, mut w) = raw_conn(addr).map_err(|e| format!("connect: {e}"))?;
                    let req = format!(
                        "{{\"cmd\":\"submit\",\"tenant\":\"fuzzer\",\"deck\":\"{}\"}}\n",
                        escape_json(&deck)
                    );
                    w.write_all(req.as_bytes())
                        .map_err(|e| format!("write: {e}"))?;
                    let resp = read_response(&mut r).map_err(|e| format!("read: {e}"))?;
                    if !resp.contains("\"ok\"") {
                        return Err(format!("submit response not a protocol reply: {resp:?}"));
                    }
                }
                // Oversized frame; the same connection must resync and
                // answer the follow-up status.
                2 => {
                    let (mut r, mut w) = raw_conn(addr).map_err(|e| format!("connect: {e}"))?;
                    let extra = rng.gen_range(1..4096usize);
                    let mut big = vec![b'z'; (4 << 20) + extra];
                    big.push(b'\n');
                    w.write_all(&big).map_err(|e| format!("write big: {e}"))?;
                    let resp = read_response(&mut r).map_err(|e| format!("read big: {e}"))?;
                    if !resp.contains("oversized") {
                        return Err(format!("expected oversized error, got {resp:?}"));
                    }
                    w.write_all(b"{\"cmd\":\"status\"}\n")
                        .map_err(|e| format!("write status: {e}"))?;
                    let resp = read_response(&mut r).map_err(|e| format!("read status: {e}"))?;
                    if !resp.contains("\"ok\":true") {
                        return Err(format!("no resync after oversized frame: {resp:?}"));
                    }
                }
                // Torn write: a valid request dribbled byte-by-byte.
                3 => {
                    let (mut r, mut w) = raw_conn(addr).map_err(|e| format!("connect: {e}"))?;
                    let req = b"{\"cmd\":\"status\"}\n";
                    for chunk in req.chunks(rng.gen_range(1..5usize)) {
                        w.write_all(chunk).map_err(|e| format!("torn write: {e}"))?;
                        w.flush().map_err(|e| format!("torn flush: {e}"))?;
                    }
                    let resp = read_response(&mut r).map_err(|e| format!("torn read: {e}"))?;
                    if !resp.contains("\"ok\":true") {
                        return Err(format!("torn status failed: {resp:?}"));
                    }
                }
                // Subscribe to a bogus job, then shove garbage down the
                // same connection.
                _ => {
                    let (mut r, mut w) = raw_conn(addr).map_err(|e| format!("connect: {e}"))?;
                    w.write_all(b"{\"cmd\":\"subscribe\",\"job\":\"no-such-job\"}\n")
                        .map_err(|e| format!("subscribe write: {e}"))?;
                    let resp = read_response(&mut r).map_err(|e| format!("subscribe read: {e}"))?;
                    if !resp.contains("\"ok\"") {
                        return Err(format!("subscribe reply not protocol-shaped: {resp:?}"));
                    }
                    let garbage: Vec<u8> = (0..rng.gen_range(1..256usize))
                        .map(|_| (rng.gen::<u32>() & 0xff) as u8)
                        .collect();
                    let _ = w.write_all(&garbage);
                    let _ = w.write_all(b"\n");
                }
            }
            Ok(())
        })();
        if let Err(detail) = outcome {
            report
                .findings
                .push(format!("attack {} ({}): {detail}", i, ATTACKS[attack]));
        }
        // Liveness probe after every attack.
        match Client::connect(addr).and_then(|mut c| c.status()) {
            Ok(_) => {}
            Err(e) => {
                report.findings.push(format!(
                    "daemon unhealthy after {} attack: {e}",
                    ATTACKS[attack]
                ));
                break;
            }
        }
        if i % 50 == 0 {
            log(&format!(
                "wire: {i}/{iters} attacks, {} findings",
                report.findings.len()
            ));
        }
    }

    // The victim job must still settle with a result.
    match Client::connect(addr).and_then(|mut c| c.result_wait(&victim_job)) {
        Ok(_) => {}
        Err(e) => report
            .findings
            .push(format!("victim job lost after wire fuzzing: {e}")),
    }
    daemon.shutdown();
    let _ = std::fs::remove_dir_all(&spool);
    report
}
