//! Greedy deck minimization.
//!
//! Findings are pinned to the corpus as the *smallest* deck that still
//! triggers the same failure, so triage starts from a few lines instead of
//! a 20-element generated network. The strategy is classic delta-debug
//! lite: greedy whole-line deletion to a fixpoint, then per-token deletion
//! within the surviving lines, re-checking the predicate after every
//! candidate deletion.
//!
//! The predicate is "still fails the same way" — same [`FindingKind`] and
//! same oracle stage — not merely "still fails"; otherwise minimization
//! happily walks from an adjoint divergence to a trivial parse error.

use crate::oracle::{Finding, FindingKind};

/// Maximum predicate evaluations per minimization. Oracle checks can cost
/// a full Newton solve each, so the budget is bounded rather than letting
/// a pathological deck stall the campaign.
pub const MAX_CHECKS: usize = 2000;

/// Minimizes `deck` while `still_fails(candidate)` holds, where the caller
/// encodes "fails the same way". Returns the smallest deck found.
pub fn minimize(deck: &str, mut still_fails: impl FnMut(&str) -> bool) -> String {
    let mut best = deck.to_string();
    let mut checks = 0usize;
    fn budget(checks: &mut usize, s: &str, f: &mut impl FnMut(&str) -> bool) -> bool {
        if *checks >= MAX_CHECKS {
            return false;
        }
        *checks += 1;
        f(s)
    }

    // Pass 1: whole-line deletion to fixpoint.
    loop {
        let lines: Vec<&str> = best.lines().collect();
        if lines.len() <= 1 {
            break;
        }
        let mut shrunk = false;
        let mut i = 0;
        while i < best.lines().count() {
            let lines: Vec<&str> = best.lines().collect();
            let mut candidate = String::new();
            for (k, l) in lines.iter().enumerate() {
                if k != i {
                    candidate.push_str(l);
                    candidate.push('\n');
                }
            }
            if budget(&mut checks, &candidate, &mut still_fails) {
                best = candidate;
                shrunk = true;
                // Same index now names the next line.
            } else {
                i += 1;
            }
        }
        if !shrunk {
            break;
        }
    }

    // Pass 2: per-token deletion within lines, one token at a time.
    loop {
        let mut shrunk = false;
        let lines: Vec<String> = best.lines().map(str::to_string).collect();
        'outer: for (li, line) in lines.iter().enumerate() {
            let toks: Vec<&str> = line.split_whitespace().collect();
            if toks.len() <= 1 {
                continue;
            }
            for drop in 0..toks.len() {
                let kept: Vec<&str> = toks
                    .iter()
                    .enumerate()
                    .filter(|(k, _)| *k != drop)
                    .map(|(_, t)| *t)
                    .collect();
                let mut candidate = String::new();
                for (k, l) in lines.iter().enumerate() {
                    if k == li {
                        candidate.push_str(&kept.join(" "));
                    } else {
                        candidate.push_str(l);
                    }
                    candidate.push('\n');
                }
                if budget(&mut checks, &candidate, &mut still_fails) {
                    best = candidate;
                    shrunk = true;
                    break 'outer;
                }
            }
        }
        if !shrunk || checks >= MAX_CHECKS {
            break;
        }
    }
    best
}

/// Convenience predicate builder: "produces a finding of the same kind
/// from the same oracle stage".
pub fn same_failure<'a>(
    reference: &'a Finding,
    check: impl Fn(&str) -> Vec<Finding> + 'a,
) -> impl FnMut(&str) -> bool + 'a {
    let kind: FindingKind = reference.kind.clone();
    let oracle = reference.oracle;
    move |deck: &str| {
        check(deck)
            .iter()
            .any(|f| f.kind == kind && f.oracle == oracle)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn minimizes_to_single_offending_line() {
        let deck = "V1 a 0 1\nR1 a 0 1k\nBAD LINE HERE\nC1 a 0 1p\n.end\n";
        let out = minimize(deck, |d| d.contains("BAD"));
        assert_eq!(out, "BAD\n");
    }

    #[test]
    fn token_pass_prunes_within_lines() {
        let deck = "alpha beta gamma delta\n";
        let out = minimize(deck, |d| d.contains("gamma"));
        assert_eq!(out.trim(), "gamma");
    }

    #[test]
    fn budget_terminates() {
        // A predicate that always holds must still terminate (fixpoint or
        // budget), never loop.
        let deck = "a b c\nd e f\ng h i\n";
        let out = minimize(deck, |_| true);
        assert!(out.len() <= deck.len());
    }
}
