//! Structure-aware deck generation.
//!
//! [`generate_deck`] emits syntactically plausible annotated SPICE decks
//! from a seeded grammar: guaranteed-connected resistive/MOS/capacitive
//! networks with ground, random testbench directives (`.design`, `.spec`,
//! `.range`, `.match`, `.tb`), and `{param}` placeholders. The output is a
//! deterministic function of the RNG state, so a campaign seed reproduces
//! every deck it ever produced.
//!
//! Connectivity invariant: every element attaches at least one terminal to
//! an already-connected node (ground is connected by construction), so no
//! generated deck contains an island that is unreachable from ground.
//! Nodes introduced through a capacitor only may still be DC-floating —
//! deliberately, because the gmin-regularized near-singular regime is
//! exactly where the dense and sparse backends are most likely to drift
//! apart and must be shown not to.

use rand::{rngs::StdRng, Rng};

/// Bounds and shape knobs for one generated deck.
#[derive(Debug, Clone)]
pub struct GenConfig {
    /// Maximum number of element lines (the generator draws 3..=max).
    pub max_elements: usize,
    /// Probability that the deck carries testbench directives and
    /// `{param}` placeholders (vs. a fully numeric circuit-only deck).
    pub annotate: f64,
    /// Probability that an annotated deck carries the full `.tb` harness
    /// (vinp/vinn/out/vdd/tail/slewcap) required for `Testbench` compilation.
    pub harness: f64,
}

impl Default for GenConfig {
    fn default() -> Self {
        GenConfig {
            max_elements: 24,
            annotate: 0.0,
            harness: 0.5,
        }
    }
}

/// Formats a value in one of several equivalent SPICE spellings so the
/// suffix parser is exercised, not just `{:e}` notation.
fn format_value(rng: &mut StdRng, v: f64) -> String {
    match rng.gen_range(0u8..4) {
        0 if (1e3..1e6).contains(&v.abs()) => format!("{}k", v / 1e3),
        1 if (1e-9..1e-3).contains(&v.abs()) => format!("{}u", v * 1e6),
        2 => format!("{v}"),
        _ => format!("{v:e}"),
    }
}

/// One generated deck plus the facts the oracles need about it.
#[derive(Debug, Clone)]
pub struct GenDeck {
    /// The deck text.
    pub text: String,
    /// Whether any source carries an AC magnitude (enables the AC oracle).
    pub has_ac: bool,
    /// Whether the deck is fully numeric (no `{param}` placeholders), i.e.
    /// lowerable to a [`specwise_mna::Circuit`] directly.
    pub concrete: bool,
}

struct Builder {
    lines: Vec<String>,
    /// Node names known to be reachable from ground.
    connected: Vec<String>,
    next_node: usize,
    counters: [usize; 8],
    mosfets: Vec<String>,
    has_ac: bool,
}

impl Builder {
    fn new() -> Self {
        Builder {
            lines: Vec::new(),
            connected: vec!["0".into()],
            next_node: 0,
            counters: [0; 8],
            mosfets: Vec::new(),
            has_ac: false,
        }
    }

    fn name(&mut self, slot: usize, prefix: &str) -> String {
        self.counters[slot] += 1;
        format!("{prefix}{}", self.counters[slot])
    }

    fn existing(&self, rng: &mut StdRng) -> String {
        self.connected[rng.gen_range(0..self.connected.len())].clone()
    }

    /// A fresh node (connected by whatever element uses it) or an existing
    /// one; fresh keeps the topology growing.
    fn grow(&mut self, rng: &mut StdRng) -> String {
        if rng.gen_bool(0.55) || self.connected.len() < 2 {
            self.next_node += 1;
            let n = format!("n{}", self.next_node);
            self.connected.push(n.clone());
            n
        } else {
            self.existing(rng)
        }
    }
}

/// Generates one deck. See the module docs for the guarantees.
pub fn generate_deck(rng: &mut StdRng, cfg: &GenConfig) -> GenDeck {
    let annotate = rng.gen_bool(cfg.annotate.clamp(0.0, 1.0));
    let harness = annotate && rng.gen_bool(cfg.harness.clamp(0.0, 1.0));
    let mut b = Builder::new();

    // Supply rail: always present so MOS networks have headroom.
    let vdd_value = if harness {
        "{vdd}".to_string()
    } else {
        let v = rng.gen_range(1.5..5.0);
        format_value(rng, v)
    };
    b.connected.push("vdd".into());
    b.lines.push(format!("VDD vdd 0 {vdd_value}"));

    // Harness fixtures required by `Testbench` compilation.
    if harness {
        b.connected.push("inp".into());
        b.connected.push("inn".into());
        b.connected.push("out".into());
        b.lines.push("VINP inp 0 {vcm}".into());
        b.lines.push("VINN inn 0 {vcm}".into());
        // A tail MOSFET and a slew capacitor the `.tb` keys can point at.
        b.connected.push("tail".into());
        b.lines
            .push("MT tail inp vdd vdd PMOS W=20u L=2u".to_string());
        b.mosfets.push("MT".into());
        b.lines.push("CSL out 0 3p".into());
    }

    let n_elems = rng.gen_range(3..cfg.max_elements.max(4));
    let mut params: Vec<(String, f64)> = Vec::new();
    for _ in 0..n_elems {
        let roll: f64 = rng.gen();
        if roll < 0.34 {
            // Resistor: decade-spread positive value.
            let a = b.grow(rng);
            let c = b.existing(rng);
            let v = 10f64.powf(rng.gen_range(1.0..6.5));
            let name = b.name(0, "R");
            let value = if annotate && rng.gen_bool(0.2) {
                let p = format!("r{}", params.len() + 1);
                params.push((p.clone(), v));
                format!("{{{p}}}")
            } else {
                format_value(rng, v)
            };
            b.lines.push(format!("{name} {a} {c} {value}"));
        } else if roll < 0.50 {
            // Capacitor — possibly leaving its far node DC-floating.
            let a = b.grow(rng);
            let c = b.existing(rng);
            let v = 10f64.powf(rng.gen_range(-13.0..-6.0));
            let name = b.name(1, "C");
            b.lines
                .push(format!("{name} {a} {c} {}", format_value(rng, v)));
        } else if roll < 0.60 {
            // Independent source; occasionally between two existing nodes,
            // which can form a voltage-source loop — a legitimate
            // cleanly-singular stress case.
            let fresh = rng.gen_bool(0.8);
            let p = if fresh { b.grow(rng) } else { b.existing(rng) };
            let n = b.existing(rng);
            if rng.gen_bool(0.5) {
                let name = b.name(2, "V");
                let dc = rng.gen_range(-5.0..5.0);
                let ac = rng.gen_bool(0.3);
                let mut line = format!("{name} {p} {n} {}", format_value(rng, dc));
                if ac {
                    line.push_str(" AC 1");
                    b.has_ac = true;
                }
                b.lines.push(line);
            } else {
                let name = b.name(3, "I");
                let dc = rng.gen_range(-1e-3..1e-3);
                b.lines.push(format!("{name} {p} {n} {dc:e}"));
            }
        } else if roll < 0.85 {
            // MOSFET: source/bulk on a rail most of the time so the device
            // has a plausible operating region.
            let d = b.grow(rng);
            let g = b.existing(rng);
            let (s, pol) = if rng.gen_bool(0.5) {
                ("0".to_string(), "NMOS")
            } else {
                ("vdd".to_string(), "PMOS")
            };
            let s = if rng.gen_bool(0.85) {
                s
            } else {
                b.existing(rng)
            };
            let bulk = if pol == "NMOS" { "0" } else { "vdd" };
            let w = 10f64.powf(rng.gen_range(-6.0..-4.0));
            let l = 10f64.powf(rng.gen_range(-6.3..-5.3));
            let name = b.name(4, "M");
            let wtok = if annotate && rng.gen_bool(0.25) {
                let p = format!("w{}", params.len() + 1);
                params.push((p.clone(), w * 1e6));
                format!("{{{p}}}")
            } else {
                format!("{w:e}")
            };
            b.lines
                .push(format!("{name} {d} {g} {s} {bulk} {pol} W={wtok} L={l:e}"));
            b.mosfets.push(name);
        } else if roll < 0.92 {
            // Diode to ground.
            let a = b.existing(rng);
            let name = b.name(5, "D");
            if rng.gen_bool(0.5) {
                b.lines.push(format!("{name} {a} 0"));
            } else {
                b.lines.push(format!(
                    "{name} {a} 0 IS={:e} N={}",
                    10f64.powf(rng.gen_range(-15.0..-11.0)),
                    rng.gen_range(1.0..2.0)
                ));
            }
        } else {
            // Controlled source with a modest gain.
            let p = b.grow(rng);
            let n = b.existing(rng);
            let cp = b.existing(rng);
            let cn = b.existing(rng);
            if rng.gen_bool(0.5) {
                let name = b.name(6, "E");
                b.lines.push(format!(
                    "{name} {p} {n} {cp} {cn} {}",
                    rng.gen_range(0.1..10.0)
                ));
            } else {
                let name = b.name(7, "G");
                b.lines.push(format!(
                    "{name} {p} {n} {cp} {cn} {:e}",
                    10f64.powf(rng.gen_range(-5.0..-2.0))
                ));
            }
        }
    }

    // Bleed DC-floating nodes to ground most of the time; the remainder
    // keeps the gmin-regularized near-singular regime in the corpus.
    let dangling: Vec<String> = b
        .connected
        .iter()
        .filter(|n| {
            n.as_str() != "0"
                && !b.lines.iter().any(|l| {
                    let mut f = l.split_whitespace();
                    let head = f.next().unwrap_or("");
                    !head.starts_with(['C', 'c']) && f.take(4).any(|t| t == n.as_str())
                })
        })
        .cloned()
        .collect();
    for n in dangling {
        if rng.gen_bool(0.8) {
            let name = b.name(0, "R");
            b.lines.push(format!("{name} {n} 0 1e6"));
        }
    }

    let mut out = String::new();
    if annotate {
        out.push_str(".name generated deck\n");
        for (p, v) in &params {
            // Bounds bracket the drawn value so compilation can succeed.
            let unit = if p.starts_with('w') { "um" } else { "Ohm" };
            out.push_str(&format!(
                ".design {p} {unit} {:e} {:e} {v:e}\n",
                v / 4.0,
                v * 4.0
            ));
        }
        out.push_str(&format!(
            ".range temp {} {}\n",
            rng.gen_range(-50.0..0.0),
            rng.gen_range(50.0..150.0)
        ));
        out.push_str(&format!(
            ".range vdd {} {}\n",
            rng.gen_range(1.0..3.0),
            rng.gen_range(3.5..5.5)
        ));
        if harness {
            out.push_str(".spec Vout V min 0.1 vdc(out)\n");
            out.push_str(".tb vinp VINP\n.tb vinn VINN\n.tb out out\n");
            out.push_str(".tb vdd VDD\n.tb tail MT\n.tb slewcap CSL\n");
        } else if !b.connected.is_empty() {
            let n = b.connected[rng.gen_range(0..b.connected.len())].clone();
            out.push_str(&format!(".spec Vn V max 10 vdc({n})\n"));
        }
        if !b.mosfets.is_empty() && rng.gen_bool(0.5) {
            let k = 1 + rng.gen_range(0..b.mosfets.len().min(3));
            out.push_str(&format!(".match {}\n", b.mosfets[..k].join(" ")));
        }
    }
    for l in &b.lines {
        out.push_str(l);
        out.push('\n');
    }
    out.push_str(".end\n");

    GenDeck {
        text: out,
        has_ac: b.has_ac,
        concrete: !annotate,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn deterministic_per_seed() {
        for seed in 0..20u64 {
            let mut a = StdRng::seed_from_u64(seed);
            let mut b = StdRng::seed_from_u64(seed);
            let cfg = GenConfig {
                annotate: 0.5,
                ..GenConfig::default()
            };
            assert_eq!(
                generate_deck(&mut a, &cfg).text,
                generate_deck(&mut b, &cfg).text
            );
        }
    }

    #[test]
    fn generated_decks_always_parse() {
        let mut rng = StdRng::seed_from_u64(7);
        let cfg = GenConfig {
            annotate: 0.5,
            ..GenConfig::default()
        };
        for _ in 0..200 {
            let d = generate_deck(&mut rng, &cfg);
            specwise_mna::parse_deck_ast(&d.text)
                .unwrap_or_else(|e| panic!("generated deck failed to parse: {e}\n{}", d.text));
        }
    }
}
