//! Crash/divergence corpus management.
//!
//! Every minimized finding is pinned under `crates/fuzz/corpus/` as a
//! plain `.deck` file named `<kind>-<stage>-<hash>.deck`, where the hash
//! is FNV-1a over the deck bytes so re-discoveries of the same minimized
//! input dedupe instead of piling up. Files carry no metadata header —
//! several findings are byte-level (truncation, noise injection) and a
//! prepended comment would change the input.
//!
//! **Replay policy**: the corpus is a regression suite. Each deck is run
//! through every oracle stage ([`crate::oracle::check_all`]) under a panic
//! guard; a corpus deck passes when it produces *zero* findings and no
//! panic. A deck that once crashed the parser is expected — post-fix — to
//! yield a typed error or a consistent solve, which is exactly what
//! `check_all` accepts. `tests/corpus_replay.rs` enforces this on every
//! CI run.

use std::fs;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::{Path, PathBuf};

use specwise_mna::DeckLimits;

use crate::oracle::{check_all, Finding};

/// The in-repo corpus directory (resolved from the crate manifest, so it
/// works from any working directory).
pub fn corpus_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("corpus")
}

/// FNV-1a 64-bit, printed as 12 hex chars — stable content-addressed
/// names without pulling in a hash dependency.
fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

/// File name a finding's deck would be stored under.
pub fn corpus_name(f: &Finding) -> String {
    format!(
        "{}-{}-{:012x}.deck",
        f.kind.label(),
        f.oracle,
        fnv1a(f.deck.as_bytes()) & 0xffff_ffff_ffff
    )
}

/// Writes a finding's (minimized) deck into `dir`, returning the path.
/// Existing files are left untouched (content-addressed names make this a
/// dedupe, not a clobber).
///
/// # Errors
///
/// Propagates filesystem errors from directory creation or the write.
pub fn write_finding(dir: &Path, f: &Finding) -> std::io::Result<PathBuf> {
    fs::create_dir_all(dir)?;
    let path = dir.join(corpus_name(f));
    if !path.exists() {
        fs::write(&path, f.deck.as_bytes())?;
    }
    Ok(path)
}

/// One corpus deck's replay outcome.
#[derive(Debug)]
pub struct ReplayOutcome {
    /// File name within the corpus directory.
    pub name: String,
    /// Findings the oracles still produce (empty = pass).
    pub findings: Vec<Finding>,
    /// The oracle panicked on this deck.
    pub panicked: bool,
}

impl ReplayOutcome {
    /// True when the deck is fully triaged: no findings, no panic.
    pub fn passed(&self) -> bool {
        self.findings.is_empty() && !self.panicked
    }
}

/// Replays every `.deck` file in `dir` through all oracle stages under a
/// panic guard. Returns one outcome per deck, sorted by name for stable
/// reporting. A missing directory is an empty corpus, not an error.
pub fn replay(dir: &Path, limits: &DeckLimits) -> Vec<ReplayOutcome> {
    let mut entries: Vec<PathBuf> = match fs::read_dir(dir) {
        Ok(rd) => rd
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.extension().is_some_and(|x| x == "deck"))
            .collect(),
        Err(_) => Vec::new(),
    };
    entries.sort();
    entries
        .into_iter()
        .map(|path| {
            let name = path
                .file_name()
                .map(|n| n.to_string_lossy().into_owned())
                .unwrap_or_default();
            let Ok(deck) = fs::read_to_string(&path) else {
                // Unreadable/non-UTF8 corpus entry: surface as a panic-level
                // failure so it gets looked at rather than silently skipped.
                return ReplayOutcome {
                    name,
                    findings: Vec::new(),
                    panicked: true,
                };
            };
            match catch_unwind(AssertUnwindSafe(|| check_all(&deck, limits))) {
                Ok((findings, _)) => ReplayOutcome {
                    name,
                    findings,
                    panicked: false,
                },
                Err(_) => ReplayOutcome {
                    name,
                    findings: Vec::new(),
                    panicked: true,
                },
            }
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::oracle::FindingKind;

    #[test]
    fn names_are_content_addressed() {
        let f = |deck: &str| Finding {
            kind: FindingKind::Panic,
            oracle: "solve",
            detail: String::new(),
            deck: deck.to_string(),
        };
        assert_eq!(corpus_name(&f("abc")), corpus_name(&f("abc")));
        assert_ne!(corpus_name(&f("abc")), corpus_name(&f("abd")));
        assert!(corpus_name(&f("abc")).starts_with("panic-solve-"));
    }

    #[test]
    fn replay_of_missing_dir_is_empty() {
        let out = replay(Path::new("/nonexistent/corpus-xyz"), &DeckLimits::default());
        assert!(out.is_empty());
    }
}
