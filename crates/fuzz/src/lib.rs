//! # specwise-fuzz — structure-aware deck fuzzing with a differential oracle
//!
//! The workspace's trust boundary is deck text: it arrives from files, the
//! network daemon, and generated perturbation sweeps. This crate attacks
//! that boundary from four angles (see `DESIGN.md` §13):
//!
//! * [`generator`] — a seeded grammar emitting connected annotated decks;
//! * [`mutate`] — deterministic mutation operators over deck text;
//! * [`oracle`] — parse/compile round-trip checks plus a three-way
//!   differential solve oracle (dense vs. sparse LU, adjoint one-step vs.
//!   full Newton);
//! * [`wire`] — raw-socket attacks on a live `specwise-serve` daemon.
//!
//! Findings are minimized ([`minimize::minimize`]) and pinned to the regression
//! corpus ([`corpus`]) replayed by `tests/corpus_replay.rs` and CI.
//!
//! The binary front end (`cargo run --release -p specwise-fuzz -- --seed N
//! --iters M --oracle parser|compile|solve|wire`) and the bounded-fuzz
//! test both drive [`run_campaign`], so a CI smoke run and an overnight
//! run differ only in iteration count.

pub mod corpus;
pub mod generator;
pub mod minimize;
pub mod mutate;
pub mod oracle;
pub mod wire;

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::path::PathBuf;

use rand::{rngs::StdRng, Rng, SeedableRng};
use specwise_ckt::{FiveTransistorOta, FoldedCascode, MillerOpamp};
use specwise_mna::DeckLimits;

use generator::{generate_deck, GenConfig};
use minimize::minimize;
use mutate::{mutate_n, OPERATOR_NAMES};
use oracle::{check_all, check_compile, check_parser, Finding, FindingKind, OracleStats};

/// Which oracle stage a campaign exercises.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OracleMode {
    /// Parse + print round-trip only.
    Parser,
    /// Parser stage plus the `Testbench` compile boundary.
    Compile,
    /// All library stages including the differential solve oracle.
    Solve,
}

impl OracleMode {
    /// Parses the CLI spelling.
    pub fn parse(s: &str) -> Option<OracleMode> {
        match s {
            "parser" => Some(OracleMode::Parser),
            "compile" => Some(OracleMode::Compile),
            "solve" => Some(OracleMode::Solve),
            _ => None,
        }
    }
}

/// Campaign parameters shared by the binary and the bounded-fuzz test.
#[derive(Debug, Clone)]
pub struct CampaignConfig {
    /// Master seed; every deck of a campaign is a deterministic function
    /// of this and the iteration index.
    pub seed: u64,
    /// Iteration count.
    pub iters: usize,
    /// Oracle stage to run.
    pub mode: OracleMode,
    /// When set, minimized findings are written here as corpus decks.
    pub write_corpus: Option<PathBuf>,
    /// Parse limits (defaults match the serving daemon's).
    pub limits: DeckLimits,
}

impl CampaignConfig {
    /// A campaign with default limits and no corpus writing.
    pub fn new(seed: u64, iters: usize, mode: OracleMode) -> CampaignConfig {
        CampaignConfig {
            seed,
            iters,
            mode,
            write_corpus: None,
            limits: DeckLimits::default(),
        }
    }
}

/// Campaign outcome.
#[derive(Debug, Default)]
pub struct CampaignReport {
    /// Iterations executed.
    pub iters: usize,
    /// Decks that came from the generator (vs. mutated seeds).
    pub generated: usize,
    /// Decks that were mutated seed decks.
    pub mutated: usize,
    /// Accumulated oracle statistics.
    pub stats: OracleStats,
    /// All findings, minimized.
    pub findings: Vec<Finding>,
    /// Corpus paths written (when corpus writing is enabled).
    pub written: Vec<PathBuf>,
}

impl CampaignReport {
    /// True when the campaign surfaced nothing.
    pub fn clean(&self) -> bool {
        self.findings.is_empty()
    }
}

fn panic_message(payload: &(dyn std::any::Any + Send)) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "opaque panic payload".to_string()
    }
}

fn stage_label(mode: OracleMode) -> &'static str {
    match mode {
        OracleMode::Parser => "parser",
        OracleMode::Compile => "compile",
        OracleMode::Solve => "solve",
    }
}

/// Runs every configured oracle stage on one deck under a panic guard,
/// returning findings (a panic is itself a finding).
pub fn probe(deck: &str, limits: &DeckLimits, mode: OracleMode) -> (Vec<Finding>, OracleStats) {
    let deck_owned = deck.to_string();
    let limits = *limits;
    let result = catch_unwind(AssertUnwindSafe(|| {
        let mut stats = OracleStats::default();
        let mut findings = Vec::new();
        match mode {
            OracleMode::Parser => {
                if let Err(f) = check_parser(&deck_owned, &limits, &mut stats) {
                    findings.push(f);
                }
            }
            OracleMode::Compile => match check_parser(&deck_owned, &limits, &mut stats) {
                Err(f) => findings.push(f),
                Ok(Some(_)) => {
                    if let Err(f) = check_compile(&deck_owned, &limits, &mut stats) {
                        findings.push(f);
                    }
                }
                Ok(None) => {}
            },
            OracleMode::Solve => {
                let (fs, st) = check_all(&deck_owned, &limits);
                findings = fs;
                stats = st;
            }
        }
        (findings, stats)
    }));
    match result {
        Ok(out) => out,
        Err(payload) => (
            vec![Finding {
                kind: FindingKind::Panic,
                oracle: stage_label(mode),
                detail: panic_message(payload.as_ref()),
                deck: deck.to_string(),
            }],
            OracleStats::default(),
        ),
    }
}

/// The mutation seed decks: the three embedded opamp testbench decks.
pub fn seed_decks() -> [&'static str; 3] {
    [
        MillerOpamp::deck(),
        FoldedCascode::deck(),
        FiveTransistorOta::deck(),
    ]
}

/// Runs a fuzzing campaign (library oracles — for wire mode see
/// [`wire::run_wire_campaign`]). `log` receives occasional progress lines.
pub fn run_campaign(cfg: &CampaignConfig, log: impl Fn(&str)) -> CampaignReport {
    let mut report = CampaignReport::default();
    let seeds = seed_decks();
    for iter in 0..cfg.iters {
        // Independent per-iteration stream: any iteration reproduces in
        // isolation from (seed, iter) alone.
        let mut rng =
            StdRng::seed_from_u64(cfg.seed ^ (iter as u64).wrapping_mul(0x9E37_79B9_7F4A_7C15));
        let deck = if rng.gen_bool(0.55) {
            report.generated += 1;
            let gcfg = GenConfig {
                max_elements: 24,
                // Parser/compile campaigns want directive-heavy decks;
                // solve campaigns want concrete circuits most of the time.
                annotate: match cfg.mode {
                    OracleMode::Solve => 0.25,
                    _ => 0.7,
                },
                harness: 0.5,
            };
            generate_deck(&mut rng, &gcfg).text
        } else {
            report.mutated += 1;
            let base = if rng.gen_bool(0.75) {
                (*seeds[rng.gen_range(0..seeds.len())]).to_string()
            } else {
                generate_deck(&mut rng, &GenConfig::default()).text
            };
            let n = rng.gen_range(1..4usize);
            mutate_n(&base, &mut rng, n)
        };

        let (findings, stats) = probe(&deck, &cfg.limits, cfg.mode);
        report.stats.absorb(&stats);
        for f in findings {
            let minimized = shrink_finding(&f, &cfg.limits, cfg.mode);
            log(&format!(
                "iter {iter}: {} [{}] {} ({} bytes minimized from {})",
                minimized.kind.label(),
                minimized.oracle,
                minimized.detail,
                minimized.deck.len(),
                deck.len(),
            ));
            if let Some(dir) = &cfg.write_corpus {
                if let Ok(path) = corpus::write_finding(dir, &minimized) {
                    report.written.push(path);
                }
            }
            report.findings.push(minimized);
        }
        report.iters += 1;
        if cfg.iters >= 10 && iter % (cfg.iters / 10).max(1) == 0 && iter > 0 {
            log(&format!(
                "{iter}/{} iters, {} findings, {} parsed / {} solved / {} tier2",
                cfg.iters,
                report.findings.len(),
                report.stats.parsed,
                report.stats.solved,
                report.stats.tier2,
            ));
        }
    }
    report
}

/// Minimizes a finding with "fails the same way" as the predicate, under
/// the same panic guard the campaign uses.
pub fn shrink_finding(f: &Finding, limits: &DeckLimits, mode: OracleMode) -> Finding {
    let kind = f.kind.clone();
    let oracle = f.oracle;
    let small = minimize(&f.deck, |candidate| {
        probe(candidate, limits, mode)
            .0
            .iter()
            .any(|g| g.kind == kind && g.oracle == oracle)
    });
    Finding {
        kind: f.kind.clone(),
        oracle: f.oracle,
        detail: f.detail.clone(),
        deck: small,
    }
}

/// One-line human summary of a campaign (used by the binary and tests).
pub fn summarize(report: &CampaignReport, mode: OracleMode) -> String {
    format!(
        "{}: {} iters ({} generated, {} mutated) | parsed {} compiled {} solved {} \
         unsolvable {} tier2 {} ac {} adjoint {} (+{} skipped) | findings {}",
        stage_label(mode),
        report.iters,
        report.generated,
        report.mutated,
        report.stats.parsed,
        report.stats.compiled,
        report.stats.solved,
        report.stats.unsolvable,
        report.stats.tier2,
        report.stats.ac_checked,
        report.stats.adjoint_checked,
        report.stats.adjoint_skipped,
        report.findings.len(),
    )
}

/// The operator name table, re-exported for reports.
pub fn operator_names() -> &'static [&'static str] {
    OPERATOR_NAMES
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn campaign_is_deterministic() {
        let cfg = CampaignConfig::new(42, 30, OracleMode::Parser);
        let a = run_campaign(&cfg, |_| {});
        let b = run_campaign(&cfg, |_| {});
        assert_eq!(a.iters, b.iters);
        assert_eq!(a.generated, b.generated);
        assert_eq!(a.findings.len(), b.findings.len());
        assert_eq!(a.stats, b.stats);
    }
}
