//! The cross-backend differential oracle.
//!
//! Three oracle stages, each consuming the previous stage's survivors:
//!
//! 1. **parser** — `parse_deck_ast_limited` must return `Ok` or a typed
//!    [`specwise_mna::ParseDeckError`] whose line number is 1-based; on `Ok`, printing
//!    with `to_deck()` and re-parsing must reproduce an equal AST
//!    (round-trip), and printing must be idempotent.
//! 2. **compile** — `Testbench::from_deck_limited` must return `Ok` or
//!    [`specwise_ckt::CktError::Deck`]; any other error variant at the compile boundary
//!    is a finding.
//! 3. **solve** — the deck is lowered to a [`specwise_mna::Circuit`] and solved on the
//!    dense AND the sparse backend. The backends must agree on
//!    solvability; failures must be clean (`SingularMatrix` /
//!    `NoConvergence`); and when both converge, solutions must agree
//!    within tiered tolerances (below). With an AC stimulus present, the
//!    complex AC systems are compared the same way, and the adjoint-style
//!    frozen-Jacobian one-step re-solve ([`specwise_mna::DcSensitivity`]) is checked
//!    against a full Newton re-solve of a perturbed circuit — the
//!    generated-circuit generalization of `tests/adjoint_parity.rs`.
//!
//! # Tolerance tiers
//!
//! LU pivot order differs between the backends, so bitwise equality is not
//! the bar — agreement within the conditioning of the system is:
//!
//! * **tier 1 (well-conditioned)**: `‖x_d − x_s‖∞ ≤ 1e-9 + 1e-6·s` with
//!   `s = max(1, ‖x_d‖∞, ‖x_s‖∞)`. The default verdict.
//! * **tier 2 (gmin-dominated)**: systems whose solution magnitude exceeds
//!   `1e4` (node voltages pinned by the gmin shunt, `I/gmin` scale) or
//!   that needed a deep Newton/homotopy run (> 40 iterations) are
//!   near-singular by construction; they pass at `1e-9 + 1e-3·s` and are
//!   counted as `tier2` in the campaign report instead of failing.
//! * **adjoint tier**: the one-step re-solve carries an `O(δ²)` model
//!   error, so the comparison budget is `1e-7 + 1e-2·δ·s` at relative
//!   perturbation `δ`; points where any MOSFET changes operating region
//!   between the base and perturbed solves are non-smooth and are skipped
//!   (the production gradient path declines to FD at exactly such points).
//!
//! Anything beyond tier 2 is a divergence finding. Panics are caught by
//! the campaign driver and are always findings.

use std::sync::Mutex;

use specwise_ckt::{CktError, Testbench};
use specwise_linalg::DVec;
use specwise_mna::{
    parse_deck_ast_limited, AcSolver, DcOp, DcSensitivity, DeckAst, DeckElementKind, DeckLimits,
    DeckValue, MnaError, SolverChoice,
};

/// Upper bound on MNA unknowns the solve oracle will accept — the dense
/// backend is O(n³) per factorization, and divergence hunting needs
/// throughput, not big systems.
pub const MAX_ORACLE_UNKNOWNS: usize = 220;

/// Relative perturbation of the adjoint one-step check.
pub const ADJOINT_DELTA: f64 = 1e-4;

/// AC comparison frequencies \[Hz\].
pub const AC_FREQS: [f64; 2] = [1e3, 1e6];

/// What a finding is — the classification drives corpus naming and the
/// campaign exit code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FindingKind {
    /// Any oracle stage panicked (caught by the campaign driver).
    Panic,
    /// `parse → print → parse` did not reproduce the AST, or printing was
    /// not idempotent.
    RoundTrip,
    /// An error escaped its typed boundary: a parse error with a 0 line
    /// number where 1-based is promised, a non-`Deck` compile error, or a
    /// dirty solver error kind on a singular system.
    ErrorType,
    /// Dense and sparse disagree on whether the system is solvable.
    BackendDisagreement,
    /// Dense and sparse DC solutions differ beyond tier 2.
    DcDivergence,
    /// Dense and sparse AC solutions differ beyond tier 2.
    AcDivergence,
    /// Adjoint one-step re-solve differs from the full Newton re-solve
    /// beyond the adjoint tier.
    AdjointDivergence,
}

impl FindingKind {
    /// Stable kebab-case label (used in corpus file names).
    pub fn label(&self) -> &'static str {
        match self {
            FindingKind::Panic => "panic",
            FindingKind::RoundTrip => "round-trip",
            FindingKind::ErrorType => "error-type",
            FindingKind::BackendDisagreement => "backend-disagreement",
            FindingKind::DcDivergence => "dc-divergence",
            FindingKind::AcDivergence => "ac-divergence",
            FindingKind::AdjointDivergence => "adjoint-divergence",
        }
    }
}

/// One oracle failure: the classification, a human-readable detail line,
/// and the offending deck (minimized by the campaign driver).
#[derive(Debug, Clone)]
pub struct Finding {
    /// Classification.
    pub kind: FindingKind,
    /// Which oracle stage produced it.
    pub oracle: &'static str,
    /// Human-readable description of the failure.
    pub detail: String,
    /// The deck text that triggers it.
    pub deck: String,
}

/// Per-deck oracle statistics, accumulated into the campaign report.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct OracleStats {
    /// Deck parsed to an AST.
    pub parsed: usize,
    /// Deck compiled to a full `Testbench`.
    pub compiled: usize,
    /// DC solved by both backends.
    pub solved: usize,
    /// Both backends failed (cleanly) to solve.
    pub unsolvable: usize,
    /// Comparisons that needed the near-singular tier 2 budget.
    pub tier2: usize,
    /// AC systems compared.
    pub ac_checked: usize,
    /// Adjoint one-step checks run.
    pub adjoint_checked: usize,
    /// Adjoint checks skipped at a non-smooth (region-change) point.
    pub adjoint_skipped: usize,
}

impl OracleStats {
    /// Accumulates another deck's stats.
    pub fn absorb(&mut self, o: &OracleStats) {
        self.parsed += o.parsed;
        self.compiled += o.compiled;
        self.solved += o.solved;
        self.unsolvable += o.unsolvable;
        self.tier2 += o.tier2;
        self.ac_checked += o.ac_checked;
        self.adjoint_checked += o.adjoint_checked;
        self.adjoint_skipped += o.adjoint_skipped;
    }
}

/// The solver-backend override is process-global; oracle invocations from
/// tests must serialize around it.
static BACKEND_LOCK: Mutex<()> = Mutex::new(());

fn with_backend<R>(choice: SolverChoice, f: impl FnOnce() -> R) -> R {
    set_override(Some(choice));
    let out = f();
    set_override(None);
    out
}

fn set_override(choice: Option<SolverChoice>) {
    specwise_mna::set_solver_override(choice);
}

fn finding(kind: FindingKind, oracle: &'static str, detail: String, deck: &str) -> Finding {
    Finding {
        kind,
        oracle,
        detail,
        deck: deck.to_string(),
    }
}

/// Stage 1: parse + round-trip. `Ok(Some(ast))` when the deck parses.
///
/// # Errors
///
/// Returns a [`Finding`] for round-trip or error-typing violations.
pub fn check_parser(
    deck: &str,
    limits: &DeckLimits,
    stats: &mut OracleStats,
) -> Result<Option<DeckAst>, Finding> {
    match parse_deck_ast_limited(deck, limits) {
        Err(e) => {
            if e.line() < 1 {
                return Err(finding(
                    FindingKind::ErrorType,
                    "parser",
                    format!("parse error with 0-based line: {e}"),
                    deck,
                ));
            }
            Ok(None)
        }
        Ok(ast) => {
            stats.parsed += 1;
            let printed = ast.to_deck();
            let reparsed = parse_deck_ast_limited(&printed, limits).map_err(|e| {
                finding(
                    FindingKind::RoundTrip,
                    "parser",
                    format!("printed deck no longer parses: {e}"),
                    deck,
                )
            })?;
            if reparsed != ast {
                return Err(finding(
                    FindingKind::RoundTrip,
                    "parser",
                    "printed deck parses to a different AST".to_string(),
                    deck,
                ));
            }
            if reparsed.to_deck() != printed {
                return Err(finding(
                    FindingKind::RoundTrip,
                    "parser",
                    "printing is not idempotent".to_string(),
                    deck,
                ));
            }
            Ok(Some(ast))
        }
    }
}

/// Stage 2: the `Testbench` compile boundary. Success or `CktError::Deck`;
/// anything else escapes its type and is a finding.
///
/// # Errors
///
/// Returns a [`Finding`] when a non-`Deck` error crosses the boundary.
pub fn check_compile(
    deck: &str,
    limits: &DeckLimits,
    stats: &mut OracleStats,
) -> Result<(), Finding> {
    match Testbench::from_deck_limited(deck, limits) {
        Ok(_) => {
            stats.compiled += 1;
            Ok(())
        }
        Err(CktError::Deck { .. }) => Ok(()),
        Err(other) => Err(finding(
            FindingKind::ErrorType,
            "compile",
            format!("non-Deck error escaped the compile boundary: {other}"),
            deck,
        )),
    }
}

/// A solver failure a singular/ill-posed system is allowed to produce.
fn clean_failure(e: &MnaError) -> bool {
    matches!(
        e,
        MnaError::SingularMatrix { .. } | MnaError::NoConvergence { .. }
    )
}

struct Compared {
    tier2: bool,
    diff: f64,
    scale: f64,
}

fn compare_real(xd: &DVec, xs: &DVec, deep: bool) -> Result<Compared, Compared> {
    let mut scale = 1.0f64;
    let mut diff = 0.0f64;
    for i in 0..xd.len() {
        scale = scale.max(xd[i].abs()).max(xs[i].abs());
        diff = diff.max((xd[i] - xs[i]).abs());
    }
    let c = |tier2| Compared { tier2, diff, scale };
    if diff <= 1e-9 + 1e-6 * scale {
        Ok(c(false))
    } else if (scale > 1e4 || deep) && diff <= 1e-9 + 1e-3 * scale {
        Ok(c(true))
    } else {
        Err(c(false))
    }
}

fn compare_complex(
    xd: &specwise_linalg::CVec,
    xs: &specwise_linalg::CVec,
    deep: bool,
) -> Result<Compared, Compared> {
    let mut scale = 1.0f64;
    let mut diff = 0.0f64;
    for i in 0..xd.len() {
        scale = scale.max(xd[i].abs()).max(xs[i].abs());
        diff = diff.max((xd[i] - xs[i]).abs());
    }
    let c = |tier2| Compared { tier2, diff, scale };
    if diff <= 1e-9 + 1e-6 * scale {
        Ok(c(false))
    } else if (scale > 1e4 || deep) && diff <= 1e-9 + 1e-3 * scale {
        Ok(c(true))
    } else {
        Err(c(false))
    }
}

/// Builds a copy of the AST with the first literal-valued resistor scaled
/// by `(1 + delta)`, for the adjoint one-step check. `None` when the deck
/// has no such resistor.
fn perturb_first_resistor(ast: &DeckAst, delta: f64) -> Option<DeckAst> {
    let mut out = ast.clone();
    for e in &mut out.elements {
        if let DeckElementKind::Resistor { value, .. } = &mut e.kind {
            if let DeckValue::Num(v) = value {
                *value = DeckValue::Num(*v * (1.0 + delta));
                return Some(out);
            }
        }
    }
    None
}

/// Stage 3: the three-way differential solve oracle (see module docs).
/// Decks that do not lower to a circuit (annotated decks, parse errors)
/// are skipped, not failures.
///
/// # Errors
///
/// Returns the first [`Finding`] across the DC, AC, and adjoint
/// comparisons.
pub fn check_solve(
    deck: &str,
    limits: &DeckLimits,
    stats: &mut OracleStats,
) -> Result<(), Finding> {
    let Ok(ast) = parse_deck_ast_limited(deck, limits) else {
        return Ok(());
    };
    let Ok(ckt) = ast.to_circuit() else {
        return Ok(());
    };
    let n = ckt.num_unknowns();
    if n == 0 || n > MAX_ORACLE_UNKNOWNS {
        return Ok(());
    }
    let _guard = BACKEND_LOCK.lock().unwrap_or_else(|e| e.into_inner());

    let dense = with_backend(SolverChoice::Dense, || DcOp::new(&ckt).solve());
    let sparse = with_backend(SolverChoice::Sparse, || DcOp::new(&ckt).solve());
    let (op_d, op_s) = match (dense, sparse) {
        (Err(ed), Err(es)) => {
            for (label, e) in [("dense", &ed), ("sparse", &es)] {
                if !clean_failure(e) {
                    return Err(finding(
                        FindingKind::ErrorType,
                        "solve",
                        format!("{label}: dirty failure on unsolvable system: {e}"),
                        deck,
                    ));
                }
            }
            stats.unsolvable += 1;
            return Ok(());
        }
        (Ok(_), Err(e)) => {
            return Err(finding(
                FindingKind::BackendDisagreement,
                "solve",
                format!("dense solved, sparse failed: {e}"),
                deck,
            ));
        }
        (Err(e), Ok(_)) => {
            return Err(finding(
                FindingKind::BackendDisagreement,
                "solve",
                format!("sparse solved, dense failed: {e}"),
                deck,
            ));
        }
        (Ok(d), Ok(s)) => (d, s),
    };
    stats.solved += 1;

    let deep = op_d.iterations() > 40 || op_s.iterations() > 40;
    match compare_real(op_d.unknowns(), op_s.unknowns(), deep) {
        Ok(c) => {
            if c.tier2 {
                stats.tier2 += 1;
            }
        }
        Err(c) => {
            return Err(finding(
                FindingKind::DcDivergence,
                "solve",
                format!(
                    "dense/sparse DC solutions differ: |Δ|∞ = {:.3e} at scale {:.3e} (n = {n})",
                    c.diff, c.scale
                ),
                deck,
            ));
        }
    }

    // AC comparison when the deck carries an AC stimulus.
    let has_ac = ast.elements.iter().any(|e| {
        matches!(
            &e.kind,
            DeckElementKind::VoltageSource { ac: Some(m), .. } if *m != 0.0
        )
    });
    if has_ac {
        for freq in AC_FREQS {
            let yd = with_backend(SolverChoice::Dense, || {
                AcSolver::new(&ckt, &op_d).solve(freq)
            });
            let ys = with_backend(SolverChoice::Sparse, || {
                AcSolver::new(&ckt, &op_s).solve(freq)
            });
            match (yd, ys) {
                (Err(ed), Err(es)) => {
                    for (label, e) in [("dense", &ed), ("sparse", &es)] {
                        if !clean_failure(e) {
                            return Err(finding(
                                FindingKind::ErrorType,
                                "solve",
                                format!("{label}: dirty AC failure: {e}"),
                                deck,
                            ));
                        }
                    }
                }
                (Ok(_), Err(e)) | (Err(e), Ok(_)) => {
                    return Err(finding(
                        FindingKind::BackendDisagreement,
                        "solve",
                        format!("AC solvability disagreement at {freq} Hz: {e}"),
                        deck,
                    ));
                }
                (Ok(yd), Ok(ys)) => {
                    stats.ac_checked += 1;
                    if let Err(c) = compare_complex(yd.unknowns(), ys.unknowns(), deep) {
                        return Err(finding(
                            FindingKind::AcDivergence,
                            "solve",
                            format!(
                                "dense/sparse AC solutions differ at {freq} Hz: \
                                 |Δ|∞ = {:.3e} at scale {:.3e}",
                                c.diff, c.scale
                            ),
                            deck,
                        ));
                    }
                }
            }
        }
    }

    // Adjoint-style one-step re-solve vs. a full Newton run on a
    // perturbed copy — the generated-circuit version of adjoint parity.
    if let Some(past) = perturb_first_resistor(&ast, ADJOINT_DELTA) {
        let Ok(pckt) = past.to_circuit() else {
            return Ok(());
        };
        let (sens_x, full) = with_backend(SolverChoice::Dense, || {
            let sens = DcSensitivity::new(&ckt, &op_d)
                .and_then(|s| s.solve_perturbed(&pckt))
                .map(|sol| sol.unknowns().clone());
            let full = DcOp::new(&pckt).solve();
            (sens, full)
        });
        if let (Ok(xs), Ok(full)) = (sens_x, full) {
            // Non-smooth point: a device changed region under the
            // perturbation; the production gradient path declines to FD
            // here, and so does the oracle.
            let region_change = op_d
                .mosfet_ops()
                .iter()
                .zip(full.mosfet_ops())
                .any(|(a, b)| a.region != b.region);
            if region_change {
                stats.adjoint_skipped += 1;
                return Ok(());
            }
            stats.adjoint_checked += 1;
            let mut scale = 1.0f64;
            let mut diff = 0.0f64;
            let xf = full.unknowns();
            for i in 0..xf.len() {
                scale = scale.max(xf[i].abs());
                diff = diff.max((xs[i] - xf[i]).abs());
            }
            if diff > 1e-7 + 1e-2 * ADJOINT_DELTA * scale {
                return Err(finding(
                    FindingKind::AdjointDivergence,
                    "solve",
                    format!(
                        "one-step adjoint re-solve differs from full Newton: \
                         |Δ|∞ = {diff:.3e} at scale {scale:.3e}, δ = {ADJOINT_DELTA:.0e}"
                    ),
                    deck,
                ));
            }
        }
    }
    Ok(())
}

/// Runs every oracle stage on one deck, returning all findings. This is
/// the corpus replay entry point: a corpus deck passes when this returns
/// an empty vector.
pub fn check_all(deck: &str, limits: &DeckLimits) -> (Vec<Finding>, OracleStats) {
    let mut stats = OracleStats::default();
    let mut findings = Vec::new();
    let parsed = match check_parser(deck, limits, &mut stats) {
        Ok(ast) => ast.is_some(),
        Err(f) => {
            findings.push(f);
            false
        }
    };
    if parsed {
        if let Err(f) = check_compile(deck, limits, &mut stats) {
            findings.push(f);
        }
        if let Err(f) = check_solve(deck, limits, &mut stats) {
            findings.push(f);
        }
    }
    (findings, stats)
}
