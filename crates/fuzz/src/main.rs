//! Fuzz campaign front end.
//!
//! ```text
//! cargo run --release -p specwise-fuzz -- --seed 1 --iters 2000 --oracle solve
//! cargo run --release -p specwise-fuzz -- --seed 7 --iters 200 --oracle wire
//! cargo run --release -p specwise-fuzz -- --seed 3 --iters 5000 --oracle parser --write-corpus
//! ```
//!
//! Exit code 0 when the campaign is clean, 1 on findings, 2 on usage
//! errors. `--write-corpus` pins minimized findings under
//! `crates/fuzz/corpus/` for the replay regression test.

use std::process::ExitCode;

use specwise_fuzz::{corpus, run_campaign, summarize, wire, CampaignConfig, OracleMode};

const USAGE: &str = "usage: specwise-fuzz --seed N --iters M \
                     --oracle parser|compile|solve|wire [--write-corpus]";

struct Args {
    seed: u64,
    iters: usize,
    oracle: String,
    write_corpus: bool,
    help: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 1,
        iters: 1000,
        oracle: "solve".to_string(),
        write_corpus: false,
        help: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--seed" => {
                args.seed = it
                    .next()
                    .ok_or("--seed needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --seed: {e}"))?;
            }
            "--iters" => {
                args.iters = it
                    .next()
                    .ok_or("--iters needs a value")?
                    .parse()
                    .map_err(|e| format!("bad --iters: {e}"))?;
            }
            "--oracle" => {
                args.oracle = it.next().ok_or("--oracle needs a value")?;
            }
            "--write-corpus" => args.write_corpus = true,
            "--help" | "-h" => args.help = true,
            other => return Err(format!("unknown argument: {other}")),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            eprintln!("{msg}");
            eprintln!("{USAGE}");
            return ExitCode::from(2);
        }
    };
    if args.help {
        println!("{USAGE}");
        return ExitCode::SUCCESS;
    }

    if args.oracle == "wire" {
        let report = wire::run_wire_campaign(args.seed, args.iters, |m| println!("{m}"));
        println!(
            "wire: {} attacks {:?} | findings {}",
            report.attacks,
            report.by_attack,
            report.findings.len()
        );
        for f in &report.findings {
            println!("FINDING: {f}");
        }
        return if report.findings.is_empty() {
            ExitCode::SUCCESS
        } else {
            ExitCode::FAILURE
        };
    }

    let Some(mode) = OracleMode::parse(&args.oracle) else {
        eprintln!(
            "unknown oracle '{}' (parser|compile|solve|wire)",
            args.oracle
        );
        return ExitCode::from(2);
    };
    let mut cfg = CampaignConfig::new(args.seed, args.iters, mode);
    if args.write_corpus {
        cfg.write_corpus = Some(corpus::corpus_dir());
    }
    let report = run_campaign(&cfg, |m| println!("{m}"));
    println!("{}", summarize(&report, mode));
    for f in &report.findings {
        println!(
            "FINDING: {} [{}] {}\n--- deck ({} bytes) ---\n{}\n---",
            f.kind.label(),
            f.oracle,
            f.detail,
            f.deck.len(),
            f.deck
        );
    }
    for p in &report.written {
        println!("pinned: {}", p.display());
    }
    if report.clean() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
