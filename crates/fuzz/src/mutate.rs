//! Deterministic mutation operators over deck text.
//!
//! Each operator takes deck text and a seeded RNG and returns a mutated
//! deck. Operators are structure-aware where it pays (token splice targets
//! whitespace-separated tokens, numeric extremes target number-shaped
//! tokens) and byte-dumb where that is the point (truncation). Applied to
//! generator output and to the three embedded opamp decks alike.

use rand::{rngs::StdRng, Rng};

/// Grammar-adjacent splice tokens: valid heads, directives, values, and
/// junk, so mutated decks reach deep into every parse arm instead of dying
/// on the first token.
pub const SPLICE_TOKENS: &[&str] = &[
    ".design",
    ".spec",
    ".range",
    ".match",
    ".tb",
    ".name",
    ".nodes",
    ".temp",
    ".end",
    ".include",
    "R1",
    "C1",
    "V1",
    "I1",
    "E1",
    "G1",
    "M1",
    "D1",
    "X1",
    "a",
    "b",
    "0",
    "gnd",
    "out",
    "vdd",
    "1k",
    "2.5u",
    "-5",
    "1e308",
    "-1e308",
    "1e999",
    "nan",
    "inf",
    "{w1}",
    "{{w1}}",
    "{",
    "}",
    "{}",
    "AC",
    "NMOS",
    "PMOS",
    "W=10u",
    "L=",
    "W={w1}",
    "IS=1e-12",
    "N=2",
    "min",
    "max",
    "um",
    ";",
    "*",
    "\u{1F4A3}",
    "",
];

/// Number-shaped replacement values probing overflow, underflow, signed
/// zero, and tokens that merely look numeric.
pub const NUMERIC_EXTREMES: &[&str] = &[
    "1e308",
    "-1e308",
    "1e-308",
    "1e999",
    "-1e999",
    "0",
    "-0.0",
    "nan",
    "inf",
    "-inf",
    "9999999999999999999999999999",
    "1e-999",
    "0x10",
    "1_000",
    "1e",
    "..",
    "+-3",
];

/// The mutation operators, in the order [`mutate`] draws them.
pub const OPERATOR_NAMES: &[&str] = &[
    "token-splice",
    "directive-dup",
    "truncate",
    "numeric-extreme",
    "depth-bomb",
    "line-shuffle",
    "byte-noise",
];

fn tokens_of(deck: &str) -> Vec<(usize, usize)> {
    // Byte ranges of whitespace-separated tokens.
    let mut out = Vec::new();
    let mut start = None;
    for (i, c) in deck.char_indices() {
        if c.is_whitespace() {
            if let Some(s) = start.take() {
                out.push((s, i));
            }
        } else if start.is_none() {
            start = Some(i);
        }
    }
    if let Some(s) = start {
        out.push((s, deck.len()));
    }
    out
}

fn looks_numeric(tok: &str) -> bool {
    let t = tok.trim_start_matches(['-', '+']);
    t.starts_with(|c: char| c.is_ascii_digit() || c == '.')
}

fn replace_range(deck: &str, (a, b): (usize, usize), with: &str) -> String {
    let mut out = String::with_capacity(deck.len() + with.len());
    out.push_str(&deck[..a]);
    out.push_str(with);
    out.push_str(&deck[b..]);
    out
}

/// Applies one randomly chosen operator; returns the mutated deck and the
/// operator's name (for campaign statistics and finding reports).
pub fn mutate(deck: &str, rng: &mut StdRng) -> (String, &'static str) {
    let op = rng.gen_range(0..OPERATOR_NAMES.len());
    let name = OPERATOR_NAMES[op];
    let toks = tokens_of(deck);
    let mutated = match op {
        // Token splice: replace a random token with a pool token or with
        // another token copied from elsewhere in the deck.
        0 if !toks.is_empty() => {
            let t = toks[rng.gen_range(0..toks.len())];
            let with = if rng.gen_bool(0.5) || toks.len() < 2 {
                SPLICE_TOKENS[rng.gen_range(0..SPLICE_TOKENS.len())].to_string()
            } else {
                let s = toks[rng.gen_range(0..toks.len())];
                deck[s.0..s.1].to_string()
            };
            replace_range(deck, t, &with)
        }
        // Directive/line duplication — many copies stress the count limits.
        1 => {
            let lines: Vec<&str> = deck.lines().collect();
            if lines.is_empty() {
                deck.to_string()
            } else {
                let i = rng.gen_range(0..lines.len());
                let copies = [1, 2, 8, 64][rng.gen_range(0..4usize)];
                let mut out = String::new();
                for (k, l) in lines.iter().enumerate() {
                    out.push_str(l);
                    out.push('\n');
                    if k == i {
                        for _ in 0..copies {
                            out.push_str(l);
                            out.push('\n');
                        }
                    }
                }
                out
            }
        }
        // Truncation at an arbitrary char boundary.
        2 => {
            let mut cut = rng.gen_range(0..deck.len().max(1));
            while cut > 0 && !deck.is_char_boundary(cut) {
                cut -= 1;
            }
            deck[..cut].to_string()
        }
        // Numeric extremes on a number-shaped token.
        3 => {
            let nums: Vec<(usize, usize)> = toks
                .iter()
                .copied()
                .filter(|&(a, b)| looks_numeric(&deck[a..b]))
                .collect();
            if nums.is_empty() {
                deck.to_string()
            } else {
                let t = nums[rng.gen_range(0..nums.len())];
                let with = NUMERIC_EXTREMES[rng.gen_range(0..NUMERIC_EXTREMES.len())];
                replace_range(deck, t, with)
            }
        }
        // Brace-depth bomb in place of a token.
        4 if !toks.is_empty() => {
            let t = toks[rng.gen_range(0..toks.len())];
            let depth = rng.gen_range(2..40usize);
            let bomb = format!("{}x{}", "{".repeat(depth), "}".repeat(depth));
            replace_range(deck, t, &bomb)
        }
        // Line shuffle.
        5 => {
            use rand::seq::SliceRandom;
            let mut lines: Vec<&str> = deck.lines().collect();
            lines.shuffle(rng);
            let mut out = lines.join("\n");
            out.push('\n');
            out
        }
        // Insert noise chars (controls, multibyte, replacement char).
        6 => {
            const NOISE: &[char] = &[
                '\u{0}',
                '\u{1}',
                '\t',
                '\r',
                '\u{fffd}',
                'é',
                '\u{1F4A3}',
                ';',
                '*',
            ];
            let mut out = String::with_capacity(deck.len() + 8);
            let mut pos = rng.gen_range(0..deck.len().max(1));
            while pos > 0 && !deck.is_char_boundary(pos) {
                pos -= 1;
            }
            out.push_str(&deck[..pos]);
            for _ in 0..rng.gen_range(1..6usize) {
                out.push(NOISE[rng.gen_range(0..NOISE.len())]);
            }
            out.push_str(&deck[pos..]);
            out
        }
        _ => deck.to_string(),
    };
    (mutated, name)
}

/// Applies `n` stacked mutations.
pub fn mutate_n(deck: &str, rng: &mut StdRng, n: usize) -> String {
    let mut d = deck.to_string();
    for _ in 0..n {
        d = mutate(&d, rng).0;
    }
    d
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn mutations_are_deterministic_and_total() {
        let deck = "V1 a 0 1.0\nR1 a 0 1k\n.end\n";
        let mut a = StdRng::seed_from_u64(3);
        let mut b = StdRng::seed_from_u64(3);
        for _ in 0..200 {
            let (x, opx) = mutate(deck, &mut a);
            let (y, opy) = mutate(deck, &mut b);
            assert_eq!(x, y);
            assert_eq!(opx, opy);
        }
    }

    #[test]
    fn truncation_respects_char_boundaries() {
        let deck = "V1 a 0 1.0 ; é\u{1F4A3}\n";
        let mut rng = StdRng::seed_from_u64(11);
        for _ in 0..500 {
            let _ = mutate_n(deck, &mut rng, 3);
        }
    }
}
