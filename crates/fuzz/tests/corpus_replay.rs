//! Corpus replay regression test.
//!
//! Every deck pinned under `crates/fuzz/corpus/` once triggered a defect —
//! a parser panic, a round-trip break, a compile-boundary panic, or a
//! solver divergence. After the fixes, each must run through every oracle
//! stage with zero findings and zero panics. A failure here means a pinned
//! defect has regressed.

use specwise_fuzz::corpus::{corpus_dir, replay};
use specwise_mna::DeckLimits;

#[test]
fn corpus_replays_clean() {
    let dir = corpus_dir();
    let outcomes = replay(&dir, &DeckLimits::default());
    assert!(
        !outcomes.is_empty(),
        "corpus directory {} is empty — the pinned regression decks are missing",
        dir.display()
    );
    let mut failures = Vec::new();
    for o in &outcomes {
        if !o.passed() {
            let why = if o.panicked {
                "PANIC".to_string()
            } else {
                o.findings
                    .iter()
                    .map(|f| format!("{} [{}] {}", f.kind.label(), f.oracle, f.detail))
                    .collect::<Vec<_>>()
                    .join("; ")
            };
            failures.push(format!("{}: {}", o.name, why));
        }
    }
    assert!(
        failures.is_empty(),
        "corpus decks regressed:\n{}",
        failures.join("\n")
    );
}

#[test]
fn corpus_covers_known_defect_classes() {
    // The corpus must keep pinning at least the defect classes this fuzzing
    // effort surfaced; removing them all would quietly disable the
    // regression net.
    let dir = corpus_dir();
    let names: Vec<String> = std::fs::read_dir(&dir)
        .expect("corpus dir")
        .filter_map(Result::ok)
        .map(|e| e.file_name().to_string_lossy().into_owned())
        .collect();
    for class in ["panic-", "round-trip-", "error-type-"] {
        assert!(
            names.iter().any(|n| n.starts_with(class)),
            "no corpus deck pins the {class} defect class (have: {names:?})"
        );
    }
    assert!(names.len() >= 10, "corpus shrank below 10 decks: {names:?}");
}
