//! Fixed-seed bounded fuzz runs — the CI smoke version of the campaigns.
//!
//! Short deterministic campaigns over every library oracle stage. These
//! use the exact driver the `specwise-fuzz` binary uses, so CI exercises
//! the same code path as an overnight run, just with fewer iterations
//! (the three campaigns together stay within a ~30 s budget in release
//! mode; iteration counts are sized for that).

use specwise_fuzz::{run_campaign, summarize, CampaignConfig, OracleMode};

fn assert_clean(mode: OracleMode, seed: u64, iters: usize) {
    let cfg = CampaignConfig::new(seed, iters, mode);
    let report = run_campaign(&cfg, |_| {});
    assert_eq!(report.iters, iters);
    let mut msg = summarize(&report, mode);
    for f in &report.findings {
        msg.push_str(&format!(
            "\nFINDING: {} [{}] {}\n--- deck ---\n{}",
            f.kind.label(),
            f.oracle,
            f.detail,
            f.deck
        ));
    }
    assert!(report.clean(), "{msg}");
}

#[test]
fn parser_campaign_is_clean() {
    assert_clean(OracleMode::Parser, 0xC0FFEE, 400);
}

#[test]
fn compile_campaign_is_clean() {
    assert_clean(OracleMode::Compile, 0xBEEF, 250);
}

#[test]
fn solve_campaign_is_clean() {
    assert_clean(OracleMode::Solve, 1, 150);
}

#[test]
fn campaigns_exercise_the_solvers() {
    // Guard against the generator drifting into producing only unparseable
    // or unsolvable decks, which would hollow out the differential oracle.
    let cfg = CampaignConfig::new(2, 200, OracleMode::Solve);
    let report = run_campaign(&cfg, |_| {});
    assert!(
        report.stats.parsed > 100,
        "too few decks parsed: {:?}",
        report.stats
    );
    assert!(
        report.stats.solved > 20,
        "too few decks reached the differential solve: {:?}",
        report.stats
    );
    assert!(
        report.stats.adjoint_checked > 10,
        "too few adjoint one-step checks ran: {:?}",
        report.stats
    );
    assert!(
        report.stats.ac_checked > 5,
        "too few AC comparisons ran: {:?}",
        report.stats
    );
}
