//! The [`FaultInjector`] environment wrapper and the [`KillSwitch`] used
//! by interruption tests.

use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

use specwise_ckt::{
    CircuitEnv, CktError, DesignSpace, OperatingPoint, OperatingRange, SimPhase, Spec, StatSpace,
};
use specwise_linalg::DVec;
use specwise_mna::MnaError;
use specwise_trace::Tracer;

use crate::config::{FaultConfig, FaultKind};

/// splitmix64 finalizer: a cheap, high-quality 64-bit mixer.
fn mix(mut x: u64) -> u64 {
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

fn fold(h: u64, word: u64) -> u64 {
    mix(h ^ word.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// Hashes an evaluation point (exact f64 bits, so one-ulp-apart points
/// fault independently) together with a site tag.
fn point_hash(tag: u64, d: &DVec, s_hat: Option<&DVec>, theta: Option<&OperatingPoint>) -> u64 {
    let mut h = mix(tag);
    for &x in d.iter() {
        h = fold(h, x.to_bits());
    }
    if let Some(s) = s_hat {
        h = fold(h, 0x5eed);
        for &x in s.iter() {
            h = fold(h, x.to_bits());
        }
    }
    if let Some(t) = theta {
        h = fold(h, t.temp_c.to_bits());
        h = fold(h, t.vdd.to_bits());
    }
    h
}

/// Counts of injected faults, per [`FaultKind`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct FaultReport {
    /// Injections per kind, indexed by [`FaultKind::index`].
    pub injected: [u64; FaultKind::ALL.len()],
}

impl FaultReport {
    /// Total injected faults across all kinds.
    pub fn total(&self) -> u64 {
        self.injected.iter().sum()
    }

    /// Injections of one kind.
    pub fn count(&self, kind: FaultKind) -> u64 {
        self.injected[kind.index()]
    }
}

impl std::fmt::Display for FaultReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "faults injected: {} total (", self.total())?;
        for (i, kind) in FaultKind::ALL.into_iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{} {}", self.injected[kind.index()], kind.token())?;
        }
        write!(f, ")")
    }
}

/// A deterministic, seeded fault-injection layer wrapping any
/// [`CircuitEnv`].
///
/// Whether a given evaluation faults is a pure function of the point and
/// the seed — *not* of call order — so injection is reproducible under
/// parallel batches and across runs. In the default transient mode a point
/// faults only on its first evaluation: a same-point retry (an
/// `EvalService` with `perturb = 0`) then re-evaluates cleanly, which is
/// what makes "retries absorb all faults → final design bit-identical to
/// the fault-free run" a testable property.
///
/// Stacks naturally under the evaluation engine:
/// `EvalService::new(&FaultInjector::new(&env, cfg), exec_cfg)` — the
/// service's cache, retries, and `catch_unwind` isolation all apply to the
/// injected faults.
pub struct FaultInjector<'e, E: CircuitEnv + ?Sized> {
    env: &'e E,
    config: FaultConfig,
    seen: Mutex<HashSet<u64>>,
    injected: [AtomicU64; FaultKind::ALL.len()],
    tracer: Tracer,
}

impl<E: CircuitEnv + ?Sized> std::fmt::Debug for FaultInjector<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FaultInjector")
            .field("env", &self.env.name())
            .field("config", &self.config)
            .finish()
    }
}

impl<'e, E: CircuitEnv + ?Sized> FaultInjector<'e, E> {
    /// Wraps `env` with the given fault configuration.
    pub fn new(env: &'e E, config: FaultConfig) -> Self {
        FaultInjector {
            env,
            config,
            seen: Mutex::new(HashSet::new()),
            injected: std::array::from_fn(|_| AtomicU64::new(0)),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: every injection emits a `fault_injected`
    /// event (kind + site) into the journal.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// Counts of injected faults so far.
    pub fn report(&self) -> FaultReport {
        FaultReport {
            injected: std::array::from_fn(|i| self.injected[i].load(Ordering::Relaxed)),
        }
    }

    /// Decides whether this evaluation faults, and with which kind.
    /// `allowed` restricts the kinds that make sense at the call site.
    fn decide(&self, hash: u64, allowed: &[FaultKind]) -> Option<FaultKind> {
        let kinds: Vec<FaultKind> = self
            .config
            .kinds
            .iter()
            .copied()
            .filter(|k| allowed.contains(k))
            .collect();
        if kinds.is_empty() || self.config.rate <= 0.0 {
            return None;
        }
        let h = mix(hash ^ self.config.seed.wrapping_mul(0x2545_f491_4f6c_dd1d));
        // Top 53 bits → uniform in [0, 1).
        let u = (h >> 11) as f64 / (1u64 << 53) as f64;
        if u >= self.config.rate {
            return None;
        }
        if self.config.transient && !self.seen.lock().expect("fault set poisoned").insert(hash) {
            return None;
        }
        let kind = kinds[(mix(h) % kinds.len() as u64) as usize];
        self.injected[kind.index()].fetch_add(1, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            self.tracer.event(
                "fault_injected",
                &[("kind", kind.token().into()), ("hash", hash.into())],
            );
        }
        Some(kind)
    }

    fn injected_error(&self) -> CktError {
        CktError::Simulation(MnaError::NoConvergence {
            analysis: "injected fault",
            iterations: 0,
            residual: f64::INFINITY,
        })
    }
}

impl<E: CircuitEnv + ?Sized> CircuitEnv for FaultInjector<'_, E> {
    fn name(&self) -> &str {
        self.env.name()
    }

    fn design_space(&self) -> &DesignSpace {
        self.env.design_space()
    }

    fn stat_space(&self) -> &StatSpace {
        self.env.stat_space()
    }

    fn stat_dim(&self) -> usize {
        // Forward explicitly: the trait's default derives the dimension
        // from the stat space, which would drop a wrapped environment's
        // override (e.g. `AnalyticEnv`'s truncated synthetic space).
        self.env.stat_dim()
    }

    fn specs(&self) -> &[Spec] {
        self.env.specs()
    }

    fn operating_range(&self) -> &OperatingRange {
        self.env.operating_range()
    }

    fn constraint_names(&self) -> Vec<String> {
        self.env.constraint_names()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        // Faults short-circuit *before* the wrapped environment runs, so
        // the env's state sequence (sim counters, warm-start caches) is
        // exactly what a retrying engine replays on the clean attempt.
        const PERF_TAG: u64 = 0x9E4F;
        match self.decide(
            point_hash(PERF_TAG, d, Some(s_hat), Some(theta)),
            &FaultKind::ALL,
        ) {
            Some(FaultKind::NonConvergence) => Err(self.injected_error()),
            Some(FaultKind::NanPerformance) => Ok(DVec::filled(self.env.specs().len(), f64::NAN)),
            Some(FaultKind::WorkerPanic) => {
                panic!("injected worker panic (seed {})", self.config.seed)
            }
            Some(FaultKind::LatencySpike) => {
                std::thread::sleep(self.config.latency);
                self.env.eval_performances(d, s_hat, theta)
            }
            None => self.env.eval_performances(d, s_hat, theta),
        }
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        // NaN constraint vectors are not a realistic simulator failure
        // mode; constraints fault through non-convergence, panics, and
        // latency only.
        const ALLOWED: [FaultKind; 3] = [
            FaultKind::NonConvergence,
            FaultKind::WorkerPanic,
            FaultKind::LatencySpike,
        ];
        const CONS_TAG: u64 = 0xC025;
        match self.decide(point_hash(CONS_TAG, d, None, None), &ALLOWED) {
            Some(FaultKind::NonConvergence) => Err(self.injected_error()),
            Some(FaultKind::WorkerPanic) => {
                panic!("injected worker panic (seed {})", self.config.seed)
            }
            Some(FaultKind::LatencySpike) => {
                std::thread::sleep(self.config.latency);
                self.env.eval_constraints(d)
            }
            _ => self.env.eval_constraints(d),
        }
    }

    fn sim_count(&self) -> u64 {
        self.env.sim_count()
    }

    fn reset_sim_count(&self) {
        self.env.reset_sim_count()
    }

    fn set_sim_phase(&self, phase: SimPhase) {
        self.env.set_sim_phase(phase)
    }

    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT] {
        self.env.sim_phase_counts()
    }

    fn warm_commit(&self) {
        self.env.warm_commit()
    }

    // `eval_margins_perturbed` and `eval_margins_samples` keep their trait
    // defaults (`None`) on purpose: the batched shortcuts would evaluate
    // whole groups inside the wrapped environment, bypassing the per-point
    // fault decisions above. Declining them routes every point through the
    // fault-injecting scalar path.

    fn adjoint_solve_count(&self) -> u64 {
        self.env.adjoint_solve_count()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.env.fd_sims_avoided()
    }
}

/// A sharable evaluation budget: one atomic meter that any number of
/// [`KillSwitch`] wrappers (one per job of a tenant, say) charge together.
///
/// `specwise-serve` hangs one of these on every tenant so concurrent jobs
/// draw from a common allowance, and reads [`SharedBudget::used`] for its
/// per-tenant sim-count metrics.
///
/// The meter also carries an *external* charge count
/// ([`SharedBudget::set_external`]): evaluations performed against the same
/// allowance by other processes, as reported by a durable ledger. The
/// allowance is enforced against `used + external`, which is how
/// `specwise-serve` holds per-tenant budgets across a fleet of daemons
/// sharing one spool — each daemon charges its own meter locally and folds
/// its peers' totals in whenever the spool ledger is reconciled.
#[derive(Debug)]
pub struct SharedBudget {
    budget: u64,
    used: AtomicU64,
    external: AtomicU64,
    tripped: AtomicBool,
}

impl SharedBudget {
    /// A fresh meter allowing `budget` evaluations.
    pub fn new(budget: u64) -> Self {
        SharedBudget {
            budget,
            used: AtomicU64::new(0),
            external: AtomicU64::new(0),
            tripped: AtomicBool::new(false),
        }
    }

    /// The configured allowance.
    pub fn budget(&self) -> u64 {
        self.budget
    }

    /// Evaluations charged locally so far (including any rejected after the
    /// trip). Does not include external charges.
    pub fn used(&self) -> u64 {
        self.used.load(Ordering::Relaxed)
    }

    /// Evaluations charged against the same allowance elsewhere, as last
    /// reported via [`SharedBudget::set_external`].
    pub fn external(&self) -> u64 {
        self.external.load(Ordering::Relaxed)
    }

    /// Local plus external charges — the number the allowance is enforced
    /// against.
    pub fn total_used(&self) -> u64 {
        self.used().saturating_add(self.external())
    }

    /// Fold in evaluations charged by other processes. The stored value is
    /// monotone (ledger totals only grow), so a stale reconciliation can
    /// never un-trip a budget or widen the remaining allowance.
    pub fn set_external(&self, external: u64) {
        self.external.fetch_max(external, Ordering::Relaxed);
        // Trip only when the fleet has over-spent: a total of exactly
        // `budget` mirrors the local rule, where the allowance admits
        // `budget` charges and trips on the first rejected one.
        if self.total_used() > self.budget {
            self.tripped.store(true, Ordering::Relaxed);
        }
    }

    /// Whether the allowance was exhausted at least once.
    pub fn tripped(&self) -> bool {
        self.tripped.load(Ordering::Relaxed)
    }

    /// Charge one evaluation; `false` once the allowance is exhausted
    /// (counting both local and external charges).
    fn charge(&self) -> bool {
        let prior = self.used.fetch_add(1, Ordering::Relaxed);
        if prior.saturating_add(self.external()) >= self.budget {
            self.tripped.store(true, Ordering::Relaxed);
            false
        } else {
            true
        }
    }
}

/// An environment wrapper that turns fatal after a fixed number of
/// simulations — the in-process stand-in for "the job got killed" in
/// checkpoint/resume tests. Once tripped, every evaluation of a
/// [`KillSwitch::new`] wrapper returns a *non-retryable* error
/// (`CktError::InvalidConfig`), so no retry policy can absorb it and the
/// run stops where the budget ran out.
///
/// The [`KillSwitch::soft`] variant instead fails post-budget evaluations
/// with a *retryable* simulation error (the same shape a non-converging
/// solve produces), so downstream layers that tolerate simulation failures
/// — notably the yield-estimator layer's shared accumulator policy
/// (`specwise::classify_sample`), which counts-and-excludes failed samples
/// and widens the reported yield interval for every estimator — degrade
/// gracefully instead of aborting.
pub struct KillSwitch<'e, E: CircuitEnv + ?Sized> {
    env: &'e E,
    budget: std::sync::Arc<SharedBudget>,
    soft: bool,
}

impl<E: CircuitEnv + ?Sized> std::fmt::Debug for KillSwitch<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("KillSwitch")
            .field("env", &self.env.name())
            .field("budget", &self.budget.budget())
            .field("used", &self.budget.used())
            .field("soft", &self.soft)
            .finish()
    }
}

impl<'e, E: CircuitEnv + ?Sized> KillSwitch<'e, E> {
    /// Wraps `env`; evaluations beyond `budget` fail fatally.
    pub fn new(env: &'e E, budget: u64) -> Self {
        Self::with_budget(env, std::sync::Arc::new(SharedBudget::new(budget)))
    }

    /// Wraps `env`; evaluations beyond `budget` fail with a retryable
    /// simulation error, so failure-tolerant layers degrade instead of
    /// aborting.
    pub fn soft(env: &'e E, budget: u64) -> Self {
        let mut ks = Self::new(env, budget);
        ks.soft = true;
        ks
    }

    /// Wraps `env` around an externally owned [`SharedBudget`], fatal mode.
    pub fn with_budget(env: &'e E, budget: std::sync::Arc<SharedBudget>) -> Self {
        KillSwitch {
            env,
            budget,
            soft: false,
        }
    }

    /// Wraps `env` around an externally owned [`SharedBudget`], soft mode.
    pub fn soft_with_budget(env: &'e E, budget: std::sync::Arc<SharedBudget>) -> Self {
        let mut ks = Self::with_budget(env, budget);
        ks.soft = true;
        ks
    }

    /// The budget meter this wrapper charges.
    pub fn budget(&self) -> &std::sync::Arc<SharedBudget> {
        &self.budget
    }

    /// Whether the budget was exhausted at least once.
    pub fn tripped(&self) -> bool {
        self.budget.tripped()
    }

    /// Evaluations charged so far (including any rejected after the trip).
    /// With an unreachable budget the wrapper doubles as a pure
    /// evaluation-call counter, which is how the resume acceptance test
    /// sizes a budget that dies mid-iteration.
    pub fn used(&self) -> u64 {
        self.budget.used()
    }

    fn charge(&self) -> Result<(), CktError> {
        if self.budget.charge() {
            Ok(())
        } else if self.soft {
            Err(CktError::Simulation(MnaError::NoConvergence {
                analysis: "kill switch: simulation budget exhausted",
                iterations: 0,
                residual: f64::INFINITY,
            }))
        } else {
            Err(CktError::InvalidConfig {
                reason: "kill switch tripped: simulation budget exhausted",
            })
        }
    }
}

impl<E: CircuitEnv + ?Sized> CircuitEnv for KillSwitch<'_, E> {
    fn name(&self) -> &str {
        self.env.name()
    }

    fn design_space(&self) -> &DesignSpace {
        self.env.design_space()
    }

    fn stat_space(&self) -> &StatSpace {
        self.env.stat_space()
    }

    fn stat_dim(&self) -> usize {
        // Forward explicitly: the trait's default derives the dimension
        // from the stat space, which would drop a wrapped environment's
        // override (e.g. `AnalyticEnv`'s truncated synthetic space).
        self.env.stat_dim()
    }

    fn specs(&self) -> &[Spec] {
        self.env.specs()
    }

    fn operating_range(&self) -> &OperatingRange {
        self.env.operating_range()
    }

    fn constraint_names(&self) -> Vec<String> {
        self.env.constraint_names()
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        self.charge()?;
        self.env.eval_performances(d, s_hat, theta)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        self.charge()?;
        self.env.eval_constraints(d)
    }

    fn sim_count(&self) -> u64 {
        self.env.sim_count()
    }

    fn reset_sim_count(&self) {
        self.env.reset_sim_count()
    }

    fn set_sim_phase(&self, phase: SimPhase) {
        self.env.set_sim_phase(phase)
    }

    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT] {
        self.env.sim_phase_counts()
    }

    fn warm_commit(&self) {
        self.env.warm_commit()
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        let r = self
            .env
            .eval_margins_perturbed(d, s_hat, theta, directions)?;
        if r.is_some() {
            // The shortcut replaces exactly one base measurement; the
            // perturbations ride on cached factorizations and are not
            // simulator invocations. Charging only on success keeps the
            // meter identical to the per-point path when the environment
            // declines and the caller falls back to finite differences.
            self.charge()?;
        }
        Ok(r)
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        let mut results = self.env.eval_margins_samples(d, points)?;
        // One charge per sample, in submission order — the same meter
        // readings the per-point loop produces. A batch already in flight
        // when the allowance runs out finishes its lockstep sweep, but the
        // over-budget samples still report the budget error.
        for r in &mut results {
            if let Err(e) = self.charge() {
                *r = Err(e);
            }
        }
        Some(results)
    }

    fn adjoint_solve_count(&self) -> u64 {
        self.env.adjoint_solve_count()
    }

    fn fd_sims_avoided(&self) -> u64 {
        self.env.fd_sims_avoided()
    }
}
