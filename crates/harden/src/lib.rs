//! specwise-harden: deterministic fault injection and robustness
//! harnessing for the specwise flow.
//!
//! A production yield-optimization run is thousands of simulator calls
//! (paper Table 7), and any of them can fail mid-flight: a DC solve that
//! does not converge, a measurement that comes back NaN, a worker that
//! panics, a job that is killed outright. The rest of the workspace
//! carries the *mechanisms* that survive those events — per-sample retries
//! and panic isolation in `specwise-exec`, degradation policies and
//! checkpoint/resume in `specwise` (core). This crate carries the
//! *adversary* that proves they work:
//!
//! * [`FaultInjector`] — wraps any [`CircuitEnv`](specwise_ckt::CircuitEnv)
//!   and injects seeded, deterministic faults ([`FaultKind`]: simulation
//!   non-convergence, NaN performances, latency spikes, worker panics).
//!   Fault decisions are pure functions of the evaluation point and the
//!   seed, so injection reproduces exactly under parallel batches. In
//!   transient mode (the default) a point faults only on its first
//!   evaluation, which makes "retries absorb every fault → results
//!   bit-identical to the fault-free run" a provable property rather than
//!   a hope.
//! * [`FaultConfig`] — the `seed:rate:kinds` spec, parseable from the
//!   `SPECWISE_FAULTS` environment variable ([`FAULTS_ENV_VAR`]) so any
//!   test or example can run under chaos without code changes.
//! * [`KillSwitch`] — an environment wrapper that turns fatal after a
//!   fixed simulation budget: the in-process stand-in for "the job got
//!   killed", used by the checkpoint/resume tests.
//!
//! # Example
//!
//! ```
//! use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
//! use specwise_harden::{FaultConfig, FaultInjector, FaultKind};
//! use specwise_linalg::DVec;
//!
//! # fn main() -> Result<(), specwise_ckt::CktError> {
//! let env = AnalyticEnv::builder()
//!     .design(DesignSpace::new(vec![DesignParam::new("d0", "", -10.0, 10.0, 2.0)]))
//!     .stat_dim(1)
//!     .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
//!     .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
//!     .build()?;
//! // 30% non-convergence faults, transient: the second evaluation of a
//! // faulted point succeeds.
//! let cfg = FaultConfig::new(42, 0.3).with_kinds(&[FaultKind::NonConvergence]);
//! let chaos = FaultInjector::new(&env, cfg);
//! let theta = env.operating_range().nominal();
//! let d = DVec::from_slice(&[2.0]);
//! let s = DVec::from_slice(&[0.25]);
//! let first = chaos.eval_performances(&d, &s, &theta);
//! let second = chaos.eval_performances(&d, &s, &theta);
//! assert!(second.is_ok(), "transient faults clear on retry");
//! # let _ = first;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

pub mod config;
pub mod inject;

pub use config::{FaultConfig, FaultKind, FAULTS_ENV_VAR};
pub use inject::{FaultInjector, FaultReport, KillSwitch, SharedBudget};

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{
        AnalyticEnv, CircuitEnv, CktError, DesignParam, DesignSpace, OperatingPoint, Spec, SpecKind,
    };
    use specwise_exec::{EvalPoint, EvalService, Evaluator, ExecConfig, RetryPolicy};
    use specwise_linalg::DVec;

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + 0.5 * s[0] - 0.25 * s[1]]))
            .constraints(vec!["c0".into()], |d| DVec::from_slice(&[d[0] + 4.0]))
            .build()
            .unwrap()
    }

    fn points(n: usize) -> Vec<EvalPoint> {
        let theta = OperatingPoint::new(27.0, 3.3);
        (0..n)
            .map(|i| {
                EvalPoint::new(
                    DVec::from_slice(&[0.1 * i as f64]),
                    DVec::from_slice(&[0.01 * i as f64, -0.02 * i as f64]),
                    theta,
                )
            })
            .collect()
    }

    #[test]
    fn injection_is_deterministic_and_order_independent() {
        let e = env();
        let cfg = FaultConfig::new(7, 0.3)
            .with_kinds(&[FaultKind::NonConvergence])
            .with_transient(false);
        let theta = OperatingPoint::new(27.0, 3.3);
        let probe = |inj: &FaultInjector<AnalyticEnv>, order: &[usize]| -> Vec<bool> {
            let pts = points(40);
            let mut faulted = vec![false; pts.len()];
            for &i in order {
                let p = &pts[i];
                faulted[i] = CircuitEnv::eval_performances(inj, &p.d, &p.s_hat, &p.theta).is_err();
            }
            let _ = theta;
            faulted
        };
        let fwd: Vec<usize> = (0..40).collect();
        let rev: Vec<usize> = (0..40).rev().collect();
        let a = probe(&FaultInjector::new(&e, cfg.clone()), &fwd);
        let b = probe(&FaultInjector::new(&e, cfg.clone()), &rev);
        assert_eq!(a, b, "fault decisions must not depend on call order");
        let hit = a.iter().filter(|&&x| x).count();
        assert!(hit > 2 && hit < 25, "≈30% of 40 points, got {hit}");
    }

    #[test]
    fn transient_faults_clear_on_the_second_evaluation() {
        let e = env();
        let cfg = FaultConfig::new(3, 1.0).with_kinds(&[FaultKind::NonConvergence]);
        let inj = FaultInjector::new(&e, cfg);
        let theta = OperatingPoint::new(27.0, 3.3);
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::from_slice(&[0.5, -0.5]);
        assert!(CircuitEnv::eval_performances(&inj, &d, &s, &theta).is_err());
        let second = CircuitEnv::eval_performances(&inj, &d, &s, &theta).unwrap();
        let clean = CircuitEnv::eval_performances(&e, &d, &s, &theta).unwrap();
        assert_eq!(second.as_slice(), clean.as_slice());
        assert_eq!(inj.report().count(FaultKind::NonConvergence), 1);
    }

    #[test]
    fn retrying_service_over_injector_is_bit_identical_to_fault_free() {
        let e = env();
        let pts = points(31);
        let clean: Vec<DVec> = Evaluator::eval_margins_batch(&e, &pts)
            .into_iter()
            .map(Result::unwrap)
            .collect();
        // Transient faults + same-point retries (perturb = 0) + enough
        // retry budget → every point ends up evaluated cleanly.
        let cfg = FaultConfig::new(99, 0.4).with_kinds(&[FaultKind::NonConvergence]);
        let inj = FaultInjector::new(&e, cfg);
        let svc = EvalService::new(
            &inj,
            ExecConfig::default()
                .with_workers(4)
                .with_cache_capacity(0)
                .with_retry(RetryPolicy {
                    max_retries: 3,
                    perturb: 0.0,
                }),
        );
        let chaotic = svc.eval_margins_batch(&pts);
        assert!(inj.report().total() > 0, "faults must actually fire");
        for (c, r) in chaotic.iter().zip(clean.iter()) {
            assert_eq!(c.as_ref().unwrap().as_slice(), r.as_slice());
        }
        let report = svc.report();
        assert_eq!(report.sim_failures, 0);
        assert_eq!(report.recovered, inj.report().total());
    }

    #[test]
    fn injected_panics_are_contained_by_the_service() {
        let e = env();
        let cfg = FaultConfig::new(5, 0.5).with_kinds(&[FaultKind::WorkerPanic]);
        let inj = FaultInjector::new(&e, cfg);
        let svc = EvalService::new(
            &e,
            ExecConfig::default()
                .with_workers(2)
                .with_retry(RetryPolicy::none()),
        );
        drop(svc);
        let svc = EvalService::new(
            &inj,
            ExecConfig::default()
                .with_workers(2)
                .with_cache_capacity(0)
                .with_retry(RetryPolicy::none()),
        );
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let results = svc.eval_margins_batch(&points(40));
        std::panic::set_hook(prev_hook);
        let panicked = results
            .iter()
            .filter(|r| {
                matches!(
                    r.as_ref().map_err(CktError::root),
                    Err(CktError::WorkerPanic { .. })
                )
            })
            .count();
        assert!(panicked > 0, "panics must fire at 50% rate over 40 points");
        assert_eq!(svc.report().panics_caught, panicked as u64);
        assert!(results.iter().any(|r| r.is_ok()), "others still evaluate");
    }

    #[test]
    fn nan_faults_poison_performances_not_the_process() {
        let e = env();
        let cfg = FaultConfig::new(11, 1.0).with_kinds(&[FaultKind::NanPerformance]);
        let inj = FaultInjector::new(&e, cfg);
        let theta = OperatingPoint::new(27.0, 3.3);
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::from_slice(&[0.0, 0.0]);
        let perf = CircuitEnv::eval_performances(&inj, &d, &s, &theta).unwrap();
        assert!(perf.iter().all(|x| x.is_nan()));
        // Transient: the next evaluation is clean.
        let perf2 = CircuitEnv::eval_performances(&inj, &d, &s, &theta).unwrap();
        assert!(perf2.iter().all(|x| x.is_finite()));
    }

    #[test]
    fn constraints_fault_and_recover_too() {
        let e = env();
        let cfg = FaultConfig::new(21, 1.0).with_kinds(&[FaultKind::NonConvergence]);
        let inj = FaultInjector::new(&e, cfg);
        let d = DVec::from_slice(&[1.0]);
        assert!(CircuitEnv::eval_constraints(&inj, &d).is_err());
        assert_eq!(
            CircuitEnv::eval_constraints(&inj, &d).unwrap().as_slice(),
            CircuitEnv::eval_constraints(&e, &d).unwrap().as_slice()
        );
    }

    #[test]
    fn kill_switch_trips_fatally_after_budget() {
        let e = env();
        let kill = KillSwitch::new(&e, 3);
        let theta = OperatingPoint::new(27.0, 3.3);
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::from_slice(&[0.0, 0.0]);
        for _ in 0..3 {
            assert!(CircuitEnv::eval_performances(&kill, &d, &s, &theta).is_ok());
        }
        assert!(!kill.tripped());
        let err = CircuitEnv::eval_performances(&kill, &d, &s, &theta).unwrap_err();
        assert!(kill.tripped());
        // Fatal, not retryable: no retry policy may absorb a kill.
        assert!(!err.is_simulation_failure());
    }

    #[test]
    fn external_charges_count_against_the_shared_allowance() {
        let e = env();
        let budget = std::sync::Arc::new(SharedBudget::new(10));
        let kill = KillSwitch::soft_with_budget(&e, std::sync::Arc::clone(&budget));
        let theta = OperatingPoint::new(27.0, 3.3);
        let d = DVec::from_slice(&[1.0]);
        let s = DVec::from_slice(&[0.0, 0.0]);
        for _ in 0..4 {
            assert!(CircuitEnv::eval_performances(&kill, &d, &s, &theta).is_ok());
        }
        // A peer process reports 6 charges against the same allowance:
        // 4 local + 6 external = 10 → the very next charge is rejected.
        budget.set_external(6);
        assert_eq!(budget.total_used(), 10);
        assert!(!budget.tripped(), "at the cap but not yet over");
        let err = CircuitEnv::eval_performances(&kill, &d, &s, &theta).unwrap_err();
        assert!(budget.tripped());
        // Soft mode: retryable, so failure-tolerant layers degrade.
        assert!(err.is_simulation_failure());
        assert_eq!(budget.used(), 5, "local meter keeps local semantics");
        assert_eq!(budget.external(), 6);
    }

    #[test]
    fn external_reconciliation_is_monotone_and_can_trip_directly() {
        let budget = SharedBudget::new(8);
        budget.set_external(5);
        // A stale (smaller) ledger read must never widen the allowance.
        budget.set_external(3);
        assert_eq!(budget.external(), 5);
        assert!(!budget.tripped());
        // Reconciling past the cap trips the meter without a local charge.
        budget.set_external(9);
        assert!(budget.tripped());
        assert_eq!(budget.used(), 0);
    }
}
