//! Fault-injection configuration and the `SPECWISE_FAULTS` knob.

use std::time::Duration;

/// Environment variable holding a fault-injection spec
/// (`seed:rate:kinds`, see [`FaultConfig::parse`]).
pub const FAULTS_ENV_VAR: &str = "SPECWISE_FAULTS";

/// One class of injectable fault.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The simulation "fails to converge": the evaluation returns
    /// `CktError::Simulation(MnaError::NoConvergence)` without touching
    /// the wrapped environment.
    NonConvergence,
    /// The evaluation "succeeds" with all-NaN performances — the silent
    /// failure mode degradation policies must catch (`NaN < 0.0` is false,
    /// so an unguarded pass/fail test would count NaN as passing).
    NanPerformance,
    /// The evaluation completes correctly but only after a latency spike
    /// (a deterministic sleep), exercising timeout-free slow paths.
    LatencySpike,
    /// The evaluation panics mid-flight; the evaluation engine must
    /// isolate it via `catch_unwind` instead of aborting the process.
    WorkerPanic,
}

impl FaultKind {
    /// Every kind, in the order used by spec strings and reports.
    pub const ALL: [FaultKind; 4] = [
        FaultKind::NonConvergence,
        FaultKind::NanPerformance,
        FaultKind::LatencySpike,
        FaultKind::WorkerPanic,
    ];

    /// Stable index into per-kind arrays.
    pub fn index(self) -> usize {
        match self {
            FaultKind::NonConvergence => 0,
            FaultKind::NanPerformance => 1,
            FaultKind::LatencySpike => 2,
            FaultKind::WorkerPanic => 3,
        }
    }

    /// The spec-string token of this kind (`nonconv`, `nan`, `latency`,
    /// `panic`).
    pub fn token(self) -> &'static str {
        match self {
            FaultKind::NonConvergence => "nonconv",
            FaultKind::NanPerformance => "nan",
            FaultKind::LatencySpike => "latency",
            FaultKind::WorkerPanic => "panic",
        }
    }

    fn from_token(token: &str) -> Option<FaultKind> {
        FaultKind::ALL.into_iter().find(|k| k.token() == token)
    }
}

/// Configuration of a [`FaultInjector`](crate::FaultInjector).
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Seed mixed into every fault decision. Two injectors with the same
    /// seed fault the same points.
    pub seed: u64,
    /// Probability in `[0, 1]` that a given evaluation point is faulted.
    pub rate: f64,
    /// Enabled fault kinds; the faulted point's hash picks among them.
    pub kinds: Vec<FaultKind>,
    /// When `true` (the default), a point faults only on its *first*
    /// evaluation: a same-point retry succeeds, so a retrying engine
    /// produces results bit-identical to a fault-free run.
    pub transient: bool,
    /// Sleep duration of a [`FaultKind::LatencySpike`].
    pub latency: Duration,
}

impl FaultConfig {
    /// A configuration injecting every kind at `rate` with `seed`.
    pub fn new(seed: u64, rate: f64) -> Self {
        FaultConfig {
            seed,
            rate,
            kinds: FaultKind::ALL.to_vec(),
            transient: true,
            latency: Duration::from_millis(5),
        }
    }

    /// Restricts the injected kinds.
    #[must_use]
    pub fn with_kinds(mut self, kinds: &[FaultKind]) -> Self {
        self.kinds = kinds.to_vec();
        self
    }

    /// Sets whether faults are transient (first evaluation only) or
    /// persistent (every evaluation of a faulted point fails).
    #[must_use]
    pub fn with_transient(mut self, transient: bool) -> Self {
        self.transient = transient;
        self
    }

    /// Sets the latency-spike sleep duration.
    #[must_use]
    pub fn with_latency(mut self, latency: Duration) -> Self {
        self.latency = latency;
        self
    }

    /// Parses a `seed:rate:kinds` spec string: `seed` a `u64`, `rate` a
    /// probability in `[0, 1]`, `kinds` a comma-separated subset of
    /// `nonconv,nan,latency,panic` or `all`. The kinds field may be
    /// omitted (`seed:rate`), meaning `all`.
    ///
    /// # Errors
    ///
    /// Returns a one-line description of the problem, suitable for the
    /// stderr warning [`FaultConfig::from_env`] prints.
    pub fn parse(spec: &str) -> Result<FaultConfig, String> {
        let mut fields = spec.trim().splitn(3, ':');
        let seed_str = fields.next().unwrap_or("");
        let seed: u64 = seed_str
            .trim()
            .parse()
            .map_err(|_| format!("bad seed {seed_str:?} (expected u64)"))?;
        let rate_str = fields
            .next()
            .ok_or_else(|| "missing rate field (expected seed:rate[:kinds])".to_string())?;
        let rate: f64 = rate_str
            .trim()
            .parse()
            .map_err(|_| format!("bad rate {rate_str:?} (expected f64)"))?;
        if !(0.0..=1.0).contains(&rate) {
            return Err(format!("rate {rate} outside [0, 1]"));
        }
        let kinds = match fields.next().map(str::trim) {
            None | Some("") | Some("all") => FaultKind::ALL.to_vec(),
            Some(list) => {
                let mut kinds = Vec::new();
                for token in list.split(',') {
                    let token = token.trim();
                    let kind = FaultKind::from_token(token).ok_or_else(|| {
                        format!("unknown fault kind {token:?} (expected nonconv, nan, latency, panic, or all)")
                    })?;
                    if !kinds.contains(&kind) {
                        kinds.push(kind);
                    }
                }
                kinds
            }
        };
        Ok(FaultConfig::new(seed, rate).with_kinds(&kinds))
    }

    /// Reads `SPECWISE_FAULTS` from the process environment. Unset returns
    /// `None`; a set-but-malformed value also returns `None`, after a
    /// one-line stderr warning naming the variable and the rejected value.
    pub fn from_env() -> Option<FaultConfig> {
        let raw = std::env::var(FAULTS_ENV_VAR).ok()?;
        match FaultConfig::parse(&raw) {
            Ok(cfg) => Some(cfg),
            Err(why) => {
                eprintln!(
                    "specwise: ignoring malformed {FAULTS_ENV_VAR}={raw:?}: {why}; \
                     injecting no faults"
                );
                None
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_full_spec() {
        let cfg = FaultConfig::parse("42:0.1:nonconv,panic").unwrap();
        assert_eq!(cfg.seed, 42);
        assert_eq!(cfg.rate, 0.1);
        assert_eq!(
            cfg.kinds,
            vec![FaultKind::NonConvergence, FaultKind::WorkerPanic]
        );
        assert!(cfg.transient);
    }

    #[test]
    fn kinds_field_defaults_to_all() {
        assert_eq!(
            FaultConfig::parse("7:0.05").unwrap().kinds,
            FaultKind::ALL.to_vec()
        );
        assert_eq!(
            FaultConfig::parse("7:0.05:all").unwrap().kinds,
            FaultKind::ALL.to_vec()
        );
    }

    #[test]
    fn rejects_malformed_specs_with_a_reason() {
        for (spec, needle) in [
            ("x:0.1:all", "bad seed"),
            ("1", "missing rate"),
            ("1:lots", "bad rate"),
            ("1:1.5", "outside [0, 1]"),
            ("1:0.1:meteor", "unknown fault kind"),
        ] {
            let err = FaultConfig::parse(spec).unwrap_err();
            assert!(err.contains(needle), "{spec}: {err}");
        }
    }

    #[test]
    fn kind_tokens_round_trip() {
        for kind in FaultKind::ALL {
            assert_eq!(FaultKind::from_token(kind.token()), Some(kind));
            assert_eq!(FaultKind::ALL[kind.index()], kind);
        }
    }
}
