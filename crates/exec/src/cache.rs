//! Bounded memoization cache for performance evaluations.
//!
//! Keys are the quantized bit patterns of the evaluation point `(d, ŝ, θ)`:
//! the low 16 mantissa bits of every coordinate are cleared, so float noise
//! below ~1.5·10⁻¹¹ relative maps to the same bucket. Quantization alone
//! could alias two genuinely distinct points, so each entry additionally
//! stores the *exact* bit patterns of its inputs and a lookup only hits on
//! exact equality — the quantized key merely buckets candidates. Distinct
//! points that share a bucket coexist as separate entries and can never
//! serve each other's results.
//!
//! Capacity is bounded; insertion beyond capacity evicts the oldest entry
//! (FIFO), which matches the access pattern of the optimizer: points are
//! revisited within an iteration (corner re-evaluations, line-search
//! backtracking onto the base point) but rarely across distant iterations.

use specwise_ckt::OperatingPoint;
use specwise_linalg::DVec;
use std::collections::{HashMap, VecDeque};

/// Mask clearing the low 16 mantissa bits of an `f64` (≈ 1.5e-11 relative
/// quantization) for bucketing.
const QUANT_MASK: u64 = !0xFFFF;

/// Canonical bit pattern of one coordinate: `-0.0` folds to `0.0`, every
/// NaN folds to one pattern, so equal-valued points always share a bucket.
fn canonical_bits(x: f64) -> u64 {
    if x == 0.0 {
        0
    } else if x.is_nan() {
        f64::NAN.to_bits()
    } else {
        x.to_bits()
    }
}

/// Quantized and exact bit encodings of an evaluation point.
fn encode(d: &DVec, s_hat: &DVec, theta: &OperatingPoint) -> (Vec<u64>, Vec<u64>) {
    let n = d.len() + s_hat.len() + 3;
    let mut quant = Vec::with_capacity(n);
    let mut exact = Vec::with_capacity(n);
    // The design/stat split is part of the key: (d=[x], ŝ=[]) must not
    // collide with (d=[], ŝ=[x]).
    quant.push(d.len() as u64);
    exact.push(d.len() as u64);
    for &x in d
        .iter()
        .chain(s_hat.iter())
        .chain([theta.temp_c, theta.vdd].iter())
    {
        let bits = canonical_bits(x);
        quant.push(bits & QUANT_MASK);
        exact.push(bits);
    }
    (quant, exact)
}

struct Entry {
    exact: Vec<u64>,
    value: DVec,
}

/// Bounded FIFO memoization cache; see the module docs for the keying
/// scheme. Not thread-safe by itself — the service wraps it in a mutex.
pub(crate) struct Cache {
    capacity: usize,
    buckets: HashMap<Vec<u64>, Vec<Entry>>,
    order: VecDeque<Vec<u64>>,
    len: usize,
}

impl Cache {
    pub(crate) fn new(capacity: usize) -> Self {
        Cache {
            capacity,
            buckets: HashMap::new(),
            order: VecDeque::new(),
            len: 0,
        }
    }

    /// Number of cached evaluations.
    pub(crate) fn len(&self) -> usize {
        self.len
    }

    /// Looks up an exact match for `(d, ŝ, θ)`.
    pub(crate) fn get(&self, d: &DVec, s_hat: &DVec, theta: &OperatingPoint) -> Option<DVec> {
        if self.capacity == 0 {
            return None;
        }
        let (quant, exact) = encode(d, s_hat, theta);
        self.buckets
            .get(&quant)?
            .iter()
            .find(|e| e.exact == exact)
            .map(|e| e.value.clone())
    }

    /// Inserts a successful evaluation, evicting the oldest entry when full.
    pub(crate) fn put(&mut self, d: &DVec, s_hat: &DVec, theta: &OperatingPoint, value: &DVec) {
        if self.capacity == 0 {
            return;
        }
        let (quant, exact) = encode(d, s_hat, theta);
        let bucket = self.buckets.entry(quant.clone()).or_default();
        if bucket.iter().any(|e| e.exact == exact) {
            return; // benign race: another worker inserted the same point
        }
        bucket.push(Entry {
            exact,
            value: value.clone(),
        });
        self.order.push_back(quant);
        self.len += 1;
        while self.len > self.capacity {
            if let Some(old) = self.order.pop_front() {
                if let Some(bucket) = self.buckets.get_mut(&old) {
                    if !bucket.is_empty() {
                        bucket.remove(0);
                        self.len -= 1;
                    }
                    if bucket.is_empty() {
                        self.buckets.remove(&old);
                    }
                }
            } else {
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn theta() -> OperatingPoint {
        OperatingPoint::new(27.0, 3.3)
    }

    fn v(values: &[f64]) -> DVec {
        DVec::from_slice(values)
    }

    #[test]
    fn hit_requires_exact_bits() {
        let mut c = Cache::new(16);
        let d = v(&[1.0, 2.0]);
        let s = v(&[0.5]);
        c.put(&d, &s, &theta(), &v(&[42.0]));
        assert_eq!(c.get(&d, &s, &theta()).unwrap().as_slice(), &[42.0]);
        // A point in the same quantization bucket (1 ulp away) must miss:
        // quantized bucketing may group them, but the exact-bits guard
        // rejects the false hit.
        let s_near = v(&[f64::from_bits(0.5f64.to_bits() + 1)]);
        assert!(c.get(&d, &s_near, &theta()).is_none());
        // And a clearly distinct point must miss too.
        assert!(c.get(&d, &v(&[0.6]), &theta()).is_none());
    }

    #[test]
    fn nearby_points_coexist_without_aliasing() {
        let mut c = Cache::new(16);
        let d = v(&[1.0]);
        let s_a = v(&[0.5]);
        let s_b = v(&[f64::from_bits(0.5f64.to_bits() + 1)]); // same bucket
        c.put(&d, &s_a, &theta(), &v(&[1.0]));
        c.put(&d, &s_b, &theta(), &v(&[2.0]));
        assert_eq!(c.get(&d, &s_a, &theta()).unwrap().as_slice(), &[1.0]);
        assert_eq!(c.get(&d, &s_b, &theta()).unwrap().as_slice(), &[2.0]);
    }

    #[test]
    fn design_stat_split_is_keyed() {
        let mut c = Cache::new(16);
        c.put(&v(&[1.0]), &v(&[]), &theta(), &v(&[10.0]));
        assert!(c.get(&v(&[]), &v(&[1.0]), &theta()).is_none());
    }

    #[test]
    fn negative_zero_folds_to_zero() {
        let mut c = Cache::new(16);
        c.put(&v(&[0.0]), &v(&[]), &theta(), &v(&[7.0]));
        assert_eq!(
            c.get(&v(&[-0.0]), &v(&[]), &theta()).unwrap().as_slice(),
            &[7.0]
        );
    }

    #[test]
    fn capacity_bounds_and_fifo_eviction() {
        let mut c = Cache::new(3);
        for i in 0..5 {
            c.put(&v(&[i as f64]), &v(&[]), &theta(), &v(&[i as f64]));
        }
        assert_eq!(c.len(), 3);
        assert!(
            c.get(&v(&[0.0]), &v(&[]), &theta()).is_none(),
            "oldest evicted"
        );
        assert!(c.get(&v(&[1.0]), &v(&[]), &theta()).is_none());
        for i in 2..5 {
            assert!(c.get(&v(&[i as f64]), &v(&[]), &theta()).is_some());
        }
    }

    #[test]
    fn zero_capacity_disables() {
        let mut c = Cache::new(0);
        c.put(&v(&[1.0]), &v(&[]), &theta(), &v(&[1.0]));
        assert_eq!(c.len(), 0);
        assert!(c.get(&v(&[1.0]), &v(&[]), &theta()).is_none());
    }
}
