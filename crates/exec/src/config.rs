//! Configuration for the evaluation service: worker pool size, cache
//! capacity, and the retry policy for non-converged simulations.

use std::time::Duration;

/// Retry policy for evaluations that fail with a simulation error
/// (typically a non-converged DC solve).
///
/// Each retry re-evaluates at a deterministically perturbed statistical
/// point: attempt `k` adds `perturb · k` to every component of `ŝ`. The
/// perturbation is far below the resolution the optimizer cares about
/// (default 1e-9 on standardized-Gaussian axes), but often enough to move a
/// Newton solve off a singular operating point. Constraint evaluations are
/// retried at the unchanged design point, covering transient failures.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RetryPolicy {
    /// Maximum number of retries after the first failed attempt.
    pub max_retries: u32,
    /// Magnitude added to each `ŝ` component per retry attempt.
    pub perturb: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 2,
            perturb: 1e-9,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries.
    pub fn none() -> Self {
        RetryPolicy {
            max_retries: 0,
            perturb: 0.0,
        }
    }
}

/// Configuration of an [`EvalService`](crate::EvalService).
#[derive(Debug, Clone, PartialEq)]
pub struct ExecConfig {
    /// Number of worker threads for batch evaluations. `1` means serial.
    pub workers: usize,
    /// Maximum number of memoized evaluations. `0` disables the cache.
    pub cache_capacity: usize,
    /// Retry policy for failed simulations.
    pub retry: RetryPolicy,
    /// Minimum batch size before the worker pool is engaged; smaller
    /// batches run serially (thread spawn costs more than it saves).
    pub min_parallel_batch: usize,
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig {
            workers: std::thread::available_parallelism().map_or(1, |n| n.get()),
            cache_capacity: 4096,
            retry: RetryPolicy::default(),
            min_parallel_batch: 2,
        }
    }
}

impl ExecConfig {
    /// A fully serial configuration with caching and retries disabled —
    /// behaves exactly like calling the environment directly.
    pub fn serial() -> Self {
        ExecConfig {
            workers: 1,
            cache_capacity: 0,
            retry: RetryPolicy::none(),
            min_parallel_batch: usize::MAX,
        }
    }

    /// Sets the worker count.
    pub fn with_workers(mut self, workers: usize) -> Self {
        self.workers = workers.max(1);
        self
    }

    /// Sets the cache capacity (`0` disables).
    pub fn with_cache_capacity(mut self, capacity: usize) -> Self {
        self.cache_capacity = capacity;
        self
    }

    /// Sets the retry policy.
    pub fn with_retry(mut self, retry: RetryPolicy) -> Self {
        self.retry = retry;
        self
    }

    /// Divides this configuration's worker threads across `shards`
    /// concurrent services (minimum one thread each), so a pool of
    /// side-by-side jobs — `specwise-serve`'s worker slots — shares the
    /// machine instead of oversubscribing it `shards`-fold. Worker count
    /// never changes results (the engine is bit-identical at any worker
    /// count), only scheduling.
    pub fn into_shard(mut self, shards: usize) -> Self {
        self.workers = (self.workers / shards.max(1)).max(1);
        self
    }

    /// [`ExecConfig::default`] sharded `shards` ways via
    /// [`ExecConfig::into_shard`].
    pub fn sharded(shards: usize) -> Self {
        ExecConfig::default().into_shard(shards)
    }

    /// Reads the configuration from the environment, starting from the
    /// defaults:
    ///
    /// * `SPECWISE_WORKERS` — worker thread count,
    /// * `SPECWISE_CACHE_CAP` — cache capacity (`0` disables),
    /// * `SPECWISE_RETRIES` — max retries for failed simulations,
    /// * `SPECWISE_RETRY_PERTURB` — per-retry `ŝ` perturbation.
    ///
    /// Unset variables keep their defaults; a set-but-malformed value also
    /// keeps the default, after a one-line stderr warning naming the
    /// variable and the rejected value (a silent fallback here once meant a
    /// typo'd `SPECWISE_WORKERS=8x` quietly ran serial).
    pub fn from_env() -> Self {
        let mut cfg = ExecConfig::default();
        if let Some(n) = parse_var::<usize>("SPECWISE_WORKERS") {
            cfg.workers = n.max(1);
        }
        if let Some(n) = parse_var::<usize>("SPECWISE_CACHE_CAP") {
            cfg.cache_capacity = n;
        }
        if let Some(n) = parse_var::<u32>("SPECWISE_RETRIES") {
            cfg.retry.max_retries = n;
        }
        if let Some(x) = parse_var::<f64>("SPECWISE_RETRY_PERTURB") {
            cfg.retry.perturb = x;
        }
        cfg
    }
}

/// The shared warn-and-default knob parser used by every `SPECWISE_*`
/// environment variable in the workspace (`SPECWISE_WORKERS`,
/// `SPECWISE_BATCH`, `SPECWISE_GRAD`, `SPECWISE_ESTIMATOR`, …). The
/// implementation lives in `specwise-ckt` (the lowest crate that reads a
/// knob); this is the canonical public surface.
pub use specwise_ckt::env_knob::{parse_env_knob, parse_knob_checked};

fn parse_var<T: std::str::FromStr>(name: &str) -> Option<T> {
    parse_env_knob(name)
}

/// Formats a duration compactly for report tables (`1.23s`, `45.6ms`).
pub(crate) fn fmt_duration(d: Duration) -> String {
    let s = d.as_secs_f64();
    if s >= 1.0 {
        format!("{s:.2}s")
    } else if s >= 1e-3 {
        format!("{:.1}ms", s * 1e3)
    } else {
        format!("{:.0}µs", s * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_are_sane() {
        let cfg = ExecConfig::default();
        assert!(cfg.workers >= 1);
        assert!(cfg.cache_capacity > 0);
        assert_eq!(cfg.retry.max_retries, 2);
    }

    #[test]
    fn serial_disables_everything() {
        let cfg = ExecConfig::serial();
        assert_eq!(cfg.workers, 1);
        assert_eq!(cfg.cache_capacity, 0);
        assert_eq!(cfg.retry.max_retries, 0);
    }

    #[test]
    fn builder_setters() {
        let cfg = ExecConfig::default()
            .with_workers(3)
            .with_cache_capacity(7)
            .with_retry(RetryPolicy {
                max_retries: 5,
                perturb: 1e-6,
            });
        assert_eq!(cfg.workers, 3);
        assert_eq!(cfg.cache_capacity, 7);
        assert_eq!(cfg.retry.max_retries, 5);
    }

    #[test]
    fn sharding_divides_workers_with_a_floor_of_one() {
        let base = ExecConfig::default().with_workers(8);
        assert_eq!(base.clone().into_shard(2).workers, 4);
        assert_eq!(base.clone().into_shard(3).workers, 2);
        assert_eq!(base.clone().into_shard(100).workers, 1);
        assert_eq!(base.clone().into_shard(0).workers, 8, "0 shards ≡ 1");
        // Only the worker count changes.
        let sharded = base.clone().into_shard(2);
        assert_eq!(sharded.cache_capacity, base.cache_capacity);
        assert_eq!(sharded.retry, base.retry);
        assert!(ExecConfig::sharded(4).workers >= 1);
    }

    #[test]
    fn malformed_env_values_warn_and_name_the_variable() {
        let err = parse_knob_checked::<usize>("SPECWISE_WORKERS", "8x").unwrap_err();
        assert!(err.contains("SPECWISE_WORKERS"), "{err}");
        assert!(err.contains("8x"), "{err}");
        assert!(err.contains("keeping default"), "{err}");
        // Well-formed values (with surrounding whitespace) still parse.
        assert_eq!(
            parse_knob_checked::<usize>("SPECWISE_WORKERS", " 8 "),
            Ok(8)
        );
        assert_eq!(
            parse_knob_checked::<f64>("SPECWISE_RETRY_PERTURB", "1e-9"),
            Ok(1e-9)
        );
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration(Duration::from_secs(2)), "2.00s");
        assert_eq!(fmt_duration(Duration::from_millis(45)), "45.0ms");
        assert_eq!(fmt_duration(Duration::from_micros(12)), "12µs");
    }
}
