//! The [`Evaluator`] abstraction and the [`EvalService`] engine.
//!
//! [`Evaluator`] is what the worst-case analysis, linearization, line
//! search, and Monte-Carlo verification layers program against: the same
//! accessors and evaluation calls as [`CircuitEnv`], plus *batch* variants
//! that evaluate many points at once. Every `CircuitEnv + Sync` is an
//! `Evaluator` through a blanket implementation whose batches run serially
//! — existing behavior, bit for bit.
//!
//! [`EvalService`] wraps an environment and upgrades those batch calls
//! with a scoped-thread worker pool, a bounded memoization cache, and a
//! retry policy for non-converged simulations, while keeping results in
//! input order and bit-identical to the serial path.

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

use specwise_ckt::{
    CircuitEnv, CktError, DesignSpace, OperatingPoint, OperatingRange, SimPhase, Spec, StatSpace,
};
use specwise_linalg::DVec;
use specwise_trace::Tracer;

use crate::cache::Cache;
use crate::config::{fmt_duration, ExecConfig};

/// One evaluation request: the full argument triple of
/// [`CircuitEnv::eval_performances`], owned so batches can cross threads.
///
/// The vectors are [`Arc`]-shared: gradient and sampling loops build many
/// points that differ from a base point in only one coordinate block, and
/// sharing the unchanged block avoids one heap allocation + copy per point
/// (cloning an `EvalPoint` is two refcount bumps).
#[derive(Debug, Clone, PartialEq)]
pub struct EvalPoint {
    /// Design point.
    pub d: Arc<DVec>,
    /// Standardized statistical point.
    pub s_hat: Arc<DVec>,
    /// Operating condition.
    pub theta: OperatingPoint,
}

impl EvalPoint {
    /// Creates a request. Accepts owned vectors or pre-shared [`Arc`]s, so
    /// call sites that reuse a base vector across many points pass
    /// `Arc::clone(&base)` and allocate nothing.
    pub fn new(
        d: impl Into<Arc<DVec>>,
        s_hat: impl Into<Arc<DVec>>,
        theta: OperatingPoint,
    ) -> Self {
        EvalPoint {
            d: d.into(),
            s_hat: s_hat.into(),
            theta,
        }
    }
}

/// The evaluation interface of the simulator-driven loops.
///
/// Mirrors the [`CircuitEnv`] surface (same method names, so call sites
/// only change their bound, not their body) and adds batch evaluation.
/// Implementors: every `CircuitEnv + Sync` (serial batches, via the blanket
/// impl) and [`EvalService`] (parallel, cached, fault-tolerant batches).
pub trait Evaluator: Sync {
    /// Human-readable circuit name.
    fn name(&self) -> &str;

    /// The design space.
    fn design_space(&self) -> &DesignSpace;

    /// The standardized statistical space.
    fn stat_space(&self) -> &StatSpace;

    /// Dimension of the statistical space.
    fn stat_dim(&self) -> usize;

    /// The performance specifications.
    fn specs(&self) -> &[Spec];

    /// The operating range `Θ`.
    fn operating_range(&self) -> &OperatingRange;

    /// Names of the functional constraints.
    fn constraint_names(&self) -> Vec<String>;

    /// Evaluates all performances at `(d, ŝ, θ)`.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError>;

    /// Evaluates the margin vector at `(d, ŝ, θ)`.
    ///
    /// # Errors
    ///
    /// Propagates [`Evaluator::eval_performances`] errors.
    fn eval_margins(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError>;

    /// Evaluates the functional constraints `c(d) ≥ 0`.
    ///
    /// # Errors
    ///
    /// Returns [`CktError`] for dimension mismatches or failed simulations.
    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError>;

    /// Evaluates margins at every point, returning results in input order.
    /// A failed point yields its error in the corresponding slot; the other
    /// points are unaffected.
    fn eval_margins_batch(&self, points: &[EvalPoint]) -> Vec<Result<DVec, CktError>> {
        self.warm_commit();
        points
            .iter()
            .map(|p| self.eval_margins(&p.d, &p.s_hat, &p.theta))
            .collect()
    }

    /// Evaluates performances at every point, in input order.
    fn eval_performances_batch(&self, points: &[EvalPoint]) -> Vec<Result<DVec, CktError>> {
        self.warm_commit();
        points
            .iter()
            .map(|p| self.eval_performances(&p.d, &p.s_hat, &p.theta))
            .collect()
    }

    /// Evaluates constraints at every design point, in input order.
    fn eval_constraints_batch(&self, designs: &[DVec]) -> Vec<Result<DVec, CktError>> {
        self.warm_commit();
        designs.iter().map(|d| self.eval_constraints(d)).collect()
    }

    /// Publishes pending warm-start state (see
    /// [`CircuitEnv::warm_commit`]). Batch entry points call this exactly
    /// once before running, so every point in a batch is seeded from the
    /// same committed snapshot regardless of worker count or completion
    /// order — keeping Newton iteration counts (and therefore simulation
    /// counts) bitwise-deterministic under parallel evaluation.
    fn warm_commit(&self) {}

    /// Number of simulator invocations so far.
    fn sim_count(&self) -> u64;

    /// Resets the simulation counter.
    fn reset_sim_count(&self);

    /// Selects the [`SimPhase`] subsequent simulations are charged to.
    fn set_sim_phase(&self, phase: SimPhase);

    /// Per-phase simulation counts.
    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT];

    /// Evaluates the margin vector at `(d, ŝ, θ)` plus a set of perturbed
    /// `(d′, ŝ′)` points via the environment's sensitivity shortcut (see
    /// [`CircuitEnv::eval_margins_perturbed`]). `Ok(None)` means no
    /// shortcut applies: callers fall back to finite differences through
    /// the ordinary batch path.
    ///
    /// # Errors
    ///
    /// Propagates base-point simulation failures.
    fn eval_margins_perturbed(
        &self,
        _d: &DVec,
        _s_hat: &DVec,
        _theta: &OperatingPoint,
        _directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        Ok(None)
    }

    /// Evaluates margins at many `(ŝ, θ)` sample points for a fixed design,
    /// letting the environment batch the underlying solves (see
    /// [`CircuitEnv::eval_margins_samples`]). `None` means no batched
    /// path: callers use [`Evaluator::eval_margins_batch`].
    fn eval_margins_samples(
        &self,
        _d: &DVec,
        _points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        None
    }

    /// Adjoint/sensitivity solves recorded so far. Not part of
    /// [`Evaluator::sim_count`].
    fn adjoint_solve_count(&self) -> u64 {
        0
    }

    /// Finite-difference simulator calls avoided by the sensitivity path.
    fn fd_sims_avoided(&self) -> u64 {
        0
    }

    /// Execution statistics, when the evaluator collects them
    /// ([`EvalService`] does; plain environments return `None`).
    fn exec_report(&self) -> Option<ExecReport> {
        None
    }
}

impl<T: CircuitEnv + Sync + ?Sized> Evaluator for T {
    fn name(&self) -> &str {
        CircuitEnv::name(self)
    }

    fn design_space(&self) -> &DesignSpace {
        CircuitEnv::design_space(self)
    }

    fn stat_space(&self) -> &StatSpace {
        CircuitEnv::stat_space(self)
    }

    fn stat_dim(&self) -> usize {
        CircuitEnv::stat_dim(self)
    }

    fn specs(&self) -> &[Spec] {
        CircuitEnv::specs(self)
    }

    fn operating_range(&self) -> &OperatingRange {
        CircuitEnv::operating_range(self)
    }

    fn constraint_names(&self) -> Vec<String> {
        CircuitEnv::constraint_names(self)
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        CircuitEnv::eval_performances(self, d, s_hat, theta)
    }

    fn eval_margins(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        CircuitEnv::eval_margins(self, d, s_hat, theta)
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        CircuitEnv::eval_constraints(self, d)
    }

    fn sim_count(&self) -> u64 {
        CircuitEnv::sim_count(self)
    }

    fn reset_sim_count(&self) {
        CircuitEnv::reset_sim_count(self)
    }

    fn set_sim_phase(&self, phase: SimPhase) {
        CircuitEnv::set_sim_phase(self, phase)
    }

    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT] {
        CircuitEnv::sim_phase_counts(self)
    }

    fn warm_commit(&self) {
        CircuitEnv::warm_commit(self)
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        CircuitEnv::eval_margins_perturbed(self, d, s_hat, theta, directions)
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        CircuitEnv::eval_margins_samples(self, d, points)
    }

    fn adjoint_solve_count(&self) -> u64 {
        CircuitEnv::adjoint_solve_count(self)
    }

    fn fd_sims_avoided(&self) -> u64 {
        CircuitEnv::fd_sims_avoided(self)
    }
}

/// Snapshot of an [`EvalService`]'s execution statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecReport {
    /// Configured worker-pool size.
    pub workers: usize,
    /// Cache lookups answered from memory (simulations saved).
    pub cache_hits: u64,
    /// Cache lookups that fell through to the environment.
    pub cache_misses: u64,
    /// Retry attempts issued for failed simulations.
    pub retries: u64,
    /// Evaluations that failed at first but succeeded on a retry.
    pub recovered: u64,
    /// Evaluations that exhausted retries with a simulation failure.
    pub sim_failures: u64,
    /// Worker panics isolated by `catch_unwind` and degraded to
    /// [`CktError::WorkerPanic`] instead of aborting the process.
    pub panics_caught: u64,
    /// Batch calls served.
    pub batches: u64,
    /// Total points across all batch calls.
    pub batch_points: u64,
    /// Simulations charged to each phase (indexed by [`SimPhase::index`]).
    pub phase_sims: [u64; SimPhase::COUNT],
    /// Wall-clock evaluation time charged to each phase.
    pub phase_wall: [Duration; SimPhase::COUNT],
    /// Total simulations the wrapped environment performed.
    pub total_sims: u64,
    /// Wall-clock time since the service was created (or last reset).
    pub wall: Duration,
}

impl ExecReport {
    /// Cache hit rate in `[0, 1]` (`0` when the cache was never consulted).
    pub fn hit_rate(&self) -> f64 {
        let total = self.cache_hits + self.cache_misses;
        if total == 0 {
            0.0
        } else {
            self.cache_hits as f64 / total as f64
        }
    }

    /// Wall-clock time spent evaluating, summed over phases.
    pub fn eval_wall(&self) -> Duration {
        self.phase_wall.iter().sum()
    }

    /// Per-phase rows `(label, simulations, wall time)` for effort tables,
    /// in [`SimPhase::ALL`] order, zero-simulation phases omitted.
    pub fn phase_rows(&self) -> Vec<(String, u64, Duration)> {
        SimPhase::ALL
            .iter()
            .filter(|p| self.phase_sims[p.index()] > 0)
            .map(|p| {
                (
                    p.label().to_string(),
                    self.phase_sims[p.index()],
                    self.phase_wall[p.index()],
                )
            })
            .collect()
    }
}

impl std::fmt::Display for ExecReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "exec: {} sims, {} workers, wall {}",
            self.total_sims,
            self.workers,
            fmt_duration(self.wall)
        )?;
        writeln!(
            f,
            "cache: {} hits / {} misses ({:.1}% hit rate)",
            self.cache_hits,
            self.cache_misses,
            100.0 * self.hit_rate()
        )?;
        writeln!(
            f,
            "robustness: {} retries, {} recovered, {} failures, {} panics caught",
            self.retries, self.recovered, self.sim_failures, self.panics_caught
        )?;
        for (label, sims, wall) in self.phase_rows() {
            writeln!(f, "  {label:<14} {sims:>8} sims  {:>9}", fmt_duration(wall))?;
        }
        Ok(())
    }
}

/// Renders a vector for error context: up to four components, then an
/// ellipsis with the total length, so annotated errors stay one line even
/// for high-dimensional statistical spaces.
fn summarize_vec(v: &DVec) -> String {
    const SHOWN: usize = 4;
    let mut out = String::from("[");
    for (i, x) in v.iter().take(SHOWN).enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        out.push_str(&format!("{x:.6}"));
    }
    if v.len() > SHOWN {
        out.push_str(&format!(", … ({} total)", v.len()));
    }
    out.push(']');
    out
}

/// The evaluation engine: wraps a [`CircuitEnv`] and serves all
/// simulator-driven loops with parallel batches, memoization, retries,
/// and per-phase accounting. See the [crate docs](crate) for an overview.
pub struct EvalService<'e, E: CircuitEnv + Sync + ?Sized> {
    env: &'e E,
    config: ExecConfig,
    cache: Mutex<Cache>,
    hits: AtomicU64,
    misses: AtomicU64,
    retries: AtomicU64,
    recovered: AtomicU64,
    sim_failures: AtomicU64,
    panics_caught: AtomicU64,
    batches: AtomicU64,
    batch_points: AtomicU64,
    phase: AtomicUsize,
    phase_wall_ns: [AtomicU64; SimPhase::COUNT],
    started: Instant,
    tracer: Tracer,
}

impl<E: CircuitEnv + Sync + ?Sized> std::fmt::Debug for EvalService<'_, E> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EvalService")
            .field("env", &CircuitEnv::name(self.env))
            .field("config", &self.config)
            .finish()
    }
}

impl<'e, E: CircuitEnv + Sync + ?Sized> EvalService<'e, E> {
    /// Wraps `env` with the given configuration.
    pub fn new(env: &'e E, config: ExecConfig) -> Self {
        EvalService {
            env,
            cache: Mutex::new(Cache::new(config.cache_capacity)),
            config,
            hits: AtomicU64::new(0),
            misses: AtomicU64::new(0),
            retries: AtomicU64::new(0),
            recovered: AtomicU64::new(0),
            sim_failures: AtomicU64::new(0),
            panics_caught: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batch_points: AtomicU64::new(0),
            phase: AtomicUsize::new(SimPhase::Other.index()),
            phase_wall_ns: std::array::from_fn(|_| AtomicU64::new(0)),
            started: Instant::now(),
            tracer: Tracer::disabled(),
        }
    }

    /// Attaches a [`Tracer`]: every batch fan-out emits a `batch` event
    /// (point count + active phase) into the journal. With the default
    /// disabled tracer the emission is a single branch per batch.
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Wraps `env` with configuration from the process environment
    /// ([`ExecConfig::from_env`]).
    pub fn from_env(env: &'e E) -> Self {
        EvalService::new(env, ExecConfig::from_env())
    }

    /// The active configuration.
    pub fn config(&self) -> &ExecConfig {
        &self.config
    }

    /// The wrapped environment.
    pub fn env(&self) -> &'e E {
        self.env
    }

    /// Number of memoized evaluations currently held.
    pub fn cache_len(&self) -> usize {
        self.cache.lock().expect("exec cache poisoned").len()
    }

    fn charge_wall(&self, elapsed: Duration) {
        let idx = self.phase.load(Ordering::Relaxed).min(SimPhase::COUNT - 1);
        self.phase_wall_ns[idx].fetch_add(elapsed.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Performance evaluation with cache and retry, *without* wall-clock
    /// accounting — timed by the public entry points so batch items are
    /// not double-counted.
    fn performances_inner(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        if self.config.cache_capacity > 0 {
            if let Some(hit) = self
                .cache
                .lock()
                .expect("exec cache poisoned")
                .get(d, s_hat, theta)
            {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Ok(hit);
            }
            self.misses.fetch_add(1, Ordering::Relaxed);
        }
        let result = self.evaluate_with_retry(d, s_hat, theta);
        if let Ok(value) = &result {
            if self.config.cache_capacity > 0 {
                self.cache
                    .lock()
                    .expect("exec cache poisoned")
                    .put(d, s_hat, theta, value);
            }
        }
        result
    }

    /// Runs one raw environment call with panic isolation: a panicking
    /// simulation degrades to [`CktError::WorkerPanic`] instead of
    /// unwinding through the worker pool and aborting the process.
    fn call_isolated<T>(&self, f: impl FnOnce() -> Result<T, CktError>) -> Result<T, CktError> {
        match catch_unwind(AssertUnwindSafe(f)) {
            Ok(result) => result,
            Err(payload) => {
                self.panics_caught.fetch_add(1, Ordering::Relaxed);
                let message = if let Some(s) = payload.downcast_ref::<&str>() {
                    (*s).to_string()
                } else if let Some(s) = payload.downcast_ref::<String>() {
                    s.clone()
                } else {
                    "non-string panic payload".to_string()
                };
                Err(CktError::WorkerPanic { message })
            }
        }
    }

    fn active_phase(&self) -> SimPhase {
        SimPhase::ALL[self.phase.load(Ordering::Relaxed).min(SimPhase::COUNT - 1)]
    }

    /// Annotates an escaping simulation failure with where it happened, so
    /// a failed run names the offending point instead of a bare
    /// [`CktError::Simulation`]. Non-simulation errors (dimension
    /// mismatches, configuration problems) keep their exact variant —
    /// callers match on those.
    fn annotate_failure(&self, e: CktError, point: String) -> CktError {
        if e.is_simulation_failure() {
            self.sim_failures.fetch_add(1, Ordering::Relaxed);
            e.with_context(format!(
                "evaluation in phase '{}' at {point}",
                self.active_phase().label()
            ))
        } else {
            e
        }
    }

    fn evaluate_with_retry(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let mut attempt: u32 = 0;
        loop {
            let result = if attempt == 0 {
                self.call_isolated(|| CircuitEnv::eval_performances(self.env, d, s_hat, theta))
            } else {
                // Deterministic nudge off the failing point; see
                // `RetryPolicy` for the rationale and magnitude.
                let mut nudged = s_hat.clone();
                for v in nudged.iter_mut() {
                    *v += self.config.retry.perturb * attempt as f64;
                }
                self.call_isolated(|| CircuitEnv::eval_performances(self.env, d, &nudged, theta))
            };
            match result {
                Err(e) if e.is_simulation_failure() && attempt < self.config.retry.max_retries => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => {
                    return Err(self.annotate_failure(
                        e,
                        format!(
                            "d={} ŝ={} θ=({} °C, {} V)",
                            summarize_vec(d),
                            summarize_vec(s_hat),
                            theta.temp_c,
                            theta.vdd
                        ),
                    ));
                }
                Ok(value) => {
                    if attempt > 0 {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(value);
                }
            }
        }
    }

    /// Constraint evaluation with panic isolation and same-point retries
    /// (constraints are d-only; a ŝ-perturbing retry does not apply).
    fn constraints_with_retry(&self, d: &DVec) -> Result<DVec, CktError> {
        let mut attempt: u32 = 0;
        loop {
            let result = self.call_isolated(|| CircuitEnv::eval_constraints(self.env, d));
            match result {
                Err(e) if e.is_simulation_failure() && attempt < self.config.retry.max_retries => {
                    self.retries.fetch_add(1, Ordering::Relaxed);
                    attempt += 1;
                }
                Err(e) => {
                    return Err(
                        self.annotate_failure(e, format!("constraints at d={}", summarize_vec(d)))
                    );
                }
                Ok(value) => {
                    if attempt > 0 {
                        self.recovered.fetch_add(1, Ordering::Relaxed);
                    }
                    return Ok(value);
                }
            }
        }
    }

    fn margins_from_performances(&self, perf: DVec) -> DVec {
        CircuitEnv::specs(self.env)
            .iter()
            .zip(perf.iter())
            .map(|(spec, &f)| spec.margin(f))
            .collect()
    }

    /// Fans `points` out over the worker pool, writing each result into its
    /// input slot. `op` must be safe to call concurrently (it is: the env is
    /// `Sync` and the service's shared state is atomics + a mutex).
    fn run_batch<In, Out>(&self, points: &[In], op: impl Fn(&In) -> Out + Sync) -> Vec<Out>
    where
        In: Sync,
        Out: Send,
    {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            let phase = SimPhase::ALL[self.phase.load(Ordering::Relaxed).min(SimPhase::COUNT - 1)];
            self.tracer.event(
                "batch",
                &[
                    ("points", points.len().into()),
                    ("phase", phase.label().into()),
                ],
            );
        }
        // Publish the warm-start snapshot exactly once, before fan-out:
        // every point of this batch seeds from the same committed state, so
        // Newton iteration counts do not depend on worker count or
        // completion order.
        CircuitEnv::warm_commit(self.env);
        let t0 = Instant::now();
        let workers = self.config.workers.clamp(1, points.len().max(1));
        let result = if workers <= 1 || points.len() < self.config.min_parallel_batch {
            points.iter().map(&op).collect()
        } else {
            let mut slots: Vec<Option<Out>> = Vec::with_capacity(points.len());
            slots.resize_with(points.len(), || None);
            let chunk = points.len().div_ceil(workers);
            std::thread::scope(|scope| {
                for (ins, outs) in points.chunks(chunk).zip(slots.chunks_mut(chunk)) {
                    scope.spawn(|| {
                        for (p, slot) in ins.iter().zip(outs.iter_mut()) {
                            *slot = Some(op(p));
                        }
                    });
                }
            });
            slots
                .into_iter()
                .map(|s| s.expect("worker filled every slot"))
                .collect()
        };
        self.charge_wall(t0.elapsed());
        result
    }

    /// Snapshot of the execution statistics.
    pub fn report(&self) -> ExecReport {
        ExecReport {
            workers: self.config.workers,
            cache_hits: self.hits.load(Ordering::Relaxed),
            cache_misses: self.misses.load(Ordering::Relaxed),
            retries: self.retries.load(Ordering::Relaxed),
            recovered: self.recovered.load(Ordering::Relaxed),
            sim_failures: self.sim_failures.load(Ordering::Relaxed),
            panics_caught: self.panics_caught.load(Ordering::Relaxed),
            batches: self.batches.load(Ordering::Relaxed),
            batch_points: self.batch_points.load(Ordering::Relaxed),
            phase_sims: CircuitEnv::sim_phase_counts(self.env),
            phase_wall: std::array::from_fn(|i| {
                Duration::from_nanos(self.phase_wall_ns[i].load(Ordering::Relaxed))
            }),
            total_sims: CircuitEnv::sim_count(self.env),
            wall: self.started.elapsed(),
        }
    }
}

impl<E: CircuitEnv + Sync + ?Sized> Evaluator for EvalService<'_, E> {
    fn name(&self) -> &str {
        CircuitEnv::name(self.env)
    }

    fn design_space(&self) -> &DesignSpace {
        CircuitEnv::design_space(self.env)
    }

    fn stat_space(&self) -> &StatSpace {
        CircuitEnv::stat_space(self.env)
    }

    fn stat_dim(&self) -> usize {
        CircuitEnv::stat_dim(self.env)
    }

    fn specs(&self) -> &[Spec] {
        CircuitEnv::specs(self.env)
    }

    fn operating_range(&self) -> &OperatingRange {
        CircuitEnv::operating_range(self.env)
    }

    fn constraint_names(&self) -> Vec<String> {
        CircuitEnv::constraint_names(self.env)
    }

    fn eval_performances(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let t0 = Instant::now();
        let result = self.performances_inner(d, s_hat, theta);
        self.charge_wall(t0.elapsed());
        result
    }

    fn eval_margins(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
    ) -> Result<DVec, CktError> {
        let t0 = Instant::now();
        let result = self
            .performances_inner(d, s_hat, theta)
            .map(|p| self.margins_from_performances(p));
        self.charge_wall(t0.elapsed());
        result
    }

    fn eval_constraints(&self, d: &DVec) -> Result<DVec, CktError> {
        let t0 = Instant::now();
        let result = self.constraints_with_retry(d);
        self.charge_wall(t0.elapsed());
        result
    }

    fn eval_margins_batch(&self, points: &[EvalPoint]) -> Vec<Result<DVec, CktError>> {
        self.run_batch(points, |p| {
            self.performances_inner(&p.d, &p.s_hat, &p.theta)
                .map(|perf| self.margins_from_performances(perf))
        })
    }

    fn eval_performances_batch(&self, points: &[EvalPoint]) -> Vec<Result<DVec, CktError>> {
        self.run_batch(points, |p| {
            self.performances_inner(&p.d, &p.s_hat, &p.theta)
        })
    }

    fn eval_constraints_batch(&self, designs: &[DVec]) -> Vec<Result<DVec, CktError>> {
        self.run_batch(designs, |d| self.constraints_with_retry(d))
    }

    fn sim_count(&self) -> u64 {
        CircuitEnv::sim_count(self.env)
    }

    fn reset_sim_count(&self) {
        CircuitEnv::reset_sim_count(self.env)
    }

    fn set_sim_phase(&self, phase: SimPhase) {
        self.phase.store(phase.index(), Ordering::Relaxed);
        CircuitEnv::set_sim_phase(self.env, phase);
    }

    fn sim_phase_counts(&self) -> [u64; SimPhase::COUNT] {
        CircuitEnv::sim_phase_counts(self.env)
    }

    fn warm_commit(&self) {
        CircuitEnv::warm_commit(self.env)
    }

    fn eval_margins_perturbed(
        &self,
        d: &DVec,
        s_hat: &DVec,
        theta: &OperatingPoint,
        directions: &[(DVec, DVec)],
    ) -> Result<Option<(DVec, Vec<DVec>)>, CktError> {
        // Commit first for parity with the finite-difference batch path:
        // the base point seeds from the same snapshot either way.
        CircuitEnv::warm_commit(self.env);
        let t0 = Instant::now();
        let result = self.call_isolated(|| {
            CircuitEnv::eval_margins_perturbed(self.env, d, s_hat, theta, directions)
        });
        self.charge_wall(t0.elapsed());
        result.map_err(|e| {
            self.annotate_failure(
                e,
                format!(
                    "sensitivity base d={} ŝ={}",
                    summarize_vec(d),
                    summarize_vec(s_hat)
                ),
            )
        })
    }

    fn eval_margins_samples(
        &self,
        d: &DVec,
        points: &[(DVec, OperatingPoint)],
    ) -> Option<Vec<Result<DVec, CktError>>> {
        // The batched path bypasses the memo cache (Monte-Carlo samples are
        // effectively unique) but still counts as one batch and commits the
        // warm snapshot exactly once, like every other batch entry point.
        CircuitEnv::warm_commit(self.env);
        let t0 = Instant::now();
        let result = CircuitEnv::eval_margins_samples(self.env, d, points)?;
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batch_points
            .fetch_add(points.len() as u64, Ordering::Relaxed);
        if self.tracer.is_enabled() {
            self.tracer.event(
                "batch",
                &[
                    ("points", points.len().into()),
                    ("phase", self.active_phase().label().into()),
                ],
            );
        }
        self.charge_wall(t0.elapsed());
        Some(result)
    }

    fn adjoint_solve_count(&self) -> u64 {
        CircuitEnv::adjoint_solve_count(self.env)
    }

    fn fd_sims_avoided(&self) -> u64 {
        CircuitEnv::fd_sims_avoided(self.env)
    }

    fn exec_report(&self) -> Option<ExecReport> {
        Some(self.report())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::RetryPolicy;
    use specwise_ckt::{AnalyticEnv, DesignParam, SpecKind};

    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, th| {
                DVec::from_slice(&[d[0] + 0.5 * s[0] - 0.25 * s[1] * s[1] + 1e-3 * th.vdd])
            })
            .build()
            .unwrap()
    }

    fn points(n: usize) -> Vec<EvalPoint> {
        let theta = OperatingPoint::new(27.0, 3.3);
        (0..n)
            .map(|i| {
                EvalPoint::new(
                    DVec::from_slice(&[0.1 * i as f64]),
                    DVec::from_slice(&[0.01 * i as f64, -0.02 * i as f64]),
                    theta,
                )
            })
            .collect()
    }

    #[test]
    fn batch_matches_serial_bit_for_bit_across_worker_counts() {
        let e = env();
        let pts = points(23);
        // Reference: the blanket (serial) implementation on the raw env.
        let reference = Evaluator::eval_margins_batch(&e, &pts);
        for workers in [1usize, 2, 8] {
            let service = EvalService::new(
                &e,
                ExecConfig::serial()
                    .with_workers(workers)
                    .with_cache_capacity(0),
            );
            let got = service.eval_margins_batch(&pts);
            assert_eq!(got.len(), reference.len());
            for (g, r) in got.iter().zip(reference.iter()) {
                let (g, r) = (g.as_ref().unwrap(), r.as_ref().unwrap());
                assert_eq!(g.as_slice(), r.as_slice(), "workers={workers} diverged");
            }
        }
    }

    #[test]
    fn constraints_batch_matches_serial() {
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, _, _| DVec::from_slice(&[d[0]]))
            .constraints(vec!["c0".into()], |d| DVec::from_slice(&[d[0] - 1.0]))
            .build()
            .unwrap();
        let designs: Vec<DVec> = (0..11)
            .map(|i| DVec::from_slice(&[0.3 * i as f64]))
            .collect();
        let reference = Evaluator::eval_constraints_batch(&e, &designs);
        for workers in [1usize, 2, 8] {
            let service = EvalService::new(&e, ExecConfig::serial().with_workers(workers));
            let got = service.eval_constraints_batch(&designs);
            for (g, r) in got.iter().zip(reference.iter()) {
                assert_eq!(
                    g.as_ref().unwrap().as_slice(),
                    r.as_ref().unwrap().as_slice(),
                    "workers={workers}"
                );
            }
        }
    }

    #[test]
    fn cache_saves_simulations_and_returns_identical_values() {
        let e = env();
        let service = EvalService::new(&e, ExecConfig::default().with_workers(1));
        let p = points(1).remove(0);
        let first = service.eval_margins(&p.d, &p.s_hat, &p.theta).unwrap();
        let sims_after_first = Evaluator::sim_count(&service);
        let second = service.eval_margins(&p.d, &p.s_hat, &p.theta).unwrap();
        assert_eq!(
            Evaluator::sim_count(&service),
            sims_after_first,
            "hit must not simulate"
        );
        assert_eq!(first.as_slice(), second.as_slice());
        let report = service.report();
        assert_eq!(report.cache_hits, 1);
        assert_eq!(report.cache_misses, 1);
    }

    #[test]
    fn nearby_but_distinct_points_never_alias_through_the_service() {
        let e = env();
        let service = EvalService::new(&e, ExecConfig::default().with_workers(1));
        let theta = OperatingPoint::new(27.0, 3.3);
        let d = DVec::from_slice(&[1.0]);
        let s_a = DVec::from_slice(&[0.5, 0.0]);
        // One ulp away: same quantization bucket, different point.
        let s_b = DVec::from_slice(&[f64::from_bits(0.5f64.to_bits() + 1), 0.0]);
        let m_a = service.eval_margins(&d, &s_a, &theta).unwrap();
        let m_b = service.eval_margins(&d, &s_b, &theta).unwrap();
        let expect_a = CircuitEnv::eval_margins(&e, &d, &s_a, &theta).unwrap();
        let expect_b = CircuitEnv::eval_margins(&e, &d, &s_b, &theta).unwrap();
        assert_eq!(m_a.as_slice(), expect_a.as_slice());
        assert_eq!(m_b.as_slice(), expect_b.as_slice());
        assert_eq!(
            service.report().cache_misses,
            2,
            "both points must evaluate"
        );
    }

    #[test]
    fn retry_recovers_from_point_failures() {
        // Fails exactly at ŝ = (0.5, 0.5); the retry's perturbed point
        // converges.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(2)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .fail_when_stat(|_, s| s[0] == 0.5 && s[1] == 0.5)
            .build()
            .unwrap();
        let service = EvalService::new(
            &e,
            ExecConfig::default()
                .with_workers(1)
                .with_retry(RetryPolicy {
                    max_retries: 2,
                    perturb: 1e-9,
                }),
        );
        let theta = OperatingPoint::new(27.0, 3.3);
        let m = service
            .eval_margins(
                &DVec::from_slice(&[1.0]),
                &DVec::from_slice(&[0.5, 0.5]),
                &theta,
            )
            .unwrap();
        assert!((m[0] - 1.5).abs() < 1e-6);
        let report = service.report();
        assert_eq!(report.retries, 1);
        assert_eq!(report.recovered, 1);
        assert_eq!(report.sim_failures, 0);
    }

    #[test]
    fn exhausted_retries_surface_the_error_without_poisoning_the_batch() {
        // The whole band s[0] ∈ [0.4, 0.6] fails — retries cannot escape.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .fail_when_stat(|_, s| (0.4..=0.6).contains(&s[0]))
            .build()
            .unwrap();
        let service = EvalService::new(&e, ExecConfig::default().with_workers(2));
        let theta = OperatingPoint::new(27.0, 3.3);
        let pts: Vec<EvalPoint> = [0.0, 0.5, 1.0, 0.45, 2.0]
            .iter()
            .map(|&s| EvalPoint::new(DVec::from_slice(&[1.0]), DVec::from_slice(&[s]), theta))
            .collect();
        let results = service.eval_margins_batch(&pts);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        assert!(results[4].is_ok());
        for idx in [1usize, 3] {
            let err = results[idx].as_ref().unwrap_err();
            assert!(err.is_simulation_failure(), "slot {idx}: {err}");
            assert!(matches!(err.root(), CktError::Simulation(_)));
            // The escaping error names the phase and the offending point.
            let msg = err.to_string();
            assert!(msg.contains("phase 'other'"), "{msg}");
            assert!(msg.contains("ŝ="), "{msg}");
        }
        let report = service.report();
        assert_eq!(report.sim_failures, 2);
        assert!(report.retries >= 2);
    }

    #[test]
    fn worker_panic_is_isolated_and_degrades_to_an_error() {
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 1.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| {
                assert!(s[0] < 0.75, "poisoned sample");
                DVec::from_slice(&[d[0] + s[0]])
            })
            .build()
            .unwrap();
        let service = EvalService::new(&e, ExecConfig::default().with_workers(2));
        let theta = OperatingPoint::new(27.0, 3.3);
        let pts: Vec<EvalPoint> = [0.0, 0.9, 0.5]
            .iter()
            .map(|&s| EvalPoint::new(DVec::from_slice(&[1.0]), DVec::from_slice(&[s]), theta))
            .collect();
        // Silence the default panic hook for the intentional panic.
        let prev_hook = std::panic::take_hook();
        std::panic::set_hook(Box::new(|_| {}));
        let results = service.eval_margins_batch(&pts);
        std::panic::set_hook(prev_hook);
        assert!(results[0].is_ok());
        assert!(results[2].is_ok());
        let err = results[1].as_ref().unwrap_err();
        assert!(matches!(err.root(), CktError::WorkerPanic { .. }), "{err}");
        assert!(err.to_string().contains("poisoned sample"), "{err}");
        let report = service.report();
        assert!(report.panics_caught >= 1);
        assert_eq!(report.sim_failures, 1);
    }

    #[test]
    fn report_tracks_batches_and_phases() {
        let e = env();
        let service = EvalService::new(&e, ExecConfig::default().with_workers(2));
        Evaluator::set_sim_phase(&service, SimPhase::Verification);
        let pts = points(6);
        let _ = service.eval_margins_batch(&pts);
        let report = service.report();
        assert_eq!(report.batches, 1);
        assert_eq!(report.batch_points, 6);
        assert_eq!(report.phase_sims[SimPhase::Verification.index()], 6);
        assert!(report.phase_wall[SimPhase::Verification.index()] > Duration::ZERO);
        assert_eq!(report.total_sims, 6);
        assert!(report
            .phase_rows()
            .iter()
            .any(|(l, n, _)| l == "verification" && *n == 6));
    }
}
