//! specwise-exec: parallel, cached, fault-tolerant evaluation engine for
//! all simulator-driven loops.
//!
//! Every expensive loop in the yield machinery — finite-difference
//! gradients, operating-corner sweeps, Monte-Carlo verification, the
//! per-spec worst-case stage — reduces to "evaluate the circuit at these
//! `N` points". This crate turns that shape into a single choke point:
//!
//! * [`Evaluator`] — the trait those loops program against. It mirrors the
//!   [`CircuitEnv`](specwise_ckt::CircuitEnv) surface and adds batch calls
//!   ([`Evaluator::eval_margins_batch`],
//!   [`Evaluator::eval_constraints_batch`]). Every `CircuitEnv + Sync` is
//!   an `Evaluator` via a blanket impl with serial batches, so plain
//!   environments keep working unchanged.
//! * [`EvalService`] — wraps an environment and upgrades batches with a
//!   scoped-thread worker pool (results stay input-ordered and
//!   bit-identical to serial), a bounded memoization cache with an
//!   exact-match guard against false hits, a deterministic retry policy
//!   for non-converged simulations, and per-[`SimPhase`](specwise_ckt::SimPhase)
//!   simulation counters and wall-clock timers surfaced as an
//!   [`ExecReport`].
//!
//! # Example
//!
//! ```
//! use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};
//! use specwise_exec::{EvalPoint, EvalService, Evaluator, ExecConfig};
//! use specwise_linalg::DVec;
//!
//! # fn main() -> Result<(), specwise_ckt::CktError> {
//! let env = AnalyticEnv::builder()
//!     .design(DesignSpace::new(vec![DesignParam::new("d0", "", -10.0, 10.0, 2.0)]))
//!     .stat_dim(1)
//!     .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
//!     .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
//!     .build()?;
//! let service = EvalService::new(&env, ExecConfig::default().with_workers(2));
//! let theta = env.operating_range().nominal();
//! let points: Vec<EvalPoint> = (0..8)
//!     .map(|i| EvalPoint::new(
//!         DVec::from_slice(&[2.0]),
//!         DVec::from_slice(&[0.1 * i as f64]),
//!         theta,
//!     ))
//!     .collect();
//! let margins = service.eval_margins_batch(&points);
//! assert!(margins.iter().all(|m| m.is_ok()));
//! println!("{}", service.report());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod cache;
pub mod config;
pub mod service;

pub use config::{ExecConfig, RetryPolicy};
pub use service::{EvalPoint, EvalService, Evaluator, ExecReport};
