//! Simulation-based feasibility line search (paper Eq. 23 / Sec. 5.4).
//!
//! The coordinate search works on *linearized* constraints; before the next
//! iteration the design must be pulled back into the true feasibility
//! region: `γ_max = max{γ ∈ [0, 1] : c(d_f + γ·r) ≥ 0}` with a small number
//! of real circuit simulations (the paper quotes ~10).

use specwise_ckt::SimPhase;
use specwise_exec::Evaluator;
use specwise_linalg::DVec;

use crate::SpecwiseError;

/// Runs the line search from the feasible point `d_f` toward the
/// linearized optimum `d_star`. Returns `(d_new, gamma_max)`.
///
/// `max_evals` bounds the number of constraint simulations (≥ 2).
///
/// # Errors
///
/// Propagates evaluation errors; returns [`SpecwiseError::InvalidConfig`]
/// when `max_evals < 2`.
///
/// # Panics
///
/// Panics when `d_f` and `d_star` have different lengths.
pub fn line_search_feasible<E: Evaluator + ?Sized>(
    env: &E,
    d_f: &DVec,
    d_star: &DVec,
    max_evals: usize,
) -> Result<(DVec, f64), SpecwiseError> {
    assert_eq!(d_f.len(), d_star.len(), "design lengths differ");
    env.set_sim_phase(SimPhase::LineSearch);
    if max_evals < 2 {
        return Err(SpecwiseError::InvalidConfig {
            reason: "line search needs >= 2 evaluations",
        });
    }
    let r = d_star - d_f;
    if r.norm2() == 0.0 {
        return Ok((d_f.clone(), 1.0));
    }
    let feasible_at = |gamma: f64| -> Result<bool, SpecwiseError> {
        let d = d_f.axpy(gamma, &r);
        let c = env.eval_constraints(&d)?;
        Ok(c.iter().all(|&x| x >= 0.0))
    };

    // Full step first: often feasible, and then the optimum is kept.
    if feasible_at(1.0)? {
        return Ok((d_star.clone(), 1.0));
    }

    // Bisection between the feasible γ=0 (by precondition) and infeasible 1.
    let mut lo = 0.0;
    let mut hi = 1.0;
    for _ in 0..max_evals.saturating_sub(1) {
        let mid = 0.5 * (lo + hi);
        if feasible_at(mid)? {
            lo = mid;
        } else {
            hi = mid;
        }
    }
    Ok((d_f.axpy(lo, &r), lo))
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    /// Feasible iff d0 ≤ 2.
    fn env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "x", "", -10.0, 10.0, 0.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .constraints(vec!["c".into()], |d| DVec::from_slice(&[2.0 - d[0]]))
            .build()
            .unwrap()
    }

    #[test]
    fn full_step_when_target_feasible() {
        let e = env();
        let (d, g) =
            line_search_feasible(&e, &DVec::from_slice(&[0.0]), &DVec::from_slice(&[1.5]), 10)
                .unwrap();
        assert_eq!(g, 1.0);
        assert_eq!(d.as_slice(), &[1.5]);
    }

    #[test]
    fn pulls_back_to_boundary() {
        let e = env();
        let (d, g) =
            line_search_feasible(&e, &DVec::from_slice(&[0.0]), &DVec::from_slice(&[8.0]), 20)
                .unwrap();
        assert!(g < 1.0);
        assert!(d[0] <= 2.0 + 1e-9, "d = {d}");
        assert!(d[0] > 1.9, "should approach the boundary: {d}");
        // The returned point is truly feasible.
        assert!(e.eval_constraints(&d).unwrap()[0] >= 0.0);
    }

    #[test]
    fn zero_direction_is_identity() {
        let e = env();
        let d0 = DVec::from_slice(&[1.0]);
        let (d, g) = line_search_feasible(&e, &d0, &d0, 10).unwrap();
        assert_eq!(g, 1.0);
        assert_eq!(d, d0);
    }

    #[test]
    fn budget_checked() {
        let e = env();
        assert!(
            line_search_feasible(&e, &DVec::from_slice(&[0.0]), &DVec::from_slice(&[1.0]), 1)
                .is_err()
        );
    }

    #[test]
    fn respects_simulation_budget() {
        let e = env();
        e.reset_sim_count();
        let _ = line_search_feasible(&e, &DVec::from_slice(&[0.0]), &DVec::from_slice(&[8.0]), 10)
            .unwrap();
        assert!(e.sim_count() <= 10, "{} sims", e.sim_count());
    }
}
