//! Worst-case distance maximization — the predecessor of direct yield
//! optimization (Antreich, Graeb, Wieser, TCAD 1994; the paper's ref [10]).
//!
//! Instead of maximizing the Monte-Carlo yield estimate directly, this
//! optimizer maximizes the *smallest* (signed) worst-case distance across
//! the specifications: `max_d min_i β̄_i(d)`. Under the spec-wise linear
//! models, moving the design shifts each margin by `∇_d m_i·(d − d_f)`;
//! measured in sigma units (dividing by `‖∇_ŝ m_i‖`) this directly shifts
//! the worst-case distance:
//!
//! ```text
//! β̄_i(d) = β_i + ∇_d m_i·(d − d_f) / ‖∇_ŝ m_i‖
//! ```
//!
//! The crate ships this as an alternative objective so the two philosophies
//! can be compared on the same linearizations (see `benches/ablation.rs`);
//! the DAC 2001 paper's argument for direct yield optimization is that the
//! min-β objective ignores performance correlations, which the Monte-Carlo
//! estimate naturally accounts for.

use specwise_linalg::DVec;
use specwise_wcd::{SpecLinearization, WorstCasePoint};

use crate::{LinearConstraints, SpecwiseError};

/// Linearized worst-case distance model of one specification.
#[derive(Debug, Clone)]
struct BetaModel {
    beta: f64,
    grad_d_over_sigma: DVec,
    d_f: DVec,
}

impl BetaModel {
    fn eval(&self, d: &DVec) -> f64 {
        self.beta + self.grad_d_over_sigma.dot(&(d - &self.d_f))
    }
}

/// Maximizer of the minimum linearized worst-case distance.
///
/// # Example
///
/// See `benches/ablation.rs` and the unit tests; typical use mirrors
/// [`crate::CoordinateSearch`] but with β̄ models built from a
/// [`specwise_wcd::WcResult`] via [`WcdMaximizer::from_analysis`].
#[derive(Debug, Clone)]
pub struct WcdMaximizer {
    models: Vec<BetaModel>,
    grid_points: usize,
    max_sweeps: usize,
}

impl WcdMaximizer {
    /// Builds β̄ models from worst-case points and their matching
    /// linearizations (mirrored twins share their primary's β).
    ///
    /// # Errors
    ///
    /// Returns [`SpecwiseError::InvalidConfig`] when a linearization has a
    /// vanishing statistical gradient (β̄ undefined) or the inputs are
    /// empty.
    pub fn from_analysis(
        wc_points: &[WorstCasePoint],
        linearizations: &[SpecLinearization],
    ) -> Result<Self, SpecwiseError> {
        if wc_points.is_empty() || linearizations.is_empty() {
            return Err(SpecwiseError::InvalidConfig {
                reason: "empty worst-case analysis",
            });
        }
        let mut models = Vec::new();
        for lin in linearizations {
            let sigma = lin.grad_s.norm2();
            if sigma <= 1e-15 {
                // A spec insensitive to ŝ has unbounded β̄; skip it (it
                // cannot be the minimum).
                continue;
            }
            let beta = wc_points
                .iter()
                .find(|w| w.spec == lin.spec)
                .map(|w| w.beta_wc)
                .ok_or(SpecwiseError::InvalidConfig {
                    reason: "linearization without matching worst-case point",
                })?;
            models.push(BetaModel {
                beta,
                grad_d_over_sigma: lin.grad_d.scaled(1.0 / sigma),
                d_f: lin.d_f.clone(),
            });
        }
        if models.is_empty() {
            return Err(SpecwiseError::InvalidConfig {
                reason: "no statistically sensitive specifications",
            });
        }
        Ok(WcdMaximizer {
            models,
            grid_points: 32,
            max_sweeps: 10,
        })
    }

    /// Overrides the coordinate-scan resolution.
    ///
    /// # Errors
    ///
    /// Returns [`SpecwiseError::InvalidConfig`] for fewer than 2 points.
    pub fn with_grid(mut self, grid_points: usize) -> Result<Self, SpecwiseError> {
        if grid_points < 2 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "grid_points must be >= 2",
            });
        }
        self.grid_points = grid_points;
        Ok(self)
    }

    /// The minimum linearized worst-case distance at `d`.
    pub fn min_beta(&self, d: &DVec) -> f64 {
        self.models
            .iter()
            .map(|m| m.eval(d))
            .fold(f64::INFINITY, f64::min)
    }

    /// Maximizes `min_i β̄_i(d)` by constrained coordinate search; returns
    /// the best design and its min-β value.
    ///
    /// # Errors
    ///
    /// Propagates dimension errors.
    pub fn run(
        &self,
        constraints: &LinearConstraints,
        d_start: &DVec,
    ) -> Result<(DVec, f64), SpecwiseError> {
        let n_d = d_start.len();
        let mut d = d_start.clone();
        let mut best = self.min_beta(&d);
        for _ in 0..self.max_sweeps {
            let mut improved = false;
            for k in 0..n_d {
                let Some((lo, hi)) = constraints.coord_interval(&d, k) else {
                    continue;
                };
                if hi - lo <= 0.0 {
                    continue;
                }
                let mut best_val = d[k];
                for g in 0..self.grid_points {
                    let v = lo + (hi - lo) * g as f64 / (self.grid_points - 1) as f64;
                    let mut probe = d.clone();
                    probe[k] = v;
                    let b = self.min_beta(&probe);
                    if b > best + 1e-12 {
                        best = b;
                        best_val = v;
                    }
                }
                if best_val != d[k] {
                    d[k] = best_val;
                    improved = true;
                }
            }
            if !improved {
                break;
            }
        }
        Ok((d, best))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::OperatingPoint;

    fn wc(spec: usize, beta: f64, n_s: usize) -> WorstCasePoint {
        WorstCasePoint {
            spec,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::zeros(n_s),
            beta_wc: beta,
            nominal_margin: beta,
            margin_at_wc: 0.0,
            grad_s: DVec::zeros(n_s),
            converged: true,
        }
    }

    fn lin(spec: usize, grad_s: &[f64], grad_d: &[f64]) -> SpecLinearization {
        SpecLinearization {
            spec,
            mirrored: false,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::zeros(grad_s.len()),
            d_f: DVec::zeros(grad_d.len()),
            margin_at_anchor: 0.0,
            grad_s: DVec::from_slice(grad_s),
            grad_d: DVec::from_slice(grad_d),
        }
    }

    fn box_constraints(n: usize, lo: f64, hi: f64) -> LinearConstraints {
        LinearConstraints::box_only(&DVec::zeros(n), DVec::filled(n, lo), DVec::filled(n, hi))
    }

    #[test]
    fn balances_two_opposing_specs() {
        // β̄₀ = 1 + d, β̄₁ = 3 − d (σ = 1): the min is maximized at d = 1
        // where both distances equal 2.
        let wcs = vec![wc(0, 1.0, 1), wc(1, 3.0, 1)];
        let lins = vec![lin(0, &[1.0], &[1.0]), lin(1, &[1.0], &[-1.0])];
        let m = WcdMaximizer::from_analysis(&wcs, &lins).unwrap();
        let (d, b) = m
            .run(&box_constraints(1, -5.0, 5.0), &DVec::zeros(1))
            .unwrap();
        assert!((d[0] - 1.0).abs() < 0.2, "d = {d}");
        assert!((b - 2.0).abs() < 0.2, "min beta = {b}");
    }

    #[test]
    fn sigma_scaling_converts_margin_shift_to_distance_shift() {
        // grad_s norm 2 halves the distance gain per unit design shift.
        let wcs = vec![wc(0, 0.0, 1)];
        let lins = vec![lin(0, &[2.0], &[1.0])];
        let m = WcdMaximizer::from_analysis(&wcs, &lins).unwrap();
        assert!((m.min_beta(&DVec::from_slice(&[1.0])) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn insensitive_specs_are_skipped() {
        let wcs = vec![wc(0, 1.0, 1), wc(1, 0.5, 1)];
        let lins = vec![lin(0, &[0.0], &[1.0]), lin(1, &[1.0], &[0.5])];
        let m = WcdMaximizer::from_analysis(&wcs, &lins).unwrap();
        // Only spec 1 participates.
        assert!((m.min_beta(&DVec::zeros(1)) - 0.5).abs() < 1e-12);
    }

    #[test]
    fn rejects_empty_and_all_insensitive() {
        assert!(WcdMaximizer::from_analysis(&[], &[]).is_err());
        let wcs = vec![wc(0, 1.0, 1)];
        let lins = vec![lin(0, &[0.0], &[1.0])];
        assert!(WcdMaximizer::from_analysis(&wcs, &lins).is_err());
    }

    #[test]
    fn respects_constraints() {
        let wcs = vec![wc(0, 0.0, 1)];
        let lins = vec![lin(0, &[1.0], &[1.0])];
        let m = WcdMaximizer::from_analysis(&wcs, &lins).unwrap();
        let lc = LinearConstraints::new(
            DVec::from_slice(&[2.0]),
            specwise_linalg::DMat::from_rows(&[&[-1.0]]).unwrap(),
            DVec::zeros(1),
            DVec::filled(1, -5.0),
            DVec::filled(1, 5.0),
        )
        .unwrap();
        let (d, _) = m.run(&lc, &DVec::zeros(1)).unwrap();
        assert!(d[0] <= 2.0 + 1e-9, "constraint respected: {d}");
        assert!(d[0] > 1.8, "pushed to the boundary: {d}");
    }

    #[test]
    fn mirrored_twins_share_their_spec_beta() {
        let wcs = vec![wc(0, 1.5, 2)];
        let primary = lin(0, &[1.0, -1.0], &[1.0]);
        let mirrored = primary.to_mirrored();
        let m = WcdMaximizer::from_analysis(&wcs, &[primary, mirrored]).unwrap();
        // Both models start at β = 1.5; the mirrored one has negated grad_s
        // but the same ‖grad_s‖, and grad_d is shared.
        assert!((m.min_beta(&DVec::zeros(1)) - 1.5).abs() < 1e-12);
    }
}
