//! Monte-Carlo yield estimation over the spec-wise linear models
//! (paper Eqs. 17–20).
//!
//! A fixed set of `N` standardized samples is drawn once; for each sample
//! and each linear model the *sample part* (everything except the design
//! shift) is precomputed. During the coordinate search only the scalar
//! design shift of each model changes, and for a single-coordinate move
//! only one product is recomputed (Eq. 20).

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_linalg::{DMat, DVec};
use specwise_stat::{StandardNormal, YieldEstimate};
use specwise_wcd::SpecLinearization;

use crate::SpecwiseError;

/// A reusable linearized-model yield estimator.
///
/// # Example
///
/// ```
/// use specwise::LinearizedYield;
/// use specwise_ckt::OperatingPoint;
/// use specwise_linalg::DVec;
/// use specwise_wcd::SpecLinearization;
///
/// # fn main() -> Result<(), specwise::SpecwiseError> {
/// // margin = 1 + s0 (one spec, no design dependence): Ȳ = Φ(1) ≈ 84 %.
/// let lin = SpecLinearization {
///     spec: 0,
///     mirrored: false,
///     theta_wc: OperatingPoint::new(25.0, 3.3),
///     s_wc: DVec::from_slice(&[-1.0]),
///     d_f: DVec::from_slice(&[0.0]),
///     margin_at_anchor: 0.0,
///     grad_s: DVec::from_slice(&[1.0]),
///     grad_d: DVec::from_slice(&[0.0]),
/// };
/// let model = LinearizedYield::new(vec![lin], 1, 20_000, 42)?;
/// let y = model.estimate(&DVec::from_slice(&[0.0]))?;
/// assert!((y.value() - 0.8413).abs() < 0.01);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct LinearizedYield {
    models: Vec<SpecLinearization>,
    /// `parts[(m, j)]`: sample part of model `m` at sample `j`.
    parts: DMat,
    n_samples: usize,
    n_specs: usize,
    d_f: DVec,
}

impl LinearizedYield {
    /// Draws `n_samples` standardized samples (seeded) and precomputes the
    /// per-sample constants of every model.
    ///
    /// `n_specs` is the number of distinct specifications (mirrored models
    /// share their spec's index).
    ///
    /// # Errors
    ///
    /// Returns [`SpecwiseError::InvalidConfig`] for an empty model list or
    /// zero samples.
    pub fn new(
        models: Vec<SpecLinearization>,
        n_specs: usize,
        n_samples: usize,
        seed: u64,
    ) -> Result<Self, SpecwiseError> {
        if models.is_empty() {
            return Err(SpecwiseError::InvalidConfig {
                reason: "no linear models supplied",
            });
        }
        if n_samples == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "need at least one sample",
            });
        }
        let n_s = models[0].s_wc.len();
        for m in &models {
            if m.s_wc.len() != n_s || m.grad_s.len() != n_s {
                return Err(SpecwiseError::DimensionMismatch {
                    what: "stat",
                    expected: n_s,
                    found: m.s_wc.len(),
                });
            }
            if m.spec >= n_specs {
                return Err(SpecwiseError::InvalidConfig {
                    reason: "model spec index exceeds n_specs",
                });
            }
        }
        let d_f = models[0].d_f.clone();

        let mut rng = StdRng::seed_from_u64(seed);
        let normal = StandardNormal::new();
        let mut parts = DMat::zeros(models.len(), n_samples);
        let mut sample = DVec::zeros(n_s);
        for j in 0..n_samples {
            normal.fill(&mut rng, sample.as_mut_slice());
            for (mi, m) in models.iter().enumerate() {
                parts[(mi, j)] = m.sample_part(&sample);
            }
        }
        Ok(LinearizedYield {
            models,
            parts,
            n_samples,
            n_specs,
            d_f,
        })
    }

    /// Like [`LinearizedYield::new`] but with Latin-hypercube stratified
    /// samples (variance reduction; see
    /// [`specwise_stat::latin_hypercube_normal`]).
    ///
    /// # Errors
    ///
    /// Same as [`LinearizedYield::new`].
    pub fn new_lhs(
        models: Vec<SpecLinearization>,
        n_specs: usize,
        n_samples: usize,
        seed: u64,
    ) -> Result<Self, SpecwiseError> {
        // Validate via the standard constructor with a single throwaway
        // sample, then replace the parts with the stratified set.
        let mut base = LinearizedYield::new(models, n_specs, 1, seed)?;
        let n_s = base.models[0].s_wc.len();
        let mut rng = StdRng::seed_from_u64(seed);
        let flat = specwise_stat::latin_hypercube_normal(&mut rng, n_samples, n_s);
        let mut parts = DMat::zeros(base.models.len(), n_samples);
        for j in 0..n_samples {
            let sample = DVec::from_slice(&flat[j * n_s..(j + 1) * n_s]);
            for (mi, m) in base.models.iter().enumerate() {
                parts[(mi, j)] = m.sample_part(&sample);
            }
        }
        base.parts = parts;
        base.n_samples = n_samples;
        Ok(base)
    }

    /// Number of Monte-Carlo samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// The linear models in use.
    pub fn models(&self) -> &[SpecLinearization] {
        &self.models
    }

    /// The anchor design point `d_f` shared by all models.
    pub fn anchor(&self) -> &DVec {
        &self.d_f
    }

    /// Design shifts of every model at `d`.
    fn shifts(&self, d: &DVec) -> Result<DVec, SpecwiseError> {
        if d.len() != self.d_f.len() {
            return Err(SpecwiseError::DimensionMismatch {
                what: "design",
                expected: self.d_f.len(),
                found: d.len(),
            });
        }
        Ok(self.models.iter().map(|m| m.design_shift(d)).collect())
    }

    /// Yield estimate `Ȳ(d)` (paper Eq. 17): the fraction of samples whose
    /// linearized margins are all non-negative.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `d` has the wrong length.
    pub fn estimate(&self, d: &DVec) -> Result<YieldEstimate, SpecwiseError> {
        let shifts = self.shifts(d)?;
        Ok(YieldEstimate::from_counts(
            self.count_passing(&shifts),
            self.n_samples,
        ))
    }

    /// Yield estimate from precomputed shifts (used by the coordinate
    /// search's incremental path).
    pub(crate) fn estimate_with_shifts(&self, shifts: &DVec) -> YieldEstimate {
        YieldEstimate::from_counts(self.count_passing(shifts), self.n_samples)
    }

    pub(crate) fn count_passing(&self, shifts: &DVec) -> usize {
        let mut pass = 0usize;
        for j in 0..self.n_samples {
            let mut ok = true;
            for mi in 0..self.models.len() {
                if self.parts[(mi, j)] + shifts[mi] < 0.0 {
                    ok = false;
                    break;
                }
            }
            if ok {
                pass += 1;
            }
        }
        pass
    }

    /// Per-spec failing ("bad") sample counts at `d` — a sample is bad for
    /// spec `i` when *any* model of spec `i` (the primary or a mirrored
    /// twin) is negative. This is the "bad samples \[‰\]" row of the
    /// paper's tables.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `d` has the wrong length.
    pub fn bad_samples_per_spec(&self, d: &DVec) -> Result<Vec<usize>, SpecwiseError> {
        let shifts = self.shifts(d)?;
        let mut bad = vec![0usize; self.n_specs];
        for j in 0..self.n_samples {
            for (i, count) in bad.iter_mut().enumerate() {
                let fails = self
                    .models
                    .iter()
                    .enumerate()
                    .filter(|(_, m)| m.spec == i)
                    .any(|(mi, _)| self.parts[(mi, j)] + shifts[mi] < 0.0);
                if fails {
                    *count += 1;
                }
            }
        }
        Ok(bad)
    }

    /// Per-spec bad counts expressed per mille.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `d` has the wrong length.
    pub fn bad_per_mille(&self, d: &DVec) -> Result<Vec<f64>, SpecwiseError> {
        Ok(self
            .bad_samples_per_spec(d)?
            .into_iter()
            .map(|b| 1000.0 * b as f64 / self.n_samples as f64)
            .collect())
    }

    /// Starts an incremental shift tracker at design `d` (usually `d_f`).
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `d` has the wrong length.
    pub fn tracker(&self, d: &DVec) -> Result<ShiftTracker<'_>, SpecwiseError> {
        let shifts = self.shifts(d)?;
        Ok(ShiftTracker {
            model: self,
            d: d.clone(),
            shifts,
        })
    }
}

/// Incremental design-shift state for the coordinate search: moving one
/// coordinate updates each model's shift with a single multiply-add
/// (paper Eq. 20).
#[derive(Debug, Clone)]
pub struct ShiftTracker<'m> {
    model: &'m LinearizedYield,
    d: DVec,
    shifts: DVec,
}

impl ShiftTracker<'_> {
    /// Current design point.
    pub fn design(&self) -> &DVec {
        &self.d
    }

    /// Yield estimate at the current design point.
    pub fn estimate(&self) -> YieldEstimate {
        self.model.estimate_with_shifts(&self.shifts)
    }

    /// Yield estimate if coordinate `k` were moved to `value` (does not
    /// commit the move).
    pub fn estimate_coord(&self, k: usize, value: f64) -> YieldEstimate {
        let mut shifts = self.shifts.clone();
        for (mi, m) in self.model.models.iter().enumerate() {
            shifts[mi] += m.grad_d[k] * (value - self.d[k]);
        }
        self.model.estimate_with_shifts(&shifts)
    }

    /// Commits a coordinate move.
    pub fn set_coord(&mut self, k: usize, value: f64) {
        for (mi, m) in self.model.models.iter().enumerate() {
            self.shifts[mi] += m.grad_d[k] * (value - self.d[k]);
        }
        self.d[k] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::OperatingPoint;

    fn lin(
        spec: usize,
        anchor: f64,
        grad_s: &[f64],
        grad_d: &[f64],
        s_wc: &[f64],
    ) -> SpecLinearization {
        SpecLinearization {
            spec,
            mirrored: false,
            theta_wc: OperatingPoint::new(25.0, 3.3),
            s_wc: DVec::from_slice(s_wc),
            d_f: DVec::from_slice(&[0.0; 2][..grad_d.len()]),
            margin_at_anchor: anchor,
            grad_s: DVec::from_slice(grad_s),
            grad_d: DVec::from_slice(grad_d),
        }
    }

    #[test]
    fn matches_analytic_gaussian_probability() {
        // margin = 2 + s0 → pass prob Φ(2) ≈ 0.97725.
        let m = lin(0, 0.0, &[1.0], &[0.0], &[-2.0]);
        let ly = LinearizedYield::new(vec![m], 1, 50_000, 7).unwrap();
        let y = ly.estimate(&DVec::from_slice(&[0.0])).unwrap();
        assert!((y.value() - 0.97725).abs() < 0.005, "y = {}", y.value());
    }

    #[test]
    fn design_shift_moves_yield() {
        // margin = s0 + d0: at d0 = 0 yield 50 %, at d0 = 3 yield ≈ 99.9 %.
        let m = lin(0, 0.0, &[1.0], &[1.0], &[0.0]);
        let ly = LinearizedYield::new(vec![m], 1, 50_000, 3).unwrap();
        let y0 = ly.estimate(&DVec::from_slice(&[0.0])).unwrap().value();
        let y3 = ly.estimate(&DVec::from_slice(&[3.0])).unwrap().value();
        assert!((y0 - 0.5).abs() < 0.01);
        assert!(y3 > 0.99);
    }

    #[test]
    fn tracker_matches_direct_estimate() {
        let m0 = lin(0, 0.5, &[1.0, 0.0], &[1.0, -0.5], &[0.0, 0.0]);
        let m1 = lin(1, 1.0, &[0.3, -0.8], &[0.0, 2.0], &[0.0, 0.0]);
        let ly = LinearizedYield::new(vec![m0, m1], 2, 20_000, 11).unwrap();
        let mut tr = ly.tracker(&DVec::from_slice(&[0.0, 0.0])).unwrap();
        let d_target = DVec::from_slice(&[1.5, -0.7]);
        // Probe without committing.
        let probe = tr.estimate_coord(0, 1.5);
        tr.set_coord(0, 1.5);
        assert_eq!(probe.value(), tr.estimate().value());
        tr.set_coord(1, -0.7);
        let direct = ly.estimate(&d_target).unwrap();
        assert_eq!(tr.estimate().value(), direct.value());
    }

    #[test]
    fn mirrored_pair_models_joint_failure() {
        // Quadratic-like margin modeled by two opposing hyperplanes: pass
        // region |s0| ≤ 1. Yield ≈ P(|Z| ≤ 1) ≈ 0.6827.
        let a = lin(0, 0.0, &[-1.0], &[0.0], &[1.0]);
        let b = a.to_mirrored();
        let ly = LinearizedYield::new(vec![a, b], 1, 50_000, 19).unwrap();
        let y = ly.estimate(&DVec::from_slice(&[0.0])).unwrap().value();
        assert!((y - 0.6827).abs() < 0.01, "y = {y}");
    }

    #[test]
    fn bad_sample_counting_per_spec() {
        // Spec 0 always passes, spec 1 passes half the time.
        let m0 = lin(0, 100.0, &[1.0], &[0.0], &[0.0]);
        let m1 = lin(1, 0.0, &[1.0], &[0.0], &[0.0]);
        let ly = LinearizedYield::new(vec![m0, m1], 2, 20_000, 23).unwrap();
        let bad = ly.bad_per_mille(&DVec::from_slice(&[0.0])).unwrap();
        assert!(bad[0] < 1e-9);
        assert!((bad[1] - 500.0).abs() < 20.0, "bad1 = {}", bad[1]);
    }

    #[test]
    fn rejects_empty_and_mismatched() {
        assert!(LinearizedYield::new(vec![], 0, 100, 1).is_err());
        let m = lin(0, 0.0, &[1.0], &[0.0], &[0.0]);
        assert!(LinearizedYield::new(vec![m.clone()], 1, 0, 1).is_err());
        let ly = LinearizedYield::new(vec![m], 1, 100, 1).unwrap();
        assert!(ly.estimate(&DVec::zeros(3)).is_err());
    }

    #[test]
    fn lhs_estimate_is_tighter_across_seeds() {
        // margin = 1 + s0: yield Φ(1). Compare the spread of the estimate
        // over seeds for iid vs Latin-hypercube sampling.
        let m = lin(0, 0.0, &[1.0], &[0.0], &[-1.0]);
        let spread = |lhs: bool| -> f64 {
            let trials = 25;
            let vals: Vec<f64> = (0..trials)
                .map(|seed| {
                    let ly = if lhs {
                        LinearizedYield::new_lhs(vec![m.clone()], 1, 400, seed).unwrap()
                    } else {
                        LinearizedYield::new(vec![m.clone()], 1, 400, seed).unwrap()
                    };
                    ly.estimate(&DVec::from_slice(&[0.0])).unwrap().value()
                })
                .collect();
            let mean = vals.iter().sum::<f64>() / trials as f64;
            (vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / trials as f64).sqrt()
        };
        let sd_lhs = spread(true);
        let sd_iid = spread(false);
        assert!(
            sd_lhs < 0.5 * sd_iid,
            "LHS spread {sd_lhs} should clearly beat iid spread {sd_iid}"
        );
    }

    #[test]
    fn lhs_matches_analytic_probability() {
        let m = lin(0, 0.0, &[1.0], &[0.0], &[-2.0]);
        let ly = LinearizedYield::new_lhs(vec![m], 1, 20_000, 7).unwrap();
        let y = ly.estimate(&DVec::from_slice(&[0.0])).unwrap();
        assert!((y.value() - 0.97725).abs() < 0.003, "y = {}", y.value());
    }

    #[test]
    fn deterministic_for_fixed_seed() {
        let m = lin(0, 0.0, &[1.0], &[0.5], &[-1.0]);
        let a = LinearizedYield::new(vec![m.clone()], 1, 5_000, 99).unwrap();
        let b = LinearizedYield::new(vec![m], 1, 5_000, 99).unwrap();
        let d = DVec::from_slice(&[0.3]);
        assert_eq!(a.estimate(&d).unwrap(), b.estimate(&d).unwrap());
    }
}
