//! `specwise` — direct yield optimization of analog integrated circuits by
//! **spec-wise linearization and feasibility-guided search**, a reproduction
//! of Schenkel et al., DAC 2001.
//!
//! The crate implements the paper's contribution on top of the workspace
//! substrates (`specwise-mna` simulator, `specwise-ckt` circuits,
//! `specwise-wcd` worst-case analysis):
//!
//! * [`LinearizedYield`] — Monte-Carlo yield estimate `Ȳ` over the
//!   spec-wise linear models with the incremental per-sample update
//!   (paper Eqs. 17–20),
//! * [`LinearConstraints`] / [`find_feasible_start`] — the linearized
//!   feasibility region (Eq. 15) and the feasible-start search (Sec. 5.5),
//! * [`CoordinateSearch`] — constrained coordinate-wise maximization of
//!   `Ȳ` (Eq. 19),
//! * [`line_search_feasible`] — the simulation-based pull-back into the
//!   feasibility region (Eq. 23),
//! * [`YieldOptimizer`] — the full loop of Fig. 6 with per-iteration trace
//!   records matching the paper's Tables 1/3/4/6,
//! * [`McVerification`] — the simulation-based Monte-Carlo verification at
//!   per-spec worst-case operating points (Eqs. 6–7),
//! * [`MismatchAnalysis`] — the mismatch measure `m_kl` (Eq. 9) with the
//!   `Φ` selector and the `η` robustness weight, ranking mismatch-critical
//!   transistor pairs (Table 5).
//!
//! # Quickstart
//!
//! ```no_run
//! use specwise::{OptimizerConfig, YieldOptimizer};
//! use specwise_ckt::FoldedCascode;
//!
//! # fn main() -> Result<(), specwise::SpecwiseError> {
//! let env = FoldedCascode::paper_setup();
//! let trace = YieldOptimizer::new(OptimizerConfig::default()).run(&env)?;
//! for snap in trace.snapshots() {
//!     println!("{}", snap.label);
//!     if let Some(mc) = &snap.verified {
//!         println!("  verified yield: {}", mc.yield_estimate);
//!     }
//! }
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![deny(missing_docs)]

mod checkpoint;
mod coordinate_search;
mod error;
mod estimator;
mod feasibility;
mod importance;
mod line_search;
mod mc_verify;
mod mismatch;
mod norm_min;
mod optimizer;
mod quad_yield;
mod report;
mod wcd_max;
mod yield_model;

pub use checkpoint::{
    Checkpoint, CheckpointError, CheckpointMeta, CHECKPOINT_ENV_VAR, CHECKPOINT_VERSION,
};
pub use coordinate_search::{CoordinateSearch, CoordinateSearchOptions};
pub use error::SpecwiseError;
pub use estimator::{
    classify_sample, estimate_yield, EstimatorKind, SampleOutcome, TailVerification, YieldEstimator,
};
pub use feasibility::{find_feasible_start, FeasibleStartOptions, LinearConstraints};
pub use importance::{
    importance_verify, importance_verify_with, IsOptions, IsResult, IsState, MeanShiftIs,
};
pub use line_search::line_search_feasible;
pub use mc_verify::{mc_verify, mc_verify_with, McOptions, McState, McVerification, MonteCarlo};
pub use mismatch::{eta, phi, MismatchAnalysis, MismatchEntry, PhiOptions};
pub use norm_min::{NormMinIs, NormMinOptions, NormMinResult};
pub use optimizer::{
    IterationSnapshot, Objective, OptimizationTrace, OptimizerConfig, YieldOptimizer,
};
pub use quad_yield::QuadraticYield;
pub use report::{
    effort_breakdown_table, effort_table, improvement_table, iteration_table, mismatch_table,
    run_report, sensitivity_table,
};
// Re-exported so downstream users can enable run journaling without naming
// `specwise-trace` directly (`YieldOptimizer::with_tracer(Tracer::from_env())`).
pub use specwise_trace::{Journal, Tracer};
pub use wcd_max::WcdMaximizer;
pub use yield_model::{LinearizedYield, ShiftTracker};
