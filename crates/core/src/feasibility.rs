//! The linearized feasibility region (paper Eq. 15) and the feasible
//! starting-point search (paper Sec. 5.5).

use specwise_ckt::SimPhase;
use specwise_exec::Evaluator;
use specwise_linalg::{DMat, DVec};
use specwise_wcd::constraint_jacobian;

use crate::SpecwiseError;

/// Linearized functional constraints `c̄(d) = c₀ + ∇c·(d − d_f) ≥ 0`
/// (paper Eq. 15), together with the design-space box bounds.
///
/// During the coordinate search these define, per coordinate, the interval
/// of values that keeps the (linearized) design feasible — the
/// "feasibility-guided" part of the method.
#[derive(Debug, Clone)]
pub struct LinearConstraints {
    c0: DVec,
    jac: DMat,
    d_f: DVec,
    lower: DVec,
    upper: DVec,
}

impl LinearConstraints {
    /// Builds the linearization from constraint values and Jacobian at `d_f`.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when shapes disagree.
    pub fn new(
        c0: DVec,
        jac: DMat,
        d_f: DVec,
        lower: DVec,
        upper: DVec,
    ) -> Result<Self, SpecwiseError> {
        if jac.nrows() != c0.len() {
            return Err(SpecwiseError::DimensionMismatch {
                what: "constraint",
                expected: c0.len(),
                found: jac.nrows(),
            });
        }
        if jac.ncols() != d_f.len() || lower.len() != d_f.len() || upper.len() != d_f.len() {
            return Err(SpecwiseError::DimensionMismatch {
                what: "design",
                expected: d_f.len(),
                found: jac.ncols(),
            });
        }
        Ok(LinearConstraints {
            c0,
            jac,
            d_f,
            lower,
            upper,
        })
    }

    /// Builds by finite differences on a circuit environment at `d_f`.
    ///
    /// # Errors
    ///
    /// Propagates evaluation errors.
    pub fn from_env<E: Evaluator + ?Sized>(
        env: &E,
        d_f: &DVec,
        fd_step: f64,
    ) -> Result<Self, SpecwiseError> {
        env.set_sim_phase(SimPhase::Feasibility);
        let (c0, jac) = constraint_jacobian(env, d_f, fd_step)?;
        LinearConstraints::new(
            c0,
            jac,
            d_f.clone(),
            env.design_space().lower(),
            env.design_space().upper(),
        )
    }

    /// Builds an "unconstrained" region (box bounds only) — the Table 3
    /// ablation, where the functional constraints are ignored.
    pub fn box_only(d_f: &DVec, lower: DVec, upper: DVec) -> Self {
        LinearConstraints {
            c0: DVec::zeros(0),
            jac: DMat::zeros(0, d_f.len()),
            d_f: d_f.clone(),
            lower,
            upper,
        }
    }

    /// Number of functional constraints.
    pub fn len(&self) -> usize {
        self.c0.len()
    }

    /// `true` when only box bounds are active.
    pub fn is_empty(&self) -> bool {
        self.c0.is_empty()
    }

    /// Linearized constraint values at `d`.
    ///
    /// # Panics
    ///
    /// Panics on design dimension mismatch.
    pub fn eval(&self, d: &DVec) -> DVec {
        &self.c0 + &self.jac.matvec(&(d - &self.d_f))
    }

    /// `true` when `d` satisfies the linearized constraints and the box.
    pub fn feasible(&self, d: &DVec) -> bool {
        if !(0..d.len()).all(|k| d[k] >= self.lower[k] - 1e-12 && d[k] <= self.upper[k] + 1e-12) {
            return false;
        }
        self.is_empty() || self.eval(d).iter().all(|&c| c >= -1e-12)
    }

    /// The interval `[lo, hi]` of coordinate `k` values that keeps the
    /// design linear-feasible while all other coordinates stay at `d`.
    ///
    /// Returns `None` when the current point itself is linear-infeasible in
    /// a way that no move of coordinate `k` can repair.
    pub fn coord_interval(&self, d: &DVec, k: usize) -> Option<(f64, f64)> {
        let mut lo = self.lower[k];
        let mut hi = self.upper[k];
        if self.is_empty() {
            return if lo <= hi { Some((lo, hi)) } else { None };
        }
        let c = self.eval(d);
        for i in 0..self.len() {
            let a = self.jac[(i, k)];
            // c_i(value) = c[i] + a·(value − d[k]) ≥ 0.
            if a.abs() < 1e-15 {
                if c[i] < -1e-9 {
                    return None; // violated and not repairable along k
                }
                continue;
            }
            let boundary = d[k] - c[i] / a;
            if a > 0.0 {
                lo = lo.max(boundary);
            } else {
                hi = hi.min(boundary);
            }
        }
        if lo <= hi + 1e-12 {
            Some((lo, hi.max(lo)))
        } else {
            None
        }
    }

    /// The anchor point of the linearization.
    pub fn anchor(&self) -> &DVec {
        &self.d_f
    }

    /// Width of the design box along coordinate `k`.
    ///
    /// # Panics
    ///
    /// Panics if `k` is out of range.
    pub fn box_width(&self, k: usize) -> f64 {
        self.upper[k] - self.lower[k]
    }
}

/// Options of the feasible-start search.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FeasibleStartOptions {
    /// Maximum Gauss–Newton projection iterations.
    pub max_iterations: usize,
    /// Finite-difference step (relative) for constraint gradients.
    pub fd_step: f64,
    /// Constraint slack demanded from the returned point.
    pub tolerance: f64,
}

impl Default for FeasibleStartOptions {
    fn default() -> Self {
        FeasibleStartOptions {
            max_iterations: 20,
            fd_step: 1e-3,
            tolerance: 0.0,
        }
    }
}

/// Finds a feasible starting point (paper Sec. 5.5): when `d0` violates
/// `c(d) ≥ 0`, a Gauss–Newton projection walks to the closest feasible
/// point, re-linearizing the constraints each step.
///
/// # Errors
///
/// Returns [`SpecwiseError::NoFeasibleStart`] when the projection fails to
/// reach feasibility within the iteration budget.
pub fn find_feasible_start<E: Evaluator + ?Sized>(
    env: &E,
    d0: &DVec,
    options: &FeasibleStartOptions,
) -> Result<DVec, SpecwiseError> {
    env.set_sim_phase(SimPhase::Feasibility);
    let space = env.design_space();
    let mut d = space.project(d0)?;
    let mut worst = f64::INFINITY;
    for _ in 0..options.max_iterations {
        let c = env.eval_constraints(&d)?;
        if c.is_empty() {
            return Ok(d);
        }
        worst = c.iter().fold(f64::INFINITY, |m, &x| m.min(x));
        if worst >= options.tolerance {
            return Ok(d);
        }
        // Gauss–Newton step on the violated constraints:
        // Δd = Σ_i violated  rowᵢ·(target − cᵢ)/‖rowᵢ‖².
        let (c_now, jac) = constraint_jacobian(env, &d, options.fd_step)?;
        let mut step = DVec::zeros(d.len());
        let mut active = 0;
        for i in 0..c_now.len() {
            // Aim a little inside the region, not exactly at the boundary.
            let target = options.tolerance + 1e-3;
            if c_now[i] < target {
                let row = jac.row(i);
                let n2 = row.dot(&row);
                if n2 > 1e-18 {
                    step += &row.scaled((target - c_now[i]) / n2);
                    active += 1;
                }
            }
        }
        if active == 0 || step.norm2() < 1e-15 {
            break;
        }
        d = space.project(&(&d + &step))?;
    }
    // Final check.
    let c = env.eval_constraints(&d)?;
    let worst_final = c.iter().fold(f64::INFINITY, |m, &x| m.min(x)).min(worst);
    if c.iter().all(|&x| x >= options.tolerance) {
        Ok(d)
    } else {
        Err(SpecwiseError::NoFeasibleStart {
            worst_violation: -worst_final,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, DesignParam, DesignSpace, Spec, SpecKind};

    fn constraints_example() -> LinearConstraints {
        // c0(d) = 1 + (d0 − 1) + (d1 − 1) = d0 + d1 − 1 ≥ 0,
        // c1(d) = 2 − (d0 − 1) = 3 − d0 ≥ 0; box [0, 10]².
        LinearConstraints::new(
            DVec::from_slice(&[1.0, 2.0]),
            DMat::from_rows(&[&[1.0, 1.0], &[-1.0, 0.0]]).unwrap(),
            DVec::from_slice(&[1.0, 1.0]),
            DVec::zeros(2),
            DVec::filled(2, 10.0),
        )
        .unwrap()
    }

    #[test]
    fn eval_and_feasibility() {
        let lc = constraints_example();
        assert!(lc.feasible(&DVec::from_slice(&[1.0, 1.0])));
        assert!(!lc.feasible(&DVec::from_slice(&[0.2, 0.2]))); // c0 < 0
        assert!(!lc.feasible(&DVec::from_slice(&[5.0, 5.0]))); // c1 = −2 < 0
        assert!(!lc.feasible(&DVec::from_slice(&[-1.0, 5.0]))); // box
    }

    #[test]
    fn coordinate_intervals() {
        let lc = constraints_example();
        let d = DVec::from_slice(&[1.0, 1.0]);
        // Coordinate 0: c0 needs d0 ≥ 1 − d1 = 0; c1 needs d0 ≤ 3.
        let (lo, hi) = lc.coord_interval(&d, 0).unwrap();
        assert!((lo - 0.0).abs() < 1e-12);
        assert!((hi - 3.0).abs() < 1e-12);
        // Coordinate 1: c0 needs d1 ≥ 0; c1 insensitive → box bound 10.
        let (lo1, hi1) = lc.coord_interval(&d, 1).unwrap();
        assert!((lo1 - 0.0).abs() < 1e-12);
        assert!((hi1 - 10.0).abs() < 1e-12);
    }

    #[test]
    fn box_only_intervals() {
        let lc = LinearConstraints::box_only(
            &DVec::from_slice(&[1.0]),
            DVec::from_slice(&[-2.0]),
            DVec::from_slice(&[3.0]),
        );
        assert!(lc.is_empty());
        assert_eq!(
            lc.coord_interval(&DVec::from_slice(&[1.0]), 0),
            Some((-2.0, 3.0))
        );
        assert!(lc.feasible(&DVec::from_slice(&[0.0])));
        assert!(!lc.feasible(&DVec::from_slice(&[4.0])));
    }

    #[test]
    fn unrepairable_interval_is_none() {
        // c = −1 with zero gradient along the probed coordinate.
        let lc = LinearConstraints::new(
            DVec::from_slice(&[-1.0]),
            DMat::from_rows(&[&[0.0, 1.0]]).unwrap(),
            DVec::from_slice(&[1.0, 1.0]),
            DVec::zeros(2),
            DVec::filled(2, 10.0),
        )
        .unwrap();
        assert!(lc
            .coord_interval(&DVec::from_slice(&[1.0, 1.0]), 0)
            .is_none());
        // Along coordinate 1 the constraint is repairable: d1 ≥ 2.
        let (lo, hi) = lc
            .coord_interval(&DVec::from_slice(&[1.0, 1.0]), 1)
            .unwrap();
        assert!((lo - 2.0).abs() < 1e-12);
        assert_eq!(hi, 10.0);
    }

    fn env_with_constraints() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![
                DesignParam::new("x", "", -10.0, 10.0, -3.0),
                DesignParam::new("y", "", -10.0, 10.0, 0.0),
            ]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + s[0]]))
            .constraints(vec!["cx".into(), "cy".into()], |d| {
                DVec::from_slice(&[d[0] - 1.0, d[1] - 2.0])
            })
            .build()
            .unwrap()
    }

    #[test]
    fn feasible_start_projects_onto_region() {
        let env = env_with_constraints();
        // Start at (−3, 0): violates x ≥ 1 and y ≥ 2.
        let d = find_feasible_start(
            &env,
            &DVec::from_slice(&[-3.0, 0.0]),
            &FeasibleStartOptions::default(),
        )
        .unwrap();
        let c = env.eval_constraints(&d).unwrap();
        assert!(c.iter().all(|&x| x >= 0.0), "c = {c}");
    }

    #[test]
    fn already_feasible_point_kept_close() {
        let env = env_with_constraints();
        let d0 = DVec::from_slice(&[2.0, 3.0]);
        let d = find_feasible_start(&env, &d0, &FeasibleStartOptions::default()).unwrap();
        assert!((&d - &d0).norm_inf() < 1e-9);
    }

    #[test]
    fn from_env_builds_linearization() {
        let env = env_with_constraints();
        let lc = LinearConstraints::from_env(&env, &DVec::from_slice(&[2.0, 3.0]), 1e-5).unwrap();
        assert_eq!(lc.len(), 2);
        let c = lc.eval(&DVec::from_slice(&[2.0, 3.0]));
        assert!((c[0] - 1.0).abs() < 1e-9);
        assert!((c[1] - 1.0).abs() < 1e-9);
        assert!(lc.feasible(&DVec::from_slice(&[5.0, 5.0])));
    }
}
