//! Monte-Carlo yield estimation over diagonal-quadratic margin models —
//! the higher-order alternative the paper argues is unnecessary (Sec. 5.1).
//!
//! Structurally identical to [`crate::LinearizedYield`]: the statistical
//! part of each model is sample-constant (precomputed once), the design
//! dependence stays linear, so design moves remain cheap. Used by the
//! model-order ablation (`tests/model_order.rs`) to quantify what the
//! quadratic term buys.

use rand::rngs::StdRng;
use rand::SeedableRng;
use specwise_linalg::{DMat, DVec};
use specwise_stat::{StandardNormal, YieldEstimate};
use specwise_wcd::QuadraticMarginModel;

use crate::SpecwiseError;

/// A reusable yield estimator over diagonal-quadratic margin models.
///
/// # Example
///
/// See `tests/model_order.rs` in the workspace root for the linear vs
/// quadratic vs simulation comparison this type exists for.
#[derive(Debug, Clone)]
pub struct QuadraticYield {
    models: Vec<QuadraticMarginModel>,
    parts: DMat,
    n_samples: usize,
    d_f: DVec,
}

impl QuadraticYield {
    /// Draws `n_samples` standardized samples (seeded) and precomputes the
    /// per-sample statistical parts of every model.
    ///
    /// # Errors
    ///
    /// Returns [`SpecwiseError::InvalidConfig`] for an empty model list or
    /// zero samples.
    pub fn new(
        models: Vec<QuadraticMarginModel>,
        n_samples: usize,
        seed: u64,
    ) -> Result<Self, SpecwiseError> {
        if models.is_empty() {
            return Err(SpecwiseError::InvalidConfig {
                reason: "no quadratic models supplied",
            });
        }
        if n_samples == 0 {
            return Err(SpecwiseError::InvalidConfig {
                reason: "need at least one sample",
            });
        }
        let n_s = models[0].s_anchor.len();
        for m in &models {
            if m.s_anchor.len() != n_s {
                return Err(SpecwiseError::DimensionMismatch {
                    what: "stat",
                    expected: n_s,
                    found: m.s_anchor.len(),
                });
            }
        }
        let d_f = models[0].d_f.clone();
        let mut rng = StdRng::seed_from_u64(seed);
        let normal = StandardNormal::new();
        let mut parts = DMat::zeros(models.len(), n_samples);
        let mut sample = DVec::zeros(n_s);
        for j in 0..n_samples {
            normal.fill(&mut rng, sample.as_mut_slice());
            for (mi, m) in models.iter().enumerate() {
                parts[(mi, j)] = m.sample_part(&sample);
            }
        }
        Ok(QuadraticYield {
            models,
            parts,
            n_samples,
            d_f,
        })
    }

    /// Number of Monte-Carlo samples.
    pub fn n_samples(&self) -> usize {
        self.n_samples
    }

    /// The anchor design point shared by the models.
    pub fn anchor(&self) -> &DVec {
        &self.d_f
    }

    /// Yield estimate at design `d`: fraction of samples whose quadratic
    /// margins are all non-negative.
    ///
    /// # Errors
    ///
    /// Returns a dimension error when `d` has the wrong length.
    pub fn estimate(&self, d: &DVec) -> Result<YieldEstimate, SpecwiseError> {
        if d.len() != self.d_f.len() {
            return Err(SpecwiseError::DimensionMismatch {
                what: "design",
                expected: self.d_f.len(),
                found: d.len(),
            });
        }
        let shifts: DVec = self.models.iter().map(|m| m.design_shift(d)).collect();
        let mut pass = 0usize;
        for j in 0..self.n_samples {
            let ok = (0..self.models.len()).all(|mi| self.parts[(mi, j)] + shifts[mi] >= 0.0);
            if ok {
                pass += 1;
            }
        }
        Ok(YieldEstimate::from_counts(pass, self.n_samples))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use specwise_ckt::{AnalyticEnv, CircuitEnv, DesignParam, DesignSpace, Spec, SpecKind};
    use specwise_wcd::QuadraticMarginModel;

    /// margin = 1 − s0², a pure quadratic: yield = P(|Z| ≤ 1) ≈ 0.6827,
    /// which no single linear model can represent.
    fn quad_env() -> AnalyticEnv {
        AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 0.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|_, s, _| DVec::from_slice(&[1.0 - s[0] * s[0]]))
            .build()
            .unwrap()
    }

    #[test]
    fn quadratic_models_capture_two_sided_failure() {
        let e = quad_env();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        let q = QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(1), 0.05).unwrap();
        let qy = QuadraticYield::new(vec![q], 50_000, 7).unwrap();
        let y = qy.estimate(&d0).unwrap().value();
        assert!((y - 0.6827).abs() < 0.01, "y = {y}");
    }

    #[test]
    fn design_shift_moves_quadratic_yield() {
        // margin = d0 + 1 − s0²: raising d0 widens the pass band.
        let e = AnalyticEnv::builder()
            .design(DesignSpace::new(vec![DesignParam::new(
                "a", "", -5.0, 5.0, 0.0,
            )]))
            .stat_dim(1)
            .spec(Spec::new("f", "", SpecKind::LowerBound, 0.0))
            .performances(|d, s, _| DVec::from_slice(&[d[0] + 1.0 - s[0] * s[0]]))
            .build()
            .unwrap();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        let q = QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(1), 0.05).unwrap();
        let qy = QuadraticYield::new(vec![q], 30_000, 3).unwrap();
        let y0 = qy.estimate(&d0).unwrap().value();
        let y3 = qy.estimate(&DVec::from_slice(&[3.0])).unwrap().value();
        // P(|Z| ≤ 1) ≈ 0.683 → P(|Z| ≤ 2) ≈ 0.954.
        assert!((y0 - 0.683).abs() < 0.01);
        assert!((y3 - 0.954).abs() < 0.01);
    }

    #[test]
    fn validates_inputs() {
        assert!(QuadraticYield::new(vec![], 100, 1).is_err());
        let e = quad_env();
        let theta = e.operating_range().nominal();
        let d0 = DVec::from_slice(&[0.0]);
        let q = QuadraticMarginModel::fit(&e, &d0, 0, &theta, &DVec::zeros(1), 0.05).unwrap();
        assert!(QuadraticYield::new(vec![q.clone()], 0, 1).is_err());
        let qy = QuadraticYield::new(vec![q], 100, 1).unwrap();
        assert!(qy.estimate(&DVec::zeros(2)).is_err());
    }
}
